//! # sharing-aware-llc
//!
//! A full, from-scratch reproduction of *Characterizing multi-threaded
//! applications for designing sharing-aware last-level cache replacement
//! policies* (R. Natarajan and M. Chaudhuri, IISWC 2013) as a Rust
//! workspace:
//!
//! * [`sim`] — the trace-driven CMP cache hierarchy (private L1s,
//!   MESI-lite coherence, shared LLC with per-generation sharing
//!   tracking);
//! * [`trace`] — sixteen synthetic PARSEC / SPLASH-2 / SPEC OMP workload
//!   models built from sharing-pattern primitives;
//! * [`ingest`] — foreign-trace ingestion (ChampSim-style CSV, compact
//!   `LLCB` binary, cachegrind-like logs) into the same recording
//!   pipeline;
//! * [`policies`] — LRU, NRU, Random, the RRIP and DIP families, SHiP,
//!   Belady's OPT, and the paper's generic sharing-aware oracle wrapper;
//! * [`predictors`] — the fill-time sharing predictors (address- and
//!   PC-indexed) and their metrics;
//! * [`sharing`] — the characterization passes, the exact oracle/OPT
//!   pre-passes, and the experiment index regenerating every table and
//!   figure;
//! * [`serve`] — the job-queue simulation daemon (`repro serve`) with its
//!   persistent content-addressed stream & result store;
//! * [`telemetry`] — process-global metrics (Prometheus text exposition)
//!   and RAII span tracing (Chrome trace-event JSON), wired through the
//!   replay, suite, and serve layers.
//!
//! This facade crate re-exports the workspace and hosts the runnable
//! examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! ## Quickstart
//!
//! ```
//! use sharing_aware_llc::prelude::*;
//!
//! // Measure how much of bodytrack's LLC hit volume is served by shared
//! // blocks on a small test machine.
//! let cfg = HierarchyConfig::tiny();
//! let mut profile = SharingProfile::new();
//! simulate_kind(
//!     &cfg,
//!     PolicyKind::Lru,
//!     &mut || App::Bodytrack.workload(cfg.cores, Scale::Tiny),
//!     vec![&mut profile],
//! )
//! .expect("simulation on a synthetic workload cannot fail");
//! assert!(profile.shared_hit_fraction() > 0.1);
//! ```

#![warn(missing_docs)]

pub use llc_ingest as ingest;
pub use llc_policies as policies;
pub use llc_predictors as predictors;
pub use llc_serve as serve;
pub use llc_sharing as sharing;
pub use llc_sim as sim;
pub use llc_telemetry as telemetry;
pub use llc_trace as trace;

/// The most commonly used items across the workspace, in one import.
pub mod prelude {
    pub use llc_policies::{
        build_oracle_policy, build_policy, OracleWrap, PolicyKind, ProtectMode,
    };
    pub use llc_predictors::{
        build_predictor, ConfusionMatrix, PredictorKind, PredictorStudy, PredictorWrap,
        SharingPredictor, TableConfig,
    };
    pub use llc_sharing::{
        run_experiment, run_suite, run_suite_with, simulate, simulate_kind, simulate_opt,
        simulate_oracle, simulate_predictor_wrap, EpochSeries, ExperimentCtx, ExperimentId,
        ExperimentOutcome, RunError, RunResult, SharingProfile, SuiteConfig, SuiteReport, Table,
        VictimizationStats,
    };
    pub use llc_sim::{
        AccessKind, Addr, BlockAddr, CacheConfig, Cmp, CoreId, GenerationEnd, HierarchyConfig,
        Inclusion, LlcObserver, MemAccess, NullObserver, Pc, ReplacementPolicy,
    };
    pub use llc_trace::{App, Scale, SharingClass, Suite, TraceError, TraceSource, Workload};
}

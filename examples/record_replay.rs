//! Record a workload (or a multi-programmed mix) to the binary trace
//! format, replay it through the simulator, and confirm the replay is
//! bit-identical to simulating the live generator.
//!
//! ```text
//! cargo run --release --example record_replay [app|mix] [path]
//! ```

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::trace::{write_trace, Multiprogram, TraceFileSource};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let what = args.next().unwrap_or_else(|| "ferret".into());
    let path = args.next().unwrap_or_else(|| "/tmp/sharing-aware-llc-trace.llct".into());

    let cfg = HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4)?,
        l2: None,
        llc: CacheConfig::from_kib(512, 16)?,
        inclusion: Inclusion::NonInclusive,
    };

    // Build the source twice: once to record, once to simulate live.
    let build = |what: &str| -> Box<dyn TraceSource> {
        if what == "mix" {
            Box::new(Multiprogram::new(
                &[App::Bodytrack, App::Swim, App::Water, App::Fft],
                2,
                Scale::Tiny,
            ))
        } else {
            let app = App::parse(what).unwrap_or_else(|| panic!("unknown app '{what}'"));
            Box::new(app.workload(cfg.cores, Scale::Tiny))
        }
    };

    let file = std::fs::File::create(&path)?;
    let written = write_trace(build(&what), std::io::BufWriter::new(file))?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("recorded {written} accesses to {path} ({bytes} bytes, {:.1} B/access)",
        bytes as f64 / written as f64);

    let live = llc_sharing::simulate_kind(&cfg, PolicyKind::Lru, &mut || build(&what), vec![])?;
    let replayed = llc_sharing::simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || {
            TraceFileSource::new(std::io::BufReader::new(
                std::fs::File::open(&path).expect("trace file readable"),
            ))
            .expect("valid trace header")
        },
        vec![],
    )?;

    println!("live run   : {}", live.llc);
    println!("replay run : {}", replayed.llc);
    assert_eq!(live.llc, replayed.llc, "replay must be bit-identical");
    assert_eq!(live.l1, replayed.l1);
    println!("replay is bit-identical to the live generator ✓");
    Ok(())
}

//! Record an app's LLC reference stream into the persistent
//! content-addressed store, prove that a *fresh process* replays it from
//! disk without re-simulating, and confirm the disk-restored stream is
//! bit-identical to the live generator.
//!
//! ```text
//! cargo run --release --example record_replay [app] [store-dir]
//! ```
//!
//! Run it twice: the first run records and persists the stream; the
//! second run (a genuinely new process) starts from the `.llcs` file —
//! the same mechanism behind `repro serve`'s stream store.

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{replay_kind, StreamCache, StreamKey, WorkloadId};
use sharing_aware_llc::trace::{StreamAccess, StreamStore};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    let what = args.next().unwrap_or_else(|| "ferret".into());
    let dir = args.next().unwrap_or_else(|| {
        std::env::temp_dir()
            .join("sharing-aware-llc-store")
            .display()
            .to_string()
    });
    let app = App::parse(&what).unwrap_or_else(|| panic!("unknown app '{what}'"));

    let cfg = HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4)?,
        l2: None,
        llc: CacheConfig::from_kib(512, 16)?,
        inclusion: Inclusion::NonInclusive,
    };
    let key = StreamKey {
        workload: WorkloadId::App(app),
        cores: cfg.cores,
        scale: Scale::Tiny,
        config: cfg,
    };
    let store = StreamStore::open(&dir)?;
    let path = store.path_for(key.fingerprint());
    println!("stream key fingerprint : {:016x}", key.fingerprint());
    println!("persistent store entry : {}", path.display());

    // Phase 1 — a store-backed cache. The first process to ask records
    // the stream and persists it; every later process (re-run this
    // example!) gets a disk hit instead of a simulation.
    let cache = StreamCache::with_store(store.clone(), None);
    let stream = cache.get_or_record(key, || app.workload(cfg.cores, Scale::Tiny))?;
    let stats = cache.stats();
    if stats.disk_hits > 0 {
        println!(
            "loaded {} accesses from disk (recorded by an earlier process)",
            stream.len()
        );
    } else {
        println!(
            "recorded {} accesses ({} bytes on disk)",
            stream.len(),
            std::fs::metadata(&path)?.len()
        );
    }

    // Phase 2 — a "restarted process": a brand-new cache over the same
    // directory. It must serve the stream from disk, not re-record.
    drop(cache);
    let fresh = StreamCache::with_store(store, None);
    let restored = fresh.get_or_record(key, || app.workload(cfg.cores, Scale::Tiny))?;
    let fresh_stats = fresh.stats();
    assert_eq!(fresh_stats.misses, 0, "a fresh cache must not re-record");
    assert_eq!(fresh_stats.disk_hits, 1, "the stream comes from the store");
    assert_eq!(
        fresh_stats.view_loads, 1,
        "the disk hit is served as a zero-copy view"
    );
    assert!(
        restored.accesses().eq(stream.accesses()),
        "the disk copy replays the recording, record for record"
    );
    assert_eq!(
        restored.upgrades(),
        stream.upgrades(),
        "upgrade events survive the round trip"
    );
    println!("fresh cache restored the stream from disk (zero-copy view) without simulating ✓");

    // Phase 3 — the disk-restored stream replays bit-identically to
    // simulating the live generator.
    let live = simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || app.workload(cfg.cores, Scale::Tiny),
        vec![],
    )?;
    let replayed = replay_kind(&cfg, PolicyKind::Lru, &restored, vec![])?;
    println!("live run   : {}", live.llc);
    println!("replay run : {}", replayed.llc);
    assert_eq!(live.llc, replayed.llc, "replay must be bit-identical");
    println!("replay from the persistent store is bit-identical to the live generator ✓");
    Ok(())
}

//! Replacement-policy tournament: every realistic policy plus Belady's
//! OPT on one workload, with the sharing-awareness metric (premature
//! shared-block victimizations) alongside the miss counts.
//!
//! ```text
//! cargo run --release --example policy_tournament [app] [llc_kib]
//! ```

use sharing_aware_llc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args
        .next()
        .map(|s| App::parse(&s).unwrap_or_else(|| panic!("unknown app '{s}'")))
        .unwrap_or(App::Ferret);
    let llc_kib: u64 = args
        .next()
        .map(|s| s.parse().expect("llc size in KiB"))
        .unwrap_or(1024);

    let cfg = HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(llc_kib, 16).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    };
    println!("app: {app}   machine: {cfg}\n");
    println!(
        "{:<8} {:>12} {:>10} {:>10} {:>12}",
        "policy", "misses", "vs LRU", "premature%", "shared-vic%"
    );

    let window = 64 * cfg.llc.ways as u64;
    let mut lru_misses = 0u64;
    let mut lineup: Vec<PolicyKind> = PolicyKind::REALISTIC.to_vec();
    lineup.push(PolicyKind::Opt);
    for kind in lineup {
        let mut vic = VictimizationStats::new(window);
        let r = simulate_kind(
            &cfg,
            kind,
            &mut || app.workload(cfg.cores, Scale::Small),
            vec![&mut vic],
        )
        .expect("run");
        if kind == PolicyKind::Lru {
            lru_misses = r.llc.misses();
        }
        println!(
            "{:<8} {:>12} {:>9.3} {:>9.1}% {:>11.1}%",
            kind.label(),
            r.llc.misses(),
            r.llc.misses() as f64 / lru_misses.max(1) as f64,
            vic.premature_rate() * 100.0,
            vic.shared_victimization_rate() * 100.0
        );
    }
    println!("\nOPT's shared-victimization rate is the sharing-awareness target;");
    println!("the realistic policies' gap to it is what the oracle closes.");
}

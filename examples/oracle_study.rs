//! The paper's headline experiment in miniature: how many LLC misses does
//! the sharing-aware oracle remove from LRU (and from a modern policy) on
//! each workload?
//!
//! ```text
//! cargo run --release --example oracle_study [llc_kib]
//! ```

use sharing_aware_llc::prelude::*;

fn main() {
    let llc_kib: u64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("llc size in KiB"))
        .unwrap_or(1024);
    let cfg = HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(llc_kib, 16).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    };
    println!("machine: {cfg}\n");
    println!(
        "{:<14} {:>12} {:>12} {:>9} | {:>12} {:>12} {:>9}",
        "app", "LRU", "Oracle(LRU)", "gain", "DRRIP", "Oracle(DRRIP)", "gain"
    );

    let mut gains_lru = Vec::new();
    let mut gains_drrip = Vec::new();
    for app in App::ALL {
        let mut make = || app.workload(cfg.cores, Scale::Small);
        let lru = simulate_kind(&cfg, PolicyKind::Lru, &mut make, vec![])
            .expect("run")
            .llc
            .misses();
        let o_lru = simulate_oracle(
            &cfg,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &mut make,
            vec![],
        )
        .expect("run")
        .llc
        .misses();
        let drrip = simulate_kind(&cfg, PolicyKind::Drrip, &mut make, vec![])
            .expect("run")
            .llc
            .misses();
        let o_drrip = simulate_oracle(
            &cfg,
            PolicyKind::Drrip,
            ProtectMode::Eviction,
            None,
            &mut make,
            vec![],
        )
        .expect("run")
        .llc
        .misses();
        let g1 = 1.0 - o_lru as f64 / lru.max(1) as f64;
        let g2 = 1.0 - o_drrip as f64 / drrip.max(1) as f64;
        gains_lru.push(g1);
        gains_drrip.push(g2);
        println!(
            "{:<14} {:>12} {:>12} {:>8.1}% | {:>12} {:>12} {:>8.1}%",
            app.label(),
            lru,
            o_lru,
            g1 * 100.0,
            drrip,
            o_drrip,
            g2 * 100.0
        );
    }
    let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    println!(
        "\nmean miss reduction: {:.1}% on LRU, {:.1}% on DRRIP",
        mean(&gains_lru) * 100.0,
        mean(&gains_drrip) * 100.0
    );
    println!("(the paper's abstract reports 6% / 10% on LRU at 4 MB / 8 MB)");
}

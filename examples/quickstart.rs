//! Quickstart: simulate one multi-threaded application on the paper's
//! machine and print the sharing characterization that motivates the whole
//! study.
//!
//! ```text
//! cargo run --release --example quickstart [app] [scale]
//! ```

use sharing_aware_llc::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let app = args
        .next()
        .map(|s| App::parse(&s).unwrap_or_else(|| panic!("unknown app '{s}'")))
        .unwrap_or(App::Bodytrack);
    let scale = args
        .next()
        .map(|s| Scale::parse(&s).unwrap_or_else(|| panic!("unknown scale '{s}'")))
        .unwrap_or(Scale::Small);

    // A scaled-down version of the paper's machine so the example runs in
    // seconds: 8 cores, private L1s, shared 1 MB 16-way LLC.
    let cfg = HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_mib(1, 16).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    };

    println!(
        "app      : {app} ({}, {} sharing)",
        app.suite(),
        app.sharing_class()
    );
    println!("machine  : {cfg}");
    println!("scale    : {scale}\n");

    let mut profile = SharingProfile::new();
    let result = simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || app.workload(cfg.cores, scale),
        vec![&mut profile],
    )
    .unwrap_or_else(|e| {
        eprintln!("simulation failed: {e}");
        std::process::exit(1);
    });

    println!(
        "trace    : {} accesses, {} instructions",
        result.trace_accesses, result.instructions
    );
    println!("L1       : {}", result.l1);
    println!("LLC      : {}", result.llc);
    println!("LLC MPKI : {:.2}\n", result.llc_mpki());

    println!("-- sharing characterization (the paper's Fig. 1/2 for this app) --");
    println!(
        "generations        : {} total, {:.1}% shared",
        profile.generations(),
        profile.shared_generation_fraction() * 100.0
    );
    println!(
        "LLC hits           : {} total, {:.1}% to shared generations",
        profile.hits(),
        profile.shared_hit_fraction() * 100.0
    );
    println!(
        "occupancy          : {:.1}% of line-time held by shared generations",
        profile.shared_occupancy_fraction() * 100.0
    );
    let (hs, hp) = profile.hits_per_generation();
    println!("hits per generation: {hs:.2} shared vs {hp:.2} private");
    let (two, mid, high) = profile.degree_buckets();
    println!(
        "sharing degree     : {:.0}% pairs, {:.0}% 3-4 cores, {:.0}% 5+ cores",
        two * 100.0,
        mid * 100.0,
        high * 100.0
    );
    println!(
        "read-only share    : {:.0}% of shared hits",
        profile.read_only_hit_fraction() * 100.0
    );
}

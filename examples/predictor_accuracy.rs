//! The paper's negative result, interactively: train the two realistic
//! fill-time sharing predictors on every workload and print their
//! confusion-matrix scores next to the trivial baselines.
//!
//! ```text
//! cargo run --release --example predictor_accuracy [app ...]
//! ```

use sharing_aware_llc::prelude::*;

fn main() {
    let apps: Vec<App> = {
        let named: Vec<App> = std::env::args()
            .skip(1)
            .map(|s| App::parse(&s).unwrap_or_else(|| panic!("unknown app '{s}'")))
            .collect();
        if named.is_empty() {
            App::ALL.to_vec()
        } else {
            named
        }
    };
    let cfg = HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_mib(1, 16).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    };
    println!("machine: {cfg}");
    println!("predicting at fill time whether the new generation will be shared\n");

    for app in apps {
        println!("== {app} ({} sharing) ==", app.sharing_class());
        for kind in [
            PredictorKind::Address,
            PredictorKind::Pc,
            PredictorKind::Tournament,
            PredictorKind::NeverShared,
            PredictorKind::AlwaysShared,
        ] {
            let mut study = PredictorStudy::new(build_predictor(kind));
            simulate_kind(
                &cfg,
                PolicyKind::Lru,
                &mut || app.workload(cfg.cores, Scale::Small),
                vec![&mut study],
            )
            .expect("run");
            println!("  {:<12} {}", kind.label(), study.matrix());
        }
        println!();
    }
    println!("Read the MCC column: a usable predictor needs a solidly positive MCC;");
    println!("the paper concludes address/PC history alone does not get there.");
}

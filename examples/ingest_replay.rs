//! Ingest a foreign trace (the checked-in ChampSim-style CSV sample),
//! record it through the normal LLC-free recording kernel, and replay
//! every realistic policy over the result — the library form of
//! `repro ingest examples/traces/sample.csv --replay`.
//!
//! ```text
//! cargo run --release --example ingest_replay [trace-file]
//! ```
//!
//! The walkthrough proves the tentpole property of the ingest layer:
//! once a foreign trace has passed through
//! [`record_stream`](sharing_aware_llc::sharing::record_stream), it is
//! indistinguishable from a recorded synthetic workload — the same
//! `.llcs` bytes, the same replay kernel, the same characterization.
//! It also round-trips the stream through the CSV exporter and asserts
//! the re-ingested copy replays bit-identically.

use sharing_aware_llc::ingest::{
    export_champsim_csv, ingest_fingerprint, IngestFormat, IngestSource,
};
use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{record_stream, replay_kind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "examples/traces/sample.csv".into());
    let path = std::path::PathBuf::from(path);
    let raw = std::fs::read(&path)?;
    let format = IngestFormat::detect(&path)
        .ok_or_else(|| format!("cannot detect trace format of {}", path.display()))?;

    // Phase 1 — decode the foreign trace with the hardened parser for
    // its format and record it into a replayable stream.
    let mut cfg = HierarchyConfig::tiny();
    cfg.cores = 4;
    let source = IngestSource::open(format, raw.as_slice(), cfg.cores)?;
    let stream = record_stream(&cfg, source)?;
    let fp = ingest_fingerprint(format, &raw, cfg.cores, cfg.fingerprint());
    println!("ingested {} as {format}", path.display());
    println!(
        "  {} accesses, {} upgrades, {} instructions, fingerprint {fp:016x}",
        stream.len(),
        stream.upgrades.len(),
        stream.instructions
    );

    // Phase 2 — replay the realistic policies over the ingested stream,
    // exactly as the experiment pipeline replays recorded workloads.
    println!(
        "\n  {:<10} {:>10} {:>10} {:>8}",
        "policy", "hits", "misses", "mpki"
    );
    for kind in PolicyKind::REALISTIC {
        let r = replay_kind(&cfg, kind, &stream, vec![])?;
        println!(
            "  {:<10} {:>10} {:>10} {:>8.2}",
            kind.label(),
            r.llc.hits,
            r.llc.misses(),
            r.llc.misses() as f64 * 1000.0 / r.instructions.max(1) as f64,
        );
    }

    // Phase 3 — round-trip: re-export the foreign trace as ChampSim CSV,
    // ingest the export, and verify recording it reproduces the exact
    // same stream (the acceptance property of the ingest layer).
    let mut csv = Vec::new();
    export_champsim_csv(
        IngestSource::open(format, raw.as_slice(), cfg.cores)?,
        &mut csv,
    )?;
    let reingested = record_stream(
        &cfg,
        IngestSource::open(IngestFormat::ChampsimCsv, csv.as_slice(), cfg.cores)?,
    )?;
    assert_eq!(
        reingested.blocks, stream.blocks,
        "blocks survive the round-trip"
    );
    assert_eq!(
        reingested.kinds, stream.kinds,
        "kinds survive the round-trip"
    );
    assert_eq!(
        reingested.instructions, stream.instructions,
        "instruction accounting survives the round-trip"
    );
    println!("\nround-trip through CSV export re-recorded a bit-identical stream");
    Ok(())
}

#!/usr/bin/env python3
"""Assembles the per-experiment record of EXPERIMENTS.md from the verbatim
`repro --ctx quick all` output in results/quick_all.txt."""

import re
import sys

SRC = "results/quick_all.txt"
DST = "EXPERIMENTS.md"

COMMENTARY = {
    "table1": "Machine configuration as simulated (quick preset shown; the paper preset doubles every capacity x4).",
    "table2": "Workload inventory. Footprints exceed both LLC sizes for the pressure-heavy apps; the private controls (blackscholes, swaptions, swim) show near-zero shared footprint.",
    "fig1": "Paper claim: shared blocks serve a disproportionate share of LLC hits. The MEAN row is the headline; the private controls anchor the bottom at ~0%.",
    "fig2": "The contrast that motivates the paper: compare 'shared gens%' (population) against 'shared hits%' (importance) and the per-generation hit rates.",
    "fig3": "Sharing degree: pairwise sharing dominates, with the read-shared apps (bodytrack, ferret, barnes) showing meaningful 5+ tails - consistent with the published characterizations of these suites.",
    "fig4": "Read-only sharing carries most shared hits in the read-shared apps; migratory/pipeline apps (water, dedup, canneal) are read-write dominated.",
    "fig5": "Policy tournament normalized to LRU, OPT as the bound. Expected shape: RRIP-family and SHiP around or below LRU on most apps, OPT clearly lowest (GEOMEAN row).",
    "fig6": "Sharing-awareness characterization: OPT's premature shared-victimization rate is near zero; realistic policies evict soon-to-be-shared blocks at a much higher rate - the gap the oracle closes.",
    "fig7": "THE HEADLINE. Paper (abstract): oracle on LRU removes 6% / 10% of misses at 4 MB / 8 MB. Our proportional machine reproduces the shape and band: see the MEAN row at both capacities (gain grows with capacity), with gains concentrated in the sharing-heavy apps and ~0 for the private controls.",
    "fig8": "Oracle generality: every base policy leaves sharing-awareness on the table; the gains on SRRIP/DRRIP/SHiP show none of the 'recent proposals' capture it already.",
    "fig9": "The predictability study. Read the MCC column (accuracy alone is inflated by the private-majority class prior, which the NeverShared baseline calibrates). Addr/PC stay well short of a usable predictor on the phase-shifting apps - the paper's negative result.",
    "fig10": "End-to-end: the predictor-driven wrapper recovers only part of the oracle's gain (MEAN row), and essentially none on the phase-shifting apps. The extension columns (Region, PC+Phase) close part of the gap, supporting the paper's closing conjecture.",
    "fig11": "Phase behaviour: the transpose/stencil apps (fft, radix, mgrid, ocean) show bursty shared-hit series (high burstiness coefficient), the mechanism behind the predictors' failure.",
    "table3": "Budget sweep: growing the tables lifts coverage but the MCC ceiling barely moves - capacity is not the bottleneck, predictability is (the paper's conclusion).",
    "abl1": "Oracle horizon sweep: gains are stable for W between 4x and 16x LLC lines; 1x under-protects. Default 4x.",
    "abl2": "Inclusion ablation: the non-inclusive simplification does not change the fig1/fig7 conclusions; inclusive mode shifts absolute numbers slightly (back-invalidations add L1 misses).",
    "abl3": "Protection placement: eviction-side restriction does the work; insertion-side touch-promotion alone is much weaker; combining adds little.",
    "abl4": "Extension - the prediction-requirement ladder: reactive (directory-only) protection captures part of the oracle's gain for long-lived sharing; the remainder genuinely requires fill-time prediction.",
    "abl5": "Extension - multi-programmed mixes: with disjoint address windows the oracle's gain collapses toward the small intra-program (2-thread) component, confirming that the effect measured in fig7 is cross-thread sharing, not an artifact.",
    "fig12": "Extension - first-order performance: miss reductions translate to modelled speedups via a fixed-latency model (conservative, no MLP).",
}

def main():
    text = open(SRC, encoding="utf-8").read()
    # Split into experiment chunks by the trailing "[id finished in ...]" lines.
    chunks = re.findall(r"(### .*?)\n\[(\w+) finished in ([^\]]+)\]\n", text, re.S)
    if not chunks:
        sys.exit("no experiment chunks found in " + SRC)
    out = []
    for body, ident, took in chunks:
        out.append(f"### `{ident}` ({took})\n")
        c = COMMENTARY.get(ident)
        if c:
            out.append(c + "\n")
        out.append("\n```text\n" + body.strip() + "\n```\n\n")
    md = open(DST, encoding="utf-8").read()
    marker = "<!-- RESULTS -->"
    if marker not in md:
        sys.exit("marker missing in " + DST)
    md = md.split(marker)[0] + marker + "\n\n" + "".join(out)
    open(DST, "w", encoding="utf-8").write(md)
    print(f"filled {len(chunks)} experiments into {DST}")

if __name__ == "__main__":
    main()

//! Every experiment in the index must run end-to-end on the test context
//! and produce well-formed tables.

use sharing_aware_llc::prelude::*;

fn small_test_ctx() -> ExperimentCtx {
    let mut ctx = ExperimentCtx::test();
    // Two apps keep the all-experiments sweep fast.
    ctx.apps.truncate(2);
    ctx
}

#[test]
fn every_experiment_produces_tables() {
    let ctx = small_test_ctx();
    for id in ExperimentId::ALL {
        let tables = run_experiment(id, &ctx).unwrap_or_else(|e| panic!("{id} failed: {e}"));
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            assert!(!t.title.is_empty());
            assert!(!t.headers.is_empty());
            assert!(!t.rows.is_empty(), "{id}: empty table '{}'", t.title);
            for row in &t.rows {
                assert_eq!(
                    row.len(),
                    t.headers.len(),
                    "{id}: ragged row in '{}'",
                    t.title
                );
            }
            // Render both formats without panicking.
            let _ = t.to_string();
            let _ = t.to_csv();
        }
    }
}

#[test]
fn fig7_reports_all_apps_plus_mean() {
    let ctx = small_test_ctx();
    let tables = run_experiment(ExperimentId::Fig7, &ctx).expect("fig7 runs");
    assert_eq!(tables.len(), 1);
    let t = &tables[0];
    assert_eq!(t.rows.len(), ctx.apps.len() + 1);
    assert_eq!(t.rows.last().unwrap()[0], "MEAN");
    // Columns: app + 2 per LLC capacity.
    assert_eq!(t.headers.len(), 1 + 2 * ctx.llc_capacities.len());
}

#[test]
fn fig5_normalizes_lru_to_one() {
    let ctx = small_test_ctx();
    let tables = run_experiment(ExperimentId::Fig5, &ctx).expect("fig5 runs");
    assert_eq!(tables.len(), ctx.llc_capacities.len());
    for t in &tables {
        let lru_col = t
            .headers
            .iter()
            .position(|h| h == "LRU")
            .expect("LRU column");
        for row in t.rows.iter().filter(|r| r[0] != "GEOMEAN") {
            let v: f64 = row[lru_col].parse().expect("numeric cell");
            assert!((v - 1.0).abs() < 1e-9, "LRU column must be 1.000, got {v}");
        }
        // OPT never exceeds 1.0 (it cannot lose to LRU).
        let opt_col = t
            .headers
            .iter()
            .position(|h| h == "OPT")
            .expect("OPT column");
        for row in &t.rows {
            let v: f64 = row[opt_col].parse().expect("numeric cell");
            assert!(v <= 1.0 + 1e-9, "OPT normalized misses {v} > 1");
        }
    }
}

#[test]
fn table1_documents_the_machine() {
    let ctx = small_test_ctx();
    let t = &run_experiment(ExperimentId::Table1, &ctx).expect("table1 runs")[0];
    let body = t.to_string();
    assert!(body.contains("cores"));
    assert!(body.contains("LLC"));
}

#[test]
fn fig9_includes_the_never_shared_baseline() {
    let ctx = small_test_ctx();
    let tables = run_experiment(ExperimentId::Fig9, &ctx).expect("fig9 runs");
    assert!(tables.iter().any(|t| t.title.contains("NeverShared")));
    // Every predictor table has one row per app.
    for t in &tables {
        assert_eq!(t.rows.len(), ctx.apps.len());
    }
}

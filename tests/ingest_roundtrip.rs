//! Round-trip property: a synthetic trace exported to a foreign format
//! and re-ingested must record to a bit-identical `.llcs` stream and
//! replay to bit-identical stats — the acceptance criterion of the
//! ingest layer. Checked for both textual (ChampSim CSV) and binary
//! (LLCB) interchange formats on random multi-threaded traces.

use proptest::prelude::*;
use sharing_aware_llc::ingest::{
    export_champsim_csv, write_binary_trace, IngestFormat, IngestSource,
};
use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{record_stream, replay_kind};
use sharing_aware_llc::trace::VecSource;

fn tiny_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(4, 4).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

/// Random multi-threaded traces over a small block universe so sets
/// conflict, lines are shared, and the private levels filter accesses.
fn trace_strategy(len: usize) -> impl Strategy<Value = Vec<MemAccess>> {
    prop::collection::vec(
        (0usize..4, 0u64..96, prop::bool::ANY, 0u64..8, 0u32..5),
        1..len,
    )
    .prop_map(|v| {
        v.into_iter()
            .map(|(core, block, write, pc, gap)| MemAccess {
                core: CoreId::new(core),
                pc: Pc::new(0x400 + pc * 4),
                addr: Addr::new(block * 64),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                instr_gap: 1 + gap,
            })
            .collect()
    })
}

/// Exports `trace` in `format`, re-ingests the bytes, and returns the
/// recorded stream of the ingested copy.
fn reingest(
    cfg: &HierarchyConfig,
    trace: &[MemAccess],
    format: IngestFormat,
) -> sharing_aware_llc::trace::RecordedStream {
    let mut bytes = Vec::new();
    match format {
        IngestFormat::ChampsimCsv => {
            export_champsim_csv(VecSource::new(trace.to_vec()), &mut bytes).expect("export csv")
        }
        IngestFormat::Binary => {
            write_binary_trace(VecSource::new(trace.to_vec()), &mut bytes).expect("export llcb")
        }
        IngestFormat::Cachegrind => unreachable!("no cachegrind exporter"),
    };
    let source =
        IngestSource::open(format, bytes.as_slice(), cfg.cores).expect("open ingested bytes");
    record_stream(cfg, source).expect("record ingested copy")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Export → ingest → record reproduces the exact stream the
    /// in-process recorder produces, for both interchange formats, and
    /// the replayed stats are bit-identical.
    #[test]
    fn export_ingest_record_is_bit_identical(trace in trace_strategy(600)) {
        let cfg = tiny_cfg();
        let native = record_stream(&cfg, VecSource::new(trace.clone())).expect("record native");
        for format in [IngestFormat::ChampsimCsv, IngestFormat::Binary] {
            let ingested = reingest(&cfg, &trace, format);
            prop_assert_eq!(
                &ingested, &native,
                "{} round-trip diverged from the native recording", format
            );
            // Same stream bytes in, same replay out — assert it anyway on
            // the replayed stats so a stream-equality regression cannot
            // hide behind a lenient PartialEq.
            let a = replay_kind(&cfg, PolicyKind::Lru, &native, vec![]).expect("replay native");
            let b = replay_kind(&cfg, PolicyKind::Lru, &ingested, vec![]).expect("replay ingested");
            prop_assert_eq!(a.llc, b.llc);
            prop_assert_eq!(a.instructions, b.instructions);
            prop_assert_eq!(a.trace_accesses, b.trace_accesses);
        }
    }
}

//! Cross-crate tests of the persistent content-addressed stream store:
//! `.llcs` disk round-trips, fingerprint stability across independent
//! "runs", and the corruption → typed error → re-record fallback.

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{replay_kind, StreamCache, StreamKey, WorkloadId};
use sharing_aware_llc::trace::StreamStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("llcs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(2, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(64, 8).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

fn key_for(app: App, cfg: HierarchyConfig) -> StreamKey {
    StreamKey {
        workload: WorkloadId::App(app),
        cores: cfg.cores,
        scale: Scale::Tiny,
        config: cfg,
    }
}

#[test]
fn fingerprints_are_stable_across_independent_runs() {
    let cfg = small_cfg();
    // Two keys built from scratch — as two processes would — agree.
    let a = key_for(App::Fft, cfg).fingerprint();
    let b = key_for(App::Fft, small_cfg()).fingerprint();
    assert_eq!(a, b, "fingerprints must be derivable, not per-process");
    // A key computed on another thread (fresh stack, no shared state)
    // also agrees.
    let c = std::thread::spawn(move || key_for(App::Fft, small_cfg()).fingerprint())
        .join()
        .expect("thread");
    assert_eq!(a, c);
    // And the address space is actually being used: any semantic change
    // moves the fingerprint.
    assert_ne!(a, key_for(App::Dedup, cfg).fingerprint());
    let mut bigger = small_cfg();
    bigger.llc = CacheConfig::from_kib(128, 8).expect("valid LLC");
    assert_ne!(a, key_for(App::Fft, bigger).fingerprint());
}

#[test]
fn llcs_files_round_trip_and_replay_identically() {
    let dir = temp_dir("roundtrip");
    let cfg = small_cfg();
    let key = key_for(App::Bodytrack, cfg);

    // Record through a store-backed cache; the .llcs file appears.
    let store = StreamStore::open(&dir).expect("open store");
    let cache = StreamCache::with_store(store.clone(), None);
    let recorded = cache
        .get_or_record(key, || App::Bodytrack.workload(cfg.cores, Scale::Tiny))
        .expect("record");
    assert!(store.contains(key.fingerprint()), "recording is persisted");

    // A second store handle (same directory, fresh state — a "new run")
    // loads the identical stream.
    let reopened = StreamStore::open(&dir).expect("reopen store");
    let loaded = reopened
        .load(key.fingerprint())
        .expect("load")
        .expect("present");
    assert_eq!(loaded, *recorded, "disk round-trip is lossless");

    // And the loaded copy replays bit-identically to the live workload.
    let live = simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || App::Bodytrack.workload(cfg.cores, Scale::Tiny),
        vec![],
    )
    .expect("live run");
    let replayed = replay_kind(&cfg, PolicyKind::Lru, &loaded, vec![]).expect("replay");
    assert_eq!(live.llc, replayed.llc, "replay from disk is bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_is_a_typed_error_and_the_cache_re_records() {
    let dir = temp_dir("corruption");
    let cfg = small_cfg();
    let key = key_for(App::Swaptions, cfg);
    let store = StreamStore::open(&dir).expect("open store");

    let cache = StreamCache::with_store(store.clone(), None);
    let original = cache
        .get_or_record(key, || App::Swaptions.workload(cfg.cores, Scale::Tiny))
        .expect("record");

    // Truncate the stored file: a direct load is a typed TraceError,
    // never a panic.
    let path = store.path_for(key.fingerprint());
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
    assert!(
        matches!(
            store.load(key.fingerprint()),
            Err(TraceError::Truncated { .. })
        ),
        "truncation surfaces as TraceError::Truncated"
    );

    // A fresh cache over the damaged store falls back to re-recording —
    // the caller never sees the corruption — and heals the disk copy.
    let fresh = StreamCache::with_store(store.clone(), None);
    let recovered = fresh
        .get_or_record(key, || App::Swaptions.workload(cfg.cores, Scale::Tiny))
        .expect("re-record over corruption");
    assert_eq!(
        *recovered, *original,
        "deterministic workloads re-record identically"
    );
    let stats = fresh.stats();
    assert_eq!(stats.disk_errors, 1, "the bad copy was counted");
    assert_eq!(stats.misses, 1, "recovery ran one recording simulation");
    let healed = store
        .load(key.fingerprint())
        .expect("healed load")
        .expect("present");
    assert_eq!(healed, *original, "the overwritten file is intact again");
    let _ = std::fs::remove_dir_all(&dir);
}

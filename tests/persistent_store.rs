//! Cross-crate tests of the persistent content-addressed stream store:
//! `.llcs` disk round-trips, fingerprint stability across independent
//! "runs", and the corruption → typed error → re-record fallback.

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{replay_kind, StreamCache, StreamKey, WorkloadId};
use sharing_aware_llc::trace::StreamStore;

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("llcs-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn small_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(2, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(64, 8).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

fn key_for(app: App, cfg: HierarchyConfig) -> StreamKey {
    StreamKey {
        workload: WorkloadId::App(app),
        cores: cfg.cores,
        scale: Scale::Tiny,
        config: cfg,
    }
}

#[test]
fn fingerprints_are_stable_across_independent_runs() {
    let cfg = small_cfg();
    // Two keys built from scratch — as two processes would — agree.
    let a = key_for(App::Fft, cfg).fingerprint();
    let b = key_for(App::Fft, small_cfg()).fingerprint();
    assert_eq!(a, b, "fingerprints must be derivable, not per-process");
    // A key computed on another thread (fresh stack, no shared state)
    // also agrees.
    let c = std::thread::spawn(move || key_for(App::Fft, small_cfg()).fingerprint())
        .join()
        .expect("thread");
    assert_eq!(a, c);
    // And the address space is actually being used: any semantic change
    // moves the fingerprint.
    assert_ne!(a, key_for(App::Dedup, cfg).fingerprint());
    let mut bigger = small_cfg();
    bigger.llc = CacheConfig::from_kib(128, 8).expect("valid LLC");
    assert_ne!(a, key_for(App::Fft, bigger).fingerprint());
}

#[test]
fn llcs_files_round_trip_and_replay_identically() {
    let dir = temp_dir("roundtrip");
    let cfg = small_cfg();
    let key = key_for(App::Bodytrack, cfg);

    // Record through a store-backed cache; the .llcs file appears.
    let store = StreamStore::open(&dir).expect("open store");
    let cache = StreamCache::with_store(store.clone(), None);
    let recorded = cache
        .get_or_record(key, || App::Bodytrack.workload(cfg.cores, Scale::Tiny))
        .expect("record");
    assert!(store.contains(key.fingerprint()), "recording is persisted");

    // A second store handle (same directory, fresh state — a "new run")
    // loads the identical stream.
    let reopened = StreamStore::open(&dir).expect("reopen store");
    let loaded = reopened
        .load(key.fingerprint())
        .expect("load")
        .expect("present");
    let recorded = recorded.as_owned().expect("recorded in this process");
    assert_eq!(loaded, **recorded, "disk round-trip is lossless");

    // And the loaded copy replays bit-identically to the live workload.
    let live = simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || App::Bodytrack.workload(cfg.cores, Scale::Tiny),
        vec![],
    )
    .expect("live run");
    let replayed = replay_kind(&cfg, PolicyKind::Lru, &loaded, vec![]).expect("replay");
    assert_eq!(live.llc, replayed.llc, "replay from disk is bit-identical");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn corruption_is_a_typed_error_and_the_cache_re_records() {
    let dir = temp_dir("corruption");
    let cfg = small_cfg();
    let key = key_for(App::Swaptions, cfg);
    let store = StreamStore::open(&dir).expect("open store");

    let cache = StreamCache::with_store(store.clone(), None);
    let original = cache
        .get_or_record(key, || App::Swaptions.workload(cfg.cores, Scale::Tiny))
        .expect("record");

    // Truncate the stored file: a direct load is a typed TraceError,
    // never a panic.
    let path = store.path_for(key.fingerprint());
    let bytes = std::fs::read(&path).expect("read");
    std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
    assert!(
        matches!(
            store.load(key.fingerprint()),
            Err(TraceError::Truncated { .. })
        ),
        "truncation surfaces as TraceError::Truncated"
    );

    // A fresh cache over the damaged store falls back to re-recording —
    // the caller never sees the corruption — and heals the disk copy.
    let fresh = StreamCache::with_store(store.clone(), None);
    let recovered = fresh
        .get_or_record(key, || App::Swaptions.workload(cfg.cores, Scale::Tiny))
        .expect("re-record over corruption");
    let recovered = recovered.as_owned().expect("recovery re-records");
    let original = original.as_owned().expect("recorded in this process");
    assert_eq!(
        **recovered, **original,
        "deterministic workloads re-record identically"
    );
    let stats = fresh.stats();
    assert_eq!(stats.disk_errors, 1, "the bad copy was counted");
    assert_eq!(stats.misses, 1, "recovery ran one recording simulation");
    let healed = store
        .load(key.fingerprint())
        .expect("healed load")
        .expect("present");
    assert_eq!(healed, **original, "the overwritten file is intact again");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_bytes_track_view_backed_eviction_and_reload_exactly() {
    // The cap accounting invariant: at every point, `stats.bytes` equals
    // the sum of the resident entries' encoded sizes — including when
    // view-backed entries are evicted and re-loaded from disk, and when
    // a live handle pins a stream across its entry's eviction.
    let dir = temp_dir("cache-bytes");
    let cfg = small_cfg();
    let store = StreamStore::open(&dir).expect("open store");

    let apps = [App::Fft, App::Dedup, App::Swaptions];
    let warm = StreamCache::with_store(store.clone(), None);
    let mut size = std::collections::HashMap::new();
    for &app in &apps {
        let s = warm
            .get_or_record(key_for(app, cfg), || app.workload(cfg.cores, Scale::Tiny))
            .expect("record");
        size.insert(app, s.encoded_len() as u64);
    }
    drop(warm);

    let resident_sum = |cache: &StreamCache| -> u64 {
        apps.iter()
            .filter(|&&a| cache.resident(&key_for(a, cfg)))
            .map(|&a| size[&a])
            .sum()
    };

    // A cap one byte short of the full set forces an eviction on every
    // third load; cycling the apps then evicts and re-loads each
    // view-backed entry repeatedly.
    let limit = apps.iter().map(|a| size[a]).sum::<u64>() - 1;
    let cache = StreamCache::with_store(store.clone(), Some(limit));
    for round in 0..4 {
        for &app in &apps {
            cache
                .get_or_record(key_for(app, cfg), || app.workload(cfg.cores, Scale::Tiny))
                .expect("load");
            let stats = cache.stats();
            assert_eq!(
                stats.bytes,
                resident_sum(&cache),
                "drift after round {round} load of {app} ({stats:?})"
            );
            assert!(stats.bytes <= limit, "cap violated ({stats:?})");
        }
    }
    let stats = cache.stats();
    assert!(stats.evictions > 0, "the cap must have evicted something");
    assert!(stats.view_loads > 0, "re-loads must be view-backed");

    // A live handle pins a stream across its entry's eviction; the
    // accounting still matches the resident set exactly, and the pinned
    // copy is never double-counted when its key is re-loaded.
    let pinned = cache
        .get_or_record(key_for(App::Fft, cfg), || {
            App::Fft.workload(cfg.cores, Scale::Tiny)
        })
        .expect("pin fft");
    for &app in &apps[1..] {
        cache
            .get_or_record(key_for(app, cfg), || app.workload(cfg.cores, Scale::Tiny))
            .expect("evict fft");
    }
    assert!(
        !cache.resident(&key_for(App::Fft, cfg)),
        "fft's entry was evicted while the handle is live"
    );
    assert_eq!(cache.stats().bytes, resident_sum(&cache));
    cache
        .get_or_record(key_for(App::Fft, cfg), || {
            App::Fft.workload(cfg.cores, Scale::Tiny)
        })
        .expect("reload fft under a live handle");
    assert_eq!(cache.stats().bytes, resident_sum(&cache));
    assert_eq!(pinned.encoded_len() as u64, size[&App::Fft]);

    // Shrinking the cap mid-flight evicts down and stays exact.
    cache.set_limit(Some(size[&App::Fft]));
    assert_eq!(cache.stats().bytes, resident_sum(&cache));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn cache_bytes_stay_exact_under_concurrent_evict_reload() {
    // Four threads hammer four view-backed streams through a cap that
    // holds only half of them, so loads constantly evict entries other
    // threads hold live handles to; once quiesced, the byte accounting
    // must equal the resident set exactly (no drift in either direction).
    let dir = temp_dir("cache-race");
    let cfg = small_cfg();
    let store = StreamStore::open(&dir).expect("open store");
    let apps = [App::Fft, App::Dedup, App::Swaptions, App::Bodytrack];
    let warm = StreamCache::with_store(store.clone(), None);
    let mut total = 0u64;
    for &app in &apps {
        total += warm
            .get_or_record(key_for(app, cfg), || app.workload(cfg.cores, Scale::Tiny))
            .expect("record")
            .encoded_len() as u64;
    }
    drop(warm);

    let cache = StreamCache::with_store(store.clone(), Some(total / 2));
    std::thread::scope(|scope| {
        for t in 0..4usize {
            let cache = cache.clone();
            scope.spawn(move || {
                for i in 0..30 {
                    let app = apps[(t + i) % apps.len()];
                    let _held = cache
                        .get_or_record(key_for(app, cfg), || app.workload(cfg.cores, Scale::Tiny))
                        .expect("load");
                }
            });
        }
    });
    let mut resident = 0u64;
    for &app in &apps {
        if cache.resident(&key_for(app, cfg)) {
            resident += cache
                .get_or_record(key_for(app, cfg), || app.workload(cfg.cores, Scale::Tiny))
                .expect("resident hit")
                .encoded_len() as u64;
        }
    }
    let stats = cache.stats();
    assert_eq!(stats.bytes, resident, "post-storm drift: {stats:?}");
    assert!(stats.evictions > 0, "the storm must have evicted");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn load_view_survives_random_corruption_with_typed_errors() {
    // Flip bytes all over a persisted `.llcs` image and map each mutant
    // back through the zero-copy view loader: every outcome must be a
    // clean `Ok` (mutation landed somewhere semantically inert) or a
    // typed `TraceError` — never a panic, never an abort.
    let dir = temp_dir("view-fault");
    let store = StreamStore::open(&dir).expect("store opens");
    let cfg = small_cfg();
    let stream =
        sharing_aware_llc::sharing::record_stream(&cfg, App::Fft.workload(cfg.cores, Scale::Tiny))
            .expect("record");
    let fp = key_for(App::Fft, cfg).fingerprint();
    store.save(fp, &stream).expect("save");
    let path = store.path_for(fp);
    let clean = std::fs::read(&path).expect("read image");

    let mut x = 0xdead_beef_cafe_f00du64;
    let mut typed_errors = 0usize;
    for _ in 0..300 {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        let mut bytes = clean.clone();
        let pos = (x as usize >> 8) % bytes.len();
        bytes[pos] ^= (x as u8) | 1;
        // Truncations too, every few mutants.
        if x % 7 == 0 {
            bytes.truncate(pos);
        }
        std::fs::write(&path, &bytes).expect("write mutant");
        match store.load_view(fp) {
            Ok(_) => {}
            Err(_) => typed_errors += 1,
        }
    }
    assert!(
        typed_errors > 0,
        "at least some mutants must surface as typed errors"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

//! Property-based tests over the whole stack: randomized multi-threaded
//! traces must uphold the simulator's invariants under every policy.

use proptest::prelude::*;
use sharing_aware_llc::prelude::*;
use sharing_aware_llc::trace::VecSource;

fn tiny_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(4, 4).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

/// Strategy: a random multi-threaded trace over a small block universe
/// (so sets conflict and sharing happens).
fn trace_strategy(len: usize) -> impl Strategy<Value = Vec<MemAccess>> {
    prop::collection::vec((0usize..4, 0u64..96, prop::bool::ANY, 0u64..8), len).prop_map(|v| {
        v.into_iter()
            .map(|(core, block, write, pc)| MemAccess {
                core: CoreId::new(core),
                pc: Pc::new(0x400 + pc * 4),
                addr: Addr::new(block * 64),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                instr_gap: 3,
            })
            .collect()
    })
}

fn run_policy(kind: PolicyKind, trace: Vec<MemAccess>) -> (RunResult, SharingProfile) {
    let cfg = tiny_cfg();
    let mut profile = SharingProfile::new();
    let r = llc_sharing::simulate_kind(
        &cfg,
        kind,
        &mut || VecSource::new(trace.clone()),
        vec![&mut profile],
    )
    .expect("run");
    (r, profile)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Accounting identities hold for every policy on random traces.
    #[test]
    fn accounting_invariants(trace in trace_strategy(800)) {
        for kind in [PolicyKind::Lru, PolicyKind::Nru, PolicyKind::Srrip,
                     PolicyKind::Drrip, PolicyKind::Dip, PolicyKind::Ship,
                     PolicyKind::Random] {
            let (r, p) = run_policy(kind, trace.clone());
            prop_assert_eq!(r.llc.accesses, r.llc.hits + r.llc.fills);
            prop_assert_eq!(r.llc.fills, r.llc.evictions + r.llc.flushed);
            prop_assert_eq!(r.llc.fills, p.generations());
            prop_assert_eq!(r.llc.hits, p.hits());
            prop_assert!(r.l1.hits <= r.l1.accesses);
        }
    }

    /// Belady's OPT never loses to any realistic policy on any trace.
    #[test]
    fn opt_is_optimal(trace in trace_strategy(600)) {
        let cfg = tiny_cfg();
        let opt = llc_sharing::simulate_opt(
            &cfg, &mut || VecSource::new(trace.clone()), vec![]).expect("run").llc.misses();
        for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Random,
                     PolicyKind::Ship, PolicyKind::Dip] {
            let m = run_policy(kind, trace.clone()).0.llc.misses();
            prop_assert!(opt <= m, "OPT {} beat by {}: {}", opt, kind.label(), m);
        }
    }

    /// The LLC reference stream is identical across policies
    /// (policy-independence: the foundation of the offline pre-passes).
    #[test]
    fn llc_stream_policy_independent(trace in trace_strategy(500)) {
        let (a, _) = run_policy(PolicyKind::Lru, trace.clone());
        let (b, _) = run_policy(PolicyKind::Random, trace.clone());
        let (c, _) = run_policy(PolicyKind::Ship, trace);
        prop_assert_eq!(a.llc.accesses, b.llc.accesses);
        prop_assert_eq!(a.llc.accesses, c.llc.accesses);
        prop_assert_eq!(a.llc.writes, b.llc.writes);
        // (hits_by_non_filler is NOT asserted: it attributes hits to the
        // *filler* of the current generation, and generation boundaries
        // are policy-dependent.)
    }

    /// Simulations are bit-for-bit deterministic.
    #[test]
    fn deterministic_replay(trace in trace_strategy(400)) {
        for kind in [PolicyKind::Random, PolicyKind::Drrip, PolicyKind::Bip] {
            let (a, _) = run_policy(kind, trace.clone());
            let (b, _) = run_policy(kind, trace.clone());
            prop_assert_eq!(a.llc, b.llc);
            prop_assert_eq!(a.l1, b.l1);
        }
    }

    /// An LLC with more capacity never misses more under LRU (stack
    /// property survives the multi-core L1 filtering because the LLC
    /// stream is LLC-independent).
    #[test]
    fn bigger_lru_llc_never_misses_more(trace in trace_strategy(600)) {
        let small = tiny_cfg();
        let mut big = small;
        big.llc = CacheConfig::from_kib(8, 8).expect("valid LLC");
        let ms = llc_sharing::simulate_kind(
            &small, PolicyKind::Lru, &mut || VecSource::new(trace.clone()), vec![])
            .expect("run").llc.misses();
        let mb = llc_sharing::simulate_kind(
            &big, PolicyKind::Lru, &mut || VecSource::new(trace.clone()), vec![])
            .expect("run").llc.misses();
        prop_assert!(mb <= ms, "8KB LRU missed more ({mb}) than 4KB ({ms})");
    }

    /// The oracle wrapper cannot blow up miss counts: its worst case is
    /// bounded (it only reorders victim preference within a set).
    #[test]
    fn oracle_wrapper_bounded_regression(trace in trace_strategy(600)) {
        let cfg = tiny_cfg();
        let lru = llc_sharing::simulate_kind(
            &cfg, PolicyKind::Lru, &mut || VecSource::new(trace.clone()), vec![])
            .expect("run").llc.misses();
        let oracle = llc_sharing::simulate_oracle(
            &cfg, PolicyKind::Lru, ProtectMode::Eviction, None,
            &mut || VecSource::new(trace.clone()), vec![]).expect("run").llc.misses();
        // Identical access counts, and misses within a generous envelope.
        prop_assert!(oracle <= lru + lru / 4 + 8,
            "oracle {} vs lru {}", oracle, lru);
    }

    /// Recorded traces round-trip bit-exactly through the binary format.
    #[test]
    fn trace_format_round_trips(trace in trace_strategy(300)) {
        let mut bytes = Vec::new();
        sharing_aware_llc::trace::write_trace(VecSource::new(trace.clone()), &mut bytes)
            .expect("encode");
        let back = sharing_aware_llc::trace::TraceFileSource::new(bytes.as_slice())
            .expect("header")
            .read_all()
            .expect("decode");
        prop_assert_eq!(trace, back);
    }

    /// Arbitrary byte-level corruption of a valid trace ends decoding in
    /// Ok or a typed error — never a panic.
    #[test]
    fn corrupted_trace_decoding_never_panics(
        trace in trace_strategy(200),
        seed in 0u64..u64::MAX,
        flips in 1usize..6,
    ) {
        use sharing_aware_llc::trace::{CorruptingReader, FaultPlan, TraceFileSource};
        let mut bytes = Vec::new();
        sharing_aware_llc::trace::write_trace(VecSource::new(trace), &mut bytes)
            .expect("encode");
        let plan = FaultPlan::random_bit_flips(seed, bytes.len() as u64, flips);
        if let Ok(src) = TraceFileSource::new(CorruptingReader::new(bytes.as_slice(), &plan)) {
            let _ = src.read_all();
        }
    }

    /// Generation sharing data is consistent: sharer count bounds
    /// cross-core hits, and writes imply a writer.
    #[test]
    fn generation_records_consistent(trace in trace_strategy(700)) {
        struct Check(Vec<String>);
        impl LlcObserver for Check {
            fn on_generation_end(&mut self, gen: &GenerationEnd) {
                if gen.sharer_mask & (1 << gen.fill_core.index()) == 0 {
                    self.0.push(format!("filler missing from sharers: {gen:?}"));
                }
                if gen.writes > 0 && gen.writer_mask == 0 {
                    self.0.push(format!("writes without writers: {gen:?}"));
                }
                if gen.writer_mask & !gen.sharer_mask != 0 {
                    self.0.push(format!("writer not a sharer: {gen:?}"));
                }
                if gen.end_time < gen.fill_time {
                    self.0.push(format!("negative lifetime: {gen:?}"));
                }
                if u64::from(gen.hits_by_non_filler) > u64::from(gen.hits) {
                    self.0.push(format!("cross-core hits exceed hits: {gen:?}"));
                }
            }
        }
        let mut check = Check(Vec::new());
        llc_sharing::simulate_kind(
            &tiny_cfg(), PolicyKind::Lru,
            &mut || VecSource::new(trace.clone()), vec![&mut check]).expect("run");
        prop_assert!(check.0.is_empty(), "{}", check.0.join("; "));
    }
}

//! The set-sharded replay invariant: sharding a replay over set ranges
//! must be **bit-identical** to the sequential replay — same `LlcStats`,
//! same policy label, same characterization tables — for every per-set
//! policy, and Global-scope policies must transparently fall back to the
//! sequential path with identical results.
//!
//! Baselines use an explicit shard count of 1 (`replay_*_sharded(.., 1)`
//! is documented to take the sequential path), so these tests stay
//! deterministic even while the donated-worker budget test below is
//! running in a sibling thread.

use std::sync::Arc;

use llc_sharing::{
    budget, record_stream, replay_characterized_sharded, replay_kind, replay_kind_sharded,
    replay_opt, replay_oracle_sharded,
};
use llc_sim::{EvictCause, LlcStats};
use proptest::prelude::*;
use sharing_aware_llc::prelude::*;
use sharing_aware_llc::trace::VecSource;

/// 8-set LLC (2 KiB, 4-way), no L2.
fn cfg_8_sets() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(2, 4).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

/// 16-set LLC (8 KiB, 8-way) behind an L2.
fn cfg_16_sets() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
        l2: Some(CacheConfig::from_kib(2, 2).expect("valid L2")),
        llc: CacheConfig::from_kib(8, 8).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

const ALL_KINDS: [PolicyKind; 12] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Nru,
    PolicyKind::Srrip,
    PolicyKind::Brrip,
    PolicyKind::Drrip,
    PolicyKind::TaDrrip,
    PolicyKind::Lip,
    PolicyKind::Bip,
    PolicyKind::Dip,
    PolicyKind::Ship,
    PolicyKind::Opt,
];

/// Random multi-threaded traces over a small block universe, so sets
/// conflict, sharing happens, and upgrades occur.
fn trace_strategy(len: usize) -> impl Strategy<Value = Vec<MemAccess>> {
    prop::collection::vec((0usize..4, 0u64..96, prop::bool::ANY, 0u64..8), len).prop_map(|v| {
        v.into_iter()
            .map(|(core, block, write, pc)| MemAccess {
                core: CoreId::new(core),
                pc: Pc::new(0x400 + pc * 4),
                addr: Addr::new(block * 64),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                instr_gap: 3,
            })
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Sharded replay is bit-identical to sequential replay for every
    /// policy kind, across set counts and shard counts (including shard
    /// counts that do not divide the set count, and one shard per set).
    /// Global-scope policies (DIP/DRRIP/TA-DRRIP/SHiP) exercise the
    /// transparent sequential fallback and must also be identical.
    #[test]
    fn sharded_replay_is_bit_identical(trace in trace_strategy(500)) {
        for cfg in [cfg_8_sets(), cfg_16_sets()] {
            let stream = record_stream(&cfg, VecSource::new(trace.clone())).expect("record");
            let sets = cfg.llc.sets() as usize;
            for kind in ALL_KINDS {
                let seq = replay_kind_sharded(&cfg, kind, &stream, 1).expect("sequential");
                for shards in [2usize, 7, sets] {
                    let sharded =
                        replay_kind_sharded(&cfg, kind, &stream, shards).expect("sharded");
                    prop_assert_eq!(
                        &seq, &sharded,
                        "kind {} at {} shards over {} sets", kind.label(), shards, sets
                    );
                }
            }
        }
    }

    /// Sharded oracle replay (including the OPT-base combined-annotation
    /// path) is bit-identical to the sequential oracle replay.
    #[test]
    fn sharded_oracle_replay_is_bit_identical(trace in trace_strategy(400)) {
        let cfg = cfg_8_sets();
        let stream = record_stream(&cfg, VecSource::new(trace.clone())).expect("record");
        let sets = cfg.llc.sets() as usize;
        for base in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt] {
            for mode in [ProtectMode::Eviction, ProtectMode::Insertion] {
                let seq = replay_oracle_sharded(&cfg, base, mode, None, &stream, 1)
                    .expect("sequential oracle");
                for shards in [2usize, sets] {
                    let sharded = replay_oracle_sharded(&cfg, base, mode, None, &stream, shards)
                        .expect("sharded oracle");
                    prop_assert_eq!(
                        &seq, &sharded,
                        "oracle base {} at {} shards", base.label(), shards
                    );
                }
            }
        }
    }

    /// The characterized sharded replay merges per-shard
    /// [`SharingProfile`]s into exactly the profile a sequential observer
    /// run produces (generation counts, hits, occupancy, degree
    /// histogram, and footprint alike).
    #[test]
    fn sharded_characterization_matches_sequential(trace in trace_strategy(400)) {
        let cfg = cfg_8_sets();
        let stream = record_stream(&cfg, VecSource::new(trace.clone())).expect("record");
        let sets = cfg.llc.sets() as usize;
        for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt, PolicyKind::Ship] {
            let (seq_result, seq_profile) =
                replay_characterized_sharded(&cfg, kind, &stream, 1).expect("sequential");
            for shards in [2usize, 7, sets] {
                let (result, profile) =
                    replay_characterized_sharded(&cfg, kind, &stream, shards).expect("sharded");
                prop_assert_eq!(&seq_result, &result, "kind {}", kind.label());
                prop_assert_eq!(&seq_profile, &profile, "kind {}", kind.label());
            }
        }
    }
}

/// Builds a synthetic finished generation for merge-property tests.
fn generation(block: u64, sharers: u32, hits: u32, writes: u32) -> GenerationEnd {
    GenerationEnd {
        block: BlockAddr::new(block),
        set: (block % 8) as usize,
        fill_pc: Pc::new(0x400),
        fill_core: CoreId::new(0),
        fill_time: 0,
        end_time: 100,
        sharer_mask: (1u32 << sharers.min(8)) - 1,
        writer_mask: u32::from(writes > 0),
        hits,
        hits_by_non_filler: if sharers > 1 { hits } else { 0 },
        writes,
        cause: EvictCause::Replacement,
    }
}

fn profile_of(gens: &[GenerationEnd]) -> SharingProfile {
    let mut p = SharingProfile::new();
    for g in gens {
        p.on_generation_end(g);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// `SharingProfile::merge` is associative and order-insensitive: any
    /// merge tree over the same disjoint parts equals the profile built
    /// from all generations directly. (This is what makes the per-shard
    /// profile merge of `replay_characterized_sharded` exact.)
    #[test]
    fn profile_merge_is_associative_and_order_insensitive(
        gens in prop::collection::vec((0u64..48, 1u32..=8, 0u32..16, 0u32..4), 0..120),
        cut_a in 0usize..1000,
        cut_b in 0usize..1000,
    ) {
        let gens: Vec<GenerationEnd> =
            gens.into_iter().map(|(b, s, h, w)| generation(b, s, h, w)).collect();
        let n = gens.len();
        let (mut i, mut j) = (cut_a % (n + 1), cut_b % (n + 1));
        if i > j {
            std::mem::swap(&mut i, &mut j);
        }
        let (p1, p2, p3) = (profile_of(&gens[..i]), profile_of(&gens[i..j]), profile_of(&gens[j..]));
        let whole = profile_of(&gens);

        // Left association, in shard order.
        let mut left = p1.clone();
        left.merge(&p2);
        left.merge(&p3);
        // Right association.
        let mut right = p2.clone();
        right.merge(&p3);
        let mut right_assoc = p1.clone();
        right_assoc.merge(&right);
        // A permuted part order.
        let mut permuted = p3.clone();
        permuted.merge(&p1);
        permuted.merge(&p2);

        prop_assert_eq!(&left, &whole, "left-associated merge != direct profile");
        prop_assert_eq!(&right_assoc, &whole, "right-associated merge != direct profile");
        prop_assert_eq!(&permuted, &whole, "permuted merge != direct profile");
    }

    /// `LlcStats` accumulation (`+=`) is associative and commutative, so
    /// summing per-shard stats in any fixed order reproduces the
    /// sequential totals.
    #[test]
    fn llc_stats_merge_is_associative_and_commutative(
        parts in prop::collection::vec(
            (
                (0u64..1000, 0u64..1000, 0u64..1000, 0u64..1000),
                (0u64..1000, 0u64..1000, 0u64..1000),
            ),
            1..8,
        ),
    ) {
        let parts: Vec<LlcStats> = parts
            .into_iter()
            .map(|((accesses, hits, fills, evictions), (flushed, hits_by_non_filler, writes))| {
                LlcStats {
                    accesses: accesses + hits, // keep misses() = accesses - hits well-formed
                    hits,
                    fills,
                    evictions,
                    flushed,
                    hits_by_non_filler,
                    writes,
                }
            })
            .collect();

        let mut forward = LlcStats::default();
        for p in &parts {
            forward += *p;
        }
        let mut backward = LlcStats::default();
        for p in parts.iter().rev() {
            backward += *p;
        }
        // Pairwise tree: ((p0 + p1) + (p2 + p3)) + ...
        let mut tree: Vec<LlcStats> = parts.clone();
        while tree.len() > 1 {
            let mut next = Vec::new();
            for pair in tree.chunks(2) {
                let mut acc = pair[0];
                if let Some(rhs) = pair.get(1) {
                    acc += *rhs;
                }
                next.push(acc);
            }
            tree = next;
        }
        prop_assert_eq!(forward, backward);
        prop_assert_eq!(forward, tree[0]);
    }
}

/// Donated spare workers make the plain `replay_kind`/`replay_opt` entry
/// points shard automatically — and the result must still be
/// bit-identical to the sequential path. (Other tests in this binary use
/// explicit `replay_*_sharded(.., 1)` baselines, so this test's donation
/// cannot perturb them.)
#[test]
fn donated_budget_auto_shards_and_stays_exact() {
    let cfg = cfg_16_sets();
    let trace: Vec<MemAccess> = (0..2000usize)
        .map(|i| MemAccess {
            core: CoreId::new(i % 4),
            pc: Pc::new(0x400 + (i % 7) as u64 * 4),
            addr: Addr::new((i as u64 * 13 % 160) * 64),
            kind: if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            instr_gap: 3,
        })
        .collect();
    let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
    let stream = Arc::new(stream);

    for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt] {
        let seq = replay_kind_sharded(&cfg, kind, &stream, 1).expect("sequential");
        budget::donate(3);
        let auto = if kind == PolicyKind::Opt {
            replay_opt(&cfg, &stream, vec![])
        } else {
            replay_kind(&cfg, kind, &stream, vec![])
        }
        .expect("auto-sharded");
        // The replay borrows workers for its own duration only; the pool
        // must be whole again afterwards.
        let drained = budget::borrow(usize::MAX);
        assert_eq!(
            drained.count(),
            3,
            "auto-shard must return its borrowed workers"
        );
        drop(drained);
        budget::reclaim(3);
        assert_eq!(seq, auto, "kind {}", kind.label());
    }
}

/// Sharded replay over a zero-copy [`StreamView`] is bit-identical to
/// sharded replay over the owned stream: the per-shard view iterators
/// decode the same records the owned planes hold, and the shard index
/// rides in the view's own slot rather than the registry.
#[test]
fn view_backed_sharded_replay_is_bit_identical() {
    let cfg = cfg_16_sets();
    let trace: Vec<MemAccess> = (0..900)
        .map(|i| {
            let r = llc_sim::splitmix64(i as u64 ^ 0x51e3);
            MemAccess {
                core: CoreId::new((r % 4) as usize),
                pc: Pc::new(0x400 + (r >> 8) % 16 * 4),
                addr: Addr::new((r >> 16) % 128 * 64),
                kind: if r.is_multiple_of(5) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                instr_gap: 3,
            }
        })
        .collect();
    let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
    let bytes = stream.to_vec().expect("encode");
    let view = sharing_aware_llc::trace::StreamView::new(Arc::from(bytes.into_boxed_slice()))
        .expect("validated view");
    let sets = cfg.llc.sets() as usize;
    for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt] {
        for shards in [1usize, 2, 7, sets] {
            let owned = replay_kind_sharded(&cfg, kind, &stream, shards).expect("owned sharded");
            let viewed = replay_kind_sharded(&cfg, kind, &view, shards).expect("view sharded");
            assert_eq!(owned, viewed, "kind {} at {shards} shards", kind.label());
        }
    }
}

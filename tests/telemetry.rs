//! Cross-crate telemetry checks: counters incremented concurrently from
//! the suite's own worker pool, replay-phase instrumentation feeding the
//! Prometheus exposition, and Chrome-trace JSON round-tripping through
//! the workspace JSON parser.
//!
//! The metrics registry is process-global, so these tests assert on
//! *deltas* (or on dedicated metric names) rather than absolute values —
//! other tests in this binary may run concurrently and bump shared
//! series.

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{json, record_stream, replay_kind, scoped_workers};
use sharing_aware_llc::telemetry::metrics::global;
use sharing_aware_llc::telemetry::spans;

#[test]
fn scoped_workers_increment_one_counter_without_losing_updates() {
    let counter = global().counter(
        "llc_test_pool_increments_total",
        "Increments performed by the scoped worker pool in tests.",
    );
    const WORKERS: usize = 8;
    const PER_WORKER: u64 = 10_000;
    let before = counter.get();
    scoped_workers(WORKERS, |_w| {
        for _ in 0..PER_WORKER {
            counter.inc();
        }
    });
    assert_eq!(counter.get() - before, WORKERS as u64 * PER_WORKER);

    // The same name resolves to the same underlying atomic, so the total
    // survives into the exposition.
    let text = global().encode();
    assert!(text.contains("# TYPE llc_test_pool_increments_total counter"));
}

#[test]
fn replay_phases_feed_the_prometheus_exposition() {
    let cfg = HierarchyConfig::tiny();
    let records_before = {
        let text = global().encode();
        series_value(&text, "llc_stream_records_total")
    };

    let trace = App::Bodytrack.workload(cfg.cores, Scale::Tiny);
    let stream = record_stream(&cfg, trace).expect("recording a tiny stream succeeds");
    let result = replay_kind(&cfg, PolicyKind::Lru, &stream, vec![]).expect("replay succeeds");
    assert!(result.trace_accesses > 0);

    let text = global().encode();
    // Exposition-level shape: HELP/TYPE headers precede the series.
    assert!(text.contains("# HELP llc_stream_records_total"));
    assert!(text.contains("# TYPE llc_stream_records_total counter"));
    let records_after = series_value(&text, "llc_stream_records_total");
    assert!(
        records_after >= records_before + 1.0,
        "record_stream must bump llc_stream_records_total \
         (before {records_before}, after {records_after})"
    );

    // Every non-comment line is `name[{labels}] value`, with a finite
    // numeric value — the parseability contract the CI smoke greps for.
    for line in text
        .lines()
        .filter(|l| !l.starts_with('#') && !l.is_empty())
    {
        let value = line.rsplit(' ').next().expect("line has a value field");
        let parsed: f64 = value
            .parse()
            .unwrap_or_else(|_| panic!("unparsable sample value {value:?} in line {line:?}"));
        assert!(
            parsed.is_finite() || value == "+Inf",
            "non-finite sample in {line:?}"
        );
    }
}

#[test]
fn chrome_trace_export_is_valid_json_with_complete_events() {
    spans::reset();
    spans::set_enabled(true);
    {
        let _outer = spans::span("telemetry-test outer");
        scoped_workers(3, |w| {
            let _inner = spans::span_with(|| format!("telemetry-test worker {w}"));
            std::thread::sleep(std::time::Duration::from_millis(2));
        });
    }
    spans::set_enabled(false);

    let text = spans::chrome_trace_json();
    let value = json::parse(&text).expect("chrome trace export must be valid JSON");

    assert_eq!(
        value.field("displayTimeUnit").and_then(json::Value::as_str),
        Some("ms"),
        "trace must carry the display-unit hint"
    );
    let events = value
        .field("traceEvents")
        .and_then(json::Value::as_array)
        .expect("traceEvents must be an array");

    let mut complete = 0usize;
    let mut saw_outer = false;
    let mut saw_worker = false;
    for event in events {
        let ph = event.field("ph").and_then(json::Value::as_str).expect("ph");
        match ph {
            // Thread-name metadata: needs pid/tid and an args.name.
            "M" => {
                assert!(event.field("pid").is_some() && event.field("tid").is_some());
                assert_eq!(
                    event.field("name").and_then(json::Value::as_str),
                    Some("thread_name")
                );
            }
            // Complete events: microsecond timestamp + duration.
            "X" => {
                complete += 1;
                assert!(event.field("ts").is_some() && event.field("dur").is_some());
                let name = event
                    .field("name")
                    .and_then(json::Value::as_str)
                    .unwrap_or("");
                saw_outer |= name == "telemetry-test outer";
                saw_worker |= name.starts_with("telemetry-test worker");
            }
            other => panic!("unexpected event phase {other:?}"),
        }
    }
    assert!(
        complete >= 4,
        "outer span + 3 worker spans expected, got {complete}"
    );
    assert!(saw_outer, "outer span missing from export");
    assert!(
        saw_worker,
        "pool-worker spans must survive thread exit via retired buffers"
    );
}

/// Sums every sample of `name` (ignores labelled variants' label sets).
fn series_value(exposition: &str, name: &str) -> f64 {
    exposition
        .lines()
        .filter(|l| !l.starts_with('#'))
        .filter(|l| l.split([' ', '{']).next() == Some(name))
        .filter_map(|l| l.rsplit(' ').next())
        .filter_map(|v| v.parse::<f64>().ok())
        .sum()
}

//! Equivalence of the stream-replay fast path with full-hierarchy
//! simulation, plus the pre-pass-count regression from the
//! `simulate_oracle(base == Opt)` bugfix.
//!
//! The legacy annotation vectors are recomputed *test-locally* (an LLC
//! observer captures the stream, then separate plain-`HashMap` scans
//! derive `next_use` and `shared_soon`), so these tests stay independent
//! of the fused production scan they are checking.

use std::cell::Cell;
use std::collections::HashMap;
use std::rc::Rc;

use llc_sharing::{
    compute_annotations, oracle_window, record_stream, replay, replay_kind, replay_kind_sharded,
    replay_oracle, simulate, simulate_opt, simulate_oracle, CombinedProvider, NextUseProvider,
    OracleProvider,
};
use llc_sim::{AccessCtx, AuxProvider, LiveGeneration};
use proptest::prelude::*;
use sharing_aware_llc::policies::build_oracle_policy_with_mode;
use sharing_aware_llc::prelude::*;
use sharing_aware_llc::trace::VecSource;

fn no_l2_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(4, 4).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

fn with_l2_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
        l2: Some(CacheConfig::from_kib(2, 2).expect("valid L2")),
        llc: CacheConfig::from_kib(8, 8).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

/// Strategy: a random multi-threaded trace over a small block universe
/// (so sets conflict and sharing happens).
fn trace_strategy(len: usize) -> impl Strategy<Value = Vec<MemAccess>> {
    prop::collection::vec((0usize..4, 0u64..96, prop::bool::ANY, 0u64..8), len).prop_map(|v| {
        v.into_iter()
            .map(|(core, block, write, pc)| MemAccess {
                core: CoreId::new(core),
                pc: Pc::new(0x400 + pc * 4),
                addr: Addr::new(block * 64),
                kind: if write {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                instr_gap: 3,
            })
            .collect()
    })
}

/// Captures the (block, core) LLC reference stream from a full
/// simulation, independently of `record_stream`.
#[derive(Default)]
struct Capture {
    blocks: Vec<BlockAddr>,
    cores: Vec<CoreId>,
}

impl LlcObserver for Capture {
    fn on_hit(&mut self, ctx: &AccessCtx, _: &LiveGeneration, _: bool) {
        self.blocks.push(ctx.block);
        self.cores.push(ctx.core);
    }
    fn on_fill(&mut self, ctx: &AccessCtx) {
        self.blocks.push(ctx.block);
        self.cores.push(ctx.core);
    }
}

/// The pre-fusion `next_use` scan: for each stream position, the index of
/// the next access to the same block (`u64::MAX` if never).
fn legacy_next_use(blocks: &[BlockAddr]) -> Vec<u64> {
    let mut next: HashMap<BlockAddr, u64> = HashMap::new();
    let mut out = vec![u64::MAX; blocks.len()];
    for (i, &b) in blocks.iter().enumerate().rev() {
        out[i] = next.get(&b).copied().unwrap_or(u64::MAX);
        next.insert(b, i as u64);
    }
    out
}

/// The pre-fusion `shared_soon` scan: `true` iff a *different* core
/// touches the block within the next `window` stream positions.
fn legacy_shared_soon(blocks: &[BlockAddr], cores: &[CoreId], window: u64) -> Vec<bool> {
    let mut out = vec![false; blocks.len()];
    for i in 0..blocks.len() {
        for j in i + 1..blocks.len().min(i + 1 + window as usize) {
            if blocks[j] == blocks[i] && cores[j] != cores[i] {
                out[i] = true;
                break;
            }
        }
    }
    out
}

/// Runs `simulate` while capturing the stream (for legacy annotations).
fn capture_stream(cfg: &HierarchyConfig, trace: &[MemAccess]) -> Capture {
    let sets = cfg.llc.sets() as usize;
    let ways = cfg.llc.ways;
    let mut cap = Capture::default();
    simulate(
        cfg,
        build_policy(PolicyKind::Lru, sets, ways),
        None,
        VecSource::new(trace.to_vec()),
        vec![&mut cap],
    )
    .expect("capture run");
    cap
}

/// A `TraceSource` wrapper counting how many times the underlying trace
/// was instantiated (one bump per construction).
struct CountingSource {
    inner: VecSource,
}

impl CountingSource {
    fn new(trace: Vec<MemAccess>, count: &Rc<Cell<usize>>) -> Self {
        count.set(count.get() + 1);
        CountingSource {
            inner: VecSource::new(trace),
        }
    }
}

impl TraceSource for CountingSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        self.inner.next_access()
    }
    fn len_hint(&self) -> Option<u64> {
        self.inner.len_hint()
    }
    fn take_error(&mut self) -> Option<TraceError> {
        self.inner.take_error()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// LLC-only replay is bit-identical to full-hierarchy simulation for
    /// every policy kind, on hierarchies with and without an L2.
    #[test]
    fn replay_matches_full_simulation(trace in trace_strategy(600)) {
        for cfg in [no_l2_cfg(), with_l2_cfg()] {
            let sets = cfg.llc.sets() as usize;
            let ways = cfg.llc.ways;
            let stream = record_stream(&cfg, VecSource::new(trace.clone())).expect("record");
            for kind in [PolicyKind::Lru, PolicyKind::Random, PolicyKind::Nru,
                         PolicyKind::Srrip, PolicyKind::Brrip, PolicyKind::Drrip,
                         PolicyKind::TaDrrip, PolicyKind::Lip, PolicyKind::Bip,
                         PolicyKind::Dip, PolicyKind::Ship] {
                let full = simulate(
                    &cfg, build_policy(kind, sets, ways), None,
                    VecSource::new(trace.clone()), vec![]).expect("full run");
                let fast = replay_kind(&cfg, kind, &stream, vec![]).expect("replay");
                prop_assert_eq!(full.llc, fast.llc, "kind {}", kind.label());
                prop_assert_eq!(full.l1, fast.l1);
                prop_assert_eq!(full.l2, fast.l2);
                prop_assert_eq!(full.instructions, fast.instructions);
                prop_assert_eq!(full.trace_accesses, fast.trace_accesses);
            }
        }
    }

    /// OPT replay matches the legacy pipeline: a capture pass, an
    /// independent next-use scan, and a full annotated simulation.
    #[test]
    fn opt_replay_matches_legacy_pipeline(trace in trace_strategy(500)) {
        for cfg in [no_l2_cfg(), with_l2_cfg()] {
            let sets = cfg.llc.sets() as usize;
            let ways = cfg.llc.ways;
            let cap = capture_stream(&cfg, &trace);
            let full = simulate(
                &cfg,
                build_policy(PolicyKind::Opt, sets, ways),
                Some(Box::new(NextUseProvider::new(legacy_next_use(&cap.blocks)))),
                VecSource::new(trace.clone()),
                vec![],
            ).expect("legacy OPT run");
            let fast = simulate_opt(
                &cfg, &mut || VecSource::new(trace.clone()), vec![]).expect("fast OPT run");
            prop_assert_eq!(full.llc, fast.llc);
        }
    }

    /// Oracle replay matches the legacy pipeline: a capture pass, an
    /// independent brute-force shared-soon scan, and a full annotated
    /// simulation.
    #[test]
    fn oracle_replay_matches_legacy_pipeline(trace in trace_strategy(400)) {
        let cfg = no_l2_cfg();
        let sets = cfg.llc.sets() as usize;
        let ways = cfg.llc.ways;
        let window = oracle_window(&cfg);
        let cap = capture_stream(&cfg, &trace);
        let shared = legacy_shared_soon(&cap.blocks, &cap.cores, window);
        for base in [PolicyKind::Lru, PolicyKind::Srrip] {
            let full = simulate(
                &cfg,
                build_oracle_policy_with_mode(base, sets, ways, ProtectMode::Eviction),
                Some(Box::new(OracleProvider::new(shared.clone()))),
                VecSource::new(trace.clone()),
                vec![],
            ).expect("legacy oracle run");
            let stream = record_stream(&cfg, VecSource::new(trace.clone())).expect("record");
            let fast = replay_oracle(
                &cfg, base, ProtectMode::Eviction, None, &stream, vec![]).expect("oracle replay");
            prop_assert_eq!(full.llc, fast.llc, "base {}", base.label());
        }
    }
}

/// Every policy kind, for iterating the differential suites below.
const ALL_KINDS: [PolicyKind; 12] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Nru,
    PolicyKind::Srrip,
    PolicyKind::Brrip,
    PolicyKind::Drrip,
    PolicyKind::TaDrrip,
    PolicyKind::Lip,
    PolicyKind::Bip,
    PolicyKind::Dip,
    PolicyKind::Ship,
    PolicyKind::Opt,
];

/// A small deterministic multi-threaded trace (blocks conflict across a
/// compact universe so replacement decisions actually differ by policy).
fn fixed_trace(len: usize, blocks: u64) -> Vec<MemAccess> {
    (0..len)
        .map(|i| {
            let r = llc_sim::splitmix64(i as u64 ^ 0x5eed);
            MemAccess {
                core: CoreId::new((r % 4) as usize),
                pc: Pc::new(0x400 + (r >> 8) % 16 * 4),
                addr: Addr::new((r >> 16) % blocks * 64),
                kind: if r.is_multiple_of(5) {
                    AccessKind::Write
                } else {
                    AccessKind::Read
                },
                instr_gap: 3,
            }
        })
        .collect()
}

/// The monomorphized drivers (`replay_kind`, dispatched per `PolicyKind`
/// through `with_policy!`) are bit-identical to the `Box<dyn>`
/// compatibility path (`replay` over `build_policy`) for **every** kind.
#[test]
fn monomorphized_replay_matches_dyn_for_every_kind() {
    let cfg = no_l2_cfg();
    let sets = cfg.llc.sets() as usize;
    let ways = cfg.llc.ways;
    let trace = fixed_trace(900, 96);
    let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
    for kind in ALL_KINDS {
        let aux: Option<Box<dyn AuxProvider>> = (kind == PolicyKind::Opt).then(|| {
            Box::new(NextUseProvider::new(
                compute_annotations(&stream, 0).next_use,
            )) as Box<dyn AuxProvider>
        });
        let dyn_run =
            replay(&cfg, build_policy(kind, sets, ways), aux, &stream, vec![]).expect("dyn replay");
        let mono_run = replay_kind(&cfg, kind, &stream, vec![]).expect("mono replay");
        assert_eq!(dyn_run.llc, mono_run.llc, "kind {}", kind.label());
        assert_eq!(dyn_run.policy, mono_run.policy, "kind {}", kind.label());
    }
}

/// Same differential, oracle-wrapped: the monomorphized `replay_oracle`
/// matches the boxed `build_oracle_policy_with_mode` path for every base
/// kind (including OPT, which consumes both annotation vectors).
#[test]
fn monomorphized_oracle_matches_dyn_for_every_base() {
    let cfg = no_l2_cfg();
    let sets = cfg.llc.sets() as usize;
    let ways = cfg.llc.ways;
    let window = oracle_window(&cfg);
    let trace = fixed_trace(700, 96);
    let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
    let ann = compute_annotations(&stream, window);
    for base in ALL_KINDS {
        let aux: Box<dyn AuxProvider> = if base == PolicyKind::Opt {
            Box::new(CombinedProvider::new(
                ann.next_use.clone(),
                ann.shared_soon.clone(),
            ))
        } else {
            Box::new(OracleProvider::new(ann.shared_soon.clone()))
        };
        let dyn_run = replay(
            &cfg,
            build_oracle_policy_with_mode(base, sets, ways, ProtectMode::Eviction),
            Some(aux),
            &stream,
            vec![],
        )
        .expect("dyn oracle replay");
        let mono_run = replay_oracle(
            &cfg,
            base,
            ProtectMode::Eviction,
            Some(window),
            &stream,
            vec![],
        )
        .expect("mono oracle replay");
        assert_eq!(dyn_run.llc, mono_run.llc, "oracle base {}", base.label());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Kernel-edge sweep: associativities across the whole supported
    /// range — including `ways = 64`, where the branchless scan's
    /// `full_mask` must saturate to all-ones without overflowing — and
    /// shard counts that do not divide the set count (non-power-of-two
    /// per-shard set ranges). Monomorphized sequential, `Box<dyn>`
    /// sequential and monomorphized sharded replay must all agree.
    #[test]
    fn kernel_edges_ways_and_shard_sweep(
        trace in trace_strategy(300),
        ways in 1usize..=64,
        sets_pow in 0u32..4,
        shards in 1usize..=7,
    ) {
        let sets = 1u64 << sets_pow;
        let cfg = HierarchyConfig {
            cores: 4,
            l1: CacheConfig::from_kib(1, 2).expect("valid L1"),
            l2: None,
            llc: CacheConfig::new(sets * ways as u64 * 64, ways).expect("valid LLC"),
            inclusion: Inclusion::NonInclusive,
        };
        let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
        for kind in [PolicyKind::Lru, PolicyKind::Nru, PolicyKind::Opt] {
            let aux: Option<Box<dyn AuxProvider>> = (kind == PolicyKind::Opt).then(|| {
                Box::new(NextUseProvider::new(compute_annotations(&stream, 0).next_use))
                    as Box<dyn AuxProvider>
            });
            let dyn_run = replay(
                &cfg,
                build_policy(kind, cfg.llc.sets() as usize, ways),
                aux,
                &stream,
                vec![],
            ).expect("dyn replay");
            let mono_run = replay_kind(&cfg, kind, &stream, vec![]).expect("mono replay");
            let sharded = replay_kind_sharded(&cfg, kind, &stream, shards).expect("sharded");
            prop_assert_eq!(
                &dyn_run.llc, &mono_run.llc,
                "mono vs dyn, kind {} ways {} sets {}", kind.label(), ways, sets);
            prop_assert_eq!(
                &mono_run.llc, &sharded.llc,
                "sharded vs sequential, kind {} ways {} sets {} shards {}",
                kind.label(), ways, sets, shards);
        }
    }
}

/// The `simulate_oracle(base == Opt)` bugfix: the trace must be
/// instantiated exactly once per run (historically the OPT-base oracle
/// paid THREE pre-pass instantiations).
#[test]
fn annotated_runs_instantiate_the_trace_once() {
    let cfg = no_l2_cfg();
    let trace: Vec<MemAccess> = (0..400)
        .map(|i| MemAccess {
            core: CoreId::new(i % 4),
            pc: Pc::new(0x400),
            addr: Addr::new((i as u64 % 64) * 64),
            kind: if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            instr_gap: 3,
        })
        .collect();

    let count = Rc::new(Cell::new(0usize));
    simulate_opt(
        &cfg,
        &mut || CountingSource::new(trace.clone(), &count),
        vec![],
    )
    .expect("OPT run");
    assert_eq!(
        count.get(),
        1,
        "simulate_opt must record the stream exactly once"
    );

    count.set(0);
    simulate_oracle(
        &cfg,
        PolicyKind::Opt,
        ProtectMode::Eviction,
        None,
        &mut || CountingSource::new(trace.clone(), &count),
        vec![],
    )
    .expect("oracle(OPT) run");
    assert_eq!(
        count.get(),
        1,
        "simulate_oracle(base=Opt) must record the stream exactly once"
    );

    count.set(0);
    simulate_oracle(
        &cfg,
        PolicyKind::Lru,
        ProtectMode::Eviction,
        None,
        &mut || CountingSource::new(trace.clone(), &count),
        vec![],
    )
    .expect("oracle(LRU) run");
    assert_eq!(
        count.get(),
        1,
        "simulate_oracle(base=Lru) must record the stream exactly once"
    );
}

/// Builds a zero-copy [`StreamView`] over the in-memory `.llcs` encoding
/// of `stream` — exactly the image `StreamStore` persists and
/// `load_view` maps back.
fn view_of(
    stream: &sharing_aware_llc::trace::RecordedStream,
) -> sharing_aware_llc::trace::StreamView {
    let bytes = stream.to_vec().expect("encode stream");
    sharing_aware_llc::trace::StreamView::new(std::sync::Arc::from(bytes.into_boxed_slice()))
        .expect("validated view")
}

/// Zero-copy view-backed replay is bit-identical to owned replay for
/// **every** policy kind and **every** oracle base: the daemon's
/// store-hit fast path (one arena allocation, per-record decode inside
/// the kernel) must never change a single replayed bit.
#[test]
fn view_replay_matches_owned_for_every_kind_and_oracle_base() {
    let cfg = with_l2_cfg();
    let window = oracle_window(&cfg);
    let trace = fixed_trace(900, 96);
    let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
    let view = view_of(&stream);
    assert_eq!(
        sharing_aware_llc::trace::StreamAccess::len(&view),
        stream.len()
    );

    for kind in ALL_KINDS {
        let owned = replay_kind(&cfg, kind, &stream, vec![]).expect("owned replay");
        let viewed = replay_kind(&cfg, kind, &view, vec![]).expect("view replay");
        assert_eq!(owned.llc, viewed.llc, "kind {}", kind.label());
        assert_eq!(owned.policy, viewed.policy, "kind {}", kind.label());
        assert_eq!(owned.l1, viewed.l1, "kind {}", kind.label());
        assert_eq!(owned.l2, viewed.l2, "kind {}", kind.label());
        assert_eq!(
            owned.instructions,
            viewed.instructions,
            "kind {}",
            kind.label()
        );
    }
    for base in ALL_KINDS {
        for mode in [ProtectMode::Eviction, ProtectMode::Insertion] {
            let owned = replay_oracle(&cfg, base, mode, Some(window), &stream, vec![])
                .expect("owned oracle replay");
            let viewed = replay_oracle(&cfg, base, mode, Some(window), &view, vec![])
                .expect("view oracle replay");
            assert_eq!(
                owned.llc,
                viewed.llc,
                "oracle base {} ({mode:?})",
                base.label()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Property form over random traces: the view-backed annotations and
    /// replays reproduce the owned ones bit-for-bit (LRU and OPT — the
    /// policies whose replays consume the stream most differently: OPT
    /// walks it backwards first for next-use annotations).
    #[test]
    fn view_replay_matches_owned_on_random_traces(trace in trace_strategy(600)) {
        let cfg = no_l2_cfg();
        let stream = record_stream(&cfg, VecSource::new(trace)).expect("record");
        let view = view_of(&stream);
        let window = oracle_window(&cfg);
        let owned_ann = compute_annotations(&stream, window);
        let view_ann = compute_annotations(&view, window);
        prop_assert_eq!(owned_ann.next_use, view_ann.next_use);
        prop_assert_eq!(owned_ann.shared_soon, view_ann.shared_soon);
        for kind in [PolicyKind::Lru, PolicyKind::Opt] {
            let owned = replay_kind(&cfg, kind, &stream, vec![]).expect("owned replay");
            let viewed = replay_kind(&cfg, kind, &view, vec![]).expect("view replay");
            prop_assert_eq!(owned.llc, viewed.llc, "kind {}", kind.label());
        }
    }
}

//! Cross-crate integration tests: the full pipeline (workload → hierarchy
//! → policy → characterization) must reproduce the paper's qualitative
//! claims on the test-scale machine.

use sharing_aware_llc::prelude::*;

fn test_cfg() -> HierarchyConfig {
    HierarchyConfig {
        cores: 4,
        l1: CacheConfig::from_kib(2, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(64, 8).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

fn profile_of(app: App, cfg: &HierarchyConfig) -> (RunResult, SharingProfile) {
    let mut profile = SharingProfile::new();
    let r = simulate_kind(
        cfg,
        PolicyKind::Lru,
        &mut || app.workload(cfg.cores, Scale::Tiny),
        vec![&mut profile],
    )
    .expect("run");
    (r, profile)
}

#[test]
fn sharing_classes_are_reflected_in_the_llc() {
    let cfg = test_cfg();
    // Pure-private control: essentially no shared hits.
    let (_, swaptions) = profile_of(App::Swaptions, &cfg);
    assert!(
        swaptions.shared_hit_fraction() < 0.05,
        "swaptions shared-hit fraction {}",
        swaptions.shared_hit_fraction()
    );
    // Read-shared app: a solid chunk of hits is to shared generations.
    let (_, bodytrack) = profile_of(App::Bodytrack, &cfg);
    assert!(
        bodytrack.shared_hit_fraction() > 0.2,
        "bodytrack shared-hit fraction {}",
        bodytrack.shared_hit_fraction()
    );
    // Migratory app: shared generations are mostly read-write.
    let (_, water) = profile_of(App::Water, &cfg);
    assert!(
        water.read_only_hit_fraction() < 0.5,
        "water read-only hit fraction {}",
        water.read_only_hit_fraction()
    );
    // Read-shared app: shared hits are mostly read-only.
    assert!(
        bodytrack.read_only_hit_fraction() > 0.5,
        "bodytrack read-only hit fraction {}",
        bodytrack.read_only_hit_fraction()
    );
}

#[test]
fn shared_generations_punch_above_their_population() {
    // The paper's central claim: hits-share exceeds population-share for
    // shared generations in sharing-heavy apps.
    let cfg = test_cfg();
    for app in [App::Bodytrack, App::Streamcluster, App::Ferret] {
        let (_, p) = profile_of(app, &cfg);
        assert!(
            p.shared_hit_fraction() > p.shared_generation_fraction(),
            "{app}: hits {:.3} vs population {:.3}",
            p.shared_hit_fraction(),
            p.shared_generation_fraction()
        );
    }
}

#[test]
fn accounting_identities_hold() {
    let cfg = test_cfg();
    for app in [App::Dedup, App::Fft, App::Canneal] {
        let mut profile = SharingProfile::new();
        let r = simulate_kind(
            &cfg,
            PolicyKind::Srrip,
            &mut || app.workload(cfg.cores, Scale::Tiny),
            vec![&mut profile],
        )
        .expect("run");
        // Every fill ends exactly one generation (incl. the final flush).
        assert_eq!(
            r.llc.fills,
            profile.generations(),
            "{app}: fills vs generations"
        );
        assert_eq!(
            r.llc.fills,
            r.llc.evictions + r.llc.flushed,
            "{app}: fill balance"
        );
        // Hits attributed to generations equal the LLC's hit counter.
        assert_eq!(r.llc.hits, profile.hits(), "{app}: hit attribution");
        assert_eq!(
            r.llc.accesses,
            r.llc.hits + r.llc.fills,
            "{app}: access balance"
        );
        assert_eq!(
            r.llc.hits_by_non_filler, profile.hits_by_non_filler,
            "{app}: cross-core hit attribution"
        );
    }
}

#[test]
fn opt_lower_bounds_all_policies_on_all_test_apps() {
    let cfg = test_cfg();
    for app in [App::Bodytrack, App::Water, App::Radix, App::Swim] {
        let mut make = || app.workload(cfg.cores, Scale::Tiny);
        let opt = simulate_opt(&cfg, &mut make, vec![])
            .expect("run")
            .llc
            .misses();
        for kind in PolicyKind::REALISTIC {
            let m = simulate_kind(&cfg, kind, &mut make, vec![])
                .expect("run")
                .llc
                .misses();
            assert!(opt <= m, "{app}: OPT {opt} > {} {m}", kind.label());
        }
    }
}

#[test]
fn oracle_gains_concentrate_on_sharing_heavy_apps() {
    let cfg = test_cfg();
    let gain = |app: App| {
        let mut make = || app.workload(cfg.cores, Scale::Tiny);
        let lru = simulate_kind(&cfg, PolicyKind::Lru, &mut make, vec![])
            .expect("run")
            .llc
            .misses();
        let oracle = simulate_oracle(
            &cfg,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &mut make,
            vec![],
        )
        .expect("run")
        .llc
        .misses();
        1.0 - oracle as f64 / lru.max(1) as f64
    };
    let private = gain(App::Swaptions);
    let shared = gain(App::Streamcluster);
    assert!(
        shared > private,
        "oracle gain should favour sharing-heavy apps: shared {shared:.4} vs private {private:.4}"
    );
    // A pure-private app has nothing to protect: gain ~ 0 either way.
    assert!(private.abs() < 0.02, "swaptions oracle gain {private}");
}

#[test]
fn oracle_cannot_improve_opt() {
    // OPT is optimal, so constraining its victim choice with the sharing
    // oracle can only add misses — the quantitative form of "OPT is
    // already sharing-aware; there is nothing left to protect".
    let cfg = test_cfg();
    let app = App::Bodytrack;
    let mut make = || app.workload(cfg.cores, Scale::Tiny);
    let opt = simulate_opt(&cfg, &mut make, vec![])
        .expect("run")
        .llc
        .misses();
    let wrapped = llc_sharing::simulate_oracle_opt(&cfg, &mut make, vec![])
        .expect("run")
        .llc
        .misses();
    assert!(
        wrapped >= opt,
        "wrapping OPT cannot reduce misses ({wrapped} < {opt})"
    );
}

#[test]
fn predictor_study_runs_end_to_end() {
    let cfg = test_cfg();
    let mut addr = PredictorStudy::new(build_predictor(PredictorKind::Address));
    let mut pc = PredictorStudy::new(build_predictor(PredictorKind::Pc));
    simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || App::Ferret.workload(cfg.cores, Scale::Tiny),
        vec![&mut addr, &mut pc],
    )
    .expect("run");
    let (ma, mp) = (addr.matrix(), pc.matrix());
    assert!(ma.total() > 1000);
    assert_eq!(ma.total(), mp.total());
    // Both predictors must at least beat coin-flipping on a pipeline app…
    assert!(ma.accuracy() > 0.5, "addr accuracy {}", ma.accuracy());
    assert!(mp.accuracy() > 0.5, "pc accuracy {}", mp.accuracy());
}

#[test]
fn predictor_wrapper_is_safe_even_with_bad_predictions() {
    // Driving the protection mechanism with the always-shared baseline
    // degenerates to the base policy (everything protected = nothing
    // protected).
    let cfg = test_cfg();
    let app = App::Ocean;
    let mut make = || app.workload(cfg.cores, Scale::Tiny);
    let lru = simulate_kind(&cfg, PolicyKind::Lru, &mut make, vec![])
        .expect("run")
        .llc
        .misses();
    let wrapped = simulate_predictor_wrap(
        &cfg,
        PolicyKind::Lru,
        build_predictor(PredictorKind::AlwaysShared),
        &mut make,
        vec![],
    )
    .expect("run")
    .llc
    .misses();
    assert_eq!(lru, wrapped);
}

#[test]
fn phase_shifting_apps_are_burstier_than_steady_ones() {
    // Needs an LLC big enough that fft's transpose segments produce hits
    // at all (the matrix is ~256 KB at tiny scale).
    let mut cfg = test_cfg();
    cfg.llc = CacheConfig::from_kib(512, 8).expect("valid LLC");
    let burstiness = |app: App| {
        let probe = simulate_kind(
            &cfg,
            PolicyKind::Lru,
            &mut || app.workload(cfg.cores, Scale::Tiny),
            vec![],
        )
        .expect("run");
        let mut series = EpochSeries::new((probe.llc.accesses / 16).max(1));
        simulate_kind(
            &cfg,
            PolicyKind::Lru,
            &mut || app.workload(cfg.cores, Scale::Tiny),
            vec![&mut series],
        )
        .expect("run");
        series.sharing_burstiness()
    };
    let fft = burstiness(App::Fft);
    let bodytrack = burstiness(App::Bodytrack);
    assert!(
        fft > bodytrack,
        "fft burstiness {fft:.3} <= bodytrack {bodytrack:.3}"
    );
}

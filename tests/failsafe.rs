//! Fail-safe pipeline integration tests: corrupted traces must surface as
//! typed errors (never panics) all the way through the simulator driver,
//! and the suite runner must isolate crashes and resume from checkpoints.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::trace::{
    write_trace, CorruptingReader, Fault, FaultPlan, TraceFileSource, VecSource,
};

fn test_cfg(cores: usize) -> HierarchyConfig {
    HierarchyConfig {
        cores,
        l1: CacheConfig::from_kib(2, 2).expect("valid L1"),
        l2: None,
        llc: CacheConfig::from_kib(64, 8).expect("valid LLC"),
        inclusion: Inclusion::NonInclusive,
    }
}

/// A recorded trace of `app` running on `cores` cores.
fn recorded(app: App, cores: usize) -> Vec<u8> {
    let mut bytes = Vec::new();
    write_trace(app.workload(cores, Scale::Tiny), &mut bytes).expect("encode");
    bytes
}

#[test]
fn truncated_trace_surfaces_as_typed_error_through_the_driver() {
    let bytes = recorded(App::Fft, 4);
    let cut = bytes.len() - 7; // mid-record
    let cfg = test_cfg(4);
    let err = simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || TraceFileSource::new(&bytes[..cut]).expect("header intact"),
        vec![],
    )
    .expect_err("driver must report the truncation");
    match err {
        RunError::Trace(TraceError::Truncated { .. }) => {}
        other => panic!("expected RunError::Trace(Truncated), got {other}"),
    }
}

#[test]
fn corrupted_traces_never_panic_the_driver() {
    let bytes = recorded(App::Bodytrack, 4);
    let cfg = test_cfg(4);
    for seed in 0..50u64 {
        let plan = FaultPlan::random_bit_flips(seed, bytes.len() as u64, 4);
        // Either the header is rejected up front or the run ends in
        // Ok/typed Err; a panic anywhere fails the test.
        if let Ok(src) = TraceFileSource::new(CorruptingReader::new(bytes.as_slice(), &plan)) {
            let full = bytes.clone();
            let p2 = plan.clone();
            let _ = simulate_kind(
                &cfg,
                PolicyKind::Lru,
                &mut || {
                    TraceFileSource::new(CorruptingReader::new(full.as_slice(), &p2))
                        .expect("checked above")
                },
                vec![],
            );
            drop(src);
        }
    }
}

#[test]
fn replaying_a_wider_trace_on_a_narrower_machine_is_a_typed_error() {
    // Recorded on 8 cores, replayed against a 4-core hierarchy: the
    // decoder must reject the first record from core >= 4 instead of
    // letting it corrupt per-core state downstream.
    let bytes = recorded(App::Ocean, 8);
    let cfg = test_cfg(4);
    let err = simulate_kind(
        &cfg,
        PolicyKind::Lru,
        &mut || {
            TraceFileSource::new(bytes.as_slice())
                .expect("header intact")
                .with_core_limit(cfg.cores)
        },
        vec![],
    )
    .expect_err("8-core trace must not replay on a 4-core machine");
    match err {
        RunError::Trace(TraceError::CoreOutOfRange { core, limit, .. }) => {
            assert!(core >= 4, "rejected core {core}");
            assert_eq!(limit, 4);
        }
        other => panic!("expected CoreOutOfRange, got {other}"),
    }
}

#[test]
fn record_level_faults_are_caught_by_the_writer() {
    let accesses: Vec<MemAccess> = {
        let mut src = App::Fft.workload(4, Scale::Tiny);
        std::iter::from_fn(move || src.next_access())
            .take(100)
            .collect()
    };
    let plan = FaultPlan::new().with(Fault::DropRecord { index: 42 });
    let faulty =
        sharing_aware_llc::trace::FaultInjectingSource::new(VecSource::new(accesses), &plan);
    let mut out = Vec::new();
    let err = write_trace(faulty, &mut out).expect_err("dropped record must be caught");
    assert!(matches!(
        err,
        TraceError::CountMismatch {
            declared: 100,
            written: 99
        }
    ));
}

#[test]
fn suite_isolates_a_panicking_experiment_and_finishes_the_rest() {
    let ctx = ExperimentCtx::test();
    let config = SuiteConfig {
        timeout: Some(Duration::from_secs(30)),
        manifest_path: None,
        ..SuiteConfig::default()
    };
    let ids = [ExperimentId::Table1, ExperimentId::Fig1, ExperimentId::Fig3];
    let report = run_suite_with(&ids, &ctx, &config, |id, _| {
        if id == ExperimentId::Fig1 {
            panic!("injected mid-suite crash");
        }
        Ok(vec![Table::new("ok", &["col"])])
    })
    .expect("suite itself must not fail");
    assert_eq!(report.outcomes.len(), 3, "every experiment gets an outcome");
    assert_eq!(
        report.completed(),
        2,
        "siblings of the crash still complete"
    );
    assert_eq!(report.failed(), 1);
    let summary = report.summary().to_string();
    assert!(summary.contains("FAILED"));
    assert!(summary.contains("injected mid-suite crash"));
}

#[test]
fn killed_suite_resumes_from_checkpoint_without_recomputing() {
    let manifest =
        std::env::temp_dir().join(format!("llc-failsafe-resume-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&manifest);
    let config = SuiteConfig {
        manifest_path: Some(manifest.clone()),
        ..SuiteConfig::default()
    };
    let ctx = ExperimentCtx::test();
    let ids = [ExperimentId::Table1, ExperimentId::Fig1, ExperimentId::Fig3];

    // First invocation "dies" partway: table1 and fig1 complete (and are
    // checkpointed), fig3 panics — standing in for a killed process whose
    // manifest survived.
    let runs = Arc::new(AtomicUsize::new(0));
    let counter = Arc::clone(&runs);
    let report = run_suite_with(&ids, &ctx, &config, move |id, _| {
        counter.fetch_add(1, Ordering::SeqCst);
        if id == ExperimentId::Fig3 {
            panic!("process killed here");
        }
        Ok(vec![Table::new(
            format!("result of {}", id.label()),
            &["col"],
        )])
    })
    .expect("first invocation");
    assert_eq!(report.completed(), 2);
    assert_eq!(runs.load(Ordering::SeqCst), 3);

    // Second invocation: the two checkpointed experiments must be
    // replayed from the manifest — the closure counts how often it is
    // actually invoked, so recomputation would be visible.
    let runs2 = Arc::new(AtomicUsize::new(0));
    let counter2 = Arc::clone(&runs2);
    let report = run_suite_with(&ids, &ctx, &config, move |id, _| {
        counter2.fetch_add(1, Ordering::SeqCst);
        Ok(vec![Table::new(
            format!("result of {}", id.label()),
            &["col"],
        )])
    })
    .expect("second invocation");
    assert_eq!(runs2.load(Ordering::SeqCst), 1, "only fig3 is recomputed");
    assert_eq!(report.resumed(), 2);
    assert_eq!(report.completed(), 1);
    assert_eq!(report.failed(), 0);
    let t1 = report.outcomes[0].1.tables().expect("resumed tables");
    assert_eq!(
        t1[0].title, "result of table1",
        "checkpointed content survives"
    );
    let _ = std::fs::remove_file(&manifest);
}

#[test]
fn watchdog_reaps_a_hung_experiment_and_the_suite_continues() {
    let ctx = ExperimentCtx::test();
    let config = SuiteConfig {
        timeout: Some(Duration::from_millis(100)),
        manifest_path: None,
        ..SuiteConfig::default()
    };
    let ids = [ExperimentId::Fig1, ExperimentId::Fig3];
    let report = run_suite_with(&ids, &ctx, &config, |id, _| {
        if id == ExperimentId::Fig1 {
            std::thread::sleep(Duration::from_secs(120));
        }
        Ok(vec![Table::new("ok", &["col"])])
    })
    .expect("suite runs");
    assert_eq!(report.failed(), 1);
    assert_eq!(report.completed(), 1, "the suite outlives the hang");
    match &report.outcomes[0].1 {
        ExperimentOutcome::Failed { reason } => {
            assert!(reason.contains("time budget"), "got: {reason}")
        }
        other => panic!("expected timeout failure, got {other:?}"),
    }
}

#[test]
fn real_experiment_suite_checkpoints_and_resumes() {
    // End-to-end with the real `run_experiment`: a tiny two-app context
    // keeps this fast while exercising the exact code path `repro --out
    // --resume` uses, including OPT/oracle pre-pass recomputation being
    // skipped on resume.
    let manifest =
        std::env::temp_dir().join(format!("llc-failsafe-real-{}.json", std::process::id()));
    let _ = std::fs::remove_file(&manifest);
    let mut ctx = ExperimentCtx::test();
    ctx.apps.truncate(2);
    let config = SuiteConfig {
        manifest_path: Some(manifest.clone()),
        ..SuiteConfig::default()
    };
    let ids = [ExperimentId::Table1, ExperimentId::Fig7];
    let first = run_suite(&ids, &ctx, &config).expect("first real run");
    assert_eq!(first.completed(), 2);
    assert_eq!(first.failed(), 0);

    let second = run_suite(&ids, &ctx, &config).expect("resumed real run");
    assert_eq!(second.resumed(), 2, "everything replays from the manifest");
    // Checkpointed tables must match the originally computed ones.
    let orig = first.outcomes[1].1.tables().expect("fig7 tables");
    let replay = second.outcomes[1].1.tables().expect("fig7 tables");
    assert_eq!(orig.len(), replay.len());
    assert_eq!(orig[0].title, replay[0].title);
    assert_eq!(orig[0].rows, replay[0].rows);
    let _ = std::fs::remove_file(&manifest);
}

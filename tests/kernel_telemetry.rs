//! The replay inner loop must do **zero** telemetry work per access:
//! spans and counters are phase-level only, so a disabled tracer costs
//! nothing on the hot path and an enabled one buffers a constant number
//! of events per replay regardless of stream length.
//!
//! This lives in its own integration-test binary (its own process) so no
//! concurrently running test can flip the process-global span switch
//! under the assertions.

use sharing_aware_llc::prelude::*;
use sharing_aware_llc::sharing::{record_stream, replay_kind};
use sharing_aware_llc::telemetry::spans;

#[test]
fn disabled_telemetry_is_zero_atomics_per_replay_access() {
    let cfg = HierarchyConfig::tiny();
    let small = record_stream(&cfg, App::Bodytrack.workload(cfg.cores, Scale::Tiny))
        .expect("record small stream");
    let large = record_stream(&cfg, App::Bodytrack.workload(cfg.cores, Scale::Small))
        .expect("record large stream");
    assert!(
        large.len() > 2 * small.len(),
        "the two streams must differ in length for the scaling assertions \
         (small {}, large {})",
        small.len(),
        large.len()
    );

    // Disabled (the default): a replay buffers no span events at all, no
    // matter how many accesses it drives.
    assert!(!spans::enabled(), "spans must start disabled");
    let before = spans::event_count();
    let run = replay_kind(&cfg, PolicyKind::Lru, &large, vec![]).expect("replay");
    assert!(run.llc.accesses > 0);
    assert_eq!(
        spans::event_count(),
        before,
        "a disabled tracer must record nothing during replay"
    );

    // Enabled: the event count is per-*phase*, not per-access — replaying
    // a stream twice the length buffers exactly as many events.
    spans::set_enabled(true);
    let before = spans::event_count();
    replay_kind(&cfg, PolicyKind::Lru, &small, vec![]).expect("replay small");
    let per_small = spans::event_count() - before;
    let before = spans::event_count();
    replay_kind(&cfg, PolicyKind::Lru, &large, vec![]).expect("replay large");
    let per_large = spans::event_count() - before;
    spans::set_enabled(false);
    assert_eq!(
        per_small, per_large,
        "span events per replay must be independent of stream length"
    );
    assert!(
        per_large as u64 <= 4,
        "replay must emit a handful of phase-level spans, not {per_large}"
    );
}

#[test]
fn disabled_telemetry_is_zero_atomics_per_record_access() {
    // The record path has the same discipline as replay: one counter bump
    // and one span per *recording*, never per trace record. With spans
    // disabled a recording buffers nothing; enabled, a trace twice the
    // length buffers exactly as many events.
    let cfg = HierarchyConfig::tiny();
    assert!(!spans::enabled(), "spans must start disabled");
    let before = spans::event_count();
    let stream = record_stream(&cfg, App::Fft.workload(cfg.cores, Scale::Small)).expect("record");
    assert!(stream.len() > 0);
    assert_eq!(
        spans::event_count(),
        before,
        "a disabled tracer must record nothing during recording"
    );

    spans::set_enabled(true);
    let before = spans::event_count();
    record_stream(&cfg, App::Fft.workload(cfg.cores, Scale::Tiny)).expect("record tiny");
    let per_tiny = spans::event_count() - before;
    let before = spans::event_count();
    record_stream(&cfg, App::Fft.workload(cfg.cores, Scale::Small)).expect("record small");
    let per_small = spans::event_count() - before;
    spans::set_enabled(false);
    assert_eq!(
        per_tiny, per_small,
        "span events per recording must be independent of trace length"
    );
    assert!(
        per_small as u64 <= 4,
        "recording must emit a handful of phase-level spans, not {per_small}"
    );
}

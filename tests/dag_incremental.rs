//! Incremental-recompilation gate for the artifact DAG: mutating one
//! policy in a suite re-executes exactly that policy's replay, and the
//! incrementally-assembled results are bit-identical to a from-scratch
//! run of the mutated suite.

use std::path::PathBuf;

use llc_dag::{DagStore, NodeKind, ReplayDesc};
use llc_policies::{PolicyKind, ProtectMode};
use llc_sharing::{plan_experiment, ExperimentCtx, ExperimentId, RunResult};
use llc_trace::App;

fn temp_store(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("llc-dag-e2e-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// The four-policy oracle suite the gate mutates: a fixed window so the
/// annotation node is shared by every member.
fn suite(window: u64) -> Vec<ReplayDesc> {
    [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
    ]
    .into_iter()
    .map(|base| ReplayDesc::oracle(base, ProtectMode::Eviction, window))
    .collect()
}

fn run_suite(ctx: &ExperimentCtx, descs: &[ReplayDesc]) -> Vec<RunResult> {
    let config = ctx.main_config().expect("config");
    descs
        .iter()
        .map(|desc| {
            ctx.replay_cached(App::Fft, &config, desc)
                .expect("replay_cached")
        })
        .collect()
}

#[test]
fn mutating_one_policy_replays_exactly_one_and_matches_scratch() {
    let root = temp_store("incremental");
    const WINDOW: u64 = 256;

    // Cold run: everything misses, one annotation pass shared four ways.
    let mut ctx = ExperimentCtx::test();
    ctx.dag = Some(DagStore::open(&root).expect("open dag"));
    let descs = suite(WINDOW);
    let cold = run_suite(&ctx, &descs);
    let stats = ctx.dag.as_ref().expect("dag").stats();
    assert_eq!(stats.replayed, 4, "cold run executes every policy");
    assert_eq!(stats.misses_of(NodeKind::Replay), 4);
    assert_eq!(stats.misses_of(NodeKind::Annotations), 1);
    assert_eq!(stats.hits_of(NodeKind::Annotations), 3, "window shared");

    // Mutate one member (protect mode of the third policy) and resolve
    // through a fresh handle so the counters isolate the warm run.
    let mut mutated = descs.clone();
    mutated[2] = ReplayDesc::oracle(PolicyKind::Drrip, ProtectMode::Both, WINDOW);
    let mut warm_ctx = ExperimentCtx::test();
    warm_ctx.dag = Some(DagStore::open(&root).expect("reopen dag"));
    let warm = run_suite(&warm_ctx, &mutated);
    let stats = warm_ctx.dag.as_ref().expect("dag").stats();
    assert_eq!(stats.replayed, 1, "only the mutated policy re-executes");
    assert_eq!(stats.hits_of(NodeKind::Replay), 3);
    assert_eq!(stats.misses_of(NodeKind::Replay), 1);
    assert_eq!(
        stats.hits_of(NodeKind::Annotations),
        1,
        "the mutated replay reuses the cached annotation pass"
    );

    // Unchanged members come back bit-identical from the store.
    for (i, (w, c)) in warm.iter().zip(&cold).enumerate() {
        if i != 2 {
            assert_eq!(w, c, "desc {i} must be served verbatim from cache");
        }
    }

    // And the whole warm suite equals a from-scratch (DAG-less) run.
    let scratch_ctx = ExperimentCtx::test();
    let scratch = run_suite(&scratch_ctx, &mutated);
    assert_eq!(warm, scratch, "incremental result must be bit-identical");

    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn plans_are_sibling_insensitive() {
    // A node's fingerprint depends only on its own inputs: planning an
    // experiment with extra sibling apps present must not change the
    // fingerprints of the apps both plans share.
    let mut narrow = ExperimentCtx::test();
    narrow.apps = vec![App::Fft];
    let mut wide = ExperimentCtx::test();
    wide.apps = vec![App::Fft, App::Dedup, App::Swaptions];

    let plan_a = plan_experiment(ExperimentId::Fig7, &narrow, None);
    let plan_b = plan_experiment(ExperimentId::Fig7, &wide, None);
    let fps = |plan: &llc_dag::Plan| {
        plan.nodes
            .iter()
            .map(|n| (n.kind, n.fp))
            .collect::<std::collections::HashSet<_>>()
    };
    let (a, b) = (fps(&plan_a), fps(&plan_b));
    assert!(
        a.is_subset(&b),
        "narrow plan's nodes must appear unchanged in the wide plan"
    );
    assert!(b.len() > a.len(), "the wide plan adds sibling nodes");
}

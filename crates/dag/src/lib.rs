//! Content-addressed artifact DAG for incremental experiment
//! recompilation.
//!
//! A `JobSpec` fingerprint is all-or-nothing: tweak one policy parameter
//! and the monolithic key misses, so the daemon re-records the stream,
//! rebuilds shard indexes, re-runs the oracle pre-passes and replays
//! every policy from scratch. This crate keys each intermediate artifact
//! by a fingerprint of its *own* inputs instead, turning the pipeline
//! into a small build graph:
//!
//! ```text
//! stream(workload × cores × scale × hierarchy)        .llcs  (StreamStore)
//!   ├─ index(stream, sets, shards)                    memory (shard registry)
//!   ├─ annotations(stream, window)                    .llca  (DagStore)
//!   │    └─ replay(stream, policy descriptor)         .llcr  (DagStore)
//!   └─ replay(stream, policy descriptor)              .llcr  (DagStore)
//!        └─ table(spec)                               .json  (ResultStore)
//! ```
//!
//! The crate owns the *generic* pieces — node kinds, fingerprint
//! derivations, replay descriptors, plan types and the persistent
//! [`DagStore`] for annotation/replay partials and per-spec manifests.
//! The experiment-aware planner (which knows what each `ExperimentId`
//! replays) lives in `llc-sharing`; the daemon wiring (plan before
//! admission, `/plan` route, `repro explain`) lives in `llc-serve`.
//!
//! Persistence follows the stores it sits beside: crash-safe
//! [`atomic_write`](llc_trace::store::atomic_write) for every artifact, a
//! trailing FNV checksum plus an embedded fingerprint so corruption is
//! detected on load, corrupt files moved to `quarantine/` (never
//! deleted) and transparently recomputed, and an mtime touch on every
//! load so `repro gc` evicts DAG partials least-recently-*used* first.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod desc;
pub mod fingerprint;
pub mod node;
pub mod store;

pub use desc::{ReplayDesc, ReplayWrap};
pub use fingerprint::{annotations_fp, fnv1a64, index_fp, replay_fp, Fold};
pub use node::{NodeKind, Plan, PlanNode};
pub use store::{
    decode_annotations, decode_manifest, decode_replay, encode_annotations, encode_manifest,
    encode_replay, register_metrics, AnnotationsData, DagStatsSnapshot, DagStore, Manifest,
    ReplayRecord, ANN_FILE_EXT, MANIFEST_FILE_EXT, REPLAY_FILE_EXT,
};

//! Stable node fingerprints.
//!
//! Every DAG node is content-addressed by a 64-bit fingerprint of its
//! *own* inputs, derived with the same primitives the existing stores
//! use — a splitmix64 chain seeded per node kind, with strings folded in
//! through FNV-1a — so fingerprints are defined by this workspace and do
//! not change across Rust releases, platforms or process restarts.
//! Distinct node kinds use distinct seeds, so a stream fingerprint can
//! never collide with (say) the annotation node derived from it by
//! construction rather than by luck.

/// FNV-1a over a byte string; folded into splitmix chains so labels and
/// other strings contribute stably.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// A splitmix64 fold chain — the builder behind every fingerprint in
/// this crate. Seeded per node kind; each folded word permutes the whole
/// state, so field order matters (and is part of each format's contract).
#[derive(Debug, Clone, Copy)]
pub struct Fold(u64);

impl Fold {
    /// Starts a chain from a kind-specific seed.
    pub fn new(seed: u64) -> Fold {
        Fold(seed)
    }

    /// Folds one word into the chain.
    pub fn u64(&mut self, v: u64) -> &mut Fold {
        self.0 = llc_sim::splitmix64(self.0 ^ v);
        self
    }

    /// Folds a string (via FNV-1a) into the chain.
    pub fn str(&mut self, s: &str) -> &mut Fold {
        self.u64(fnv1a64(s.as_bytes()))
    }

    /// The chain's current value.
    pub fn finish(&self) -> u64 {
        self.0
    }
}

/// Fingerprint of an annotation node: the fused next-use/shared-soon
/// pre-pass over `stream_fp` with retention window `window`. Nothing
/// else feeds the backward scan, so nothing else is folded — an
/// annotation artifact survives any change to sibling replay nodes.
pub fn annotations_fp(stream_fp: u64, window: u64) -> u64 {
    Fold::new(0x4c4c_4344_414e_4e31) // "LLCDANN1"
        .u64(stream_fp)
        .u64(window)
        .finish()
}

/// Fingerprint of a shard-index node: `stream_fp` split into `shards`
/// contiguous ranges of `sets` sets. Indexes are memory-resident (they
/// rebuild for about the cost of loading the stream), but they are still
/// first-class plan nodes so `repro explain` shows when a replay will
/// pay an index build.
pub fn index_fp(stream_fp: u64, sets: u64, shards: u64) -> u64 {
    Fold::new(0x4c4c_4344_4944_5831) // "LLCDIDX1"
        .u64(stream_fp)
        .u64(sets)
        .u64(shards)
        .finish()
}

/// Fingerprint of a per-policy replay node: the [`crate::ReplayDesc`]
/// fingerprint applied to `stream_fp`. The stream fingerprint already
/// covers workload, thread count, scale and the full hierarchy geometry,
/// so the descriptor only needs to identify the policy configuration.
pub fn replay_fp(stream_fp: u64, desc_fp: u64) -> u64 {
    Fold::new(0x4c4c_4344_5250_4c31) // "LLCDRPL1"
        .u64(stream_fp)
        .u64(desc_fp)
        .finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chains_are_order_sensitive_and_seed_separated() {
        assert_ne!(
            Fold::new(1).u64(2).u64(3).finish(),
            Fold::new(1).u64(3).u64(2).finish()
        );
        assert_ne!(annotations_fp(7, 0), replay_fp(7, 0));
        assert_ne!(annotations_fp(7, 0), index_fp(7, 0, 0));
    }

    #[test]
    fn derivations_are_pinned() {
        // Pinned values: these address on-disk artifacts, so any change
        // here silently invalidates every existing store.
        assert_eq!(
            annotations_fp(0x8641_6d06_bf56_88ce, 256),
            0x2e7a_0133_c5c6_75c5
        );
        assert_eq!(
            replay_fp(0x8641_6d06_bf56_88ce, 0xdead_beef),
            0x6f6e_a12f_e192_733f
        );
        assert_ne!(annotations_fp(1, 2), annotations_fp(2, 1));
    }
}

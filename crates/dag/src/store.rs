//! The persistent DAG store: annotation partials, per-policy replay
//! partials and per-spec node manifests under `<store>/dag/`.
//!
//! ```text
//! dag/ann/<fp>.llca        fused next-use/shared-soon pre-pass output
//! dag/replays/<fp>.llcr    one policy's LlcStats + private counters
//! dag/manifests/<fp>.llcm  (kind, fp) list of a completed spec's nodes
//! dag/*/quarantine/        corrupt artifacts, moved — never deleted
//! ```
//!
//! All three formats share the same discipline as the `.llcs` stream
//! store they sit beside: crash-safe [`atomic_write`], an embedded
//! fingerprint checked against the filename, a trailing FNV-1a checksum
//! over the payload, an mtime touch on every load (so LRU GC eviction
//! tracks *use*, not creation), and quarantine-on-corruption so a
//! damaged partial costs one recompute, never an error or lost
//! evidence. `repro gc` walks these directories with the same byte-cap
//! LRU sweep it applies to streams and results.

use std::fs::{self, File};
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LazyLock};

use llc_sim::{LlcStats, PrivateCacheStats};
use llc_telemetry::metrics::{global, Counter};
use llc_trace::{atomic_write, quarantine_file};

use crate::fingerprint::fnv1a64;
use crate::node::NodeKind;

/// File extension of annotation partials.
pub const ANN_FILE_EXT: &str = "llca";
/// File extension of replay partials.
pub const REPLAY_FILE_EXT: &str = "llcr";
/// File extension of spec manifests.
pub const MANIFEST_FILE_EXT: &str = "llcm";

const ANN_MAGIC: &[u8; 8] = b"LLCDANN1";
const REPLAY_MAGIC: &[u8; 8] = b"LLCDRPL1";
const MANIFEST_MAGIC: &[u8; 8] = b"LLCDMAN1";

/// Global node-level counters, labeled per [`NodeKind`]. Resolved once,
/// bumped with relaxed atomics on the hot path.
struct DagMetrics {
    hits: [Arc<Counter>; 5],
    misses: [Arc<Counter>; 5],
    replayed: Arc<Counter>,
    quarantined: Arc<Counter>,
    disk_errors: Arc<Counter>,
}

static METRICS: LazyLock<DagMetrics> = LazyLock::new(|| {
    let per_kind = |name: &str, help: &str| {
        NodeKind::ALL.map(|kind| global().counter_with(name, help, &[("kind", kind.label())]))
    };
    DagMetrics {
        hits: per_kind(
            "llc_dag_node_hits_total",
            "DAG nodes resolved from a cached artifact, by node kind",
        ),
        misses: per_kind(
            "llc_dag_node_misses_total",
            "DAG nodes that had to be computed, by node kind",
        ),
        replayed: global().counter(
            "llc_dag_replayed_policies_total",
            "Per-policy replays actually executed (DAG replay-node misses that ran)",
        ),
        quarantined: global().counter_with(
            "llc_store_quarantined_total",
            "Corrupt store entries moved to quarantine/ instead of being deleted",
            &[("store", "dag")],
        ),
        disk_errors: global().counter(
            "llc_dag_disk_errors_total",
            "DAG artifact load/persist failures recovered by recomputing",
        ),
    }
});

/// Forces registration of every DAG metric series so a fresh daemon's
/// first `/metrics` scrape already shows them at zero.
pub fn register_metrics() {
    LazyLock::force(&METRICS);
}

/// Per-instance counters of one [`DagStore`] (shared by clones). The
/// global `llc_dag_*` series aggregate every store in the process; these
/// stay attributable to one store, which is what tests assert against.
#[derive(Debug, Default)]
struct DagStats {
    hits: [AtomicU64; 5],
    misses: [AtomicU64; 5],
    replayed: AtomicU64,
    quarantined: AtomicU64,
    disk_errors: AtomicU64,
}

/// A snapshot of one store's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DagStatsSnapshot {
    /// Node hits by [`NodeKind::ordinal`].
    pub hits: [u64; 5],
    /// Node misses by [`NodeKind::ordinal`].
    pub misses: [u64; 5],
    /// Per-policy replays actually executed.
    pub replayed: u64,
    /// Corrupt artifacts moved to quarantine.
    pub quarantined: u64,
    /// Load/persist failures shrugged off by recomputing.
    pub disk_errors: u64,
}

impl DagStatsSnapshot {
    /// Hits of one node kind.
    pub fn hits_of(&self, kind: NodeKind) -> u64 {
        self.hits[kind.ordinal()]
    }

    /// Misses of one node kind.
    pub fn misses_of(&self, kind: NodeKind) -> u64 {
        self.misses[kind.ordinal()]
    }
}

/// The decoded payload of an annotation node: both vectors of the fused
/// backward scan, plus the window they were computed under.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnnotationsData {
    /// The retention window the shared-soon vector was computed with.
    pub window: u64,
    /// Per-access next-use stream positions (`u64::MAX` = never again).
    pub next_use: Vec<u64>,
    /// Per-access "another core touches this block within the window".
    pub shared_soon: Vec<bool>,
}

/// The decoded payload of a replay node: everything a `RunResult`
/// carries, in simulator-level types (this crate cannot name
/// `RunResult` without a dependency cycle; `llc-sharing` converts).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayRecord {
    /// Display label of the policy that ran.
    pub policy: String,
    /// LLC counters.
    pub llc: LlcStats,
    /// Aggregated private L1 counters.
    pub l1: PrivateCacheStats,
    /// Aggregated private L2 counters.
    pub l2: PrivateCacheStats,
    /// Instructions represented by the trace.
    pub instructions: u64,
    /// Trace records processed.
    pub trace_accesses: u64,
}

/// The node list of one completed spec: which artifacts its result was
/// assembled from. GC's verify pass treats partials referenced by no
/// manifest as orphans.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// `(kind, fingerprint)` per node, in pipeline order.
    pub nodes: Vec<(NodeKind, u64)>,
}

/// A handle on the on-disk DAG store. Cheap to clone; clones share the
/// per-instance counters.
#[derive(Debug, Clone)]
pub struct DagStore {
    root: PathBuf,
    stats: Arc<DagStats>,
}

/// Byte-level writer for the little-endian artifact formats.
struct Enc(Vec<u8>);

impl Enc {
    fn new(magic: &[u8; 8]) -> Enc {
        Enc(magic.to_vec())
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn bytes(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
    /// Appends the payload checksum (everything after the magic) and
    /// returns the finished buffer.
    fn finish(mut self) -> Vec<u8> {
        let sum = fnv1a64(&self.0[8..]);
        self.u64(sum);
        self.0
    }
}

/// Byte-level reader mirroring [`Enc`]; every method is total (returns
/// `Err` on truncation, never panics), so corrupt files decode into
/// typed failures that the store turns into quarantine + recompute.
struct Dec<'a>(&'a [u8]);

impl<'a> Dec<'a> {
    /// Checks magic and the trailing checksum, returning the payload.
    fn open(raw: &'a [u8], magic: &[u8; 8]) -> Result<Dec<'a>, String> {
        if raw.len() < 16 || &raw[..8] != magic {
            return Err("bad magic".into());
        }
        let payload = &raw[8..raw.len() - 8];
        let stored = u64::from_le_bytes(raw[raw.len() - 8..].try_into().expect("8 bytes"));
        if fnv1a64(payload) != stored {
            return Err("checksum mismatch".into());
        }
        Ok(Dec(payload))
    }
    fn u64(&mut self) -> Result<u64, String> {
        if self.0.len() < 8 {
            return Err("truncated".into());
        }
        let (head, rest) = self.0.split_at(8);
        self.0 = rest;
        Ok(u64::from_le_bytes(head.try_into().expect("8 bytes")))
    }
    fn bytes(&mut self) -> Result<&'a [u8], String> {
        let len = usize::try_from(self.u64()?).map_err(|_| "length overflow".to_string())?;
        if self.0.len() < len {
            return Err("truncated".into());
        }
        let (head, rest) = self.0.split_at(len);
        self.0 = rest;
        Ok(head)
    }
    fn done(&self) -> Result<(), String> {
        if self.0.is_empty() {
            Ok(())
        } else {
            Err("trailing bytes".into())
        }
    }
}

/// Encodes an annotation artifact (exposed so GC's verify pass and the
/// tests can decode files without a store handle).
pub fn encode_annotations(fp: u64, data: &AnnotationsData) -> Vec<u8> {
    let mut enc = Enc::new(ANN_MAGIC);
    enc.u64(fp);
    enc.u64(data.window);
    enc.u64(data.next_use.len() as u64);
    for &v in &data.next_use {
        enc.u64(v);
    }
    let mut bits = vec![0u8; data.shared_soon.len().div_ceil(8)];
    for (i, &b) in data.shared_soon.iter().enumerate() {
        if b {
            bits[i / 8] |= 1 << (i % 8);
        }
    }
    enc.bytes(&bits);
    enc.finish()
}

/// Decodes an annotation artifact, validating magic, checksum and the
/// embedded fingerprint against `expect_fp` (pass the filename stem).
pub fn decode_annotations(raw: &[u8], expect_fp: u64) -> Result<AnnotationsData, String> {
    let mut dec = Dec::open(raw, ANN_MAGIC)?;
    let fp = dec.u64()?;
    if fp != expect_fp {
        return Err(format!(
            "fingerprint mismatch: {fp:016x} != {expect_fp:016x}"
        ));
    }
    let window = dec.u64()?;
    let n = usize::try_from(dec.u64()?).map_err(|_| "length overflow".to_string())?;
    if n > raw.len() / 8 {
        return Err("implausible length".into());
    }
    let mut next_use = Vec::with_capacity(n);
    for _ in 0..n {
        next_use.push(dec.u64()?);
    }
    let bits = dec.bytes()?;
    if bits.len() != n.div_ceil(8) {
        return Err("bitset length mismatch".into());
    }
    let shared_soon = (0..n).map(|i| bits[i / 8] & (1 << (i % 8)) != 0).collect();
    dec.done()?;
    Ok(AnnotationsData {
        window,
        next_use,
        shared_soon,
    })
}

/// Encodes a replay artifact.
pub fn encode_replay(fp: u64, rec: &ReplayRecord) -> Vec<u8> {
    let mut enc = Enc::new(REPLAY_MAGIC);
    enc.u64(fp);
    enc.bytes(rec.policy.as_bytes());
    for v in [
        rec.llc.accesses,
        rec.llc.hits,
        rec.llc.fills,
        rec.llc.evictions,
        rec.llc.flushed,
        rec.llc.hits_by_non_filler,
        rec.llc.writes,
    ] {
        enc.u64(v);
    }
    for p in [&rec.l1, &rec.l2] {
        for v in [
            p.accesses,
            p.hits,
            p.evictions,
            p.invalidations,
            p.back_invalidations,
        ] {
            enc.u64(v);
        }
    }
    enc.u64(rec.instructions);
    enc.u64(rec.trace_accesses);
    enc.finish()
}

/// Decodes a replay artifact (see [`decode_annotations`] for the
/// validation contract).
pub fn decode_replay(raw: &[u8], expect_fp: u64) -> Result<ReplayRecord, String> {
    let mut dec = Dec::open(raw, REPLAY_MAGIC)?;
    let fp = dec.u64()?;
    if fp != expect_fp {
        return Err(format!(
            "fingerprint mismatch: {fp:016x} != {expect_fp:016x}"
        ));
    }
    let policy = String::from_utf8(dec.bytes()?.to_vec()).map_err(|_| "bad label".to_string())?;
    let llc = LlcStats {
        accesses: dec.u64()?,
        hits: dec.u64()?,
        fills: dec.u64()?,
        evictions: dec.u64()?,
        flushed: dec.u64()?,
        hits_by_non_filler: dec.u64()?,
        writes: dec.u64()?,
    };
    let mut private = || -> Result<PrivateCacheStats, String> {
        Ok(PrivateCacheStats {
            accesses: dec.u64()?,
            hits: dec.u64()?,
            evictions: dec.u64()?,
            invalidations: dec.u64()?,
            back_invalidations: dec.u64()?,
        })
    };
    let l1 = private()?;
    let l2 = private()?;
    let instructions = dec.u64()?;
    let trace_accesses = dec.u64()?;
    dec.done()?;
    Ok(ReplayRecord {
        policy,
        llc,
        l1,
        l2,
        instructions,
        trace_accesses,
    })
}

/// Encodes a spec manifest.
pub fn encode_manifest(fp: u64, manifest: &Manifest) -> Vec<u8> {
    let mut enc = Enc::new(MANIFEST_MAGIC);
    enc.u64(fp);
    enc.u64(manifest.nodes.len() as u64);
    for &(kind, node_fp) in &manifest.nodes {
        enc.0.push(kind.code());
        enc.u64(node_fp);
    }
    enc.finish()
}

/// Decodes a spec manifest.
pub fn decode_manifest(raw: &[u8], expect_fp: u64) -> Result<Manifest, String> {
    let mut dec = Dec::open(raw, MANIFEST_MAGIC)?;
    let fp = dec.u64()?;
    if fp != expect_fp {
        return Err(format!(
            "fingerprint mismatch: {fp:016x} != {expect_fp:016x}"
        ));
    }
    let n = usize::try_from(dec.u64()?).map_err(|_| "length overflow".to_string())?;
    if n > raw.len() {
        return Err("implausible length".into());
    }
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        if dec.0.is_empty() {
            return Err("truncated".into());
        }
        let (code, rest) = dec.0.split_first().expect("non-empty");
        dec.0 = rest;
        let kind = NodeKind::from_code(*code).ok_or_else(|| "unknown node kind".to_string())?;
        nodes.push((kind, dec.u64()?));
    }
    dec.done()?;
    Ok(Manifest { nodes })
}

impl DagStore {
    /// Opens (creating if needed) the DAG store rooted at `root` —
    /// conventionally `<store>/dag` next to `streams/` and `results/`.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn open(root: impl Into<PathBuf>) -> io::Result<DagStore> {
        let root = root.into();
        for sub in ["ann", "replays", "manifests"] {
            fs::create_dir_all(root.join(sub))?;
        }
        Ok(DagStore {
            root,
            stats: Arc::new(DagStats::default()),
        })
    }

    /// The store's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// The directory holding artifacts of `kind` (annotation, replay and
    /// manifest nodes; stream and table nodes live in their own stores).
    pub fn dir_of(&self, kind: NodeKind) -> Option<PathBuf> {
        match kind {
            NodeKind::Annotations => Some(self.root.join("ann")),
            NodeKind::Replay => Some(self.root.join("replays")),
            NodeKind::Table | NodeKind::Stream | NodeKind::Index => None,
        }
    }

    fn path(&self, sub: &str, fp: u64, ext: &str) -> PathBuf {
        self.root.join(sub).join(format!("{fp:016x}.{ext}"))
    }

    /// Path of the annotation artifact for `fp`.
    pub fn ann_path(&self, fp: u64) -> PathBuf {
        self.path("ann", fp, ANN_FILE_EXT)
    }

    /// Path of the replay artifact for `fp`.
    pub fn replay_path(&self, fp: u64) -> PathBuf {
        self.path("replays", fp, REPLAY_FILE_EXT)
    }

    /// Path of the manifest for spec fingerprint `fp`.
    pub fn manifest_path(&self, fp: u64) -> PathBuf {
        self.path("manifests", fp, MANIFEST_FILE_EXT)
    }

    /// On-disk size of a cached artifact, or `None` if absent — the
    /// planner's cheap existence probe (no decode, no mtime touch).
    pub fn bytes_of(&self, kind: NodeKind, fp: u64) -> Option<u64> {
        let path = match kind {
            NodeKind::Annotations => self.ann_path(fp),
            NodeKind::Replay => self.replay_path(fp),
            _ => return None,
        };
        fs::metadata(path).ok().map(|m| m.len())
    }

    /// A snapshot of this store's counters.
    pub fn stats(&self) -> DagStatsSnapshot {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        DagStatsSnapshot {
            hits: [0, 1, 2, 3, 4].map(|i| load(&self.stats.hits[i])),
            misses: [0, 1, 2, 3, 4].map(|i| load(&self.stats.misses[i])),
            replayed: load(&self.stats.replayed),
            quarantined: load(&self.stats.quarantined),
            disk_errors: load(&self.stats.disk_errors),
        }
    }

    /// Records a node served from cache (per-instance + global counters).
    pub fn record_hit(&self, kind: NodeKind) {
        self.stats.hits[kind.ordinal()].fetch_add(1, Ordering::Relaxed);
        METRICS.hits[kind.ordinal()].inc();
    }

    /// Records a node that had to be computed.
    pub fn record_miss(&self, kind: NodeKind) {
        self.stats.misses[kind.ordinal()].fetch_add(1, Ordering::Relaxed);
        METRICS.misses[kind.ordinal()].inc();
    }

    /// Records one per-policy replay actually executed.
    pub fn record_replay_executed(&self) {
        self.stats.replayed.fetch_add(1, Ordering::Relaxed);
        METRICS.replayed.inc();
    }

    /// Per-policy replays this store instance executed so far.
    pub fn replays_executed(&self) -> u64 {
        self.stats.replayed.load(Ordering::Relaxed)
    }

    /// Reads + decodes an artifact file; any failure other than
    /// "absent" quarantines the file and reports `None` (the caller
    /// recomputes). Touches the mtime on success so GC evicts by use.
    fn load_checked<T>(
        &self,
        path: &Path,
        decode: impl FnOnce(&[u8]) -> Result<T, String>,
    ) -> Option<T> {
        let mut raw = Vec::new();
        match File::open(path) {
            Ok(mut f) => {
                if f.read_to_end(&mut raw).is_err() {
                    self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
                    METRICS.disk_errors.inc();
                    return None;
                }
                let _ = f.set_modified(std::time::SystemTime::now());
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
            Err(_) => {
                self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
                METRICS.disk_errors.inc();
                return None;
            }
        }
        match decode(&raw) {
            Ok(value) => Some(value),
            Err(_) => {
                // Corrupt artifact: move the evidence aside and let the
                // caller recompute into a fresh file.
                self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
                METRICS.disk_errors.inc();
                if let Ok(Some(_)) = quarantine_file(path) {
                    self.stats.quarantined.fetch_add(1, Ordering::Relaxed);
                    METRICS.quarantined.inc();
                }
                None
            }
        }
    }

    /// Loads the annotation artifact `fp`, or `None` if absent/corrupt.
    pub fn load_annotations(&self, fp: u64) -> Option<AnnotationsData> {
        self.load_checked(&self.ann_path(fp), |raw| decode_annotations(raw, fp))
    }

    /// Persists an annotation artifact (crash-safe).
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; callers treat a failed persist as a
    /// counter bump, not a run failure.
    pub fn save_annotations(&self, fp: u64, data: &AnnotationsData) -> io::Result<()> {
        atomic_write(&self.ann_path(fp), &encode_annotations(fp, data))
    }

    /// Loads the replay artifact `fp`, or `None` if absent/corrupt.
    pub fn load_replay(&self, fp: u64) -> Option<ReplayRecord> {
        self.load_checked(&self.replay_path(fp), |raw| decode_replay(raw, fp))
    }

    /// Persists a replay artifact (crash-safe).
    ///
    /// # Errors
    ///
    /// See [`DagStore::save_annotations`].
    pub fn save_replay(&self, fp: u64, rec: &ReplayRecord) -> io::Result<()> {
        atomic_write(&self.replay_path(fp), &encode_replay(fp, rec))
    }

    /// Loads the manifest for spec `fp`, or `None` if absent/corrupt.
    pub fn load_manifest(&self, fp: u64) -> Option<Manifest> {
        self.load_checked(&self.manifest_path(fp), |raw| decode_manifest(raw, fp))
    }

    /// Persists a spec manifest (crash-safe).
    ///
    /// # Errors
    ///
    /// See [`DagStore::save_annotations`].
    pub fn save_manifest(&self, fp: u64, manifest: &Manifest) -> io::Result<()> {
        atomic_write(&self.manifest_path(fp), &encode_manifest(fp, manifest))
    }

    /// Records a failed persist (the artifact will be recomputed next
    /// time; nothing else goes wrong).
    pub fn record_disk_error(&self) {
        self.stats.disk_errors.fetch_add(1, Ordering::Relaxed);
        METRICS.disk_errors.inc();
    }

    /// `(files, bytes)` across all three artifact directories.
    ///
    /// # Errors
    ///
    /// Propagates directory-walk failures.
    pub fn disk_stats(&self) -> io::Result<(u64, u64)> {
        let mut files = 0;
        let mut bytes = 0;
        for (sub, ext) in [
            ("ann", ANN_FILE_EXT),
            ("replays", REPLAY_FILE_EXT),
            ("manifests", MANIFEST_FILE_EXT),
        ] {
            let (f, b) = llc_trace::store::dir_stats(&self.root.join(sub), ext)?;
            files += f;
            bytes += b;
        }
        Ok((files, bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_ann() -> AnnotationsData {
        AnnotationsData {
            window: 256,
            next_use: vec![3, u64::MAX, 7, 9],
            shared_soon: vec![true, false, false, true],
        }
    }

    fn sample_replay() -> ReplayRecord {
        ReplayRecord {
            policy: "LRU".into(),
            llc: LlcStats {
                accesses: 100,
                hits: 60,
                fills: 40,
                evictions: 30,
                flushed: 10,
                hits_by_non_filler: 5,
                writes: 20,
            },
            l1: PrivateCacheStats {
                accesses: 1000,
                hits: 900,
                evictions: 80,
                invalidations: 7,
                back_invalidations: 0,
            },
            l2: PrivateCacheStats::default(),
            instructions: 5000,
            trace_accesses: 1200,
        }
    }

    #[test]
    fn codecs_round_trip() {
        let ann = sample_ann();
        assert_eq!(
            decode_annotations(&encode_annotations(9, &ann), 9).expect("decode"),
            ann
        );
        let rec = sample_replay();
        assert_eq!(
            decode_replay(&encode_replay(4, &rec), 4).expect("decode"),
            rec
        );
        let manifest = Manifest {
            nodes: vec![
                (NodeKind::Stream, 1),
                (NodeKind::Annotations, 2),
                (NodeKind::Replay, 3),
                (NodeKind::Table, 4),
            ],
        };
        assert_eq!(
            decode_manifest(&encode_manifest(7, &manifest), 7).expect("decode"),
            manifest
        );
    }

    #[test]
    fn decode_rejects_corruption_and_wrong_fp() {
        let raw = encode_annotations(9, &sample_ann());
        assert!(decode_annotations(&raw, 10).is_err(), "wrong fingerprint");
        let mut flipped = raw.clone();
        let mid = flipped.len() / 2;
        flipped[mid] ^= 0xff;
        assert!(decode_annotations(&flipped, 9).is_err(), "checksum");
        assert!(
            decode_annotations(&raw[..raw.len() - 3], 9).is_err(),
            "truncated"
        );
        assert!(decode_replay(&raw, 9).is_err(), "wrong magic");
    }

    #[test]
    fn store_round_trips_and_quarantines() {
        let dir = std::env::temp_dir().join(format!("llc-dag-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let store = DagStore::open(&dir).expect("open");

        assert_eq!(store.load_replay(5), None);
        assert_eq!(store.stats().quarantined, 0);
        let rec = sample_replay();
        store.save_replay(5, &rec).expect("save");
        assert_eq!(store.load_replay(5), Some(rec));
        assert!(store.bytes_of(NodeKind::Replay, 5).is_some());
        assert_eq!(store.bytes_of(NodeKind::Replay, 6), None);

        // Corrupt the file in place: the load quarantines and reports a
        // miss; the original bytes survive under quarantine/.
        fs::write(store.replay_path(5), b"garbage").expect("corrupt");
        assert_eq!(store.load_replay(5), None);
        let snap = store.stats();
        assert_eq!(snap.quarantined, 1);
        assert!(snap.disk_errors >= 1);
        assert!(!store.replay_path(5).exists());
        let quarantine = dir.join("replays").join(llc_trace::QUARANTINE_DIR);
        assert!(fs::read_dir(quarantine).expect("qdir").count() >= 1);

        let ann = sample_ann();
        store.save_annotations(8, &ann).expect("save");
        assert_eq!(store.load_annotations(8), Some(ann));
        let manifest = Manifest {
            nodes: vec![(NodeKind::Replay, 5)],
        };
        store.save_manifest(2, &manifest).expect("save");
        assert_eq!(store.load_manifest(2), Some(manifest));

        // The quarantined replay no longer counts; the annotation and
        // manifest artifacts do.
        let (files, bytes) = store.disk_stats().expect("disk stats");
        assert_eq!(files, 2);
        assert!(bytes > 0);
        let _ = fs::remove_dir_all(&dir);
    }
}

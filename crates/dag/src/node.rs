//! Plan types: the resolved view of a spec's artifact subgraph.
//!
//! A [`Plan`] is what a DAG resolver returns — one [`PlanNode`] per
//! artifact the spec depends on, each carrying its kind, fingerprint,
//! hit/miss state and on-disk size. The daemon attaches a plan summary
//! to submissions, `POST /plan` and `repro explain` render the full
//! node list, and the executor schedules exactly the missing subset.

/// The artifact kinds a plan can resolve.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NodeKind {
    /// A recorded LLC reference stream (`streams/<fp>.llcs`).
    Stream,
    /// A per-stream shard index (memory-resident, rebuilt on demand).
    Index,
    /// A fused next-use/shared-soon pre-pass (`dag/ann/<fp>.llca`).
    Annotations,
    /// A per-policy replay result (`dag/replays/<fp>.llcr`).
    Replay,
    /// The merged experiment table (`results/<fp>.json`).
    Table,
}

impl NodeKind {
    /// Every kind, in pipeline order.
    pub const ALL: [NodeKind; 5] = [
        NodeKind::Stream,
        NodeKind::Index,
        NodeKind::Annotations,
        NodeKind::Replay,
        NodeKind::Table,
    ];

    /// The kind's stable label (used in metrics, plans and manifests).
    pub fn label(self) -> &'static str {
        match self {
            NodeKind::Stream => "stream",
            NodeKind::Index => "index",
            NodeKind::Annotations => "annotations",
            NodeKind::Replay => "replay",
            NodeKind::Table => "table",
        }
    }

    /// The kind's stable one-byte code in serialized manifests.
    pub fn code(self) -> u8 {
        match self {
            NodeKind::Stream => 1,
            NodeKind::Index => 2,
            NodeKind::Annotations => 3,
            NodeKind::Replay => 4,
            NodeKind::Table => 5,
        }
    }

    /// Decodes a manifest kind code.
    pub fn from_code(code: u8) -> Option<NodeKind> {
        NodeKind::ALL.into_iter().find(|k| k.code() == code)
    }

    /// Index of the kind in [`NodeKind::ALL`] (for per-kind counters).
    pub fn ordinal(self) -> usize {
        self.code() as usize - 1
    }
}

/// One resolved artifact in a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanNode {
    /// What kind of artifact this is.
    pub kind: NodeKind,
    /// The node's content-addressed fingerprint.
    pub fp: u64,
    /// Human-readable description (workload, policy descriptor, ...).
    pub detail: String,
    /// `true` if the artifact is already available (disk or memory).
    pub hit: bool,
    /// On-disk size of the cached artifact, 0 for misses and
    /// memory-only nodes.
    pub bytes: u64,
}

/// The resolved artifact subgraph of one spec.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Plan {
    /// The nodes, in pipeline order (streams before their dependents).
    pub nodes: Vec<PlanNode>,
}

impl Plan {
    /// Adds a node.
    pub fn push(
        &mut self,
        kind: NodeKind,
        fp: u64,
        detail: impl Into<String>,
        hit: bool,
        bytes: u64,
    ) {
        self.nodes.push(PlanNode {
            kind,
            fp,
            detail: detail.into(),
            hit,
            bytes,
        });
    }

    /// Total nodes already cached.
    pub fn hits(&self) -> usize {
        self.nodes.iter().filter(|n| n.hit).count()
    }

    /// Total nodes that must be computed.
    pub fn misses(&self) -> usize {
        self.nodes.len() - self.hits()
    }

    /// Cached nodes of one kind.
    pub fn hits_of(&self, kind: NodeKind) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind && n.hit)
            .count()
    }

    /// Missing nodes of one kind.
    pub fn misses_of(&self, kind: NodeKind) -> usize {
        self.nodes
            .iter()
            .filter(|n| n.kind == kind && !n.hit)
            .count()
    }

    /// `true` when every node is already cached — the spec can be
    /// answered without any simulation.
    pub fn fully_cached(&self) -> bool {
        self.nodes.iter().all(|n| n.hit)
    }

    /// Bytes of cached artifacts the plan would reuse.
    pub fn cached_bytes(&self) -> u64 {
        self.nodes.iter().filter(|n| n.hit).map(|n| n.bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_codes_round_trip() {
        for kind in NodeKind::ALL {
            assert_eq!(NodeKind::from_code(kind.code()), Some(kind));
            assert_eq!(NodeKind::ALL[kind.ordinal()], kind);
        }
        assert_eq!(NodeKind::from_code(0), None);
        assert_eq!(NodeKind::from_code(6), None);
    }

    #[test]
    fn plan_counts() {
        let mut plan = Plan::default();
        plan.push(NodeKind::Stream, 1, "fft", true, 100);
        plan.push(NodeKind::Replay, 2, "LRU", false, 0);
        plan.push(NodeKind::Replay, 3, "SRRIP", true, 40);
        assert_eq!(plan.hits(), 2);
        assert_eq!(plan.misses(), 1);
        assert_eq!(plan.hits_of(NodeKind::Replay), 1);
        assert_eq!(plan.misses_of(NodeKind::Replay), 1);
        assert!(!plan.fully_cached());
        assert_eq!(plan.cached_bytes(), 140);
    }
}

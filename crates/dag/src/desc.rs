//! Replay descriptors: the "policy parameters" axis of a replay node.
//!
//! A [`ReplayDesc`] names everything a per-policy replay depends on
//! *besides* the stream: the base [`PolicyKind`] and, for oracle-wrapped
//! runs, the [`ProtectMode`] and the **resolved** retention window.
//! Callers must resolve defaulted windows (`oracle_window(config)`)
//! before building a descriptor — a descriptor never stores "default",
//! so the same effective run always maps to the same fingerprint no
//! matter how it was spelled.

use llc_policies::{PolicyKind, ProtectMode};

use crate::fingerprint::Fold;

/// The wrapper (if any) around the base policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayWrap {
    /// The base policy replayed bare.
    Plain,
    /// The sharing-aware oracle wrapper with an explicit mode and a
    /// resolved retention window (in LLC accesses).
    Oracle {
        /// How predicted-shared lines are protected.
        mode: ProtectMode,
        /// The resolved retention window, in LLC accesses.
        window: u64,
    },
}

/// Everything a per-policy replay depends on besides the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayDesc {
    /// The base replacement policy.
    pub kind: PolicyKind,
    /// The wrapper configuration.
    pub wrap: ReplayWrap,
}

/// `ProtectMode` as a stable small integer (the enum lives in
/// `llc-policies` without a serialization contract, so the mapping is
/// pinned here where it feeds on-disk fingerprints).
fn mode_code(mode: ProtectMode) -> u64 {
    match mode {
        ProtectMode::Eviction => 0,
        ProtectMode::Insertion => 1,
        ProtectMode::Both => 2,
    }
}

/// Short display name for a [`ProtectMode`].
fn mode_label(mode: ProtectMode) -> &'static str {
    match mode {
        ProtectMode::Eviction => "evict",
        ProtectMode::Insertion => "insert",
        ProtectMode::Both => "both",
    }
}

impl ReplayDesc {
    /// A bare replay of `kind`.
    pub fn plain(kind: PolicyKind) -> ReplayDesc {
        ReplayDesc {
            kind,
            wrap: ReplayWrap::Plain,
        }
    }

    /// An oracle-wrapped replay of `base` with a **resolved** window.
    pub fn oracle(base: PolicyKind, mode: ProtectMode, window: u64) -> ReplayDesc {
        ReplayDesc {
            kind: base,
            wrap: ReplayWrap::Oracle { mode, window },
        }
    }

    /// Stable fingerprint of the descriptor alone (fold it into
    /// [`crate::replay_fp`] with the stream fingerprint to address the
    /// replay node). Folds the policy label rather than the enum
    /// discriminant so reordering `PolicyKind` variants cannot silently
    /// re-key every stored replay.
    pub fn fingerprint(&self) -> u64 {
        let mut f = Fold::new(0x4c4c_4344_4453_4331); // "LLCDDSC1"
        f.str(self.kind.label());
        match self.wrap {
            ReplayWrap::Plain => {
                f.u64(0);
            }
            ReplayWrap::Oracle { mode, window } => {
                f.u64(1).u64(mode_code(mode)).u64(window);
            }
        }
        f.finish()
    }

    /// Human-readable descriptor label for plans and `repro explain`
    /// output, e.g. `LRU` or `oracle(LRU, evict, w=4096)`.
    pub fn label(&self) -> String {
        match self.wrap {
            ReplayWrap::Plain => self.kind.label().to_string(),
            ReplayWrap::Oracle { mode, window } => format!(
                "oracle({}, {}, w={window})",
                self.kind.label(),
                mode_label(mode)
            ),
        }
    }

    /// The annotation window this replay needs, if any: oracle wraps
    /// need the shared-soon vector for their window, and a bare OPT
    /// replay needs the next-use chains (window 0 — the next-use vector
    /// is window-independent). Plain realistic policies need none.
    pub fn annotation_window(&self) -> Option<u64> {
        match self.wrap {
            ReplayWrap::Oracle { window, .. } => Some(window),
            ReplayWrap::Plain if self.kind == PolicyKind::Opt => Some(0),
            ReplayWrap::Plain => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const KINDS: [PolicyKind; 5] = [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Opt,
    ];
    const MODES: [ProtectMode; 3] = [
        ProtectMode::Eviction,
        ProtectMode::Insertion,
        ProtectMode::Both,
    ];

    #[test]
    fn every_field_feeds_the_fingerprint() {
        let base = ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Eviction, 4096);
        assert_ne!(
            base.fingerprint(),
            ReplayDesc::oracle(PolicyKind::Srrip, ProtectMode::Eviction, 4096).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Insertion, 4096).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Eviction, 4097).fingerprint()
        );
        assert_ne!(
            base.fingerprint(),
            ReplayDesc::plain(PolicyKind::Lru).fingerprint()
        );
    }

    #[test]
    fn annotation_windows() {
        assert_eq!(ReplayDesc::plain(PolicyKind::Lru).annotation_window(), None);
        assert_eq!(
            ReplayDesc::plain(PolicyKind::Opt).annotation_window(),
            Some(0)
        );
        assert_eq!(
            ReplayDesc::oracle(PolicyKind::Srrip, ProtectMode::Both, 77).annotation_window(),
            Some(77)
        );
    }

    proptest! {
        /// All distinct descriptors get distinct fingerprints across the
        /// sampled space (kinds × wrap × modes × windows).
        #[test]
        fn fingerprints_are_injective_over_sampled_space(
            lhs in (0usize..KINDS.len(), 0usize..MODES.len(), 0u64..1024, proptest::bool::ANY),
            rhs in (0usize..KINDS.len(), 0usize..MODES.len(), 0u64..1024, proptest::bool::ANY),
        ) {
            let mk = |(k, m, w, oracle): (usize, usize, u64, bool)| {
                if oracle {
                    ReplayDesc::oracle(KINDS[k], MODES[m], w)
                } else {
                    ReplayDesc::plain(KINDS[k])
                }
            };
            let (a, b) = (mk(lhs), mk(rhs));
            prop_assert_eq!(a == b, a.fingerprint() == b.fingerprint());
        }
    }
}

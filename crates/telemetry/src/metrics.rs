//! The process-global metrics registry: lock-free atomic counters and
//! gauges plus fixed-bucket histograms, with a Prometheus
//! text-exposition encoder.
//!
//! # Hot-path cost model
//!
//! Registration (name → handle) takes a mutex and is meant to happen
//! once, at first use — the idiom is a `LazyLock<Arc<Counter>>` next to
//! the instrumented code. After that every recording is one (counter,
//! gauge) or a handful (histogram) of *relaxed* atomic operations on
//! cache-hot memory; there is no per-event locking, formatting or
//! allocation, which is what makes it safe to leave instrumentation on
//! permanently in replay hot paths.
//!
//! # Naming
//!
//! Metric and label names are sanitized to the Prometheus grammar
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*` for metrics, no `:` for labels): every
//! illegal character becomes `_` and a leading digit is prefixed with
//! `_`. Re-registering the same (name, labels) pair returns the same
//! handle; re-registering a name as a *different* metric kind (or a
//! histogram with different buckets) panics — that is a programming
//! error, not an operational condition.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard};
use std::time::Duration;

/// A monotonically increasing counter (`_total` series).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds 1.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge: a value that can go up and down.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `n` (may be negative).
    pub fn add(&self, n: i64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// The current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket histogram. Buckets are defined by their *upper
/// bounds* (`le` in the exposition); an implicit `+Inf` bucket catches
/// everything above the last bound. Observation is lock-free: one
/// relaxed `fetch_add` on the matching bucket, one on the count, and a
/// CAS loop folding the value into the bit-packed `f64` sum.
#[derive(Debug)]
pub struct Histogram {
    bounds: Vec<f64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1 (the +Inf bucket)
    count: AtomicU64,
    sum_bits: AtomicU64, // f64 bits, CAS-accumulated
}

/// Default buckets for latency histograms, in seconds: 250 µs … 2 min.
pub const TIME_BOUNDS: [f64; 16] = [
    0.000_25, 0.000_5, 0.001, 0.002_5, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 10.0,
    30.0, 120.0,
];

impl Histogram {
    fn new(bounds: &[f64]) -> Histogram {
        let mut bounds: Vec<f64> = bounds.iter().copied().filter(|b| b.is_finite()).collect();
        bounds.sort_by(|a, b| a.total_cmp(b));
        bounds.dedup();
        let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram {
            bounds,
            buckets,
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0),
        }
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        // First bucket whose upper bound satisfies `v <= bound`; past
        // the last bound, the +Inf bucket.
        let idx = self.bounds.partition_point(|b| *b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.sum_bits.load(Ordering::Relaxed);
        loop {
            let new = (f64::from_bits(cur) + v).to_bits();
            match self.sum_bits.compare_exchange_weak(
                cur,
                new,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(observed) => cur = observed,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.sum_bits.load(Ordering::Relaxed))
    }

    /// The configured upper bounds (without the implicit `+Inf`).
    pub fn bounds(&self) -> &[f64] {
        &self.bounds
    }

    /// Per-bucket (non-cumulative) observation counts, `+Inf` last.
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// An upper-bound estimate of the `q`-quantile (`0.0..=1.0`) of the
    /// observations so far: the upper bound of the first bucket whose
    /// cumulative count reaches `q * count`.
    ///
    /// Returns `None` when the histogram is empty or the quantile falls
    /// in the `+Inf` bucket (no finite bound describes it) — callers
    /// should fall back to a policy default. The estimate races benignly
    /// with concurrent observations; it is a planning signal (e.g. the
    /// daemon's `Retry-After` computation), not a ledger.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let counts = self.bucket_counts();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return self.bounds.get(i).copied();
            }
        }
        None
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn label(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

#[derive(Debug)]
struct Series {
    /// Sanitized `(label, value)` pairs, sorted by label name.
    labels: Vec<(String, String)>,
    metric: Metric,
}

#[derive(Debug)]
struct Family {
    help: String,
    kind: Kind,
    series: Vec<Series>,
}

/// A collection of named metrics with a Prometheus text encoder.
///
/// Most code uses the process-global instance via [`global`]; separate
/// registries exist so tests (and embedders wanting isolation) can
/// encode without the rest of the process's series.
#[derive(Debug, Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

static GLOBAL: LazyLock<Registry> = LazyLock::new(Registry::default);

/// The process-global registry.
pub fn global() -> &'static Registry {
    &GLOBAL
}

impl Registry {
    /// A new, empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Registers (or finds) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or finds) a counter with the given labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.register(name, help, Kind::Counter, labels, &[]) {
            Metric::Counter(c) => c,
            // infallible: `register` guarantees the kind matches.
            _ => unreachable!("registered counter"),
        }
    }

    /// Registers (or finds) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or finds) a gauge with the given labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.register(name, help, Kind::Gauge, labels, &[]) {
            Metric::Gauge(g) => g,
            // infallible: `register` guarantees the kind matches.
            _ => unreachable!("registered gauge"),
        }
    }

    /// Registers (or finds) an unlabelled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Arc<Histogram> {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or finds) a labelled histogram over `bounds`. Every
    /// series of one histogram family must use the same bounds.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Arc<Histogram> {
        match self.register(name, help, Kind::Histogram, labels, bounds) {
            Metric::Histogram(h) => h,
            // infallible: `register` guarantees the kind matches.
            _ => unreachable!("registered histogram"),
        }
    }

    fn register(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        bounds: &[f64],
    ) -> Metric {
        let name = sanitize_metric_name(name);
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (sanitize_label_name(k), (*v).to_string()))
            .collect();
        labels.sort();
        let mut families = lock_recovering(&self.families);
        let family = families.entry(name.clone()).or_insert_with(|| Family {
            help: help.to_string(),
            kind,
            series: Vec::new(),
        });
        assert!(
            family.kind == kind,
            "metric {name:?} already registered as a {}, cannot re-register as a {}",
            family.kind.label(),
            kind.label()
        );
        if let Some(series) = family.series.iter().find(|s| s.labels == labels) {
            if let (Metric::Histogram(h), Kind::Histogram) = (&series.metric, kind) {
                assert!(
                    h.bounds() == Histogram::new(bounds).bounds(),
                    "histogram {name:?} re-registered with different buckets"
                );
            }
            return clone_metric(&series.metric);
        }
        let metric = match kind {
            Kind::Counter => Metric::Counter(Arc::new(Counter::default())),
            Kind::Gauge => Metric::Gauge(Arc::new(Gauge::default())),
            Kind::Histogram => Metric::Histogram(Arc::new(Histogram::new(bounds))),
        };
        let handle = clone_metric(&metric);
        family.series.push(Series { labels, metric });
        handle
    }

    /// Encodes every registered metric in the Prometheus text
    /// exposition format (version 0.0.4), families in name order and
    /// series in label order.
    pub fn encode(&self) -> String {
        let families = lock_recovering(&self.families);
        let mut out = String::new();
        for (name, family) in families.iter() {
            out.push_str(&format!("# HELP {name} {}\n", escape_help(&family.help)));
            out.push_str(&format!("# TYPE {name} {}\n", family.kind.label()));
            let mut series: Vec<&Series> = family.series.iter().collect();
            series.sort_by(|a, b| a.labels.cmp(&b.labels));
            for s in series {
                match &s.metric {
                    Metric::Counter(c) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&s.labels, None),
                            c.get()
                        ));
                    }
                    Metric::Gauge(g) => {
                        out.push_str(&format!(
                            "{name}{} {}\n",
                            render_labels(&s.labels, None),
                            g.get()
                        ));
                    }
                    Metric::Histogram(h) => {
                        let mut cumulative = 0u64;
                        for (bound, count) in h.bounds().iter().zip(h.bucket_counts()) {
                            cumulative += count;
                            out.push_str(&format!(
                                "{name}_bucket{} {cumulative}\n",
                                render_labels(&s.labels, Some(&fmt_f64(*bound)))
                            ));
                        }
                        out.push_str(&format!(
                            "{name}_bucket{} {}\n",
                            render_labels(&s.labels, Some("+Inf")),
                            h.count()
                        ));
                        out.push_str(&format!(
                            "{name}_sum{} {}\n",
                            render_labels(&s.labels, None),
                            fmt_f64(h.sum())
                        ));
                        out.push_str(&format!(
                            "{name}_count{} {}\n",
                            render_labels(&s.labels, None),
                            h.count()
                        ));
                    }
                }
            }
        }
        out
    }
}

fn clone_metric(metric: &Metric) -> Metric {
    match metric {
        Metric::Counter(c) => Metric::Counter(Arc::clone(c)),
        Metric::Gauge(g) => Metric::Gauge(Arc::clone(g)),
        Metric::Histogram(h) => Metric::Histogram(Arc::clone(h)),
    }
}

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// `{label="value",...}` (with the optional `le` bound appended), or
/// the empty string for an unlabelled series.
fn render_labels(labels: &[(String, String)], le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v)))
        .collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

/// Formats an `f64` the way Prometheus expects (shortest round-trip
/// decimal; integral values keep no trailing `.0` — both forms parse).
fn fmt_f64(v: f64) -> String {
    format!("{v}")
}

/// Escapes a HELP string: backslash and newline.
fn escape_help(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value: backslash, double quote and newline.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Sanitizes a metric name to `[a-zA-Z_:][a-zA-Z0-9_:]*`.
fn sanitize_metric_name(name: &str) -> String {
    sanitize(name, true)
}

/// Sanitizes a label name to `[a-zA-Z_][a-zA-Z0-9_]*`.
fn sanitize_label_name(name: &str) -> String {
    sanitize(name, false)
}

fn sanitize(name: &str, allow_colon: bool) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for c in name.chars() {
        let legal = c.is_ascii_alphanumeric() || c == '_' || (allow_colon && c == ':');
        out.push(if legal { c } else { '_' });
    }
    if out.is_empty() || out.starts_with(|c: char| c.is_ascii_digit()) {
        out.insert(0, '_');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_record() {
        let r = Registry::new();
        let c = r.counter("requests_total", "requests");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = r.gauge("workers", "spare workers");
        g.set(7);
        g.add(-3);
        assert_eq!(g.get(), 4);
        let text = r.encode();
        assert!(text.contains("# TYPE requests_total counter"));
        assert!(text.contains("requests_total 5"));
        assert!(text.contains("# TYPE workers gauge"));
        assert!(text.contains("workers 4"));
    }

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        let a = r.counter("hits_total", "hits");
        let b = r.counter("hits_total", "hits");
        assert!(Arc::ptr_eq(&a, &b));
        a.inc();
        assert_eq!(b.get(), 1);
        // Distinct label sets are distinct series of one family.
        let x = r.counter_with("jobs_total", "jobs", &[("state", "done")]);
        let y = r.counter_with("jobs_total", "jobs", &[("state", "failed")]);
        assert!(!Arc::ptr_eq(&x, &y));
        x.add(2);
        y.inc();
        let text = r.encode();
        assert!(text.contains("jobs_total{state=\"done\"} 2"));
        assert!(text.contains("jobs_total{state=\"failed\"} 1"));
        // One HELP/TYPE header per family, not per series.
        assert_eq!(text.matches("# TYPE jobs_total counter").count(), 1);
    }

    #[test]
    fn quantile_reports_bucket_upper_bounds() {
        let r = Registry::new();
        let h = r.histogram("wait_seconds", "wait", &[1.0, 2.0, 5.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        for v in [0.5, 0.7, 1.5, 1.6, 1.7, 1.8, 3.0, 4.0, 4.5, 4.9] {
            h.observe(v);
        }
        assert_eq!(h.quantile(0.0), Some(1.0));
        assert_eq!(h.quantile(0.2), Some(1.0));
        assert_eq!(h.quantile(0.5), Some(2.0));
        assert_eq!(h.quantile(1.0), Some(5.0));
        // A quantile landing in the +Inf bucket has no finite bound.
        h.observe(100.0);
        assert_eq!(h.quantile(1.0), None);
    }

    #[test]
    fn histogram_bucket_boundaries_are_le_inclusive() {
        let r = Registry::new();
        let h = r.histogram("latency_seconds", "latency", &[1.0, 2.0, 5.0]);
        for v in [0.5, 1.0, 1.5, 2.0, 7.0] {
            h.observe(v);
        }
        // Non-cumulative: (≤1): 0.5, 1.0 · (≤2): 1.5, 2.0 · (≤5): none ·
        // +Inf: 7.0. A value equal to a bound lands in that bound's
        // bucket (`le` is inclusive).
        assert_eq!(h.bucket_counts(), vec![2, 2, 0, 1]);
        assert_eq!(h.count(), 5);
        assert!((h.sum() - 12.0).abs() < 1e-9);
        let text = r.encode();
        assert!(text.contains("latency_seconds_bucket{le=\"1\"} 2"));
        assert!(
            text.contains("latency_seconds_bucket{le=\"2\"} 4"),
            "buckets are cumulative"
        );
        assert!(text.contains("latency_seconds_bucket{le=\"5\"} 4"));
        assert!(text.contains("latency_seconds_bucket{le=\"+Inf\"} 5"));
        assert!(text.contains("latency_seconds_sum 12"));
        assert!(text.contains("latency_seconds_count 5"));
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let r = Registry::new();
        let h = r.histogram("h", "h", &[5.0, 1.0, 5.0, f64::INFINITY, 2.0]);
        assert_eq!(
            h.bounds(),
            &[1.0, 2.0, 5.0],
            "+Inf is implicit, duplicates collapse"
        );
        h.observe_duration(Duration::from_secs(3));
        assert_eq!(h.bucket_counts(), vec![0, 0, 1, 0]);
    }

    #[test]
    fn names_and_labels_are_sanitized() {
        let r = Registry::new();
        r.counter("2bad-name.total", "leading digit and punctuation")
            .inc();
        r.counter_with("ok_total", "ok", &[("bad-label", "v")])
            .inc();
        let text = r.encode();
        assert!(text.contains("_2bad_name_total 1"));
        assert!(text.contains("ok_total{bad_label=\"v\"} 1"));
    }

    #[test]
    fn help_and_label_values_are_escaped() {
        let r = Registry::new();
        r.counter_with(
            "esc_total",
            "line\nbreak \\ slash",
            &[("p", "say \"hi\"\n\\")],
        )
        .inc();
        let text = r.encode();
        assert!(text.contains("# HELP esc_total line\\nbreak \\\\ slash"));
        assert!(text.contains("esc_total{p=\"say \\\"hi\\\"\\n\\\\\"} 1"));
        // Escaping keeps the exposition line-parseable: exactly one
        // physical line per series.
        assert_eq!(
            text.lines().filter(|l| l.starts_with("esc_total{")).count(),
            1
        );
    }

    #[test]
    fn concurrent_increments_do_not_lose_updates() {
        let r = Registry::new();
        let c = r.counter("par_total", "parallel");
        let h = r.histogram("par_seconds", "parallel", &TIME_BOUNDS);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    for i in 0..1000 {
                        c.inc();
                        h.observe(f64::from(i) * 1e-4);
                    }
                });
            }
        });
        assert_eq!(c.get(), 8000);
        assert_eq!(h.count(), 8000);
        assert_eq!(h.bucket_counts().iter().sum::<u64>(), 8000);
        let expected: f64 = (0..1000).map(|i| f64::from(i) * 1e-4).sum::<f64>() * 8.0;
        assert!(
            (h.sum() - expected).abs() < 1e-6,
            "CAS sum must not lose updates"
        );
    }

    #[test]
    #[should_panic(expected = "cannot re-register")]
    fn kind_clash_panics() {
        let r = Registry::new();
        r.counter("clash", "as counter");
        r.gauge("clash", "as gauge");
    }

    #[test]
    fn global_registry_is_shared() {
        let a = global().counter("llc_telemetry_selftest_total", "self test");
        let b = global().counter("llc_telemetry_selftest_total", "self test");
        assert!(Arc::ptr_eq(&a, &b));
    }
}

//! # llc-telemetry — metrics and span tracing for the simulation stack
//!
//! A std-only observability layer with two independent halves:
//!
//! * [`metrics`] — a process-global **metrics registry** of lock-free
//!   atomic [`Counter`]s and [`Gauge`]s plus fixed-bucket
//!   [`Histogram`]s, cheap enough to live on replay hot paths (one
//!   relaxed atomic RMW per event once the handle is cached), with a
//!   Prometheus text-exposition encoder behind `GET /metrics`.
//! * [`spans`] — a **span tracer**: scoped RAII spans recorded into
//!   per-thread ring buffers and exported as Chrome-trace JSON
//!   (loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev)).
//!   Tracing is off by default; a disabled span costs a single relaxed
//!   atomic load, so instrumentation can stay in place permanently.
//!
//! The two halves share a design rule: **registration is slow-path,
//! recording is hot-path**. Callers resolve a metric handle once (a
//! `LazyLock<Arc<Counter>>` next to the instrumented code is the
//! idiom) and then only touch atomics; spans only touch their own
//! thread's buffer, so recording never contends across threads.
//!
//! ## Example
//!
//! ```
//! use std::sync::{Arc, LazyLock};
//! use llc_telemetry::metrics::{global, Counter};
//! use llc_telemetry::spans;
//!
//! static REPLAYS: LazyLock<Arc<Counter>> = LazyLock::new(|| {
//!     global().counter("my_replays_total", "Replays run by this example")
//! });
//!
//! spans::set_enabled(true);
//! {
//!     let _span = spans::span("replay");
//!     REPLAYS.inc();
//! }
//! assert!(global().encode().contains("my_replays_total"));
//! assert!(spans::chrome_trace_json().contains("\"replay\""));
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod metrics;
pub mod spans;

pub use metrics::{global, Counter, Gauge, Histogram, Registry};
pub use spans::{chrome_trace_json, set_enabled, span, span_owned, span_with, SpanGuard};

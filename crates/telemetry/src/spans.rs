//! Scoped RAII span tracing with Chrome-trace JSON export.
//!
//! A span measures one region of code: [`span`] captures a start time,
//! the returned [`SpanGuard`] records `(name, start, duration)` into
//! the calling thread's ring buffer when dropped. Buffers are
//! per-thread, so recording never contends across threads; the only
//! global synchronization is buffer registration (once per thread) and
//! export.
//!
//! Tracing is **off by default**. A span taken while tracing is
//! disabled costs a single relaxed atomic load and records nothing, so
//! instrumentation can stay in hot code permanently — the streams and
//! shard bench gates run with this layer compiled in.
//!
//! Threads that exit before export (the suite's guarded experiment
//! threads, the daemon's per-job watchdogs) *retire* their buffer into
//! a bounded global list instead of losing it, so a batch run can
//! export the full timeline at the end. The retired list is capped
//! (oldest buffers drop first, counted in [`dropped_events`]) so a
//! long-lived daemon that briefly enabled tracing cannot grow without
//! bound.
//!
//! [`chrome_trace_json`] renders everything recorded so far in the
//! Chrome trace-event format (an object with a `traceEvents` array of
//! `ph:"X"` complete events plus `ph:"M"` thread-name metadata), which
//! loads directly in `chrome://tracing` or <https://ui.perfetto.dev>.

use std::borrow::Cow;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, LazyLock, Mutex, MutexGuard};
use std::time::Instant;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static RING_CAP: AtomicUsize = AtomicUsize::new(1 << 16);
/// Events dropped because a ring wrapped or a retired buffer was
/// evicted from the bounded retired list.
static DROPPED: AtomicU64 = AtomicU64::new(0);
/// Retired buffers kept for export after their thread exited.
const RETIRED_CAP: usize = 1024;

/// All timestamps are relative to this process-wide epoch; it is
/// forced before any span's start time is taken, so `ts` never
/// underflows.
static EPOCH: LazyLock<Instant> = LazyLock::new(Instant::now);

static LIVE: Mutex<Vec<Arc<Mutex<ThreadBuf>>>> = Mutex::new(Vec::new());
static RETIRED: Mutex<VecDeque<ThreadBuf>> = Mutex::new(VecDeque::new());

#[derive(Debug, Clone)]
struct Event {
    name: Cow<'static, str>,
    ts_us: u64,
    dur_us: u64,
}

#[derive(Debug, Default)]
struct ThreadBuf {
    tid: u64,
    thread_name: String,
    ring: Vec<Event>,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    cap: usize,
}

impl ThreadBuf {
    fn push(&mut self, e: Event) {
        if self.ring.len() < self.cap {
            self.ring.push(e);
        } else if self.cap > 0 {
            // Overwrite the oldest event; spans are most useful near
            // the end of a run, so the tail wins.
            self.ring[self.head] = e;
            self.head = (self.head + 1) % self.cap;
            DROPPED.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events in chronological order (ring unrolled from `head`).
    fn ordered(&self) -> Vec<Event> {
        let mut out = Vec::with_capacity(self.ring.len());
        out.extend_from_slice(&self.ring[self.head..]);
        out.extend_from_slice(&self.ring[..self.head]);
        out
    }
}

/// Owns this thread's registration; the `Drop` impl retires the
/// buffer when the thread exits so its spans survive until export.
struct LocalHandle {
    buf: Arc<Mutex<ThreadBuf>>,
}

impl Drop for LocalHandle {
    fn drop(&mut self) {
        let mut live = lock_recovering(&LIVE);
        live.retain(|b| !Arc::ptr_eq(b, &self.buf));
        drop(live);
        let taken = std::mem::take(&mut *lock_recovering(&self.buf));
        if taken.ring.is_empty() {
            return;
        }
        let mut retired = lock_recovering(&RETIRED);
        retired.push_back(taken);
        while retired.len() > RETIRED_CAP {
            if let Some(evicted) = retired.pop_front() {
                DROPPED.fetch_add(evicted.ring.len() as u64, Ordering::Relaxed);
            }
        }
    }
}

thread_local! {
    static LOCAL: RefCell<Option<LocalHandle>> = const { RefCell::new(None) };
}

fn lock_recovering<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Turns span recording on or off process-wide. Guards created while
/// disabled stay no-ops even if tracing is enabled before they drop.
pub fn set_enabled(on: bool) {
    if on {
        // Pin the epoch before any span can take a start time.
        let _ = *EPOCH;
    }
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether span recording is currently on.
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Sets the per-thread ring capacity for buffers created *after* this
/// call (existing buffers keep their size). Clamped to at least 16.
pub fn set_ring_capacity(cap: usize) {
    RING_CAP.store(cap.max(16), Ordering::Relaxed);
}

/// Starts a span with a static name. Returns a guard that records the
/// span on drop; while tracing is disabled this is a single atomic
/// load and the guard is inert.
#[must_use = "a span measures until the guard drops; binding it to _ discards it immediately"]
pub fn span(name: &'static str) -> SpanGuard {
    span_cow(Cow::Borrowed(name))
}

/// Starts a span with a computed name (e.g. `format!("shard {i}")`).
#[must_use = "a span measures until the guard drops; binding it to _ discards it immediately"]
pub fn span_owned(name: String) -> SpanGuard {
    span_cow(Cow::Owned(name))
}

/// Starts a span whose name is computed lazily — the closure only runs
/// if tracing is enabled, so instrumented hot paths never pay for the
/// `format!` while disabled.
#[must_use = "a span measures until the guard drops; binding it to _ discards it immediately"]
pub fn span_with<F: FnOnce() -> String>(name: F) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    span_cow(Cow::Owned(name()))
}

fn span_cow(name: Cow<'static, str>) -> SpanGuard {
    if !enabled() {
        return SpanGuard(None);
    }
    let epoch = *EPOCH;
    SpanGuard(Some(Active {
        name,
        epoch,
        start: Instant::now(),
    }))
}

#[derive(Debug)]
struct Active {
    name: Cow<'static, str>,
    epoch: Instant,
    start: Instant,
}

/// RAII guard returned by [`span`]/[`span_owned`]; records the span
/// into the thread's ring buffer when dropped.
#[derive(Debug)]
#[must_use = "a span measures until the guard drops; binding it to _ discards it immediately"]
pub struct SpanGuard(Option<Active>);

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(active) = self.0.take() else { return };
        let dur_us = active.start.elapsed().as_micros() as u64;
        let ts_us = active.start.duration_since(active.epoch).as_micros() as u64;
        record(Event {
            name: active.name,
            ts_us,
            dur_us,
        });
    }
}

fn record(e: Event) {
    // `try_with` so a span dropped during thread teardown (after the
    // thread-local was destructed) is discarded instead of panicking.
    let _ = LOCAL.try_with(|slot| {
        let mut slot = slot.borrow_mut();
        let handle = slot.get_or_insert_with(register_thread);
        lock_recovering(&handle.buf).push(e);
    });
}

fn register_thread() -> LocalHandle {
    let buf = Arc::new(Mutex::new(ThreadBuf {
        tid: NEXT_TID.fetch_add(1, Ordering::Relaxed),
        thread_name: std::thread::current()
            .name()
            .unwrap_or("unnamed")
            .to_string(),
        ring: Vec::new(),
        head: 0,
        cap: RING_CAP.load(Ordering::Relaxed),
    }));
    lock_recovering(&LIVE).push(Arc::clone(&buf));
    LocalHandle { buf }
}

/// Total events lost to ring wrap-around or retired-buffer eviction.
pub fn dropped_events() -> u64 {
    DROPPED.load(Ordering::Relaxed)
}

/// Number of events currently buffered (live + retired threads).
pub fn event_count() -> usize {
    let live: usize = lock_recovering(&LIVE)
        .iter()
        .map(|b| lock_recovering(b).ring.len())
        .sum();
    let retired: usize = lock_recovering(&RETIRED).iter().map(|b| b.ring.len()).sum();
    live + retired
}

/// Clears all recorded spans (live rings, retired buffers, drop
/// counter). Intended for tests.
pub fn reset() {
    for buf in lock_recovering(&LIVE).iter() {
        let mut b = lock_recovering(buf);
        b.ring.clear();
        b.head = 0;
    }
    lock_recovering(&RETIRED).clear();
    DROPPED.store(0, Ordering::Relaxed);
}

/// Renders everything recorded so far as Chrome trace-event JSON.
///
/// The output is a single object `{"displayTimeUnit":"ms",
/// "traceEvents":[...]}` containing one `ph:"M"` `thread_name`
/// metadata event per thread and one `ph:"X"` complete event per span
/// (timestamps and durations in microseconds), sorted by start time.
/// It loads directly in `chrome://tracing` and Perfetto.
pub fn chrome_trace_json() -> String {
    struct Snapshot {
        tid: u64,
        thread_name: String,
        events: Vec<Event>,
    }
    let mut snaps: Vec<Snapshot> = Vec::new();
    for buf in lock_recovering(&LIVE).iter() {
        let b = lock_recovering(buf);
        snaps.push(Snapshot {
            tid: b.tid,
            thread_name: b.thread_name.clone(),
            events: b.ordered(),
        });
    }
    for b in lock_recovering(&RETIRED).iter() {
        snaps.push(Snapshot {
            tid: b.tid,
            thread_name: b.thread_name.clone(),
            events: b.ordered(),
        });
    }
    snaps.sort_by_key(|s| s.tid);

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    let mut push = |out: &mut String, item: String| {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&item);
    };
    for s in &snaps {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"M\",\"pid\":1,\"tid\":{},\"name\":\"thread_name\",\"args\":{{\"name\":\"{}\"}}}}",
                s.tid,
                escape_json(&s.thread_name)
            ),
        );
    }
    let mut events: Vec<(u64, &Event)> = Vec::new();
    for s in &snaps {
        events.extend(s.events.iter().map(|e| (s.tid, e)));
    }
    events.sort_by_key(|(tid, e)| (e.ts_us, *tid));
    for (tid, e) in events {
        push(
            &mut out,
            format!(
                "{{\"ph\":\"X\",\"pid\":1,\"tid\":{tid},\"ts\":{},\"dur\":{},\"name\":\"{}\",\"cat\":\"llc\"}}",
                e.ts_us,
                e.dur_us,
                escape_json(&e.name)
            ),
        );
    }
    out.push_str("]}");
    out
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The span globals are process-wide; serialize the tests that
    /// toggle them (same pattern as `llc_sharing::budget`).
    static SERIAL: Mutex<()> = Mutex::new(());

    fn isolated() -> MutexGuard<'static, ()> {
        let guard = lock_recovering(&SERIAL);
        set_enabled(false);
        reset();
        guard
    }

    #[test]
    fn disabled_spans_record_nothing() {
        let _guard = isolated();
        {
            let _s = span("ignored");
        }
        assert_eq!(event_count(), 0);
        assert!(!chrome_trace_json().contains("ignored"));
    }

    #[test]
    fn spans_measure_their_scope() {
        let _guard = isolated();
        set_enabled(true);
        {
            let _s = span("timed");
            std::thread::sleep(Duration::from_millis(5));
        }
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(json.contains("\"name\":\"timed\""));
        assert!(json.contains("\"ph\":\"X\""));
        // The recorded duration covers the sleep.
        let dur: u64 = json
            .split("\"dur\":")
            .nth(1)
            .and_then(|t| t.split(',').next())
            .and_then(|t| t.parse().ok())
            .expect("dur field");
        assert!(dur >= 4_000, "5ms sleep recorded as {dur}us");
    }

    #[test]
    fn exited_threads_retire_their_spans() {
        let _guard = isolated();
        set_enabled(true);
        std::thread::Builder::new()
            .name("retiree".into())
            .spawn(|| {
                let _s = span("from-a-dead-thread");
            })
            .unwrap()
            .join()
            .unwrap();
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(
            json.contains("from-a-dead-thread"),
            "retired buffer must survive export"
        );
        assert!(
            json.contains("\"args\":{\"name\":\"retiree\"}"),
            "thread name metadata"
        );
    }

    #[test]
    fn ring_overflow_drops_oldest_and_counts() {
        let _guard = isolated();
        set_enabled(true);
        // A fresh thread picks up the small capacity.
        set_ring_capacity(16);
        std::thread::spawn(|| {
            for i in 0..20 {
                let _s = span_owned(format!("e{i}"));
            }
        })
        .join()
        .unwrap();
        set_ring_capacity(1 << 16);
        set_enabled(false);
        assert_eq!(dropped_events(), 4);
        let json = chrome_trace_json();
        assert!(!json.contains("\"e0\""), "oldest events are overwritten");
        assert!(json.contains("\"e19\""), "newest events survive");
    }

    #[test]
    fn json_escapes_hostile_names() {
        let _guard = isolated();
        set_enabled(true);
        {
            let _s = span_owned("quote \" slash \\ newline \n".to_string());
        }
        set_enabled(false);
        let json = chrome_trace_json();
        assert!(json.contains("quote \\\" slash \\\\ newline \\n"));
        // No raw control characters or unescaped quotes survive.
        assert!(!json.contains('\n'));
    }

    #[test]
    fn guards_created_while_disabled_stay_inert() {
        let _guard = isolated();
        let s = span("preexisting");
        set_enabled(true);
        drop(s);
        set_enabled(false);
        assert!(!chrome_trace_json().contains("preexisting"));
    }
}

//! Property tests over the workload models: every app must produce
//! well-formed, deterministic, budget-exact traces at any thread count.

use llc_trace::{App, Scale, TraceSource};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Budget exactness and core validity hold for every (app, threads).
    #[test]
    fn budgets_and_cores(app_idx in 0usize..16, threads in 1usize..9) {
        let app = App::ALL[app_idx];
        let mut w = app.workload(threads, Scale::Tiny);
        let expect = threads as u64 * Scale::Tiny.thread_accesses();
        prop_assert_eq!(w.len_hint(), Some(expect));
        let mut per_core = vec![0u64; threads];
        let mut count = 0u64;
        while let Some(a) = w.next_access() {
            prop_assert!(a.core.index() < threads, "{} produced core {}", app, a.core);
            prop_assert!(a.instr_gap >= 1);
            prop_assert!(a.pc.raw() > 0);
            per_core[a.core.index()] += 1;
            count += 1;
        }
        prop_assert_eq!(count, expect);
        for (c, n) in per_core.iter().enumerate() {
            prop_assert_eq!(*n, Scale::Tiny.thread_accesses(), "core {} budget", c);
        }
        // Exhausted source stays exhausted.
        prop_assert!(w.next_access().is_none());
    }

    /// Workload generation is bit-for-bit deterministic.
    #[test]
    fn deterministic(app_idx in 0usize..16) {
        let app = App::ALL[app_idx];
        let mut a = app.workload(3, Scale::Tiny);
        let mut b = app.workload(3, Scale::Tiny);
        for _ in 0..20_000 {
            prop_assert_eq!(a.next_access(), b.next_access());
        }
    }

    /// Sharing-class labels are honest: in apps labelled private almost no
    /// accesses go to cross-thread blocks; in every other app a real share
    /// of the access volume does (hot shared structures can be few blocks,
    /// so this is access-weighted, not footprint-weighted).
    #[test]
    fn sharing_labels_are_honest(app_idx in 0usize..16) {
        use std::collections::HashMap;
        let app = App::ALL[app_idx];
        // Pass 1: find cross-thread blocks.
        let mut w = app.workload(4, Scale::Tiny);
        let mut owners: HashMap<u64, u32> = HashMap::new();
        while let Some(a) = w.next_access() {
            *owners.entry(a.addr.block().raw()).or_insert(0) |= 1 << a.core.index();
        }
        // Pass 2 (identical stream): access-weighted share.
        let mut w = app.workload(4, Scale::Tiny);
        let mut total = 0u64;
        let mut shared = 0u64;
        while let Some(a) = w.next_access() {
            total += 1;
            if owners[&a.addr.block().raw()].count_ones() >= 2 {
                shared += 1;
            }
        }
        let frac = shared as f64 / total as f64;
        match app.sharing_class() {
            llc_trace::SharingClass::Private => {
                prop_assert!(frac < 0.15, "{}: {:.3} of accesses to cross-thread blocks", app, frac);
            }
            _ => {
                prop_assert!(frac > 0.05, "{}: only {:.4} of accesses to cross-thread blocks", app, frac);
            }
        }
    }
}

//! PARSEC-style application models.

use crate::apps::build::{arm, Build};
use crate::apps::{App, Scale};
use crate::layout::Region;
use crate::patterns::{
    pipeline_channel, LockHot, Pattern, PrivateStream, PrivateWorkingSet, SharedReadOnly, Stencil,
};
use crate::workload::{ThreadSpec, Workload};

/// `blackscholes`: embarrassingly parallel option pricing. Each thread
/// streams through its own slice of the option array; a tiny read-only
/// parameter table is the only shared data.
pub(crate) fn blackscholes(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Blackscholes, scale);
    let params = b.region_fixed(32);
    let params_site = b.site(1);
    let mut specs = Vec::new();
    for _ in 0..threads {
        let options = b.region(4096);
        let s = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(15, PrivateStream::new(options, s, 4, 6)),
                arm(1, SharedReadOnly::new(params, params_site, 0.8, 4)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `bodytrack`: particle-filter body tracking. All threads evaluate
/// likelihoods against one large read-mostly model (image/edge maps) with
/// heavy popularity skew, plus per-thread particle scratch.
pub(crate) fn bodytrack(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Bodytrack, scale);
    let model = b.region(4096);
    let model_site = b.site(1);
    let locks = b.region_fixed(8);
    let locks_site = b.site(2);
    let mut specs = Vec::new();
    for _ in 0..threads {
        let scratch = b.region(384);
        let s = b.site(2);
        let frames = b.region(4096);
        let fs = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(6, SharedReadOnly::new(model, model_site, 0.7, 5)),
                arm(3, PrivateWorkingSet::new(scratch, s, 0.8, 25, 4)),
                arm(4, PrivateStream::new(frames, fs, 0, 5)),
                arm(1, LockHot::new(locks, locks_site, 8)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `canneal`: simulated annealing over a huge netlist. Threads pick
/// random elements and swap them: low-locality, fine-grained read-write
/// sharing over one shared structure.
pub(crate) fn canneal(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Canneal, scale);
    let netlist = b.region(8192);
    let mut specs = Vec::new();
    for _ in 0..threads {
        // A per-thread sampler over the *shared* netlist region: random
        // read-write sharing (the "working set" pattern is
        // region-agnostic).
        let s = b.site(2);
        let s2 = b.site(2);
        let scratch = b.region(64);
        specs.push(ThreadSpec::new(
            vec![
                arm(8, PrivateWorkingSet::new(netlist, s, 0.35, 12, 9)),
                arm(2, PrivateWorkingSet::new(scratch, s2, 0.8, 30, 4)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `dedup`: a pipeline. Thread `i` consumes the ring written by thread
/// `i-1` and produces into the ring read by thread `i+1`; stage 0 streams
/// the input file.
pub(crate) fn dedup(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Dedup, scale);
    let stages = threads;
    let mut producers: Vec<Option<crate::patterns::Producer>> = Vec::new();
    let mut consumers: Vec<Option<crate::patterns::Consumer>> = Vec::new();
    consumers.push(None);
    for _ in 0..stages.saturating_sub(1) {
        let ring = b.region(512);
        let ps = b.site(1);
        let cs = b.site(1);
        let (p, c) = pipeline_channel(ring, ps, cs, 64, 5);
        producers.push(Some(p));
        consumers.push(Some(c));
    }
    producers.push(None);

    let mut specs = Vec::new();
    for (t, (prod, cons)) in producers.into_iter().zip(consumers).enumerate() {
        let mut arms: Vec<(u32, Box<dyn Pattern>)> = Vec::new();
        if t == 0 {
            let input = b.region(4096);
            arms.push(arm(6, PrivateStream::new(input, b.site(1), 0, 5)));
        }
        if let Some(c) = cons {
            arms.push((5, Box::new(c)));
        }
        if let Some(p) = prod {
            arms.push((5, Box::new(p)));
        }
        let scratch = b.region(128);
        let s = b.site(2);
        arms.push(arm(3, PrivateWorkingSet::new(scratch, s, 0.8, 30, 4)));
        let local = b.region(2048);
        let ls = b.site(2);
        arms.push(arm(3, PrivateStream::new(local, ls, 2, 4)));
        specs.push(ThreadSpec::new(arms, b.accesses()));
    }
    b.finish(specs)
}

/// `ferret`: similarity-search pipeline. Like `dedup` but with a large
/// read-only shared database every middle stage queries.
pub(crate) fn ferret(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Ferret, scale);
    let database = b.region(4096);
    let db_site = b.site(1);
    let stages = threads;
    let mut producers: Vec<Option<crate::patterns::Producer>> = Vec::new();
    let mut consumers: Vec<Option<crate::patterns::Consumer>> = Vec::new();
    consumers.push(None);
    for _ in 0..stages.saturating_sub(1) {
        let ring = b.region(128);
        let ps = b.site(1);
        let cs = b.site(1);
        let (p, c) = pipeline_channel(ring, ps, cs, 8, 6);
        producers.push(Some(p));
        consumers.push(Some(c));
    }
    producers.push(None);

    let mut specs = Vec::new();
    for (t, (prod, cons)) in producers.into_iter().zip(consumers).enumerate() {
        let mut arms: Vec<(u32, Box<dyn Pattern>)> = Vec::new();
        if let Some(c) = cons {
            arms.push((3, Box::new(c)));
        }
        if let Some(p) = prod {
            arms.push((3, Box::new(p)));
        }
        // Middle stages do the ranking: database-heavy.
        let db_weight = if t == 0 || t == stages - 1 { 2 } else { 8 };
        arms.push(arm(
            db_weight,
            SharedReadOnly::new(database, db_site, 0.9, 7),
        ));
        let scratch = b.region(96);
        let s = b.site(2);
        arms.push(arm(2, PrivateWorkingSet::new(scratch, s, 0.8, 25, 4)));
        let queries = b.region(2048);
        let qs = b.site(2);
        arms.push(arm(3, PrivateStream::new(queries, qs, 0, 6)));
        specs.push(ThreadSpec::new(arms, b.accesses()));
    }
    b.finish(specs)
}

/// `fluidanimate`: particle fluid simulation on a spatial grid. Each
/// thread sweeps its own cells and reads boundary cells of neighbouring
/// partitions.
pub(crate) fn fluidanimate(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Fluidanimate, scale);
    let partitions: Vec<Region> = (0..threads).map(|_| b.region(1024)).collect();
    let stencil_site = b.site(4);
    let locks = b.region_fixed(16);
    let locks_site = b.site(2);
    let mut specs = Vec::new();
    for t in 0..threads {
        let left = partitions[(t + threads - 1) % threads];
        let right = partitions[(t + 1) % threads];
        let s = b.site(2);
        let scratch = b.region(64);
        specs.push(ThreadSpec::new(
            vec![
                arm(
                    10,
                    Stencil::new(partitions[t], left, right, stencil_site, 32, 6),
                ),
                arm(1, LockHot::new(locks, locks_site, 10)),
                arm(2, PrivateWorkingSet::new(scratch, s, 0.8, 30, 4)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `streamcluster`: online clustering. Threads stream their own points
/// and compare each against a small, extremely hot set of shared centres.
pub(crate) fn streamcluster(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Streamcluster, scale);
    let centres = b.region_fixed(256);
    let centres_site = b.site(1);
    let locks = b.region_fixed(4);
    let locks_site = b.site(2);
    let mut specs = Vec::new();
    for _ in 0..threads {
        let points = b.region(4096);
        let s = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(8, PrivateStream::new(points, s, 0, 5)),
                arm(5, SharedReadOnly::new(centres, centres_site, 0.7, 6)),
                arm(1, LockHot::new(locks, locks_site, 9)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `swaptions`: Monte-Carlo swaption pricing; perfectly partitioned
/// private working sets, the paper's "no sharing" control.
pub(crate) fn swaptions(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Swaptions, scale);
    let mut specs = Vec::new();
    for _ in 0..threads {
        let ws = b.region(1024);
        let s = b.site(2);
        let stream = b.region(512);
        let s2 = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(7, PrivateWorkingSet::new(ws, s, 0.9, 20, 5)),
                arm(3, PrivateStream::new(stream, s2, 3, 5)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

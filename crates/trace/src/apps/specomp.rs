//! SPEC OMP-style application models.

use crate::apps::build::{arm, Build};
use crate::apps::{App, Scale};
use crate::layout::Region;
use crate::patterns::{LockHot, PhaseAlternate, PrivateStream, SharedReadOnly, Stencil};
use crate::workload::{ThreadSpec, Workload};

/// `equake`: earthquake simulation on an unstructured mesh. Every thread
/// repeatedly reads the shared sparse matrix and connectivity (read-only,
/// moderate skew) while streaming its own slice of the state vectors.
pub(crate) fn equake(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Equake, scale);
    let matrix = b.region(4096);
    let matrix_site = b.site(1);
    let reduction = b.region_fixed(4);
    let red_site = b.site(2);
    let mut specs = Vec::new();
    for _ in 0..threads {
        let vectors = b.region(1024);
        let s = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(5, SharedReadOnly::new(matrix, matrix_site, 0.3, 7)),
                arm(6, PrivateStream::new(vectors, s, 3, 5)),
                arm(1, LockHot::new(reduction, red_site, 12)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `mgrid`: multigrid solver. Stencil sweeps at two grid levels: the fine
/// level behaves like `ocean`; the coarse level is small enough that its
/// boundary blocks become genuinely hot shared data.
pub(crate) fn mgrid(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Mgrid, scale);
    let fine: Vec<Region> = (0..threads).map(|_| b.region(2048)).collect();
    let coarse: Vec<Region> = (0..threads).map(|_| b.region(512)).collect();
    let fine_site = b.site(4);
    let coarse_site = b.site(4);
    let mut specs = Vec::new();
    for t in 0..threads {
        let fl = fine[(t + threads - 1) % threads];
        let fr = fine[(t + 1) % threads];
        let cl = coarse[(t + threads - 1) % threads];
        let cr = coarse[(t + 1) % threads];
        // The V-cycle alternates long fine-grid sweeps with short
        // coarse-grid sweeps; the coarse grid's boundary blocks are the
        // hot shared data.
        let fine_sweep = Stencil::new(fine[t], fl, fr, fine_site, 64, 5);
        let coarse_sweep = Stencil::new(coarse[t], cl, cr, coarse_site, 8, 5);
        let fine_len = 4 * fine[t].blocks();
        let coarse_len = 2 * coarse[t].blocks();
        specs.push(ThreadSpec::single(
            Box::new(PhaseAlternate::new(
                Box::new(fine_sweep),
                fine_len,
                Box::new(coarse_sweep),
                coarse_len,
            )),
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `swim`: shallow-water stencil over enormous arrays; footprints dwarf
/// any LLC, reuse is almost purely streaming, sharing is negligible — the
/// memory-bound SPEC OMP control.
pub(crate) fn swim(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Swim, scale);
    let mut specs = Vec::new();
    for _ in 0..threads {
        let u = b.region(4096);
        let v = b.region(4096);
        let su = b.site(2);
        let sv = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(5, PrivateStream::new(u, su, 2, 4)),
                arm(5, PrivateStream::new(v, sv, 2, 4)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

//! SPLASH-2-style application models.

use crate::apps::build::{arm, Build};
use crate::apps::{App, Scale};
use crate::layout::Region;
use crate::patterns::{
    LockHot, Migratory, PhaseAlternate, PrivateStream, SharedReadOnly, Stencil, Transpose,
};
use crate::workload::{ThreadSpec, Workload};

/// `barnes`: Barnes–Hut N-body. Threads walk a shared octree (read-mostly,
/// hot near the root) and update their bodies; body records migrate
/// between threads as the space is re-partitioned.
pub(crate) fn barnes(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Barnes, scale);
    let tree = b.region(4096);
    let tree_site = b.site(1);
    let bodies = b.region(1024);
    let bodies_site = b.site(2);
    let locks = b.region_fixed(8);
    let locks_site = b.site(2);
    let mut specs = Vec::new();
    for t in 0..threads {
        let scratch = b.region(1024);
        let s = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(6, SharedReadOnly::new(tree, tree_site, 0.6, 8)),
                arm(
                    3,
                    Migratory::new(bodies, bodies_site, 128, 12, t as u64, threads as u64, 7),
                ),
                arm(2, PrivateStream::new(scratch, s, 4, 4)),
                arm(1, LockHot::new(locks, locks_site, 10)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `fft`: radix-√n six-step FFT. Barrier-separated all-to-all transposes
/// dominate: the blocks a thread shares change wholesale at every phase.
pub(crate) fn fft(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Fft, scale);
    let matrix = b.region(4096);
    let segments: Vec<Region> = matrix.split(threads);
    let site = b.site(2);
    let phase_len = segments[0].blocks();
    let mut specs = Vec::new();
    for t in 0..threads {
        let scratch = b.region(1024);
        let s = b.site(2);
        // Communication (all-to-all transpose of one segment) alternates
        // with a compute stretch on private scratch, as in the real
        // six-step FFT.
        let transpose = Transpose::new(segments.clone(), t, site, phase_len, 6);
        let compute = PrivateStream::new(scratch, s, 3, 4);
        let comm_len = 2 * phase_len; // one full transpose phase
        specs.push(ThreadSpec::single(
            Box::new(PhaseAlternate::new(
                Box::new(transpose),
                comm_len,
                Box::new(compute),
                comm_len,
            )),
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `ocean`: red-black Gauss-Seidel over partitioned grids; classic
/// boundary-row sharing with barrier phases and a contended global
/// convergence check.
pub(crate) fn ocean(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Ocean, scale);
    let partitions: Vec<Region> = (0..threads).map(|_| b.region(2048)).collect();
    let site = b.site(4);
    let reduction = b.region_fixed(4);
    let red_site = b.site(2);
    let mut specs = Vec::new();
    for t in 0..threads {
        let left = partitions[(t + threads - 1) % threads];
        let right = partitions[(t + 1) % threads];
        specs.push(ThreadSpec::new(
            vec![
                arm(12, Stencil::new(partitions[t], left, right, site, 64, 5)),
                arm(1, LockHot::new(reduction, red_site, 12)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `radix`: parallel radix sort. Each pass permutes keys into buckets
/// owned by other threads — all-to-all, phase-shifting write sharing, plus
/// streaming reads of the local key array.
pub(crate) fn radix(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Radix, scale);
    let buckets = b.region(4096);
    let segments: Vec<Region> = buckets.split(threads);
    let site = b.site(2);
    let phase_len = segments[0].blocks();
    let mut specs = Vec::new();
    for t in 0..threads {
        let keys = b.region(2048);
        let s = b.site(2);
        // A radix pass: local counting sweep over the keys, then the
        // all-to-all permutation into the shared buckets.
        let permute = Transpose::new(segments.clone(), t, site, phase_len, 5);
        let count = PrivateStream::new(keys, s, 2, 4);
        let comm_len = 2 * phase_len;
        specs.push(ThreadSpec::single(
            Box::new(PhaseAlternate::new(
                Box::new(count),
                comm_len,
                Box::new(permute),
                comm_len,
            )),
            b.accesses(),
        ));
    }
    b.finish(specs)
}

/// `water`: molecular dynamics with per-molecule locks; molecule records
/// are the textbook migratory-sharing objects.
pub(crate) fn water(threads: usize, scale: Scale) -> Workload {
    let mut b = Build::new(App::Water, scale);
    let molecules = b.region(4096);
    let mol_site = b.site(2);
    let globals = b.region_fixed(8);
    let glob_site = b.site(2);
    let mut specs = Vec::new();
    for t in 0..threads {
        let scratch = b.region(1024);
        let s = b.site(2);
        specs.push(ThreadSpec::new(
            vec![
                arm(
                    7,
                    Migratory::new(molecules, mol_site, 512, 16, t as u64, threads as u64, 8),
                ),
                arm(3, PrivateStream::new(scratch, s, 4, 4)),
                arm(1, LockHot::new(globals, glob_site, 11)),
            ],
            b.accesses(),
        ));
    }
    b.finish(specs)
}

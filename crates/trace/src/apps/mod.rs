//! The synthetic application models.
//!
//! Sixteen named workloads whose **sharing structure** mimics the PARSEC,
//! SPLASH-2 and SPEC OMP members the paper characterizes. The models are
//! not instruction-accurate reproductions (the substitution DESIGN.md
//! documents); they reproduce the property the paper's results rest on:
//! the mixture of private, read-only-shared, producer–consumer, migratory
//! and phase-shifting reuse seen by the shared LLC.

mod build;
mod parsec;
mod specomp;
mod splash2;

use crate::workload::Workload;

/// Benchmark suite an application model is drawn from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Suite {
    /// PARSEC 2.1-style models.
    Parsec,
    /// SPLASH-2-style models.
    Splash2,
    /// SPEC OMP-style models.
    SpecOmp,
}

impl Suite {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            Suite::Parsec => "PARSEC",
            Suite::Splash2 => "SPLASH-2",
            Suite::SpecOmp => "SPEC OMP",
        }
    }
}

impl std::fmt::Display for Suite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Workload size knob.
///
/// `Tiny` keeps unit tests fast; `Small` suits CI-grade experiment runs;
/// `Medium` is the default for reproducing the paper's figures (per-app
/// footprints of tens of MB, well above the 8 MB LLC); `Large` doubles
/// down for stability checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    /// Unit-test size (≈ 80 K accesses, sub-MB footprints).
    Tiny,
    /// Quick-experiment size.
    Small,
    /// Paper-reproduction size (default).
    #[default]
    Medium,
    /// Stress size.
    Large,
}

impl Scale {
    /// Multiplier applied to every region size (in blocks).
    pub fn mem_mult(self) -> u64 {
        match self {
            Scale::Tiny => 1,
            Scale::Small => 8,
            Scale::Medium => 32,
            Scale::Large => 64,
        }
    }

    /// Number of accesses each thread issues.
    pub fn thread_accesses(self) -> u64 {
        match self {
            Scale::Tiny => 20_000,
            Scale::Small => 150_000,
            Scale::Medium => 1_200_000,
            Scale::Large => 4_000_000,
        }
    }

    /// Parses a scale name.
    pub fn parse(s: &str) -> Option<Scale> {
        Some(match s.to_ascii_lowercase().as_str() {
            "tiny" => Scale::Tiny,
            "small" => Scale::Small,
            "medium" => Scale::Medium,
            "large" => Scale::Large,
            _ => return None,
        })
    }
}

impl std::fmt::Display for Scale {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Scale::Tiny => "tiny",
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Large => "large",
        };
        f.write_str(s)
    }
}

/// The dominant sharing behaviour of a model (used in Table 2 and for
/// interpreting results).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SharingClass {
    /// Essentially no cross-thread data reuse.
    Private,
    /// Read-only shared structures dominate.
    ReadShared,
    /// Producer–consumer pipeline sharing.
    Pipeline,
    /// Migratory read-write sharing.
    Migratory,
    /// Boundary (nearest-neighbour) sharing.
    Boundary,
    /// Barrier-phased, phase-shifting sharing.
    PhaseShift,
    /// Irregular fine-grained read-write sharing.
    Irregular,
}

impl SharingClass {
    /// Display label.
    pub fn label(self) -> &'static str {
        match self {
            SharingClass::Private => "private",
            SharingClass::ReadShared => "read-shared",
            SharingClass::Pipeline => "pipeline",
            SharingClass::Migratory => "migratory",
            SharingClass::Boundary => "boundary",
            SharingClass::PhaseShift => "phase-shift",
            SharingClass::Irregular => "irregular",
        }
    }
}

impl std::fmt::Display for SharingClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

macro_rules! apps {
    ($( $variant:ident => ($label:literal, $suite:expr, $class:expr, $builder:path) ),+ $(,)?) => {
        /// A named application model.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum App {
            $(
                #[doc = $label]
                $variant,
            )+
        }

        impl App {
            /// Every model, in suite order.
            pub const ALL: [App; 16] = [ $(App::$variant),+ ];

            /// Display label (the modelled benchmark's name).
            pub fn label(self) -> &'static str {
                match self { $(App::$variant => $label),+ }
            }

            /// Suite the model is drawn from.
            pub fn suite(self) -> Suite {
                match self { $(App::$variant => $suite),+ }
            }

            /// Dominant sharing behaviour.
            pub fn sharing_class(self) -> SharingClass {
                match self { $(App::$variant => $class),+ }
            }

            /// Parses a label (case-insensitive).
            pub fn parse(s: &str) -> Option<App> {
                let s = s.to_ascii_lowercase();
                $( if s == $label { return Some(App::$variant); } )+
                None
            }

            /// Builds the model's workload for `threads` threads at
            /// `scale`, with the model's fixed seed (fully
            /// deterministic).
            ///
            /// # Panics
            ///
            /// Panics if `threads` is zero or exceeds
            /// [`llc_sim::MAX_CORES`].
            pub fn workload(self, threads: usize, scale: Scale) -> Workload {
                assert!(threads > 0 && threads <= llc_sim::MAX_CORES, "bad thread count");
                match self { $(App::$variant => $builder(threads, scale)),+ }
            }
        }
    };
}

apps! {
    Blackscholes => ("blackscholes", Suite::Parsec, SharingClass::Private, parsec::blackscholes),
    Bodytrack => ("bodytrack", Suite::Parsec, SharingClass::ReadShared, parsec::bodytrack),
    Canneal => ("canneal", Suite::Parsec, SharingClass::Irregular, parsec::canneal),
    Dedup => ("dedup", Suite::Parsec, SharingClass::Pipeline, parsec::dedup),
    Ferret => ("ferret", Suite::Parsec, SharingClass::Pipeline, parsec::ferret),
    Fluidanimate => ("fluidanimate", Suite::Parsec, SharingClass::Boundary, parsec::fluidanimate),
    Streamcluster => ("streamcluster", Suite::Parsec, SharingClass::ReadShared, parsec::streamcluster),
    Swaptions => ("swaptions", Suite::Parsec, SharingClass::Private, parsec::swaptions),
    Barnes => ("barnes", Suite::Splash2, SharingClass::ReadShared, splash2::barnes),
    Fft => ("fft", Suite::Splash2, SharingClass::PhaseShift, splash2::fft),
    Ocean => ("ocean", Suite::Splash2, SharingClass::Boundary, splash2::ocean),
    Radix => ("radix", Suite::Splash2, SharingClass::PhaseShift, splash2::radix),
    Water => ("water", Suite::Splash2, SharingClass::Migratory, splash2::water),
    Equake => ("equake", Suite::SpecOmp, SharingClass::ReadShared, specomp::equake),
    Mgrid => ("mgrid", Suite::SpecOmp, SharingClass::Boundary, specomp::mgrid),
    Swim => ("swim", Suite::SpecOmp, SharingClass::Private, specomp::swim),
}

impl std::fmt::Display for App {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Per-app deterministic seed.
pub(crate) fn app_seed(app: App) -> u64 {
    llc_sim::splitmix64(
        0x5ee_d00
            ^ app
                .label()
                .bytes()
                .fold(0u64, |a, b| a.wrapping_mul(131).wrapping_add(u64::from(b))),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::TraceSource;

    #[test]
    fn all_apps_build_and_produce() {
        for app in App::ALL {
            let mut w = app.workload(4, Scale::Tiny);
            let mut n = 0;
            while let Some(a) = w.next_access().filter(|_| n < 1000) {
                assert!(a.core.index() < 4);
                n += 1;
            }
            assert_eq!(n, 1000, "{app} produced too few accesses");
        }
    }

    #[test]
    fn labels_parse_round_trip() {
        for app in App::ALL {
            assert_eq!(App::parse(app.label()), Some(app));
        }
        assert_eq!(App::parse("BODYTRACK"), Some(App::Bodytrack));
        assert_eq!(App::parse("unknown"), None);
    }

    #[test]
    fn suites_partition_the_apps() {
        let parsec = App::ALL
            .iter()
            .filter(|a| a.suite() == Suite::Parsec)
            .count();
        let splash = App::ALL
            .iter()
            .filter(|a| a.suite() == Suite::Splash2)
            .count();
        let spec = App::ALL
            .iter()
            .filter(|a| a.suite() == Suite::SpecOmp)
            .count();
        assert_eq!(parsec, 8);
        assert_eq!(splash, 5);
        assert_eq!(spec, 3);
    }

    #[test]
    fn workloads_are_deterministic() {
        let mut a = App::Fft.workload(4, Scale::Tiny);
        let mut b = App::Fft.workload(4, Scale::Tiny);
        for _ in 0..5000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    fn seeds_differ_across_apps() {
        let seeds: std::collections::HashSet<u64> = App::ALL.iter().map(|&a| app_seed(a)).collect();
        assert_eq!(seeds.len(), App::ALL.len());
    }

    #[test]
    fn scale_controls_budget() {
        let t = App::Swaptions.workload(2, Scale::Tiny);
        assert_eq!(t.len_hint(), Some(2 * Scale::Tiny.thread_accesses()));
    }

    #[test]
    #[should_panic(expected = "bad thread count")]
    fn zero_threads_rejected() {
        let _ = App::Fft.workload(0, Scale::Tiny);
    }
}

//! Shared boilerplate for the application-model builders.

use crate::apps::{app_seed, App, Scale};
use crate::layout::{AddressSpace, PcAllocator, PcSite, Region};
use crate::patterns::Pattern;
use crate::workload::{ThreadSpec, Workload};

/// One address space and PC allocator per workload, with scale-aware
/// region sizing.
pub(crate) struct Build {
    space: AddressSpace,
    pcs: PcAllocator,
    scale: Scale,
    seed: u64,
}

impl Build {
    pub(crate) fn new(app: App, scale: Scale) -> Self {
        Build {
            space: AddressSpace::new(),
            pcs: PcAllocator::new(),
            scale,
            seed: app_seed(app),
        }
    }

    /// Allocates a region whose size is `tiny_blocks` at `Scale::Tiny`,
    /// scaled up by the scale's memory multiplier.
    pub(crate) fn region(&mut self, tiny_blocks: u64) -> Region {
        self.space.alloc(tiny_blocks * self.scale.mem_mult())
    }

    /// Allocates a fixed-size region (scale-independent; lock words and
    /// other small hot structures).
    pub(crate) fn region_fixed(&mut self, blocks: u64) -> Region {
        self.space.alloc(blocks)
    }

    pub(crate) fn site(&mut self, n: u32) -> PcSite {
        self.pcs.alloc(n)
    }

    pub(crate) fn accesses(&self) -> u64 {
        self.scale.thread_accesses()
    }

    pub(crate) fn finish(self, specs: Vec<ThreadSpec>) -> Workload {
        Workload::new(specs, self.seed)
    }
}

/// Weighted arm shorthand.
pub(crate) fn arm(weight: u32, p: impl Pattern + 'static) -> (u32, Box<dyn Pattern>) {
    (weight, Box::new(p))
}

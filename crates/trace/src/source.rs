//! The trace-source abstraction consumed by the simulator driver.

use llc_sim::MemAccess;

use crate::error::TraceError;

/// A finite stream of memory accesses.
///
/// Trace sources are consumed on a single thread and need not be `Send`
/// (workload generators share in-process channel state via `Rc`).
pub trait TraceSource {
    /// Produces the next access, or `None` when the trace is exhausted.
    fn next_access(&mut self) -> Option<MemAccess>;

    /// Total number of accesses this source will produce, if known.
    fn len_hint(&self) -> Option<u64> {
        None
    }

    /// Takes the error that ended the stream early, if any.
    ///
    /// `next_access` has no error channel, so decoding sources (file
    /// replay, fault injection) return `None` at the first malformed
    /// record and park the reason here. Drivers call this after draining
    /// a source to distinguish clean exhaustion from a decode failure.
    /// Synthetic generators never fail and use this default.
    fn take_error(&mut self) -> Option<TraceError> {
        None
    }
}

impl<T: TraceSource + ?Sized> TraceSource for Box<T> {
    fn next_access(&mut self) -> Option<MemAccess> {
        (**self).next_access()
    }
    fn len_hint(&self) -> Option<u64> {
        (**self).len_hint()
    }
    fn take_error(&mut self) -> Option<TraceError> {
        (**self).take_error()
    }
}

/// A trace source backed by a vector (tests and replaying recorded
/// traces).
#[derive(Debug, Clone)]
pub struct VecSource {
    accesses: std::vec::IntoIter<MemAccess>,
    len: u64,
}

impl VecSource {
    /// Creates a source replaying `accesses` in order.
    pub fn new(accesses: Vec<MemAccess>) -> Self {
        let len = accesses.len() as u64;
        VecSource {
            accesses: accesses.into_iter(),
            len,
        }
    }
}

impl TraceSource for VecSource {
    fn next_access(&mut self) -> Option<MemAccess> {
        self.accesses.next()
    }
    fn len_hint(&self) -> Option<u64> {
        Some(self.len)
    }
}

impl FromIterator<MemAccess> for VecSource {
    fn from_iter<I: IntoIterator<Item = MemAccess>>(iter: I) -> Self {
        VecSource::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{AccessKind, Addr, CoreId, Pc};

    fn acc(i: u64) -> MemAccess {
        MemAccess::new(
            CoreId::new(0),
            Pc::new(i),
            Addr::new(i * 64),
            AccessKind::Read,
        )
    }

    #[test]
    fn vec_source_replays_in_order() {
        let mut s = VecSource::new(vec![acc(1), acc(2), acc(3)]);
        assert_eq!(s.len_hint(), Some(3));
        assert_eq!(s.next_access().unwrap().pc, Pc::new(1));
        assert_eq!(s.next_access().unwrap().pc, Pc::new(2));
        assert_eq!(s.next_access().unwrap().pc, Pc::new(3));
        assert!(s.next_access().is_none());
    }

    #[test]
    fn collect_from_iterator() {
        let s: VecSource = (0..5).map(acc).collect();
        assert_eq!(s.len_hint(), Some(5));
    }
}

//! Deterministic fault injection for exercising the failure paths of the
//! trace pipeline.
//!
//! Robustness claims are only as good as the faults they were tested
//! against, so this module provides two adversaries:
//!
//! * [`CorruptingReader`] — a byte-level wrapper around any [`Read`] that
//!   flips chosen bits and truncates the stream at a chosen offset, for
//!   attacking the *decoder* ([`TraceFileSource`](crate::TraceFileSource)).
//! * [`FaultInjectingSource`] — a record-level wrapper around any
//!   [`TraceSource`] that duplicates and drops records, for attacking the
//!   *writer* ([`write_trace`](crate::write_trace) relies on
//!   [`TraceSource::len_hint`] being honest; this source lies).
//!
//! Both are fully deterministic: a [`FaultPlan`] either lists faults
//! explicitly or derives them from a seed via splitmix64, so a failing
//! fuzz case reproduces from its seed alone.

use std::io::{self, Read};

use llc_sim::{splitmix64, MemAccess};

use crate::source::TraceSource;

/// One injected fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR `mask` into the byte at `offset` (byte-level; [`CorruptingReader`]).
    BitFlip {
        /// Absolute byte offset in the stream.
        offset: u64,
        /// Mask XORed into the byte (0 is a no-op).
        mask: u8,
    },
    /// End the stream after `offset` bytes (byte-level; [`CorruptingReader`]).
    TruncateAt {
        /// Bytes delivered before the artificial EOF.
        offset: u64,
    },
    /// Emit the record at input index `index` twice (record-level;
    /// [`FaultInjectingSource`]).
    DuplicateRecord {
        /// Zero-based index in the inner source's stream.
        index: u64,
    },
    /// Swallow the record at input index `index` (record-level;
    /// [`FaultInjectingSource`]).
    DropRecord {
        /// Zero-based index in the inner source's stream.
        index: u64,
    },
}

/// A deterministic collection of faults to inject.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (inject nothing).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Adds a fault.
    pub fn with(mut self, fault: Fault) -> Self {
        self.faults.push(fault);
        self
    }

    /// Derives `flips` bit-flips at pseudo-random offsets within a stream
    /// of `len` bytes, deterministically from `seed`.
    pub fn random_bit_flips(seed: u64, len: u64, flips: usize) -> Self {
        let mut plan = FaultPlan::new();
        let mut state = seed;
        for _ in 0..flips {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let r = splitmix64(state);
            if len == 0 {
                break;
            }
            let offset = r % len;
            let mask = 1u8 << (splitmix64(r) % 8);
            plan.faults.push(Fault::BitFlip { offset, mask });
        }
        plan
    }

    /// The planned faults.
    pub fn faults(&self) -> &[Fault] {
        &self.faults
    }
}

/// A [`Read`] adapter that applies a [`FaultPlan`]'s byte-level faults
/// (bit flips and truncation) to the bytes flowing through it.
///
/// Record-level faults in the plan are ignored here.
#[derive(Debug)]
pub struct CorruptingReader<R> {
    inner: R,
    pos: u64,
    flips: Vec<(u64, u8)>,
    truncate_at: Option<u64>,
}

impl<R: Read> CorruptingReader<R> {
    /// Wraps `inner`, applying the byte-level faults in `plan`.
    pub fn new(inner: R, plan: &FaultPlan) -> Self {
        let mut flips = Vec::new();
        let mut truncate_at: Option<u64> = None;
        for f in plan.faults() {
            match *f {
                Fault::BitFlip { offset, mask } => flips.push((offset, mask)),
                Fault::TruncateAt { offset } => {
                    truncate_at = Some(truncate_at.map_or(offset, |t| t.min(offset)));
                }
                Fault::DuplicateRecord { .. } | Fault::DropRecord { .. } => {}
            }
        }
        CorruptingReader {
            inner,
            pos: 0,
            flips,
            truncate_at,
        }
    }
}

impl<R: Read> Read for CorruptingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let limit = match self.truncate_at {
            Some(t) if self.pos >= t => return Ok(0),
            Some(t) => usize::try_from(t - self.pos)
                .unwrap_or(usize::MAX)
                .min(buf.len()),
            None => buf.len(),
        };
        let n = self.inner.read(&mut buf[..limit])?;
        for &(offset, mask) in &self.flips {
            if offset >= self.pos && offset < self.pos + n as u64 {
                buf[(offset - self.pos) as usize] ^= mask;
            }
        }
        self.pos += n as u64;
        Ok(n)
    }
}

/// A [`TraceSource`] adapter that applies a [`FaultPlan`]'s record-level
/// faults (duplicates and drops) to an inner source.
///
/// Deliberately keeps forwarding the inner source's
/// [`len_hint`](TraceSource::len_hint) even though the faults make it
/// wrong — that is the point: it models a buggy source whose declared
/// length disagrees with what it produces, which the hardened writer must
/// catch ([`TraceError::RecordOverflow`](crate::TraceError::RecordOverflow)
/// on duplicates, [`TraceError::CountMismatch`](crate::TraceError::CountMismatch)
/// on drops). Byte-level faults in the plan are ignored here.
#[derive(Debug)]
pub struct FaultInjectingSource<S> {
    inner: S,
    duplicate_at: Vec<u64>,
    drop_at: Vec<u64>,
    next_index: u64,
    pending: Option<MemAccess>,
}

impl<S: TraceSource> FaultInjectingSource<S> {
    /// Wraps `inner`, applying the record-level faults in `plan`.
    pub fn new(inner: S, plan: &FaultPlan) -> Self {
        let mut duplicate_at = Vec::new();
        let mut drop_at = Vec::new();
        for f in plan.faults() {
            match *f {
                Fault::DuplicateRecord { index } => duplicate_at.push(index),
                Fault::DropRecord { index } => drop_at.push(index),
                Fault::BitFlip { .. } | Fault::TruncateAt { .. } => {}
            }
        }
        FaultInjectingSource {
            inner,
            duplicate_at,
            drop_at,
            next_index: 0,
            pending: None,
        }
    }
}

impl<S: TraceSource> TraceSource for FaultInjectingSource<S> {
    fn next_access(&mut self) -> Option<MemAccess> {
        if let Some(a) = self.pending.take() {
            return Some(a);
        }
        loop {
            let a = self.inner.next_access()?;
            let index = self.next_index;
            self.next_index += 1;
            if self.drop_at.contains(&index) {
                continue;
            }
            if self.duplicate_at.contains(&index) {
                self.pending = Some(a);
            }
            return Some(a);
        }
    }

    fn len_hint(&self) -> Option<u64> {
        // Intentionally dishonest under record faults; see the type docs.
        self.inner.len_hint()
    }

    fn take_error(&mut self) -> Option<crate::TraceError> {
        self.inner.take_error()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::TraceError;
    use crate::file::{write_trace, TraceFileSource, HEADER_BYTES, RECORD_BYTES};
    use crate::source::VecSource;
    use llc_sim::{AccessKind, Addr, CoreId, Pc};

    fn sample(n: usize) -> Vec<MemAccess> {
        (0..n)
            .map(|i| {
                MemAccess::new(
                    CoreId::new(i % 4),
                    Pc::new(0x400 + i as u64),
                    Addr::new(64 * i as u64),
                    if i % 3 == 0 {
                        AccessKind::Write
                    } else {
                        AccessKind::Read
                    },
                )
            })
            .collect()
    }

    fn encoded(n: usize) -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(VecSource::new(sample(n)), &mut buf).expect("encode sample");
        buf
    }

    #[test]
    fn bit_flip_in_magic_yields_bad_magic() {
        let plan = FaultPlan::new().with(Fault::BitFlip {
            offset: 1,
            mask: 0x40,
        });
        let bytes = encoded(4);
        let r = CorruptingReader::new(bytes.as_slice(), &plan);
        assert!(matches!(
            TraceFileSource::new(r),
            Err(TraceError::BadMagic { .. })
        ));
    }

    #[test]
    fn truncation_mid_record_yields_truncated() {
        let cut = (HEADER_BYTES + 2 * RECORD_BYTES + 3) as u64;
        let plan = FaultPlan::new().with(Fault::TruncateAt { offset: cut });
        let bytes = encoded(8);
        let r = CorruptingReader::new(bytes.as_slice(), &plan);
        let src = TraceFileSource::new(r).expect("header intact");
        assert!(matches!(
            src.read_all(),
            Err(TraceError::Truncated {
                decoded: 2,
                declared: 8
            })
        ));
    }

    #[test]
    fn kind_byte_flip_yields_bad_kind() {
        // Record 1's kind byte; sample record 1 is a Read (kind 0), so
        // setting bit 2 makes it 4: out of domain.
        let offset = (HEADER_BYTES + RECORD_BYTES + 1) as u64;
        let plan = FaultPlan::new().with(Fault::BitFlip { offset, mask: 0x04 });
        let bytes = encoded(4);
        let r = CorruptingReader::new(bytes.as_slice(), &plan);
        let src = TraceFileSource::new(r).expect("header intact");
        assert!(matches!(
            src.read_all(),
            Err(TraceError::BadKind { kind: 4, index: 1 })
        ));
    }

    #[test]
    fn random_plans_never_panic_the_decoder() {
        // Whatever a random bit flip hits — header, core byte, kind byte,
        // payload — decoding must end in Ok or a typed error, never a
        // panic. Payload flips are silent by design (any u64 is a valid
        // address), so we only require "no panic", not "always Err".
        let bytes = encoded(32);
        for seed in 0..200u64 {
            let plan = FaultPlan::random_bit_flips(seed, bytes.len() as u64, 3);
            let r = CorruptingReader::new(bytes.as_slice(), &plan);
            if let Ok(src) = TraceFileSource::new(r) {
                let _ = src.read_all();
            }
        }
    }

    #[test]
    fn duplicate_record_trips_writer_overflow() {
        let inner = VecSource::new(sample(5));
        let plan = FaultPlan::new().with(Fault::DuplicateRecord { index: 2 });
        let faulty = FaultInjectingSource::new(inner, &plan);
        let mut buf = Vec::new();
        assert!(matches!(
            write_trace(faulty, &mut buf),
            Err(TraceError::RecordOverflow { declared: 5 })
        ));
    }

    #[test]
    fn dropped_record_trips_count_mismatch() {
        let inner = VecSource::new(sample(5));
        let plan = FaultPlan::new().with(Fault::DropRecord { index: 0 });
        let faulty = FaultInjectingSource::new(inner, &plan);
        let mut buf = Vec::new();
        assert!(matches!(
            write_trace(faulty, &mut buf),
            Err(TraceError::CountMismatch {
                declared: 5,
                written: 4
            })
        ));
    }

    #[test]
    fn duplicates_and_drops_change_the_stream_as_planned() {
        let original = sample(4);
        let plan = FaultPlan::new()
            .with(Fault::DuplicateRecord { index: 1 })
            .with(Fault::DropRecord { index: 3 });
        let mut faulty = FaultInjectingSource::new(VecSource::new(original.clone()), &plan);
        let mut got = Vec::new();
        while let Some(a) = faulty.next_access() {
            got.push(a);
        }
        assert_eq!(
            got,
            vec![original[0], original[1], original[1], original[2]]
        );
    }
}

//! # llc-trace — synthetic multi-threaded workload models
//!
//! The paper characterizes multi-threaded programs from PARSEC, SPEC OMP
//! and SPLASH-2 on a simulated CMP. Real traces of those suites are not
//! redistributable, so this crate builds the closest synthetic equivalent:
//! a library of access-pattern primitives spanning the established sharing
//! taxonomy (private, read-only shared, producer–consumer, migratory,
//! boundary, phase-shifting all-to-all, contended hot blocks) and sixteen
//! named [`App`] models composed from them, one per benchmark the study
//! draws on.
//!
//! Everything is deterministic: an (app, thread-count, scale) triple
//! always produces the same access stream.
//!
//! ## Example
//!
//! ```
//! use llc_trace::{App, Scale, TraceSource};
//!
//! let mut workload = App::Bodytrack.workload(8, Scale::Tiny);
//! let first = workload.next_access().expect("non-empty workload");
//! assert!(first.core.index() < 8);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod apps;
pub mod error;
pub mod fault;
pub mod file;
pub mod layout;
pub mod multiprogram;
pub mod patterns;
pub mod shard;
pub mod source;
pub mod store;
pub mod stream;
pub mod view;
pub mod workload;
pub mod zipf;

pub use apps::{App, Scale, SharingClass, Suite};
pub use error::TraceError;
pub use fault::{CorruptingReader, Fault, FaultInjectingSource, FaultPlan};
pub use file::{write_trace, TraceFileSource, TraceWriter};
pub use layout::{AddressSpace, PcAllocator, PcSite, Region, PAGE_BYTES};
pub use multiprogram::Multiprogram;
pub use patterns::{
    pipeline_channel, Consumer, LockHot, Migratory, Pattern, PatternAccess, PhaseAlternate,
    PrivateStream, PrivateWorkingSet, Producer, SharedReadOnly, Stencil, Transpose,
};
pub use shard::{ShardIndex, ShardIndexSlot, StreamShard};
pub use source::{TraceSource, VecSource};
pub use store::{atomic_write, quarantine_file, sync_dir, StreamStore, QUARANTINE_DIR};
pub use stream::{
    read_stream, write_stream, AccessRecord, RecordedStream, StreamAccess, UpgradeEvent,
};
pub use view::StreamView;
pub use workload::{ThreadSpec, Workload};
pub use zipf::ZipfSampler;

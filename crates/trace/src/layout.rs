//! Virtual address-space layout for synthetic workloads.
//!
//! Workload models allocate [`Region`]s from a bump allocator
//! ([`AddressSpace`]) at page granularity, and static code addresses
//! ([`llc_sim::Pc`] values) from a [`PcAllocator`] so that each loop site
//! in a pattern has a distinct, stable PC — the signal the PC-indexed
//! sharing predictor keys on.

use llc_sim::{Addr, BlockAddr, Pc, BLOCK_BYTES};

/// Allocation granularity (4 KB pages).
pub const PAGE_BYTES: u64 = 4096;

/// A contiguous range of cache blocks owned by one data structure of the
/// synthetic program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Region {
    base_block: u64,
    blocks: u64,
}

impl Region {
    /// Number of cache blocks in the region.
    pub fn blocks(&self) -> u64 {
        self.blocks
    }

    /// Footprint in bytes.
    pub fn bytes(&self) -> u64 {
        self.blocks * BLOCK_BYTES
    }

    /// The `i`-th block of the region (wrapping around the region length,
    /// so patterns can index with free-running counters).
    pub fn block(&self, i: u64) -> BlockAddr {
        debug_assert!(self.blocks > 0);
        BlockAddr::new(self.base_block + (i % self.blocks))
    }

    /// A byte address inside the `i`-th block (block-aligned; the
    /// simulator only looks at block granularity).
    pub fn addr(&self, i: u64) -> Addr {
        self.block(i).first_byte()
    }

    /// Splits the region into `n` equal chunks (the last chunk absorbs the
    /// remainder). Used to give each thread its own segment of a shared
    /// array.
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds the number of blocks.
    pub fn split(&self, n: usize) -> Vec<Region> {
        assert!(
            n > 0 && (n as u64) <= self.blocks,
            "cannot split {} blocks into {n}",
            self.blocks
        );
        let chunk = self.blocks / n as u64;
        (0..n as u64)
            .map(|i| {
                let last = i == n as u64 - 1;
                Region {
                    base_block: self.base_block + i * chunk,
                    blocks: if last { self.blocks - i * chunk } else { chunk },
                }
            })
            .collect()
    }

    /// `true` if `block` lies inside the region.
    pub fn contains(&self, block: BlockAddr) -> bool {
        let b = block.raw();
        b >= self.base_block && b < self.base_block + self.blocks
    }
}

/// Bump allocator for the synthetic program's data segment.
#[derive(Debug, Clone)]
pub struct AddressSpace {
    next_block: u64,
}

impl AddressSpace {
    /// Creates an address space whose data segment starts at 256 MB (clear
    /// of the synthetic code addresses).
    pub fn new() -> Self {
        AddressSpace {
            next_block: (256 << 20) / BLOCK_BYTES,
        }
    }

    /// Allocates a page-aligned region of at least `blocks` cache blocks.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is zero.
    pub fn alloc(&mut self, blocks: u64) -> Region {
        assert!(blocks > 0, "cannot allocate an empty region");
        let blocks_per_page = PAGE_BYTES / BLOCK_BYTES;
        let rounded = blocks.div_ceil(blocks_per_page) * blocks_per_page;
        let region = Region {
            base_block: self.next_block,
            blocks,
        };
        self.next_block += rounded;
        region
    }

    /// Total bytes allocated so far (the workload's data footprint).
    pub fn footprint_bytes(&self) -> u64 {
        (self.next_block - (256 << 20) / BLOCK_BYTES) * BLOCK_BYTES
    }
}

impl Default for AddressSpace {
    fn default() -> Self {
        Self::new()
    }
}

/// Allocator of synthetic static instruction addresses.
///
/// Each pattern requests one `site` per static load/store in its inner
/// loop; sites are 4 bytes apart, sites of different patterns 4 KB apart,
/// mimicking distinct functions.
#[derive(Debug, Clone)]
pub struct PcAllocator {
    next: u64,
}

impl PcAllocator {
    /// Creates an allocator whose code segment starts at 4 MB.
    pub fn new() -> Self {
        PcAllocator { next: 4 << 20 }
    }

    /// Allocates a block of `sites` consecutive instruction addresses and
    /// returns their base; site `i` is `base + 4 * i`.
    pub fn alloc(&mut self, sites: u32) -> PcSite {
        let base = self.next;
        self.next += 4096.max(u64::from(sites) * 4);
        PcSite { base }
    }
}

impl Default for PcAllocator {
    fn default() -> Self {
        Self::new()
    }
}

/// A group of static instruction addresses belonging to one pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcSite {
    base: u64,
}

impl PcSite {
    /// The PC of site `i`.
    pub fn pc(&self, i: u32) -> Pc {
        Pc::new(self.base + u64::from(i) * 4)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regions_do_not_overlap() {
        let mut space = AddressSpace::new();
        let a = space.alloc(100);
        let b = space.alloc(100);
        for i in 0..100 {
            assert!(!b.contains(a.block(i)), "overlap at {i}");
            assert!(!a.contains(b.block(i)), "overlap at {i}");
        }
    }

    #[test]
    fn block_indexing_wraps() {
        let mut space = AddressSpace::new();
        let r = space.alloc(10);
        assert_eq!(r.block(0), r.block(10));
        assert_eq!(r.block(3), r.block(13));
        assert!(r.contains(r.block(9)));
    }

    #[test]
    fn split_partitions_blocks() {
        let mut space = AddressSpace::new();
        let r = space.alloc(10);
        let parts = r.split(3);
        assert_eq!(parts.len(), 3);
        assert_eq!(parts.iter().map(Region::blocks).sum::<u64>(), 10);
        assert_eq!(parts[2].blocks(), 4); // remainder absorbed
                                          // Disjoint and covering.
        for i in 0..10 {
            let b = r.block(i);
            let owners = parts.iter().filter(|p| p.contains(b)).count();
            assert_eq!(owners, 1);
        }
    }

    #[test]
    fn footprint_accumulates_page_rounded() {
        let mut space = AddressSpace::new();
        space.alloc(1); // rounds to one page = 64 blocks
        assert_eq!(space.footprint_bytes(), PAGE_BYTES);
        space.alloc(65); // rounds to two pages
        assert_eq!(space.footprint_bytes(), 3 * PAGE_BYTES);
    }

    #[test]
    fn pc_sites_are_distinct() {
        let mut pcs = PcAllocator::new();
        let a = pcs.alloc(4);
        let b = pcs.alloc(4);
        assert_ne!(a.pc(0), b.pc(0));
        assert_eq!(a.pc(1).raw(), a.pc(0).raw() + 4);
    }

    #[test]
    #[should_panic(expected = "empty region")]
    fn zero_alloc_rejected() {
        AddressSpace::new().alloc(0);
    }
}

//! Producer–consumer pipeline sharing (`dedup`-, `ferret`-, `x264`-like
//! stage pipelines).
//!
//! A producer thread writes sequential blocks of a ring buffer; a consumer
//! thread reads the same blocks a configurable lag behind. Each block is
//! therefore written by one core and read by another shortly afterwards —
//! one-way read-write sharing with a short sharing window, the pattern
//! that makes early eviction of soon-to-be-consumed blocks so costly.

use std::cell::Cell;
use std::rc::Rc;

use llc_sim::AccessKind;
use rand::rngs::SmallRng;

use crate::layout::{PcSite, Region};

use super::{Pattern, PatternAccess};

/// Shared ring-head position of one pipeline channel.
///
/// `Rc<Cell<_>>` because all thread generators of a workload run on one OS
/// thread; a trace source is not `Send`.
pub type ChannelHead = Rc<Cell<u64>>;

/// Creates the producer and consumer halves of a pipeline channel over
/// `ring`.
///
/// `lag` is how many blocks the consumer trails the producer; it is
/// clamped to at least 1.
pub fn pipeline_channel(
    ring: Region,
    producer_site: PcSite,
    consumer_site: PcSite,
    lag: u64,
    instr_gap: u32,
) -> (Producer, Consumer) {
    let head: ChannelHead = Rc::new(Cell::new(0));
    (
        Producer {
            ring,
            site: producer_site,
            head: Rc::clone(&head),
            instr_gap,
        },
        Consumer {
            ring,
            site: consumer_site,
            head,
            lag: lag.max(1),
            pos: 0,
            instr_gap,
        },
    )
}

/// The writing half of a pipeline channel.
#[derive(Debug, Clone)]
pub struct Producer {
    ring: Region,
    site: PcSite,
    head: ChannelHead,
    instr_gap: u32,
}

impl Pattern for Producer {
    fn next_access(&mut self, _rng: &mut SmallRng) -> PatternAccess {
        let h = self.head.get();
        self.head.set(h + 1);
        PatternAccess {
            block: self.ring.block(h),
            pc: self.site.pc(0),
            kind: AccessKind::Write,
            instr_gap: self.instr_gap,
        }
    }
}

/// The reading half of a pipeline channel.
#[derive(Debug, Clone)]
pub struct Consumer {
    ring: Region,
    site: PcSite,
    head: ChannelHead,
    lag: u64,
    pos: u64,
    instr_gap: u32,
}

impl Pattern for Consumer {
    fn next_access(&mut self, _rng: &mut SmallRng) -> PatternAccess {
        // Chase the producer, staying `lag` blocks behind; when caught up,
        // re-read the most recent block (a stalled consumer polling).
        let target = self.head.get().saturating_sub(self.lag);
        if self.pos < target {
            self.pos += 1;
        }
        PatternAccess {
            block: self.ring.block(self.pos),
            pc: self.site.pc(0),
            kind: AccessKind::Read,
            instr_gap: self.instr_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpace, PcAllocator};
    use crate::patterns::testutil::rng;

    #[test]
    fn consumer_reads_what_producer_wrote() {
        let mut space = AddressSpace::new();
        let ring = space.alloc(64);
        let mut pcs = PcAllocator::new();
        let (mut p, mut c) = pipeline_channel(ring, pcs.alloc(1), pcs.alloc(1), 4, 2);
        let mut r = rng();
        let mut produced = Vec::new();
        for _ in 0..20 {
            produced.push(p.next_access(&mut r).block);
        }
        let mut consumed = Vec::new();
        for _ in 0..16 {
            consumed.push(c.next_access(&mut r).block);
        }
        // Consumer visits the produced prefix in order (after its first
        // catch-up step).
        for (i, b) in consumed.iter().enumerate() {
            assert_eq!(*b, produced[i + 1], "mismatch at {i}");
        }
    }

    #[test]
    fn consumer_respects_lag() {
        let mut space = AddressSpace::new();
        let ring = space.alloc(64);
        let mut pcs = PcAllocator::new();
        let (mut p, mut c) = pipeline_channel(ring, pcs.alloc(1), pcs.alloc(1), 8, 1);
        let mut r = rng();
        for _ in 0..10 {
            p.next_access(&mut r);
        }
        // Consumer may advance at most head - lag = 2 steps.
        let mut last = None;
        for _ in 0..10 {
            last = Some(c.next_access(&mut r).block);
        }
        assert_eq!(last.unwrap(), ring.block(2));
    }

    #[test]
    fn producer_writes_consumer_reads() {
        let mut space = AddressSpace::new();
        let ring = space.alloc(16);
        let mut pcs = PcAllocator::new();
        let (mut p, mut c) = pipeline_channel(ring, pcs.alloc(1), pcs.alloc(1), 1, 1);
        let mut r = rng();
        assert!(p.next_access(&mut r).kind.is_write());
        assert!(!c.next_access(&mut r).kind.is_write());
    }

    #[test]
    fn idle_channel_consumer_polls_block_zero() {
        let mut space = AddressSpace::new();
        let ring = space.alloc(16);
        let mut pcs = PcAllocator::new();
        let (_p, mut c) = pipeline_channel(ring, pcs.alloc(1), pcs.alloc(1), 4, 1);
        let mut r = rng();
        for _ in 0..5 {
            assert_eq!(c.next_access(&mut r).block, ring.block(0));
        }
    }
}

//! Access-pattern primitives.
//!
//! Every synthetic application is a per-thread weighted mixture of these
//! primitives. Each primitive captures one sharing behaviour from the
//! taxonomy the multi-threaded characterization literature (SPLASH-2,
//! PARSEC) established:
//!
//! | primitive | sharing behaviour |
//! |---|---|
//! | [`PrivateStream`] | none (sequential private data) |
//! | [`PrivateWorkingSet`] | none (reused private data) |
//! | [`SharedReadOnly`] | read-only sharing, skewed popularity |
//! | [`LockHot`] | high-contention read-write sharing |
//! | [`Producer`] / [`Consumer`] | pipeline (one-way read-write) sharing |
//! | [`Migratory`] | migratory read-write sharing |
//! | [`Stencil`] | boundary (nearest-neighbour) sharing |
//! | [`Transpose`] | barrier-phased all-to-all sharing |
//! | [`PhaseAlternate`] | coarse compute/communicate phase structure |

mod alternate;
mod migratory;
mod pipeline;
mod private;
mod shared;
mod stencil;

pub use alternate::PhaseAlternate;
pub use migratory::Migratory;
pub use pipeline::{pipeline_channel, Consumer, Producer};
pub use private::{PrivateStream, PrivateWorkingSet};
pub use shared::{LockHot, SharedReadOnly};
pub use stencil::{Stencil, Transpose};

use llc_sim::{AccessKind, BlockAddr, Pc};
use rand::rngs::SmallRng;

/// One access produced by a pattern (thread and absolute ordering are
/// added by the interleaver).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PatternAccess {
    /// Block touched.
    pub block: BlockAddr,
    /// Static instruction issuing the access.
    pub pc: Pc,
    /// Load or store.
    pub kind: AccessKind,
    /// Instructions represented by this access (the access itself plus
    /// surrounding non-memory work).
    pub instr_gap: u32,
}

/// A per-thread access-pattern generator.
///
/// Implementations are infinite streams: the workload layer decides how
/// many accesses each thread contributes.
pub trait Pattern {
    /// Produces the next access of this pattern.
    fn next_access(&mut self, rng: &mut SmallRng) -> PatternAccess;
}

impl<P: Pattern + ?Sized> Pattern for Box<P> {
    fn next_access(&mut self, rng: &mut SmallRng) -> PatternAccess {
        (**self).next_access(rng)
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    use super::{Pattern, PatternAccess};

    pub fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0xfeed)
    }

    /// Pulls `n` accesses from a pattern.
    pub fn drain<P: Pattern>(p: &mut P, n: usize) -> Vec<PatternAccess> {
        let mut rng = rng();
        (0..n).map(|_| p.next_access(&mut rng)).collect()
    }
}

//! Migratory read-write sharing (`water`-, `barnes`-like object updates
//! under locks).
//!
//! Objects (a few blocks each) are "held" by one thread for a burst of
//! read-modify-write accesses, then logically passed to the next thread.
//! Every thread's schedule is a rotation of the same object sequence, so
//! as the interleaver advances all threads at a similar rate, each object
//! is touched by a succession of different cores — the classic migratory
//! pattern in which a block's sharer set grows slowly but its write set
//! matches its read set.

use llc_sim::AccessKind;
use rand::rngs::SmallRng;

use crate::layout::{PcSite, Region};

use super::{Pattern, PatternAccess};

/// Migratory-object pattern; construct one per thread over the *same*
/// region with that thread's `tid`.
#[derive(Debug, Clone)]
pub struct Migratory {
    region: Region,
    site: PcSite,
    objects: u64,
    blocks_per_obj: u64,
    hold: u64,
    tid: u64,
    threads: u64,
    step: u64,
    instr_gap: u32,
}

impl Migratory {
    /// Creates the pattern.
    ///
    /// * `objects` — number of migratory objects carved out of `region`
    ///   (clamped so each object has at least one block);
    /// * `hold` — accesses a thread performs on an object before moving
    ///   on.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero or `tid >= threads`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        region: Region,
        site: PcSite,
        objects: u64,
        hold: u64,
        tid: u64,
        threads: u64,
        instr_gap: u32,
    ) -> Self {
        assert!(threads > 0 && tid < threads, "bad thread index");
        let objects = objects.clamp(1, region.blocks());
        let blocks_per_obj = region.blocks() / objects;
        Migratory {
            region,
            site,
            objects,
            blocks_per_obj: blocks_per_obj.max(1),
            hold: hold.max(2),
            tid,
            threads,
            step: 0,
            instr_gap,
        }
    }
}

impl Pattern for Migratory {
    fn next_access(&mut self, _rng: &mut SmallRng) -> PatternAccess {
        let round = self.step / self.hold;
        let within = self.step % self.hold;
        self.step += 1;
        // Rotate each thread's start so object j is visited by thread t at
        // round ≡ j - t * objects/threads (mod objects): a hand-off chain.
        let offset = self.tid * (self.objects / self.threads).max(1);
        let obj = (round + offset) % self.objects;
        let block_in_obj = within % self.blocks_per_obj;
        // First half of the hold reads, second half writes back.
        let write = within * 2 >= self.hold;
        PatternAccess {
            block: self.region.block(obj * self.blocks_per_obj + block_in_obj),
            pc: self.site.pc(if write { 1 } else { 0 }),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            instr_gap: self.instr_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpace, PcAllocator};
    use crate::patterns::testutil::drain;

    #[test]
    fn holds_object_for_hold_accesses() {
        let mut space = AddressSpace::new();
        let r = space.alloc(64);
        let mut p = Migratory::new(r, PcAllocator::new().alloc(2), 16, 8, 0, 4, 5);
        let accs = drain(&mut p, 16);
        // First 8 accesses hit object 0's blocks, next 8 hit object 1's.
        let obj_blocks = 64 / 16;
        for a in &accs[..8] {
            assert!(a.block.raw() - r.block(0).raw() < obj_blocks);
        }
        for a in &accs[8..] {
            let off = a.block.raw() - r.block(0).raw();
            assert!((obj_blocks..2 * obj_blocks).contains(&off));
        }
    }

    #[test]
    fn reads_then_writes_within_hold() {
        let mut space = AddressSpace::new();
        let r = space.alloc(64);
        let mut p = Migratory::new(r, PcAllocator::new().alloc(2), 16, 8, 0, 4, 5);
        let accs = drain(&mut p, 8);
        assert!(accs[..4].iter().all(|a| !a.kind.is_write()));
        assert!(accs[4..].iter().all(|a| a.kind.is_write()));
    }

    #[test]
    fn different_threads_visit_same_objects_at_different_rounds() {
        let mut space = AddressSpace::new();
        let r = space.alloc(64);
        let pcs = PcAllocator::new().alloc(2);
        let mut t0 = Migratory::new(r, pcs, 16, 4, 0, 4, 5);
        let mut t1 = Migratory::new(r, pcs, 16, 4, 1, 4, 5);
        let a0 = drain(&mut t0, 64);
        let a1 = drain(&mut t1, 64);
        // Same time step => different objects (no concurrent holders).
        for (x, y) in a0.iter().zip(&a1) {
            assert_ne!(x.block, y.block);
        }
        // But over the run, both touch overlapping object sets.
        let s0: std::collections::HashSet<_> = a0.iter().map(|a| a.block).collect();
        let s1: std::collections::HashSet<_> = a1.iter().map(|a| a.block).collect();
        assert!(s0.intersection(&s1).count() > 0);
    }
}

//! Private (unshared) access patterns.

use llc_sim::AccessKind;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::layout::{PcSite, Region};
use crate::zipf::ZipfSampler;

use super::{Pattern, PatternAccess};

/// Sequential streaming over a private region (the dominant behaviour of
/// `blackscholes`- and `swim`-like codes): reads with an occasional store,
/// no reuse until the region wraps.
#[derive(Debug, Clone)]
pub struct PrivateStream {
    region: Region,
    site: PcSite,
    pos: u64,
    /// Every `write_every`-th access is a store; 0 disables stores.
    write_every: u32,
    counter: u32,
    instr_gap: u32,
}

impl PrivateStream {
    /// Creates a streaming pattern over `region`.
    pub fn new(region: Region, site: PcSite, write_every: u32, instr_gap: u32) -> Self {
        PrivateStream {
            region,
            site,
            pos: 0,
            write_every,
            counter: 0,
            instr_gap,
        }
    }
}

impl Pattern for PrivateStream {
    fn next_access(&mut self, _rng: &mut SmallRng) -> PatternAccess {
        self.counter = self.counter.wrapping_add(1);
        let write = self.write_every > 0 && self.counter.is_multiple_of(self.write_every);
        let a = PatternAccess {
            block: self.region.block(self.pos),
            pc: self.site.pc(if write { 1 } else { 0 }),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            instr_gap: self.instr_gap,
        };
        self.pos += 1;
        a
    }
}

/// Reused private working set (per-thread scratch data): Zipf-popular
/// blocks of a private region with a configurable store fraction.
#[derive(Debug, Clone)]
pub struct PrivateWorkingSet {
    region: Region,
    site: PcSite,
    zipf: ZipfSampler,
    write_pct: u8,
    instr_gap: u32,
}

impl PrivateWorkingSet {
    /// Creates a working-set pattern over `region` with Zipf exponent
    /// `theta` and `write_pct`% stores.
    ///
    /// # Panics
    ///
    /// Panics if `write_pct > 100`.
    pub fn new(region: Region, site: PcSite, theta: f64, write_pct: u8, instr_gap: u32) -> Self {
        assert!(write_pct <= 100, "write percentage out of range");
        let zipf = ZipfSampler::new(region.blocks().min(crate::zipf::MAX_SUPPORT), theta);
        PrivateWorkingSet {
            region,
            site,
            zipf,
            write_pct,
            instr_gap,
        }
    }
}

impl Pattern for PrivateWorkingSet {
    fn next_access(&mut self, rng: &mut SmallRng) -> PatternAccess {
        let rank = self.zipf.sample(rng);
        // Spread popular ranks across the region so the hot set is not one
        // dense prefix of sets.
        let idx = llc_sim::splitmix64(rank) % self.region.blocks();
        let write = rng.gen_range(0u32..100) < u32::from(self.write_pct);
        PatternAccess {
            block: self.region.block(idx),
            pc: self.site.pc(if write { 1 } else { 0 }),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            instr_gap: self.instr_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpace, PcAllocator};
    use crate::patterns::testutil::drain;

    #[test]
    fn stream_walks_sequentially_and_wraps() {
        let mut space = AddressSpace::new();
        let r = space.alloc(4);
        let mut p = PrivateStream::new(r, PcAllocator::new().alloc(2), 0, 3);
        let accs = drain(&mut p, 8);
        for (i, a) in accs.iter().enumerate() {
            assert_eq!(a.block, r.block(i as u64));
            assert_eq!(a.kind, AccessKind::Read);
            assert_eq!(a.instr_gap, 3);
        }
        assert_eq!(accs[0].block, accs[4].block);
    }

    #[test]
    fn stream_write_cadence() {
        let mut space = AddressSpace::new();
        let r = space.alloc(64);
        let mut p = PrivateStream::new(r, PcAllocator::new().alloc(2), 4, 1);
        let accs = drain(&mut p, 16);
        let writes = accs.iter().filter(|a| a.kind.is_write()).count();
        assert_eq!(writes, 4);
        // Reads and writes use different PCs.
        let rpc = accs.iter().find(|a| !a.kind.is_write()).unwrap().pc;
        let wpc = accs.iter().find(|a| a.kind.is_write()).unwrap().pc;
        assert_ne!(rpc, wpc);
    }

    #[test]
    fn working_set_stays_in_region_with_requested_write_mix() {
        let mut space = AddressSpace::new();
        let r = space.alloc(128);
        let mut p = PrivateWorkingSet::new(r, PcAllocator::new().alloc(2), 0.9, 30, 2);
        let accs = drain(&mut p, 2000);
        assert!(accs.iter().all(|a| r.contains(a.block)));
        let writes = accs.iter().filter(|a| a.kind.is_write()).count();
        assert!((400..800).contains(&writes), "write count {writes}");
    }

    #[test]
    fn working_set_exhibits_reuse() {
        let mut space = AddressSpace::new();
        let r = space.alloc(1024);
        let mut p = PrivateWorkingSet::new(r, PcAllocator::new().alloc(2), 1.1, 0, 1);
        let accs = drain(&mut p, 4000);
        let distinct: std::collections::HashSet<_> = accs.iter().map(|a| a.block).collect();
        // Strong skew: far fewer distinct blocks than accesses.
        assert!(distinct.len() < 1000, "distinct blocks {}", distinct.len());
    }
}

//! Spatially structured sharing: nearest-neighbour stencils and
//! barrier-phased all-to-all transposes.

use llc_sim::AccessKind;
use rand::rngs::SmallRng;

use crate::layout::{PcSite, Region};

use super::{Pattern, PatternAccess};

/// Nearest-neighbour stencil sweep (`ocean`-, `fluidanimate`-,
/// `mgrid`-like): a thread sweeps its own partition row by row
/// (read-modify-write) and reads halo rows owned by its left and right
/// neighbours at each row boundary. Only the boundary blocks are shared;
/// interior blocks stay private — exactly the "small shared surface, large
/// private volume" profile of grid codes.
#[derive(Debug, Clone)]
pub struct Stencil {
    own: Region,
    left: Region,
    right: Region,
    site: PcSite,
    row_blocks: u64,
    step: u64,
    instr_gap: u32,
}

impl Stencil {
    /// Creates a stencil over a thread's `own` partition, with the `left`
    /// and `right` neighbours' partitions for halo reads.
    ///
    /// # Panics
    ///
    /// Panics if `row_blocks` is zero.
    pub fn new(
        own: Region,
        left: Region,
        right: Region,
        site: PcSite,
        row_blocks: u64,
        instr_gap: u32,
    ) -> Self {
        assert!(row_blocks > 0, "rows must be non-empty");
        Stencil {
            own,
            left,
            right,
            site,
            row_blocks,
            step: 0,
            instr_gap,
        }
    }
}

impl Pattern for Stencil {
    fn next_access(&mut self, _rng: &mut SmallRng) -> PatternAccess {
        // Each "row" costs row_blocks + 2 accesses: halo read left, halo
        // read right, then a RMW-ish sweep of the row (reads with a write
        // every other block).
        let cost = self.row_blocks + 2;
        let row = self.step / cost;
        let pos = self.step % cost;
        self.step += 1;
        if pos == 0 {
            // Halo from the left neighbour: its *last* row of this sweep.
            return PatternAccess {
                block: self.left.block((row + 1) * self.row_blocks - 1),
                pc: self.site.pc(0),
                kind: AccessKind::Read,
                instr_gap: self.instr_gap,
            };
        }
        if pos == 1 {
            // Halo from the right neighbour: its *first* row block.
            return PatternAccess {
                block: self.right.block(row * self.row_blocks),
                pc: self.site.pc(1),
                kind: AccessKind::Read,
                instr_gap: self.instr_gap,
            };
        }
        let i = row * self.row_blocks + (pos - 2);
        let write = pos.is_multiple_of(2);
        PatternAccess {
            block: self.own.block(i),
            pc: self.site.pc(if write { 3 } else { 2 }),
            kind: if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
            instr_gap: self.instr_gap,
        }
    }
}

/// Barrier-phased all-to-all exchange (`fft`-, `radix`-like transpose):
/// in phase *p*, thread *t* reads the matrix segment owned by thread
/// `(t + p) mod n` and writes its own segment. The set of blocks a thread
/// shares changes completely at every phase boundary — the phase-shifting
/// behaviour that defeats history-based sharing predictors.
#[derive(Debug, Clone)]
pub struct Transpose {
    segments: Vec<Region>,
    own: usize,
    site: PcSite,
    phase_len: u64,
    step: u64,
    instr_gap: u32,
}

impl Transpose {
    /// Creates the pattern for thread `own` over all threads' `segments`.
    ///
    /// `phase_len` is the number of accesses per phase (per thread).
    ///
    /// # Panics
    ///
    /// Panics if `segments` is empty, `own` is out of range, or
    /// `phase_len` is zero.
    pub fn new(
        segments: Vec<Region>,
        own: usize,
        site: PcSite,
        phase_len: u64,
        instr_gap: u32,
    ) -> Self {
        assert!(
            !segments.is_empty() && own < segments.len(),
            "bad segment index"
        );
        assert!(phase_len > 0, "phase length must be non-zero");
        Transpose {
            segments,
            own,
            site,
            phase_len,
            step: 0,
            instr_gap,
        }
    }

    /// The phase the pattern is currently in.
    pub fn phase(&self) -> u64 {
        self.step / (2 * self.phase_len)
    }
}

impl Pattern for Transpose {
    fn next_access(&mut self, _rng: &mut SmallRng) -> PatternAccess {
        // A phase is phase_len (read src, write own) pairs.
        let pair = self.step / 2;
        let is_write = self.step % 2 == 1;
        let phase = pair / self.phase_len;
        let pos = pair % self.phase_len;
        self.step += 1;
        let n = self.segments.len() as u64;
        if is_write {
            PatternAccess {
                block: self.segments[self.own].block(pos),
                pc: self.site.pc(1),
                kind: AccessKind::Write,
                instr_gap: self.instr_gap,
            }
        } else {
            let src = ((self.own as u64 + phase) % n) as usize;
            PatternAccess {
                block: self.segments[src].block(pos),
                pc: self.site.pc(0),
                kind: AccessKind::Read,
                instr_gap: self.instr_gap,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpace, PcAllocator};
    use crate::patterns::testutil::drain;

    fn three_regions() -> (Region, Region, Region) {
        let mut space = AddressSpace::new();
        (space.alloc(64), space.alloc(64), space.alloc(64))
    }

    #[test]
    fn stencil_reads_both_halos_each_row() {
        let (own, left, right) = three_regions();
        let mut p = Stencil::new(own, left, right, PcAllocator::new().alloc(4), 6, 3);
        let accs = drain(&mut p, 16); // two rows of cost 8
        assert!(left.contains(accs[0].block));
        assert!(right.contains(accs[1].block));
        assert!(accs[2..8].iter().all(|a| own.contains(a.block)));
        assert!(left.contains(accs[8].block));
        assert!(right.contains(accs[9].block));
    }

    #[test]
    fn stencil_halos_are_read_only_interior_is_rmw() {
        let (own, left, right) = three_regions();
        let mut p = Stencil::new(own, left, right, PcAllocator::new().alloc(4), 6, 3);
        let accs = drain(&mut p, 8);
        assert!(!accs[0].kind.is_write());
        assert!(!accs[1].kind.is_write());
        assert!(accs[2..8].iter().any(|a| a.kind.is_write()));
        assert!(accs[2..8].iter().any(|a| !a.kind.is_write()));
    }

    #[test]
    fn transpose_rotates_source_segment_per_phase() {
        let mut space = AddressSpace::new();
        let segs = vec![space.alloc(16), space.alloc(16), space.alloc(16)];
        let mut p = Transpose::new(segs.clone(), 0, PcAllocator::new().alloc(2), 4, 2);
        // Phase 0: reads own (src = 0). 4 pairs = 8 accesses.
        let phase0 = drain(&mut p, 8);
        for pair in phase0.chunks(2) {
            assert!(segs[0].contains(pair[0].block));
            assert!(pair[1].kind.is_write());
            assert!(segs[0].contains(pair[1].block));
        }
        assert_eq!(p.phase(), 1);
        // Phase 1: reads segment 1, writes own.
        let phase1 = drain(&mut p, 8);
        for pair in phase1.chunks(2) {
            assert!(segs[1].contains(pair[0].block));
            assert!(!pair[0].kind.is_write());
            assert!(segs[0].contains(pair[1].block));
        }
    }

    #[test]
    fn transpose_threads_cross_read_each_other() {
        let mut space = AddressSpace::new();
        let segs = vec![space.alloc(16), space.alloc(16)];
        let pcs = PcAllocator::new().alloc(2);
        let mut t0 = Transpose::new(segs.clone(), 0, pcs, 4, 2);
        let mut t1 = Transpose::new(segs.clone(), 1, pcs, 4, 2);
        // Phase 1 for both: t0 reads seg1, t1 reads seg0.
        let a0 = drain(&mut t0, 16);
        let a1 = drain(&mut t1, 16);
        assert!(a0[8..].iter().step_by(2).all(|a| segs[1].contains(a.block)));
        assert!(a1[8..].iter().step_by(2).all(|a| segs[0].contains(a.block)));
    }
}

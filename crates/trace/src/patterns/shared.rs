//! Shared-data access patterns: read-only tables and contended hot blocks.

use llc_sim::AccessKind;
use rand::rngs::SmallRng;

use crate::layout::{PcSite, Region};
use crate::zipf::ZipfSampler;

use super::{Pattern, PatternAccess};

/// Read-only shared table with Zipf popularity (a `bodytrack`-like model,
/// a `ferret`-like database, `streamcluster`-like centres): every thread
/// reads the same region, so popular blocks accumulate many sharers while
/// staying clean.
#[derive(Debug, Clone)]
pub struct SharedReadOnly {
    region: Region,
    site: PcSite,
    zipf: ZipfSampler,
    instr_gap: u32,
}

impl SharedReadOnly {
    /// Creates a read-only shared pattern; construct one per thread over
    /// the *same* region.
    pub fn new(region: Region, site: PcSite, theta: f64, instr_gap: u32) -> Self {
        let zipf = ZipfSampler::new(region.blocks().min(crate::zipf::MAX_SUPPORT), theta);
        SharedReadOnly {
            region,
            site,
            zipf,
            instr_gap,
        }
    }
}

impl Pattern for SharedReadOnly {
    fn next_access(&mut self, rng: &mut SmallRng) -> PatternAccess {
        let rank = self.zipf.sample(rng);
        let idx = llc_sim::splitmix64(rank) % self.region.blocks();
        PatternAccess {
            block: self.region.block(idx),
            pc: self.site.pc(0),
            kind: AccessKind::Read,
            instr_gap: self.instr_gap,
        }
    }
}

/// Contended read-modify-write blocks (lock words, reduction variables,
/// shared counters): each visit is a load followed by a store to the same
/// block, producing intense read-write sharing and coherence ping-pong.
#[derive(Debug, Clone)]
pub struct LockHot {
    region: Region,
    site: PcSite,
    zipf: ZipfSampler,
    pending_store: Option<u64>,
    instr_gap: u32,
}

impl LockHot {
    /// Creates a contended-hot-block pattern; construct one per thread
    /// over the *same* small region.
    pub fn new(region: Region, site: PcSite, instr_gap: u32) -> Self {
        let zipf = ZipfSampler::new(region.blocks(), 0.6);
        LockHot {
            region,
            site,
            zipf,
            pending_store: None,
            instr_gap,
        }
    }
}

impl Pattern for LockHot {
    fn next_access(&mut self, rng: &mut SmallRng) -> PatternAccess {
        if let Some(idx) = self.pending_store.take() {
            return PatternAccess {
                block: self.region.block(idx),
                pc: self.site.pc(1),
                kind: AccessKind::Write,
                instr_gap: self.instr_gap,
            };
        }
        let idx = self.zipf.sample(rng);
        self.pending_store = Some(idx);
        PatternAccess {
            block: self.region.block(idx),
            pc: self.site.pc(0),
            kind: AccessKind::Read,
            instr_gap: self.instr_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpace, PcAllocator};
    use crate::patterns::testutil::drain;

    #[test]
    fn shared_read_only_never_writes() {
        let mut space = AddressSpace::new();
        let r = space.alloc(256);
        let mut p = SharedReadOnly::new(r, PcAllocator::new().alloc(1), 1.0, 2);
        let accs = drain(&mut p, 1000);
        assert!(accs.iter().all(|a| !a.kind.is_write()));
        assert!(accs.iter().all(|a| r.contains(a.block)));
    }

    #[test]
    fn two_threads_share_popular_blocks() {
        let mut space = AddressSpace::new();
        let r = space.alloc(256);
        let pcs = PcAllocator::new().alloc(1);
        let mut t0 = SharedReadOnly::new(r, pcs, 1.0, 2);
        let mut t1 = SharedReadOnly::new(r, pcs, 1.0, 2);
        let a0: std::collections::HashSet<_> =
            drain(&mut t0, 500).iter().map(|a| a.block).collect();
        let a1: std::collections::HashSet<_> =
            drain(&mut t1, 500).iter().map(|a| a.block).collect();
        let common = a0.intersection(&a1).count();
        assert!(common > 20, "threads share only {common} blocks");
    }

    #[test]
    fn lock_hot_is_rmw_pairs() {
        let mut space = AddressSpace::new();
        let r = space.alloc(4);
        let mut p = LockHot::new(r, PcAllocator::new().alloc(2), 6);
        let accs = drain(&mut p, 10);
        for pair in accs.chunks(2) {
            assert_eq!(pair[0].kind, AccessKind::Read);
            assert_eq!(pair[1].kind, AccessKind::Write);
            assert_eq!(pair[0].block, pair[1].block);
        }
    }
}

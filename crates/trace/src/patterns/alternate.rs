//! Coarse-grained phase alternation between two sub-patterns.
//!
//! Barrier-structured programs (`fft`, `radix`, `mgrid`) do not blend
//! communication and computation uniformly: they run long compute phases
//! on private data separated by communication phases that touch shared
//! data. [`PhaseAlternate`] reproduces that macro-structure — and with it
//! the *bursty* sharing time-series of Fig. 11 that history-based
//! fill-time predictors cannot track.

use rand::rngs::SmallRng;

use super::{Pattern, PatternAccess};

/// Alternates between pattern `a` (for `a_len` accesses) and pattern `b`
/// (for `b_len` accesses), repeating forever.
pub struct PhaseAlternate {
    a: Box<dyn Pattern>,
    b: Box<dyn Pattern>,
    a_len: u64,
    b_len: u64,
    step: u64,
}

impl PhaseAlternate {
    /// Creates the alternation.
    ///
    /// # Panics
    ///
    /// Panics if either phase length is zero.
    pub fn new(a: Box<dyn Pattern>, a_len: u64, b: Box<dyn Pattern>, b_len: u64) -> Self {
        assert!(a_len > 0 && b_len > 0, "phase lengths must be non-zero");
        PhaseAlternate {
            a,
            b,
            a_len,
            b_len,
            step: 0,
        }
    }

    /// `true` while the next access comes from pattern `a`.
    pub fn in_phase_a(&self) -> bool {
        self.step % (self.a_len + self.b_len) < self.a_len
    }
}

impl Pattern for PhaseAlternate {
    fn next_access(&mut self, rng: &mut SmallRng) -> PatternAccess {
        let use_a = self.in_phase_a();
        self.step += 1;
        if use_a {
            self.a.next_access(rng)
        } else {
            self.b.next_access(rng)
        }
    }
}

impl std::fmt::Debug for PhaseAlternate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PhaseAlternate")
            .field("a_len", &self.a_len)
            .field("b_len", &self.b_len)
            .field("step", &self.step)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::AddressSpace;
    use crate::layout::PcAllocator;
    use crate::patterns::testutil::drain;
    use crate::patterns::PrivateStream;

    #[test]
    fn alternates_in_long_stretches() {
        let mut space = AddressSpace::new();
        let ra = space.alloc(16);
        let rb = space.alloc(16);
        let mut pcs = PcAllocator::new();
        let a = PrivateStream::new(ra, pcs.alloc(1), 0, 1);
        let b = PrivateStream::new(rb, pcs.alloc(1), 0, 1);
        let mut p = PhaseAlternate::new(Box::new(a), 5, Box::new(b), 3);
        let accs = drain(&mut p, 16);
        for (i, acc) in accs.iter().enumerate() {
            let in_a = (i as u64) % 8 < 5;
            assert_eq!(ra.contains(acc.block), in_a, "access {i}");
            assert_eq!(rb.contains(acc.block), !in_a, "access {i}");
        }
    }

    #[test]
    #[should_panic(expected = "phase lengths")]
    fn rejects_zero_length_phase() {
        let mut space = AddressSpace::new();
        let r = space.alloc(16);
        let mut pcs = PcAllocator::new();
        let a = PrivateStream::new(r, pcs.alloc(1), 0, 1);
        let b = PrivateStream::new(r, pcs.alloc(1), 0, 1);
        let _ = PhaseAlternate::new(Box::new(a), 0, Box::new(b), 1);
    }
}

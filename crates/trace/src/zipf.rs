//! Zipf-distributed sampling of block indices.
//!
//! Hot shared structures (a body-tracking model, a similarity database,
//! cluster centres) are touched with a heavily skewed popularity profile;
//! Zipf is the standard model. The sampler precomputes the CDF once and
//! samples with a binary search, so per-access cost is `O(log n)`.

use rand::Rng;

/// Maximum supported support size (keeps the CDF table ≤ 16 MB).
pub const MAX_SUPPORT: u64 = 1 << 21;

/// A Zipf(θ) sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cdf: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items with exponent `theta` (0 =
    /// uniform; ~0.8–1.2 models hot-data skews).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero or exceeds [`MAX_SUPPORT`], or if `theta` is
    /// negative or non-finite.
    pub fn new(n: u64, theta: f64) -> Self {
        assert!(n > 0, "support must be non-empty");
        assert!(n <= MAX_SUPPORT, "support {n} exceeds MAX_SUPPORT");
        assert!(
            theta.is_finite() && theta >= 0.0,
            "theta must be finite and non-negative"
        );
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0;
        for i in 1..=n {
            acc += 1.0 / (i as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        ZipfSampler { cdf }
    }

    /// Number of items.
    pub fn support(&self) -> u64 {
        self.cdf.len() as u64
    }

    /// Draws an index in `0..n`; index 0 is the most popular.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> u64 {
        let u: f64 = rng.gen();
        // partition_point returns the first index whose CDF value is >= u.
        self.cdf.partition_point(|&c| c < u) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn samples_stay_in_range() {
        let z = ZipfSampler::new(100, 1.0);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn zipf_skews_toward_low_ranks() {
        let z = ZipfSampler::new(1000, 1.0);
        let mut rng = SmallRng::seed_from_u64(2);
        let mut low = 0;
        let n = 20_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        // With θ=1 and n=1000, ranks 0..10 hold ≈ 39% of the mass.
        let frac = low as f64 / n as f64;
        assert!(frac > 0.30 && frac < 0.50, "rank-0..10 mass {frac}");
    }

    #[test]
    fn theta_zero_is_uniform() {
        let z = ZipfSampler::new(10, 0.0);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut counts = [0u32; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng) as usize] += 1;
        }
        for &c in &counts {
            assert!((3500..6500).contains(&c), "uniform bucket off: {c}");
        }
    }

    #[test]
    fn single_item_support() {
        let z = ZipfSampler::new(1, 1.2);
        let mut rng = SmallRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
        assert_eq!(z.support(), 1);
    }

    #[test]
    #[should_panic(expected = "support must be non-empty")]
    fn rejects_empty_support() {
        let _ = ZipfSampler::new(0, 1.0);
    }
}

//! A compact binary trace format for recording and replaying access
//! streams.
//!
//! Synthetic workloads are regenerable, but a fixed on-disk trace is still
//! useful: freezing a stream across tool versions, importing accesses
//! captured elsewhere, or shipping a regression corpus. The format is
//! deliberately trivial — a 16-byte header followed by fixed 20-byte
//! little-endian records — so any tool can parse it.
//!
//! ```text
//! header:  magic "LLCT" | u16 version | u16 reserved | u64 record count
//! record:  u8 core | u8 kind (0 = read, 1 = write) | u16 instr_gap
//!        | u64 pc | u64 addr
//! ```

use std::io::{self, Read, Write};

use llc_sim::{AccessKind, Addr, CoreId, MemAccess, Pc, MAX_CORES};

use crate::source::TraceSource;

/// File-format magic bytes.
pub const MAGIC: [u8; 4] = *b"LLCT";

/// Current format version.
pub const VERSION: u16 = 1;

const RECORD_BYTES: usize = 20;

/// Writes a trace to any [`Write`] sink.
///
/// The record count is part of the header, so the writer buffers nothing
/// but must be told the count up front — use [`write_trace`] for the
/// common "drain a source" case.
#[derive(Debug)]
pub struct TraceWriter<W> {
    sink: W,
    declared: u64,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W, records: u64) -> io::Result<Self> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&0u16.to_le_bytes())?;
        sink.write_all(&records.to_le_bytes())?;
        Ok(TraceWriter { sink, declared: records, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; fails if more records than declared are
    /// written.
    pub fn write(&mut self, a: &MemAccess) -> io::Result<()> {
        if self.written == self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "more records than declared in the header",
            ));
        }
        let mut rec = [0u8; RECORD_BYTES];
        rec[0] = a.core.index() as u8;
        rec[1] = u8::from(a.kind.is_write());
        rec[2..4].copy_from_slice(&(a.instr_gap.min(u32::from(u16::MAX)) as u16).to_le_bytes());
        rec[4..12].copy_from_slice(&a.pc.raw().to_le_bytes());
        rec[12..20].copy_from_slice(&a.addr.raw().to_le_bytes());
        self.sink.write_all(&rec)?;
        self.written += 1;
        Ok(())
    }

    /// Finishes the file, checking the declared count was met.
    ///
    /// # Errors
    ///
    /// Fails if fewer records than declared were written.
    pub fn finish(mut self) -> io::Result<W> {
        if self.written != self.declared {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("declared {} records but wrote {}", self.declared, self.written),
            ));
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Drains `source` into `sink` in trace-file format.
///
/// # Errors
///
/// Propagates I/O errors. Sources without a length hint are buffered
/// first.
pub fn write_trace<S: TraceSource, W: Write>(mut source: S, sink: W) -> io::Result<u64> {
    match source.len_hint() {
        Some(n) => {
            let mut w = TraceWriter::new(sink, n)?;
            let mut written = 0;
            while let Some(a) = source.next_access() {
                w.write(&a)?;
                written += 1;
            }
            w.finish()?;
            Ok(written)
        }
        None => {
            let mut all = Vec::new();
            while let Some(a) = source.next_access() {
                all.push(a);
            }
            let mut w = TraceWriter::new(sink, all.len() as u64)?;
            for a in &all {
                w.write(a)?;
            }
            w.finish()?;
            Ok(all.len() as u64)
        }
    }
}

/// Streams a trace back out of any [`Read`] source.
#[derive(Debug)]
pub struct TraceFileSource<R> {
    reader: R,
    remaining: u64,
    total: u64,
}

impl<R: Read> TraceFileSource<R> {
    /// Parses the header and prepares to stream records.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a bad magic, or an unsupported version.
    pub fn new(mut reader: R) -> io::Result<Self> {
        let mut header = [0u8; 16];
        reader.read_exact(&mut header)?;
        if header[0..4] != MAGIC {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "not an LLCT trace"));
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("unsupported trace version {version}"),
            ));
        }
        let total = u64::from_le_bytes(header[8..16].try_into().expect("8 bytes"));
        Ok(TraceFileSource { reader, remaining: total, total })
    }

    fn read_record(&mut self) -> io::Result<MemAccess> {
        let mut rec = [0u8; RECORD_BYTES];
        self.reader.read_exact(&mut rec)?;
        let core = usize::from(rec[0]);
        if core >= MAX_CORES {
            return Err(io::Error::new(io::ErrorKind::InvalidData, "core id out of range"));
        }
        Ok(MemAccess {
            core: CoreId::new(core),
            kind: if rec[1] != 0 { AccessKind::Write } else { AccessKind::Read },
            instr_gap: u32::from(u16::from_le_bytes([rec[2], rec[3]])),
            pc: Pc::new(u64::from_le_bytes(rec[4..12].try_into().expect("8 bytes"))),
            addr: Addr::new(u64::from_le_bytes(rec[12..20].try_into().expect("8 bytes"))),
        })
    }
}

impl<R: Read> TraceSource for TraceFileSource<R> {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.remaining == 0 {
            return None;
        }
        match self.read_record() {
            Ok(a) => {
                self.remaining -= 1;
                Some(a)
            }
            Err(_) => {
                // Truncated file: stop cleanly.
                self.remaining = 0;
                None
            }
        }
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{App, Scale};
    use crate::source::VecSource;

    fn collect<S: TraceSource>(mut s: S) -> Vec<MemAccess> {
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            v.push(a);
        }
        v
    }

    #[test]
    fn round_trips_a_workload_prefix() {
        let mut w = App::Dedup.workload(4, Scale::Tiny);
        let mut original = Vec::new();
        for _ in 0..5000 {
            original.push(w.next_access().expect("enough accesses"));
        }
        let mut buf = Vec::new();
        write_trace(VecSource::new(original.clone()), &mut buf).expect("write");
        let replay = TraceFileSource::new(buf.as_slice()).expect("header");
        assert_eq!(replay.len_hint(), Some(5000));
        assert_eq!(collect(replay), original);
    }

    #[test]
    fn rejects_bad_magic_and_version() {
        assert!(TraceFileSource::new(&b"NOPE"[..]).is_err());
        let mut buf = Vec::new();
        write_trace(VecSource::new(vec![]), &mut buf).expect("write empty");
        buf[4] = 99; // corrupt version
        assert!(TraceFileSource::new(buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_file_stops_cleanly() {
        let mut w = App::Swim.workload(2, Scale::Tiny);
        let records: Vec<MemAccess> = (0..100).map(|_| w.next_access().unwrap()).collect();
        let mut buf = Vec::new();
        write_trace(VecSource::new(records), &mut buf).expect("write");
        buf.truncate(16 + 50 * RECORD_BYTES + 7); // mid-record
        let replay = TraceFileSource::new(buf.as_slice()).expect("header");
        let got = collect(replay);
        assert_eq!(got.len(), 50);
    }

    #[test]
    fn writer_enforces_declared_count() {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 1).expect("header");
        let a = MemAccess::new(CoreId::new(0), Pc::new(4), Addr::new(64), AccessKind::Read);
        w.write(&a).expect("first record");
        assert!(w.write(&a).is_err(), "over-declared write must fail");
        // Under-writing fails at finish.
        let mut buf2 = Vec::new();
        let w2 = TraceWriter::new(&mut buf2, 2).expect("header");
        assert!(w2.finish().is_err());
    }
}

//! A compact binary trace format for recording and replaying access
//! streams.
//!
//! Synthetic workloads are regenerable, but a fixed on-disk trace is still
//! useful: freezing a stream across tool versions, importing accesses
//! captured elsewhere, or shipping a regression corpus. The format is
//! deliberately trivial — a 16-byte header followed by fixed 20-byte
//! little-endian records — so any tool can parse it.
//!
//! ```text
//! header:  magic "LLCT" | u16 version | u16 reserved | u64 record count
//! record:  u8 core | u8 kind (0 = read, 1 = write) | u16 instr_gap
//!        | u64 pc | u64 addr
//! ```
//!
//! # Failure model
//!
//! Decoding is defensive: bad magic, an unknown version, a truncated
//! header, a record cut short, a core id outside the decoder's limit and
//! an out-of-domain kind byte each produce a distinct [`TraceError`] —
//! never a panic. The streaming [`TraceSource`] interface parks the first
//! error in the source (retrievable via [`TraceFileSource::error`] or the
//! trait-level [`TraceSource::take_error`]); the strict
//! [`TraceFileSource::read_all`] path returns it directly.

use std::io::{self, Read, Write};

use llc_sim::{AccessKind, Addr, CoreId, MemAccess, Pc, MAX_CORES};

use crate::error::TraceError;
use crate::source::TraceSource;

/// File-format magic bytes.
pub const MAGIC: [u8; 4] = *b"LLCT";

/// Current format version.
pub const VERSION: u16 = 1;

/// Size of the fixed file header in bytes.
pub const HEADER_BYTES: usize = 16;

/// Size of one fixed record in bytes.
pub const RECORD_BYTES: usize = 20;

/// Writes a trace to any [`Write`] sink.
///
/// The record count is part of the header, so the writer buffers nothing
/// but must be told the count up front — use [`write_trace`] for the
/// common "drain a source" case.
#[derive(Debug)]
pub struct TraceWriter<W> {
    sink: W,
    declared: u64,
    written: u64,
}

impl<W: Write> TraceWriter<W> {
    /// Creates a writer and emits the header.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from the sink.
    pub fn new(mut sink: W, records: u64) -> Result<Self, TraceError> {
        sink.write_all(&MAGIC)?;
        sink.write_all(&VERSION.to_le_bytes())?;
        sink.write_all(&0u16.to_le_bytes())?;
        sink.write_all(&records.to_le_bytes())?;
        Ok(TraceWriter {
            sink,
            declared: records,
            written: 0,
        })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::RecordOverflow`] if more records than
    /// declared are written, [`TraceError::CoreUnencodable`] if the core
    /// id does not fit the 1-byte encoding, and propagates sink I/O
    /// errors.
    pub fn write(&mut self, a: &MemAccess) -> Result<(), TraceError> {
        if self.written == self.declared {
            return Err(TraceError::RecordOverflow {
                declared: self.declared,
            });
        }
        let core = a.core.index();
        if core > usize::from(u8::MAX) {
            return Err(TraceError::CoreUnencodable { core });
        }
        let mut rec = [0u8; RECORD_BYTES];
        rec[0] = core as u8;
        rec[1] = u8::from(a.kind.is_write());
        rec[2..4].copy_from_slice(&(a.instr_gap.min(u32::from(u16::MAX)) as u16).to_le_bytes());
        rec[4..12].copy_from_slice(&a.pc.raw().to_le_bytes());
        rec[12..20].copy_from_slice(&a.addr.raw().to_le_bytes());
        self.sink.write_all(&rec)?;
        self.written += 1;
        Ok(())
    }

    /// Finishes the file, checking the declared count was met, and
    /// flushes the sink.
    ///
    /// Dropping a writer without calling `finish` leaves a file whose
    /// header over-declares its record count; always call `finish` and
    /// propagate its error instead of trusting the drop.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::CountMismatch`] if fewer records than
    /// declared were written — the header would otherwise lie about the
    /// file's contents — and propagates sink flush errors.
    pub fn finish(mut self) -> Result<W, TraceError> {
        if self.written != self.declared {
            return Err(TraceError::CountMismatch {
                declared: self.declared,
                written: self.written,
            });
        }
        self.sink.flush()?;
        Ok(self.sink)
    }
}

/// Drains `source` into `sink` in trace-file format and returns the
/// record count.
///
/// # Errors
///
/// Propagates every sink error and every count inconsistency between the
/// source's [`TraceSource::len_hint`] and what it actually produced
/// (an over-producing source hits [`TraceError::RecordOverflow`], an
/// under-producing one [`TraceError::CountMismatch`]). Sources without a
/// length hint are buffered first.
pub fn write_trace<S: TraceSource, W: Write>(mut source: S, sink: W) -> Result<u64, TraceError> {
    match source.len_hint() {
        Some(n) => {
            let mut w = TraceWriter::new(sink, n)?;
            let mut written = 0;
            while let Some(a) = source.next_access() {
                w.write(&a)?;
                written += 1;
            }
            if let Some(e) = source.take_error() {
                return Err(e);
            }
            w.finish()?;
            Ok(written)
        }
        None => {
            let mut all = Vec::new();
            while let Some(a) = source.next_access() {
                all.push(a);
            }
            if let Some(e) = source.take_error() {
                return Err(e);
            }
            let mut w = TraceWriter::new(sink, all.len() as u64)?;
            for a in &all {
                w.write(a)?;
            }
            w.finish()?;
            Ok(all.len() as u64)
        }
    }
}

/// Streams a trace back out of any [`Read`] source.
#[derive(Debug)]
pub struct TraceFileSource<R> {
    reader: R,
    remaining: u64,
    total: u64,
    decoded: u64,
    core_limit: usize,
    error: Option<TraceError>,
}

impl<R: Read> TraceFileSource<R> {
    /// Parses the header and prepares to stream records.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::TruncatedHeader`], [`TraceError::BadMagic`]
    /// or [`TraceError::UnsupportedVersion`] for a malformed header, and
    /// propagates other I/O errors.
    pub fn new(mut reader: R) -> Result<Self, TraceError> {
        let mut header = [0u8; HEADER_BYTES];
        read_exact_or_truncated(&mut reader, &mut header).map_err(|failure| match failure {
            ReadFailure::Eof(got) => TraceError::TruncatedHeader {
                got,
                expected: HEADER_BYTES,
            },
            ReadFailure::Io(e) => TraceError::Io(e),
        })?;
        if header[0..4] != MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&header[0..4]);
            return Err(TraceError::BadMagic { found });
        }
        let version = u16::from_le_bytes([header[4], header[5]]);
        if version != VERSION {
            return Err(TraceError::UnsupportedVersion { version });
        }
        // infallible: header is exactly 16 bytes, so bytes 8..16 are 8 bytes.
        let total = u64::from_le_bytes(header[8..16].try_into().expect("8 header bytes"));
        Ok(TraceFileSource {
            reader,
            remaining: total,
            total,
            decoded: 0,
            core_limit: MAX_CORES,
            error: None,
        })
    }

    /// Restricts decoded core ids to `cores` (e.g. the replaying
    /// hierarchy's core count) instead of the format-wide
    /// [`MAX_CORES`] bound.
    ///
    /// A trace recorded with more cores than the replaying configuration
    /// then fails with [`TraceError::CoreOutOfRange`] at the first
    /// offending record instead of corrupting per-core state downstream.
    pub fn with_core_limit(mut self, cores: usize) -> Self {
        self.core_limit = cores.min(MAX_CORES);
        self
    }

    /// The first decode error encountered, if any.
    ///
    /// The streaming [`TraceSource::next_access`] interface has no error
    /// channel; it stops at the first malformed record and parks the
    /// error here.
    pub fn error(&self) -> Option<&TraceError> {
        self.error.as_ref()
    }

    /// Records successfully decoded so far.
    pub fn decoded(&self) -> u64 {
        self.decoded
    }

    /// Produces the next record, distinguishing clean exhaustion
    /// (`Ok(None)`) from malformed input (`Err`).
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Truncated`], [`TraceError::CoreOutOfRange`],
    /// [`TraceError::BadKind`] or an I/O error for the first malformed
    /// record; subsequent calls keep returning an equivalent error.
    pub fn try_next(&mut self) -> Result<Option<MemAccess>, TraceError> {
        if let Some(e) = &self.error {
            return Err(e.clone_inexact());
        }
        if self.remaining == 0 {
            return Ok(None);
        }
        match self.read_record() {
            Ok(a) => {
                self.remaining -= 1;
                self.decoded += 1;
                Ok(Some(a))
            }
            Err(e) => {
                self.remaining = 0;
                self.error = Some(e.clone_inexact());
                Err(e)
            }
        }
    }

    /// Decodes the whole stream strictly.
    ///
    /// # Errors
    ///
    /// Returns the first decode error; a file with fewer records than the
    /// header declares fails with [`TraceError::Truncated`].
    pub fn read_all(mut self) -> Result<Vec<MemAccess>, TraceError> {
        let mut out = Vec::with_capacity(usize::try_from(self.total).unwrap_or(0).min(1 << 20));
        while let Some(a) = self.try_next()? {
            out.push(a);
        }
        Ok(out)
    }

    fn read_record(&mut self) -> Result<MemAccess, TraceError> {
        let mut rec = [0u8; RECORD_BYTES];
        read_exact_or_truncated(&mut self.reader, &mut rec).map_err(|failure| match failure {
            ReadFailure::Eof(_) => TraceError::Truncated {
                decoded: self.decoded,
                declared: self.total,
            },
            ReadFailure::Io(e) => TraceError::Io(e),
        })?;
        let core = usize::from(rec[0]);
        if core >= self.core_limit {
            return Err(TraceError::CoreOutOfRange {
                core: rec[0],
                limit: self.core_limit,
                index: self.decoded,
            });
        }
        let kind = match rec[1] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => {
                return Err(TraceError::BadKind {
                    kind: k,
                    index: self.decoded,
                })
            }
        };
        // infallible: both slices are fixed 8-byte windows of a 20-byte record.
        Ok(MemAccess {
            core: CoreId::new(core),
            kind,
            instr_gap: u32::from(u16::from_le_bytes([rec[2], rec[3]])),
            pc: Pc::new(u64::from_le_bytes(
                rec[4..12].try_into().expect("8 record bytes"),
            )),
            addr: Addr::new(u64::from_le_bytes(
                rec[12..20].try_into().expect("8 record bytes"),
            )),
        })
    }
}

/// Why [`read_exact_or_truncated`] could not fill its buffer: a clean EOF
/// after `Eof(n)` bytes, or a real I/O error.
pub(crate) enum ReadFailure {
    Eof(usize),
    Io(io::Error),
}

/// Reads exactly `buf.len()` bytes, distinguishing clean truncation from
/// other I/O failures (unlike [`Read::read_exact`], which folds both into
/// `UnexpectedEof`-flavoured errors and may leave the buffer clobbered).
pub(crate) fn read_exact_or_truncated<R: Read>(
    reader: &mut R,
    buf: &mut [u8],
) -> Result<(), ReadFailure> {
    let mut filled = 0;
    while filled < buf.len() {
        match reader.read(&mut buf[filled..]) {
            Ok(0) => return Err(ReadFailure::Eof(filled)),
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(ReadFailure::Io(e)),
        }
    }
    Ok(())
}

impl<R: Read> TraceSource for TraceFileSource<R> {
    fn next_access(&mut self) -> Option<MemAccess> {
        // An Err is parked in self.error by try_next for take_error.
        self.try_next().unwrap_or_default()
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }

    fn take_error(&mut self) -> Option<TraceError> {
        self.error.take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::{App, Scale};
    use crate::source::VecSource;

    #[test]
    fn round_trips_a_workload_prefix() -> Result<(), TraceError> {
        let mut w = App::Dedup.workload(4, Scale::Tiny);
        let mut original = Vec::new();
        for _ in 0..5000 {
            original.push(w.next_access().ok_or({
                TraceError::Truncated {
                    decoded: original.len() as u64,
                    declared: 5000,
                }
            })?);
        }
        let mut buf = Vec::new();
        write_trace(VecSource::new(original.clone()), &mut buf)?;
        let replay = TraceFileSource::new(buf.as_slice())?;
        assert_eq!(replay.len_hint(), Some(5000));
        assert_eq!(replay.read_all()?, original);
        Ok(())
    }

    #[test]
    fn rejects_bad_magic_and_version() -> Result<(), TraceError> {
        assert!(matches!(
            TraceFileSource::new(&b"NOPEnopenopenope"[..]),
            Err(TraceError::BadMagic { .. })
        ));
        let mut buf = Vec::new();
        write_trace(VecSource::new(vec![]), &mut buf)?;
        buf[4] = 99; // corrupt version
        assert!(matches!(
            TraceFileSource::new(buf.as_slice()),
            Err(TraceError::UnsupportedVersion { version: 99 })
        ));
        Ok(())
    }

    #[test]
    fn truncated_header_is_a_typed_error() {
        assert!(matches!(
            TraceFileSource::new(&b"LLCT"[..]),
            Err(TraceError::TruncatedHeader {
                got: 4,
                expected: HEADER_BYTES
            })
        ));
    }

    #[test]
    fn truncated_file_stops_and_reports() -> Result<(), TraceError> {
        let mut w = App::Swim.workload(2, Scale::Tiny);
        let records: Vec<MemAccess> = collect_n(&mut w, 100);
        let mut buf = Vec::new();
        write_trace(VecSource::new(records), &mut buf)?;
        buf.truncate(HEADER_BYTES + 50 * RECORD_BYTES + 7); // mid-record

        // The streaming interface stops cleanly but parks the error.
        let mut replay = TraceFileSource::new(buf.as_slice())?;
        let got = {
            let mut v = Vec::new();
            while let Some(a) = replay.next_access() {
                v.push(a);
            }
            v
        };
        assert_eq!(got.len(), 50);
        assert!(matches!(
            replay.take_error(),
            Some(TraceError::Truncated {
                decoded: 50,
                declared: 100
            })
        ));
        assert!(replay.take_error().is_none(), "take_error drains the slot");

        // The strict interface surfaces the same error directly.
        let strict = TraceFileSource::new(buf.as_slice())?;
        assert!(matches!(
            strict.read_all(),
            Err(TraceError::Truncated {
                decoded: 50,
                declared: 100
            })
        ));
        Ok(())
    }

    fn collect_n(w: &mut impl TraceSource, n: usize) -> Vec<MemAccess> {
        let mut v = Vec::new();
        for _ in 0..n {
            match w.next_access() {
                Some(a) => v.push(a),
                None => break,
            }
        }
        v
    }

    #[test]
    fn writer_enforces_declared_count() -> Result<(), TraceError> {
        let mut buf = Vec::new();
        let mut w = TraceWriter::new(&mut buf, 1)?;
        let a = MemAccess::new(CoreId::new(0), Pc::new(4), Addr::new(64), AccessKind::Read);
        w.write(&a)?;
        assert!(
            matches!(w.write(&a), Err(TraceError::RecordOverflow { declared: 1 })),
            "over-declared write must fail"
        );
        // Under-writing fails at finish with a typed error.
        let mut buf2 = Vec::new();
        let w2 = TraceWriter::new(&mut buf2, 2)?;
        assert!(matches!(
            w2.finish(),
            Err(TraceError::CountMismatch {
                declared: 2,
                written: 0
            })
        ));
        Ok(())
    }

    #[test]
    fn write_trace_propagates_sink_errors() {
        struct FailingSink {
            budget: usize,
        }
        impl std::io::Write for FailingSink {
            fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
                if self.budget < buf.len() {
                    return Err(io::Error::new(io::ErrorKind::StorageFull, "disk full"));
                }
                self.budget -= buf.len();
                Ok(buf.len())
            }
            fn flush(&mut self) -> io::Result<()> {
                Ok(())
            }
        }
        let a = MemAccess::new(CoreId::new(0), Pc::new(4), Addr::new(64), AccessKind::Read);
        // Budget covers the header plus one record; the second record hits
        // the sink error, which must propagate as TraceError::Io.
        let sink = FailingSink {
            budget: HEADER_BYTES + RECORD_BYTES,
        };
        let r = write_trace(VecSource::new(vec![a, a]), sink);
        assert!(matches!(r, Err(TraceError::Io(ref e)) if e.kind() == io::ErrorKind::StorageFull));
    }

    #[test]
    fn bad_kind_byte_is_rejected() -> Result<(), TraceError> {
        let a = MemAccess::new(CoreId::new(0), Pc::new(4), Addr::new(64), AccessKind::Read);
        let mut buf = Vec::new();
        write_trace(VecSource::new(vec![a]), &mut buf)?;
        buf[HEADER_BYTES + 1] = 7; // kind byte
        let strict = TraceFileSource::new(buf.as_slice())?;
        assert!(matches!(
            strict.read_all(),
            Err(TraceError::BadKind { kind: 7, index: 0 })
        ));
        Ok(())
    }

    #[test]
    fn core_limit_rejects_out_of_config_cores() -> Result<(), TraceError> {
        let a =
            |c: usize| MemAccess::new(CoreId::new(c), Pc::new(4), Addr::new(64), AccessKind::Read);
        let mut buf = Vec::new();
        write_trace(VecSource::new(vec![a(0), a(6), a(1)]), &mut buf)?;
        // Within MAX_CORES the plain decoder accepts core 6 …
        assert_eq!(TraceFileSource::new(buf.as_slice())?.read_all()?.len(), 3);
        // … but a 4-core replay limit rejects it at the right record.
        let strict = TraceFileSource::new(buf.as_slice())?.with_core_limit(4);
        assert!(matches!(
            strict.read_all(),
            Err(TraceError::CoreOutOfRange {
                core: 6,
                limit: 4,
                index: 1
            })
        ));
        Ok(())
    }
}

//! Multi-programmed workload mixes.
//!
//! The paper's opening observation is that most LLC management proposals
//! target *multi-programmed* workloads — independent programs that only
//! interfere, never share constructively. This combinator builds such
//! mixes from the application models: each program gets its own slice of
//! cores and a disjoint address-space window, so all cross-program reuse
//! disappears and only intra-program sharing (among each program's own
//! threads) remains. Comparing sharing-aware gains on a mix against the
//! full multi-threaded runs isolates how much of the benefit comes from
//! genuine cross-thread sharing.

use llc_sim::{Addr, CoreId, MemAccess, MAX_CORES};

use crate::apps::{App, Scale};
use crate::source::TraceSource;
use crate::workload::Workload;

/// Address-space window per program (1 TiB: far larger than any model's
/// footprint, so windows never collide).
const PROGRAM_WINDOW_BYTES: u64 = 1 << 40;

/// A multi-programmed mix of application models.
pub struct Multiprogram {
    programs: Vec<Workload>,
    core_base: Vec<usize>,
    next: usize,
    remaining: u64,
    total: u64,
}

impl Multiprogram {
    /// Builds a mix running each app in `apps` with `threads_each`
    /// threads; program `i` occupies cores
    /// `[i * threads_each, (i+1) * threads_each)` and the address window
    /// `[i * 1 TiB, …)`.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty or needs more than
    /// [`MAX_CORES`] cores.
    pub fn new(apps: &[App], threads_each: usize, scale: Scale) -> Self {
        assert!(!apps.is_empty(), "a mix needs at least one program");
        assert!(threads_each > 0, "programs need at least one thread");
        assert!(
            apps.len() * threads_each <= MAX_CORES,
            "mix exceeds MAX_CORES"
        );
        let programs: Vec<Workload> = apps
            .iter()
            .map(|a| a.workload(threads_each, scale))
            .collect();
        let total = programs.iter().map(|w| w.len_hint().unwrap_or(0)).sum();
        Multiprogram {
            core_base: (0..apps.len()).map(|i| i * threads_each).collect(),
            programs,
            next: 0,
            remaining: total,
            total,
        }
    }

    /// Number of programs in the mix.
    pub fn programs(&self) -> usize {
        self.programs.len()
    }
}

impl TraceSource for Multiprogram {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.remaining == 0 {
            return None;
        }
        // Fair rotation over non-exhausted programs.
        for _ in 0..self.programs.len() {
            let i = self.next;
            self.next = (self.next + 1) % self.programs.len();
            if let Some(a) = self.programs[i].next_access() {
                self.remaining -= 1;
                return Some(MemAccess {
                    core: CoreId::new(self.core_base[i] + a.core.index()),
                    addr: Addr::new(a.addr.raw() + i as u64 * PROGRAM_WINDOW_BYTES),
                    ..a
                });
            }
        }
        None
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

impl std::fmt::Debug for Multiprogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Multiprogram")
            .field("programs", &self.programs.len())
            .field("total", &self.total)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn mix_partitions_cores_and_addresses() {
        let mut m = Multiprogram::new(&[App::Swim, App::Bodytrack], 2, Scale::Tiny);
        assert_eq!(m.programs(), 2);
        let mut cores_by_window: Vec<HashSet<usize>> = vec![HashSet::new(), HashSet::new()];
        let mut n = 0u64;
        while let Some(a) = m.next_access() {
            let window = (a.addr.raw() / PROGRAM_WINDOW_BYTES) as usize;
            assert!(window < 2, "address escaped its window");
            cores_by_window[window].insert(a.core.index());
            n += 1;
        }
        assert_eq!(n, 2 * 2 * Scale::Tiny.thread_accesses());
        assert_eq!(cores_by_window[0], HashSet::from([0, 1]));
        assert_eq!(cores_by_window[1], HashSet::from([2, 3]));
    }

    #[test]
    fn no_cross_program_blocks() {
        let mut m = Multiprogram::new(&[App::Fft, App::Fft], 2, Scale::Tiny);
        // Identical programs — but their address windows must never
        // overlap.
        let mut windows_per_block: std::collections::HashMap<u64, u64> = Default::default();
        while let Some(a) = m.next_access() {
            let w = a.addr.raw() / PROGRAM_WINDOW_BYTES;
            let e = windows_per_block.entry(a.addr.block().raw()).or_insert(w);
            assert_eq!(*e, w, "block appears in two windows");
        }
    }

    #[test]
    fn budget_is_sum_of_programs() {
        let m = Multiprogram::new(&[App::Swim, App::Water, App::Dedup], 2, Scale::Tiny);
        assert_eq!(m.len_hint(), Some(3 * 2 * Scale::Tiny.thread_accesses()));
    }

    #[test]
    #[should_panic(expected = "exceeds MAX_CORES")]
    fn rejects_oversized_mix() {
        let apps = vec![App::Swim; 17];
        let _ = Multiprogram::new(&apps, 2, Scale::Tiny);
    }
}

//! Typed errors for the binary trace format.

use std::fmt;
use std::io;

/// Error produced while encoding or decoding an `LLCT` trace.
///
/// Every way a trace file can be malformed maps to a distinct variant, so
/// callers can distinguish "the file is not a trace at all" from "the
/// trace was cut short" from "a record is internally inconsistent" — and
/// none of them panics.
#[derive(Debug)]
pub enum TraceError {
    /// An underlying I/O error other than a clean truncation.
    Io(io::Error),
    /// The file does not start with the `LLCT` magic bytes.
    BadMagic {
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The header declares a format version this decoder cannot read.
    UnsupportedVersion {
        /// The declared version.
        version: u16,
    },
    /// The stream ended inside the fixed-size header.
    TruncatedHeader {
        /// Header bytes actually present.
        got: usize,
        /// Header bytes the format requires (16 for `.llct` traces,
        /// 128 for `.llcs` stream recordings).
        expected: usize,
    },
    /// The stream ended inside a record, or before the declared record
    /// count was reached.
    Truncated {
        /// Records successfully decoded before the cut.
        decoded: u64,
        /// Records the header declared.
        declared: u64,
    },
    /// A record names a core outside the decoder's configured limit.
    CoreOutOfRange {
        /// The record's core id.
        core: u8,
        /// The active limit (either `MAX_CORES` or the replaying
        /// hierarchy's core count).
        limit: usize,
        /// Index of the offending record.
        index: u64,
    },
    /// A record's kind byte is neither 0 (read) nor 1 (write).
    BadKind {
        /// The record's kind byte.
        kind: u8,
        /// Index of the offending record.
        index: u64,
    },
    /// The writer finished with a different record count than declared.
    CountMismatch {
        /// Records the header declared.
        declared: u64,
        /// Records actually written.
        written: u64,
    },
    /// More records were written than the header declared.
    RecordOverflow {
        /// Records the header declared.
        declared: u64,
    },
    /// An access carries a core id the 1-byte record encoding cannot hold.
    CoreUnencodable {
        /// The offending core id.
        core: usize,
    },
    /// A `.llcs` arena's byte length does not match the section sizes its
    /// header declares. The zero-copy view decoder requires an
    /// exactly-sized arena: a *shorter* one is reported as
    /// [`TraceError::Truncated`], so this variant specifically means the
    /// arena carries trailing bytes no section accounts for (a misaligned
    /// or garbage-padded file).
    ArenaSizeMismatch {
        /// Bytes the header's record counts require.
        expected: u64,
        /// Bytes actually present.
        actual: u64,
    },
    /// A record of a *foreign* trace format (ChampSim-style CSV, compact
    /// binary, cachegrind-like log — see `llc-ingest`) is syntactically
    /// malformed: wrong field count, an unparsable integer, an unknown
    /// line tag. Structural problems (truncation, bad magic, out-of-range
    /// cores) reuse the native variants above so callers match one
    /// failure taxonomy across every format.
    MalformedRecord {
        /// Short name of the foreign format ("champsim-csv", "llcb",
        /// "cachegrind").
        format: &'static str,
        /// Index of the offending record (line number for text formats,
        /// counting from 1).
        index: u64,
        /// What was wrong with it.
        reason: &'static str,
    },
    /// An upgrade record in a `.llcs` stream recording is out of order or
    /// points past the end of the access stream.
    BadUpgrade {
        /// The record's claimed position in the LLC access stream.
        at: u64,
        /// The recording's declared access count (`at` may be at most this:
        /// an upgrade after the last access is applied before the flush).
        accesses: u64,
        /// Index of the offending upgrade record.
        index: u64,
    },
}

impl TraceError {
    /// Clones the error for callers that need to both store and return it.
    ///
    /// `io::Error` is not `Clone`, so the `Io` variant clones as kind plus
    /// message, losing any wrapped source — acceptable for the
    /// park-and-replay use in the streaming decoder.
    pub fn clone_inexact(&self) -> TraceError {
        match self {
            TraceError::Io(e) => TraceError::Io(io::Error::new(e.kind(), e.to_string())),
            TraceError::BadMagic { found } => TraceError::BadMagic { found: *found },
            TraceError::UnsupportedVersion { version } => {
                TraceError::UnsupportedVersion { version: *version }
            }
            TraceError::TruncatedHeader { got, expected } => TraceError::TruncatedHeader {
                got: *got,
                expected: *expected,
            },
            TraceError::Truncated { decoded, declared } => TraceError::Truncated {
                decoded: *decoded,
                declared: *declared,
            },
            TraceError::CoreOutOfRange { core, limit, index } => TraceError::CoreOutOfRange {
                core: *core,
                limit: *limit,
                index: *index,
            },
            TraceError::BadKind { kind, index } => TraceError::BadKind {
                kind: *kind,
                index: *index,
            },
            TraceError::CountMismatch { declared, written } => TraceError::CountMismatch {
                declared: *declared,
                written: *written,
            },
            TraceError::RecordOverflow { declared } => TraceError::RecordOverflow {
                declared: *declared,
            },
            TraceError::CoreUnencodable { core } => TraceError::CoreUnencodable { core: *core },
            TraceError::MalformedRecord {
                format,
                index,
                reason,
            } => TraceError::MalformedRecord {
                format,
                index: *index,
                reason,
            },
            TraceError::ArenaSizeMismatch { expected, actual } => TraceError::ArenaSizeMismatch {
                expected: *expected,
                actual: *actual,
            },
            TraceError::BadUpgrade {
                at,
                accesses,
                index,
            } => TraceError::BadUpgrade {
                at: *at,
                accesses: *accesses,
                index: *index,
            },
        }
    }
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace I/O error: {e}"),
            TraceError::BadMagic { found } => {
                write!(f, "not an LLCT trace (magic bytes {found:02x?})")
            }
            TraceError::UnsupportedVersion { version } => {
                write!(f, "unsupported trace version {version}")
            }
            TraceError::TruncatedHeader { got, expected } => {
                write!(f, "truncated header: got {got} of {expected} bytes")
            }
            TraceError::Truncated { decoded, declared } => {
                write!(
                    f,
                    "truncated trace: decoded {decoded} of {declared} declared records"
                )
            }
            TraceError::CoreOutOfRange { core, limit, index } => {
                write!(
                    f,
                    "record {index}: core id {core} out of range (limit {limit})"
                )
            }
            TraceError::BadKind { kind, index } => {
                write!(
                    f,
                    "record {index}: invalid access kind {kind} (expected 0 or 1)"
                )
            }
            TraceError::CountMismatch { declared, written } => {
                write!(f, "declared {declared} records but wrote {written}")
            }
            TraceError::RecordOverflow { declared } => {
                write!(f, "more records than the declared {declared} in the header")
            }
            TraceError::CoreUnencodable { core } => {
                write!(f, "core id {core} does not fit the 1-byte record encoding")
            }
            TraceError::ArenaSizeMismatch { expected, actual } => {
                write!(
                    f,
                    "arena size mismatch: header declares {expected} bytes but {actual} are present"
                )
            }
            TraceError::MalformedRecord {
                format,
                index,
                reason,
            } => {
                write!(f, "{format} record {index}: {reason}")
            }
            TraceError::BadUpgrade {
                at,
                accesses,
                index,
            } => {
                write!(
                    f,
                    "upgrade record {index}: position {at} is out of order or past the \
                     {accesses} recorded accesses"
                )
            }
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let cases: Vec<(TraceError, &str)> = vec![
            (
                TraceError::BadMagic { found: *b"NOPE" },
                "not an LLCT trace",
            ),
            (TraceError::UnsupportedVersion { version: 9 }, "version 9"),
            (
                TraceError::TruncatedHeader {
                    got: 3,
                    expected: 16,
                },
                "3 of 16",
            ),
            (
                TraceError::Truncated {
                    decoded: 5,
                    declared: 10,
                },
                "5 of 10",
            ),
            (
                TraceError::CoreOutOfRange {
                    core: 40,
                    limit: 32,
                    index: 7,
                },
                "core id 40",
            ),
            (
                TraceError::BadKind { kind: 3, index: 2 },
                "invalid access kind 3",
            ),
            (
                TraceError::CountMismatch {
                    declared: 2,
                    written: 1,
                },
                "declared 2",
            ),
            (TraceError::RecordOverflow { declared: 1 }, "more records"),
            (
                TraceError::MalformedRecord {
                    format: "champsim-csv",
                    index: 12,
                    reason: "expected 5 comma-separated fields",
                },
                "champsim-csv record 12",
            ),
            (TraceError::CoreUnencodable { core: 300 }, "core id 300"),
            (
                TraceError::ArenaSizeMismatch {
                    expected: 128,
                    actual: 130,
                },
                "declares 128 bytes",
            ),
            (
                TraceError::BadUpgrade {
                    at: 9,
                    accesses: 4,
                    index: 1,
                },
                "position 9",
            ),
        ];
        for (e, needle) in cases {
            let s = e.to_string();
            assert!(s.contains(needle), "{s:?} should contain {needle:?}");
        }
    }

    #[test]
    fn io_errors_keep_their_source() {
        let e = TraceError::from(io::Error::new(io::ErrorKind::PermissionDenied, "nope"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! A persistent, content-addressed store of `.llcs` stream recordings.
//!
//! The store maps a 64-bit key fingerprint (computed by the caller from
//! the workload identity and the hierarchy it was recorded under — see
//! `llc_sharing::StreamKey::fingerprint`) to one `.llcs` file under a
//! directory:
//!
//! ```text
//! <dir>/streams/<%016x fingerprint>.llcs
//! ```
//!
//! Everything follows the PR 1 failure model: a stored file that is
//! truncated, bit-flipped or not a stream at all surfaces as a typed
//! [`TraceError`] from [`StreamStore::load`], never a panic — callers fall
//! back to re-recording and overwrite the bad file. Writes are
//! crash-safe: the encoded stream goes to a temporary file in the same
//! directory, is fsynced, and is atomically renamed into place, so a
//! crash mid-write can never leave a half-written `.llcs` where a later
//! load would find it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::error::TraceError;
use crate::stream::{read_stream, RecordedStream};

/// File extension of stored stream recordings.
pub const STREAM_FILE_EXT: &str = "llcs";

/// Writes `bytes` to `path` crash-safely: the data lands in a temporary
/// sibling file first, is fsynced, and is renamed over the target, so
/// `path` only ever holds either its previous content or the complete new
/// content. The temporary name embeds the process id so two processes
/// writing the same target cannot collide mid-write.
///
/// # Errors
///
/// Propagates the underlying filesystem errors; on failure the temporary
/// file is removed on a best-effort basis.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// A directory of content-addressed `.llcs` stream recordings.
///
/// Cloning is cheap (the store is just a path); concurrent readers and
/// writers are safe because every write is an atomic rename and every
/// read opens a complete, already-renamed file.
#[derive(Debug, Clone)]
pub struct StreamStore {
    dir: PathBuf,
}

impl StreamStore {
    /// Opens (creating if needed) the stream store under `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<StreamStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(StreamStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path for fingerprint `fp`.
    pub fn path_for(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.{STREAM_FILE_EXT}"))
    }

    /// `true` if a recording for `fp` is on disk.
    pub fn contains(&self, fp: u64) -> bool {
        self.path_for(fp).exists()
    }

    /// Loads the recording stored under `fp`, or `Ok(None)` if there is
    /// none.
    ///
    /// # Errors
    ///
    /// A file that exists but cannot be decoded — truncated, corrupted or
    /// not a `.llcs` stream — is a typed [`TraceError`], so the caller can
    /// distinguish "never recorded" (`Ok(None)`) from "stored copy is
    /// bad" and fall back to re-recording in the latter case.
    pub fn load(&self, fp: u64) -> Result<Option<RecordedStream>, TraceError> {
        let path = self.path_for(fp);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(TraceError::Io(e)),
        };
        read_stream(io::BufReader::new(file)).map(Some)
    }

    /// Persists `stream` under `fp` with an atomic, fsynced write,
    /// replacing any previous (possibly corrupt) copy.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors and filesystem errors as [`TraceError`].
    pub fn save(&self, fp: u64, stream: &RecordedStream) -> Result<(), TraceError> {
        let bytes = stream.to_vec()?;
        atomic_write(&self.path_for(fp), &bytes).map_err(TraceError::Io)
    }

    /// Removes the recording stored under `fp` (missing files are fine).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn remove(&self, fp: u64) -> io::Result<()> {
        match fs::remove_file(self.path_for(fp)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Counts the stored recordings and their total size in bytes
    /// (temporary files from in-flight writes are excluded).
    ///
    /// # Errors
    ///
    /// Propagates directory-walk errors.
    pub fn disk_stats(&self) -> io::Result<(u64, u64)> {
        dir_stats(&self.dir, STREAM_FILE_EXT)
    }
}

/// Counts files with extension `ext` directly under `dir` and sums their
/// sizes. Shared by the stream store and `llc-serve`'s result store.
///
/// # Errors
///
/// Propagates directory-walk errors; a missing directory counts as empty.
pub fn dir_stats(dir: &Path, ext: &str) -> io::Result<(u64, u64)> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((0, 0)),
        Err(e) => return Err(e),
    };
    let mut files = 0u64;
    let mut bytes = 0u64;
    for entry in entries {
        let entry = entry?;
        if entry.path().extension().is_some_and(|e| e == ext) {
            files += 1;
            bytes += entry.metadata()?.len();
        }
    }
    Ok((files, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{AccessKind, BlockAddr, CoreId, Pc};

    fn sample(n: usize) -> RecordedStream {
        let mut s = RecordedStream {
            fingerprint: 42,
            instructions: 10,
            ..Default::default()
        };
        for i in 0..n {
            s.blocks.push(BlockAddr::new(i as u64));
            s.cores.push(CoreId::new(i % 2));
            s.pcs.push(Pc::new(0x100 + i as u64));
            s.kinds.push(AccessKind::Read);
            s.instr_deltas.push(1);
        }
        s
    }

    fn temp_store(tag: &str) -> StreamStore {
        let dir = std::env::temp_dir().join(format!("llcs-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        StreamStore::open(&dir).expect("open store")
    }

    #[test]
    fn save_load_round_trips() {
        let store = temp_store("roundtrip");
        let s = sample(20);
        assert!(store.load(7).expect("empty load").is_none());
        assert!(!store.contains(7));
        store.save(7, &s).expect("save");
        assert!(store.contains(7));
        let back = store.load(7).expect("load").expect("present");
        assert_eq!(back, s);
        let (files, bytes) = store.disk_stats().expect("stats");
        assert_eq!(files, 1);
        assert_eq!(bytes, s.to_vec().expect("encode").len() as u64);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_file_is_a_typed_error_and_overwritable() {
        let store = temp_store("corrupt");
        let s = sample(12);
        store.save(9, &s).expect("save");
        // Truncate the stored file mid-record.
        let path = store.path_for(9);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(matches!(store.load(9), Err(TraceError::Truncated { .. })));
        // Garbage that is not a stream at all (long enough to pass the
        // header read, so the magic check is what rejects it).
        fs::write(&path, vec![b'X'; 256]).expect("garbage");
        assert!(matches!(store.load(9), Err(TraceError::BadMagic { .. })));
        // The recovery path: re-save over the bad copy and load cleanly.
        store.save(9, &s).expect("re-save");
        assert_eq!(store.load(9).expect("load").expect("present"), s);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let store = temp_store("atomic");
        store.save(1, &sample(5)).expect("save");
        store.save(1, &sample(8)).expect("overwrite");
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .expect("read dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_none_or(|x| x != "llcs"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert_eq!(store.load(1).expect("load").expect("present").len(), 8);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn remove_is_idempotent() {
        let store = temp_store("remove");
        store.save(3, &sample(4)).expect("save");
        store.remove(3).expect("remove");
        store.remove(3).expect("remove again");
        assert!(store.load(3).expect("load").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}

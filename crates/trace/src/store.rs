//! A persistent, content-addressed store of `.llcs` stream recordings.
//!
//! The store maps a 64-bit key fingerprint (computed by the caller from
//! the workload identity and the hierarchy it was recorded under — see
//! `llc_sharing::StreamKey::fingerprint`) to one `.llcs` file under a
//! directory:
//!
//! ```text
//! <dir>/streams/<%016x fingerprint>.llcs
//! ```
//!
//! Everything follows the PR 1 failure model: a stored file that is
//! truncated, bit-flipped or not a stream at all surfaces as a typed
//! [`TraceError`] from [`StreamStore::load`], never a panic — callers fall
//! back to re-recording and overwrite the bad file. Writes are
//! crash-safe: the encoded stream goes to a temporary file in the same
//! directory, is fsynced, and is atomically renamed into place, so a
//! crash mid-write can never leave a half-written `.llcs` where a later
//! load would find it.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::error::TraceError;
use crate::stream::{read_stream, RecordedStream};
use crate::view::StreamView;

/// File extension of stored stream recordings.
pub const STREAM_FILE_EXT: &str = "llcs";

/// Name of the per-store directory that corrupt entries are moved into
/// (instead of being deleted) by [`quarantine_file`].
pub const QUARANTINE_DIR: &str = "quarantine";

/// Fsyncs a directory so renames inside it are durable — a crash right
/// after an `atomic_write` or a quarantine move must not roll the
/// directory entry back. On platforms where directories cannot be
/// opened for syncing this is a no-op.
pub fn sync_dir(dir: &Path) -> io::Result<()> {
    if cfg!(unix) {
        fs::File::open(dir)?.sync_all()
    } else {
        Ok(())
    }
}

/// Writes `bytes` to `path` crash-safely: the data lands in a temporary
/// sibling file first, is fsynced, and is renamed over the target, so
/// `path` only ever holds either its previous content or the complete new
/// content; the parent directory is fsynced after the rename so the new
/// entry survives a crash. The temporary name embeds the process id so
/// two processes writing the same target cannot collide mid-write.
///
/// # Errors
///
/// Propagates the underlying filesystem errors; on failure the temporary
/// file is removed on a best-effort basis.
pub fn atomic_write(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = PathBuf::from(tmp);
    let result = (|| {
        let mut file = fs::File::create(&tmp)?;
        io::Write::write_all(&mut file, bytes)?;
        file.sync_all()?;
        drop(file);
        fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent() {
            sync_dir(parent)?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Moves `path` into its directory's `quarantine/` subdirectory (created
/// on demand) with a durable rename, returning the quarantined path.
/// A missing source is `Ok(None)` — another process may have quarantined
/// or overwritten it first. An existing quarantined copy of the same
/// name (the same content address re-corrupting) is replaced.
///
/// This is the shared "never delete evidence" primitive behind
/// [`StreamStore::quarantine`] and `llc-serve`'s result store: corrupt
/// entries leave the serving path immediately but stay on disk for
/// inspection.
///
/// # Errors
///
/// Propagates filesystem errors other than the source vanishing.
pub fn quarantine_file(path: &Path) -> io::Result<Option<PathBuf>> {
    if !path.exists() {
        return Ok(None);
    }
    let parent = path
        .parent()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no parent"))?;
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let qdir = parent.join(QUARANTINE_DIR);
    fs::create_dir_all(&qdir)?;
    let dest = qdir.join(file_name);
    match fs::rename(path, &dest) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    // Both directory entries changed: the source lost a name, the
    // quarantine gained one. Sync both so neither rolls back.
    sync_dir(&qdir)?;
    sync_dir(parent)?;
    Ok(Some(dest))
}

/// A directory of content-addressed `.llcs` stream recordings.
///
/// Cloning is cheap (the store is just a path); concurrent readers and
/// writers are safe because every write is an atomic rename and every
/// read opens a complete, already-renamed file.
#[derive(Debug, Clone)]
pub struct StreamStore {
    dir: PathBuf,
}

impl StreamStore {
    /// Opens (creating if needed) the stream store under `dir`.
    ///
    /// # Errors
    ///
    /// Fails if the directory cannot be created.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<StreamStore> {
        let dir = dir.into();
        fs::create_dir_all(&dir)?;
        Ok(StreamStore { dir })
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The on-disk path for fingerprint `fp`.
    pub fn path_for(&self, fp: u64) -> PathBuf {
        self.dir.join(format!("{fp:016x}.{STREAM_FILE_EXT}"))
    }

    /// `true` if a recording for `fp` is on disk.
    pub fn contains(&self, fp: u64) -> bool {
        self.path_for(fp).exists()
    }

    /// Loads the recording stored under `fp`, or `Ok(None)` if there is
    /// none.
    ///
    /// # Errors
    ///
    /// A file that exists but cannot be decoded — truncated, corrupted or
    /// not a `.llcs` stream — is a typed [`TraceError`], so the caller can
    /// distinguish "never recorded" (`Ok(None)`) from "stored copy is
    /// bad" and fall back to re-recording in the latter case.
    pub fn load(&self, fp: u64) -> Result<Option<RecordedStream>, TraceError> {
        let path = self.path_for(fp);
        let file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(TraceError::Io(e)),
        };
        // Touch the mtime so LRU eviction (`repro gc`) ranks entries by
        // last *use*, not last write. Best-effort: a read-only store is
        // still servable.
        let _ = file.set_modified(std::time::SystemTime::now());
        read_stream(io::BufReader::new(file)).map(Some)
    }

    /// Loads the recording stored under `fp` as a zero-copy
    /// [`StreamView`], or `Ok(None)` if there is none.
    ///
    /// One read, one allocation: the file lands in a single arena and
    /// the view validates it in place — no per-record decode into
    /// parallel vectors. This is the load path `llc_sharing`'s
    /// `StreamCache` uses on a disk hit.
    ///
    /// # Errors
    ///
    /// Same contract as [`StreamStore::load`]: a file that exists but
    /// does not validate is a typed [`TraceError`], so callers can
    /// quarantine it and fall back to re-recording.
    pub fn load_view(&self, fp: u64) -> Result<Option<StreamView>, TraceError> {
        let path = self.path_for(fp);
        let mut file = match fs::File::open(&path) {
            Ok(f) => f,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(TraceError::Io(e)),
        };
        // Touch the mtime so LRU eviction (`repro gc`) ranks entries by
        // last *use*, not last write. Best-effort: a read-only store is
        // still servable.
        let _ = file.set_modified(std::time::SystemTime::now());
        let mut bytes = match file.metadata() {
            Ok(m) => Vec::with_capacity(m.len() as usize),
            Err(_) => Vec::new(),
        };
        io::Read::read_to_end(&mut file, &mut bytes).map_err(TraceError::Io)?;
        StreamView::new(bytes.into()).map(Some)
    }

    /// Persists `stream` under `fp` with an atomic, fsynced write,
    /// replacing any previous (possibly corrupt) copy.
    ///
    /// # Errors
    ///
    /// Propagates encoding errors and filesystem errors as [`TraceError`].
    pub fn save(&self, fp: u64, stream: &RecordedStream) -> Result<(), TraceError> {
        let bytes = stream.to_vec()?;
        atomic_write(&self.path_for(fp), &bytes).map_err(TraceError::Io)
    }

    /// Moves the (presumed corrupt) recording stored under `fp` into the
    /// store's `quarantine/` subdirectory instead of deleting it, so a
    /// bad `.llcs` leaves the serving path but remains inspectable.
    /// Returns the quarantined path, or `None` when there was nothing to
    /// move.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors (see [`quarantine_file`]).
    pub fn quarantine(&self, fp: u64) -> io::Result<Option<PathBuf>> {
        quarantine_file(&self.path_for(fp))
    }

    /// Removes the recording stored under `fp` (missing files are fine).
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors other than `NotFound`.
    pub fn remove(&self, fp: u64) -> io::Result<()> {
        match fs::remove_file(self.path_for(fp)) {
            Err(e) if e.kind() != io::ErrorKind::NotFound => Err(e),
            _ => Ok(()),
        }
    }

    /// Counts the stored recordings and their total size in bytes
    /// (temporary files from in-flight writes are excluded).
    ///
    /// # Errors
    ///
    /// Propagates directory-walk errors.
    pub fn disk_stats(&self) -> io::Result<(u64, u64)> {
        dir_stats(&self.dir, STREAM_FILE_EXT)
    }
}

/// Counts files with extension `ext` directly under `dir` and sums their
/// sizes. Shared by the stream store and `llc-serve`'s result store.
///
/// # Errors
///
/// Propagates directory-walk errors; a missing directory counts as empty.
pub fn dir_stats(dir: &Path, ext: &str) -> io::Result<(u64, u64)> {
    let entries = match fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok((0, 0)),
        Err(e) => return Err(e),
    };
    let mut files = 0u64;
    let mut bytes = 0u64;
    for entry in entries {
        let entry = entry?;
        if entry.path().extension().is_some_and(|e| e == ext) {
            files += 1;
            bytes += entry.metadata()?.len();
        }
    }
    Ok((files, bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{AccessKind, BlockAddr, CoreId, Pc};

    fn sample(n: usize) -> RecordedStream {
        let mut s = RecordedStream {
            fingerprint: 42,
            instructions: 10,
            ..Default::default()
        };
        for i in 0..n {
            s.blocks.push(BlockAddr::new(i as u64));
            s.cores.push(CoreId::new(i % 2));
            s.pcs.push(Pc::new(0x100 + i as u64));
            s.kinds.push(AccessKind::Read);
            s.instr_deltas.push(1);
        }
        s
    }

    fn temp_store(tag: &str) -> StreamStore {
        let dir = std::env::temp_dir().join(format!("llcs-store-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        StreamStore::open(&dir).expect("open store")
    }

    #[test]
    fn save_load_round_trips() {
        let store = temp_store("roundtrip");
        let s = sample(20);
        assert!(store.load(7).expect("empty load").is_none());
        assert!(!store.contains(7));
        store.save(7, &s).expect("save");
        assert!(store.contains(7));
        let back = store.load(7).expect("load").expect("present");
        assert_eq!(back, s);
        let (files, bytes) = store.disk_stats().expect("stats");
        assert_eq!(files, 1);
        assert_eq!(bytes, s.to_vec().expect("encode").len() as u64);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_file_is_a_typed_error_and_overwritable() {
        let store = temp_store("corrupt");
        let s = sample(12);
        store.save(9, &s).expect("save");
        // Truncate the stored file mid-record.
        let path = store.path_for(9);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 2]).expect("truncate");
        assert!(matches!(store.load(9), Err(TraceError::Truncated { .. })));
        // Garbage that is not a stream at all (long enough to pass the
        // header read, so the magic check is what rejects it).
        fs::write(&path, vec![b'X'; 256]).expect("garbage");
        assert!(matches!(store.load(9), Err(TraceError::BadMagic { .. })));
        // The recovery path: re-save over the bad copy and load cleanly.
        store.save(9, &s).expect("re-save");
        assert_eq!(store.load(9).expect("load").expect("present"), s);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn atomic_write_leaves_no_temp_files() {
        let store = temp_store("atomic");
        store.save(1, &sample(5)).expect("save");
        store.save(1, &sample(8)).expect("overwrite");
        let leftovers: Vec<_> = fs::read_dir(store.dir())
            .expect("read dir")
            .filter_map(Result::ok)
            .filter(|e| e.path().extension().is_none_or(|x| x != "llcs"))
            .collect();
        assert!(
            leftovers.is_empty(),
            "temp files left behind: {leftovers:?}"
        );
        assert_eq!(store.load(1).expect("load").expect("present").len(), 8);
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn quarantine_preserves_corrupt_entries() {
        let store = temp_store("quarantine");
        let s = sample(10);
        store.save(5, &s).expect("save");
        let path = store.path_for(5);
        let bytes = fs::read(&path).expect("read");
        fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
        assert!(store.load(5).is_err(), "truncated copy must not decode");
        let dest = store.quarantine(5).expect("quarantine").expect("moved");
        assert!(dest.starts_with(store.dir().join(QUARANTINE_DIR)));
        assert!(dest.exists(), "evidence is preserved, not deleted");
        // The serving path is clean again: a load is a miss, not an
        // error, and a re-save heals the entry.
        assert!(store.load(5).expect("load after quarantine").is_none());
        store.save(5, &s).expect("re-save");
        assert_eq!(store.load(5).expect("load").expect("present"), s);
        // Quarantining nothing (or racing another process) is Ok(None);
        // re-quarantining the same fingerprint replaces the old copy.
        assert!(store.quarantine(999).expect("missing fp").is_none());
        fs::write(&path, b"garbage").expect("corrupt again");
        assert!(store.quarantine(5).expect("re-quarantine").is_some());
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn quarantined_entries_do_not_count_as_stored() {
        let store = temp_store("quarantine-stats");
        store.save(1, &sample(4)).expect("save");
        fs::write(store.path_for(1), b"junk").expect("corrupt");
        store.quarantine(1).expect("quarantine");
        let (files, bytes) = store.disk_stats().expect("stats");
        assert_eq!((files, bytes), (0, 0), "quarantine/ is outside the store");
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn fault_plan_write_side_round_trip_ends_in_quarantine() {
        // The write-side analogue of the decoder fault tests: a stored
        // `.llcs` whose bytes were damaged in flight (bit flips and a
        // truncation from a deterministic FaultPlan, as if the disk or a
        // buggy writer corrupted the file after the atomic rename) must
        // surface as a typed error from load, quarantine cleanly, and
        // heal on re-save — for every seed, without a panic.
        use crate::fault::{CorruptingReader, Fault, FaultPlan};
        use std::io::Read;

        let store = temp_store("fault-write");
        let s = sample(64);
        let clean = s.to_vec().expect("encode");
        for seed in 0..40u64 {
            let fp = 0x1000 + seed;
            let plan =
                FaultPlan::random_bit_flips(seed, clean.len() as u64, 4).with(Fault::TruncateAt {
                    offset: clean.len() as u64 * 3 / 4,
                });
            let mut damaged = Vec::new();
            CorruptingReader::new(clean.as_slice(), &plan)
                .read_to_end(&mut damaged)
                .expect("apply plan");
            // Land the damaged bytes through the store's own write
            // discipline, exactly where a load will look for them.
            atomic_write(&store.path_for(fp), &damaged).expect("write damaged");
            // A bit flip that rewrites the declared length can make the
            // truncated bytes self-consistent again, so Ok is possible
            // in principle; what is *required* is no panic, and that
            // every detected corruption quarantines and heals.
            if store.load(fp).is_err() {
                let moved = store.quarantine(fp).expect("quarantine");
                assert!(moved.is_some(), "seed {seed}: corrupt entry must move");
                assert!(store.load(fp).expect("post-quarantine load").is_none());
            }
            store.save(fp, &s).expect("heal");
            assert_eq!(store.load(fp).expect("load").expect("present"), s);
        }
        let _ = fs::remove_dir_all(store.dir());
    }

    #[test]
    fn remove_is_idempotent() {
        let store = temp_store("remove");
        store.save(3, &sample(4)).expect("save");
        store.remove(3).expect("remove");
        store.remove(3).expect("remove again");
        assert!(store.load(3).expect("load").is_none());
        let _ = fs::remove_dir_all(store.dir());
    }
}

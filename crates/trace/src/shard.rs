//! Set-range shard indices over a [`RecordedStream`].
//!
//! LLC sets do not interact during non-inclusive replay, so the recorded
//! reference stream can be partitioned by set index and each partition
//! replayed independently — exactly — for any policy whose state is
//! per-set (see `llc_sim::StateScope`). A [`ShardIndex`] is the product of
//! one cheap forward pass over a stream: for each contiguous set range it
//! lists the stream indices of the accesses (and the upgrade-event indices)
//! that fall inside the range.
//!
//! The index stores the global positions *and* a gathered copy of the
//! stream rows that fall in each shard: replaying a shard walks its own
//! contiguous access planes front to back (no strided reads through the
//! full stream) while the position list supplies the *global* stream index
//! as the shard LLC's logical clock, so every timestamp matches the
//! sequential run bit for bit. The gather costs one pass at build time and
//! duplicates the stream once per cached shard count; replays amortize it.
//!
//! Indices are `u32` to halve the footprint (one `u32` per access per
//! cached shard count). Streams with `u32::MAX` or more accesses — far
//! beyond anything the synthetic workloads produce — are not indexable;
//! [`ShardIndex::build`] returns `None` and callers fall back to the
//! sequential path.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use crate::stream::StreamAccess;
use llc_sim::{AccessKind, BlockAddr, CoreId, Pc};

/// A per-stream cache of shard indices, keyed by `(set count, shard
/// count)`. Stream representations that carry their own slot (see
/// [`StreamAccess::shard_slot`]) let sharded replay share one index
/// build per shard count across concurrent policies without any global
/// registry; `llc_sharing::replay` keeps the same map type behind its
/// allocation-identity registry for owned streams.
pub type ShardIndexSlot = Mutex<HashMap<(u64, usize), Arc<ShardIndex>>>;

/// One contiguous set range of a [`ShardIndex`]: the stream positions
/// that touch it plus a gathered, contiguous copy of those accesses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StreamShard {
    /// First set of the range.
    pub set_base: u64,
    /// Number of consecutive sets in the range (> 0).
    pub set_len: u64,
    /// Indices into the stream's access vectors, in stream order. These
    /// are the global logical clocks the shard's LLC is driven with.
    pub accesses: Vec<u32>,
    /// Indices into the stream's upgrade list, in stream order.
    pub upgrades: Vec<u32>,
    /// Gathered block of each access in `accesses` (same order).
    pub blocks: Vec<BlockAddr>,
    /// Gathered PC of each access.
    pub pcs: Vec<Pc>,
    /// Gathered issuing core of each access.
    pub cores: Vec<CoreId>,
    /// Gathered read/write kind of each access.
    pub kinds: Vec<AccessKind>,
}

/// Per-set-range access/upgrade index lists over one [`RecordedStream`],
/// for one (set count, shard count) pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardIndex {
    sets: u64,
    shards: Vec<StreamShard>,
}

impl ShardIndex {
    /// Builds the index for a stream replayed against an LLC with `sets`
    /// sets, split into (at most) `shards` contiguous set ranges.
    ///
    /// The requested shard count is clamped to `[1, sets]`; ranges are as
    /// even as possible (sizes differ by at most one set). Every access and
    /// upgrade lands in exactly one shard, so the concatenation of the
    /// per-shard lists is a permutation of the stream — the property the
    /// deterministic merge in `llc_sharing::replay_sharded` relies on.
    ///
    /// Returns `None` if the stream is too large to index with `u32`
    /// positions; callers must then use the sequential path.
    pub fn build<S: StreamAccess>(stream: &S, sets: u64, shards: usize) -> Option<Self> {
        if stream.len() >= u32::MAX as usize || stream.upgrades().len() >= u32::MAX as usize {
            return None;
        }
        let count = (shards.max(1) as u64).min(sets).max(1);
        let part = Partition::new(sets, count);
        let mut out: Vec<StreamShard> = (0..count)
            .map(|s| {
                let (set_base, set_len) = part.range(s);
                // Pre-size to the even share; skewed workloads grow.
                let share = stream.len() / count as usize + 1;
                StreamShard {
                    set_base,
                    set_len,
                    accesses: Vec::with_capacity(share),
                    upgrades: Vec::new(),
                    blocks: Vec::with_capacity(share),
                    pcs: Vec::with_capacity(share),
                    cores: Vec::with_capacity(share),
                    kinds: Vec::with_capacity(share),
                }
            })
            .collect();
        for (i, rec) in stream.accesses().enumerate() {
            let shard = &mut out[part.shard_of(rec.block.set_index(sets)) as usize];
            shard.accesses.push(i as u32);
            shard.blocks.push(rec.block);
            shard.pcs.push(rec.pc);
            shard.cores.push(rec.core);
            shard.kinds.push(rec.kind);
        }
        for (i, u) in stream.upgrades().iter().enumerate() {
            let shard = part.shard_of(u.block.set_index(sets));
            out[shard as usize].upgrades.push(i as u32);
        }
        Some(ShardIndex { sets, shards: out })
    }

    /// Set count the index was built for.
    pub fn sets(&self) -> u64 {
        self.sets
    }

    /// Number of shards (≥ 1, ≤ `sets`).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard index lists, in ascending set order.
    pub fn shards(&self) -> &[StreamShard] {
        &self.shards
    }

    /// Approximate heap footprint in bytes (what a cache should charge).
    pub fn bytes(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                std::mem::size_of::<StreamShard>()
                    + (s.accesses.len() + s.upgrades.len()) * std::mem::size_of::<u32>()
                    + s.blocks.len()
                        * (std::mem::size_of::<BlockAddr>()
                            + std::mem::size_of::<Pc>()
                            + std::mem::size_of::<CoreId>()
                            + std::mem::size_of::<AccessKind>())
            })
            .sum()
    }
}

/// Even partition of `sets` sets into `count` contiguous ranges: the first
/// `sets % count` ranges hold `sets / count + 1` sets, the rest one fewer.
#[derive(Debug, Clone, Copy)]
struct Partition {
    quot: u64,
    rem: u64,
}

impl Partition {
    fn new(sets: u64, count: u64) -> Self {
        debug_assert!(count >= 1 && count <= sets);
        Partition {
            quot: sets / count,
            rem: sets % count,
        }
    }

    /// `(set_base, set_len)` of shard `s`.
    fn range(&self, s: u64) -> (u64, u64) {
        if s < self.rem {
            (s * (self.quot + 1), self.quot + 1)
        } else {
            (
                self.rem * (self.quot + 1) + (s - self.rem) * self.quot,
                self.quot,
            )
        }
    }

    /// The shard holding `set`.
    fn shard_of(&self, set: u64) -> u64 {
        let wide = self.rem * (self.quot + 1);
        if set < wide {
            set / (self.quot + 1)
        } else {
            self.rem + (set - wide) / self.quot
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream::{RecordedStream, UpgradeEvent};
    use llc_sim::{AccessKind, BlockAddr, CoreId, Pc};

    fn stream(n: usize, sets: u64) -> RecordedStream {
        let mut s = RecordedStream::default();
        for i in 0..n {
            // Deterministic spread over blocks (and therefore sets).
            let block = llc_sim::splitmix64(i as u64) % (sets * 13);
            s.blocks.push(BlockAddr::new(block));
            s.cores.push(CoreId::new(i % 4));
            s.pcs.push(Pc::new(0x400 + i as u64));
            s.kinds.push(AccessKind::Read);
            s.instr_deltas.push(1);
        }
        for at in [0u64, 3, 3, n as u64] {
            s.upgrades.push(UpgradeEvent {
                at,
                block: BlockAddr::new(llc_sim::splitmix64(at ^ 0xabc) % (sets * 13)),
                core: CoreId::new(0),
            });
        }
        s
    }

    #[test]
    fn partition_covers_all_sets_exactly_once() {
        for sets in [1u64, 2, 7, 64, 100] {
            for count in 1..=sets.min(9) {
                let p = Partition::new(sets, count);
                let mut next = 0u64;
                for s in 0..count {
                    let (base, len) = p.range(s);
                    assert_eq!(base, next, "gap before shard {s}");
                    assert!(len > 0);
                    for set in base..base + len {
                        assert_eq!(p.shard_of(set), s, "set {set} misrouted");
                    }
                    next = base + len;
                }
                assert_eq!(next, sets, "partition must cover every set");
            }
        }
    }

    #[test]
    fn index_is_a_partition_of_the_stream() {
        let sets = 16u64;
        let s = stream(500, sets);
        for shards in [1usize, 2, 7, 16, 99] {
            let idx = ShardIndex::build(&s, sets, shards).expect("indexable");
            assert!(idx.shard_count() <= sets as usize);
            let mut seen_access = vec![false; s.len()];
            let mut seen_upgrade = vec![false; s.upgrades.len()];
            for shard in idx.shards() {
                for &i in &shard.accesses {
                    let set = s.blocks[i as usize].set_index(sets);
                    assert!(set >= shard.set_base && set < shard.set_base + shard.set_len);
                    assert!(!seen_access[i as usize], "access {i} in two shards");
                    seen_access[i as usize] = true;
                }
                for &i in &shard.upgrades {
                    let set = s.upgrades[i as usize].block.set_index(sets);
                    assert!(set >= shard.set_base && set < shard.set_base + shard.set_len);
                    assert!(!seen_upgrade[i as usize], "upgrade {i} in two shards");
                    seen_upgrade[i as usize] = true;
                }
                // Stream order within the shard.
                assert!(shard.accesses.windows(2).all(|w| w[0] < w[1]));
                assert!(shard.upgrades.windows(2).all(|w| w[0] < w[1]));
            }
            assert!(seen_access.iter().all(|&b| b), "access dropped");
            assert!(seen_upgrade.iter().all(|&b| b), "upgrade dropped");
        }
    }

    #[test]
    fn single_shard_is_the_identity() {
        let sets = 8u64;
        let s = stream(100, sets);
        let idx = ShardIndex::build(&s, sets, 1).expect("indexable");
        assert_eq!(idx.shard_count(), 1);
        let shard = &idx.shards()[0];
        assert_eq!(shard.set_base, 0);
        assert_eq!(shard.set_len, sets);
        assert_eq!(shard.accesses.len(), s.len());
        assert!(shard
            .accesses
            .iter()
            .enumerate()
            .all(|(i, &v)| v as usize == i));
    }

    #[test]
    fn bytes_counts_the_index_lists() {
        let sets = 8u64;
        let s = stream(64, sets);
        let idx = ShardIndex::build(&s, sets, 4).expect("indexable");
        assert!(idx.bytes() >= (s.len() + s.upgrades.len()) * std::mem::size_of::<u32>());
    }
}

//! Recorded LLC reference streams and their `.llcs` on-disk format.
//!
//! In the non-inclusive hierarchy the sequence of LLC references — and the
//! coherence *upgrade* events that mutate resident lines without an LLC
//! access — is a pure function of the workload and the private caches,
//! independent of the LLC replacement policy. A [`RecordedStream`] captures
//! that sequence once; any number of replacement policies can then be
//! replayed directly against the LLC, skipping trace generation and private
//! cache simulation entirely (see `llc_sharing::replay`).
//!
//! The binary format mirrors the `.llct` trace format's failure model: a
//! fixed little-endian header, fixed-size records, and a distinct
//! [`TraceError`] for every way a file can be malformed — never a panic.
//!
//! ```text
//! header (128 bytes):
//!   magic "LLCS" | u16 version | u16 reserved
//!   | u64 access count | u64 upgrade count
//!   | u64 instructions | u64 trace accesses | u64 config fingerprint
//!   | 5 x u64 L1 stats | 5 x u64 L2 stats
//! access record (26 bytes):
//!   u8 core | u8 kind (0 = read, 1 = write) | u64 pc | u64 block
//!   | u64 instr delta
//! upgrade record (17 bytes):
//!   u64 at | u64 block | u8 core
//! ```
//!
//! Upgrade records must be sorted by `at` (non-decreasing) with
//! `at <= access count`; a replay applies every upgrade with `at == i`
//! before access `i`, and trailing upgrades (`at == access count`) before
//! the end-of-run flush.

use std::io::{Read, Write};
use std::sync::Arc;

use llc_sim::{AccessKind, BlockAddr, CoreId, Pc, PrivateCacheStats, MAX_CORES};

use crate::error::TraceError;
use crate::file::{read_exact_or_truncated, ReadFailure};
use crate::shard::ShardIndexSlot;

/// `.llcs` file-format magic bytes.
pub const STREAM_MAGIC: [u8; 4] = *b"LLCS";

/// Current `.llcs` format version.
pub const STREAM_VERSION: u16 = 1;

/// Size of the fixed `.llcs` header in bytes.
pub const STREAM_HEADER_BYTES: usize = 128;

/// Size of one access record in bytes.
pub const ACCESS_RECORD_BYTES: usize = 26;

/// Size of one upgrade record in bytes.
pub const UPGRADE_RECORD_BYTES: usize = 17;

/// A coherence upgrade observed during recording: `core` wrote `block`
/// while holding it privately, at LLC logical time `at` (i.e. after `at`
/// LLC accesses had been processed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UpgradeEvent {
    /// LLC logical time of the upgrade. A replay applies this event before
    /// the access with the same index; `at == len()` means "after the last
    /// access, before the flush".
    pub at: u64,
    /// The written block.
    pub block: BlockAddr,
    /// The writing core.
    pub core: CoreId,
}

/// A policy-independent LLC reference stream captured from one full
/// hierarchy simulation, with everything needed to rebuild a complete
/// `RunResult` from an LLC-only replay.
///
/// The per-access vectors (`blocks`, `cores`, `pcs`, `kinds`,
/// `instr_deltas`) are parallel: entry `i` describes the `i`-th LLC demand
/// access. `instr_deltas[i]` is the number of trace instructions consumed
/// since the previous LLC access (u64: a delta sums many `u32` gaps).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecordedStream {
    /// Fingerprint of the [`HierarchyConfig`](llc_sim::HierarchyConfig)
    /// the stream was recorded under (see
    /// `HierarchyConfig::fingerprint`). Replaying against a different
    /// hierarchy is meaningless; callers should check this.
    pub fingerprint: u64,
    /// Block of each LLC access.
    pub blocks: Vec<BlockAddr>,
    /// Issuing core of each LLC access.
    pub cores: Vec<CoreId>,
    /// PC of each LLC access.
    pub pcs: Vec<Pc>,
    /// Read/write kind of each LLC access.
    pub kinds: Vec<AccessKind>,
    /// Instructions consumed since the previous LLC access.
    pub instr_deltas: Vec<u64>,
    /// Coherence upgrades, sorted by [`UpgradeEvent::at`].
    pub upgrades: Vec<UpgradeEvent>,
    /// Total instructions of the recorded run.
    pub instructions: u64,
    /// Total trace records of the recorded run.
    pub trace_accesses: u64,
    /// Aggregated L1 counters of the recorded run.
    pub l1: PrivateCacheStats,
    /// Aggregated L2 counters of the recorded run.
    pub l2: PrivateCacheStats,
}

impl RecordedStream {
    /// Number of LLC accesses in the stream.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the stream holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// The exact `.llcs` encoding size of the stream in bytes — also the
    /// byte weight `llc_sharing::StreamCache` charges against its cap.
    pub fn encoded_len(&self) -> usize {
        STREAM_HEADER_BYTES
            + self.len() * ACCESS_RECORD_BYTES
            + self.upgrades.len() * UPGRADE_RECORD_BYTES
    }

    /// Encodes the stream to an in-memory `.llcs` image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`write_stream`].
    pub fn to_vec(&self) -> Result<Vec<u8>, TraceError> {
        let mut buf = Vec::with_capacity(self.encoded_len());
        write_stream(self, &mut buf)?;
        Ok(buf)
    }

    /// Decodes a stream from an in-memory `.llcs` image.
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_stream`].
    pub fn from_slice(bytes: &[u8]) -> Result<Self, TraceError> {
        read_stream(bytes)
    }
}

/// One decoded LLC access, as replay drivers consume it. The record is
/// the unit [`StreamAccess::accesses`] yields: four scalars, passed by
/// value, so a monomorphized replay loop over any stream representation
/// compiles down to plane walks with no per-record indirection.
///
/// Instruction deltas are deliberately absent: no replay driver consumes
/// them (they exist to rebuild `RunResult::instructions`, which the
/// stream header carries in aggregate).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessRecord {
    /// Accessed block.
    pub block: BlockAddr,
    /// PC of the access.
    pub pc: Pc,
    /// Issuing core.
    pub core: CoreId,
    /// Read/write kind.
    pub kind: AccessKind,
}

/// Read access to a recorded LLC reference stream, however it is stored.
///
/// Implemented by the owned [`RecordedStream`] (five parallel heap
/// vectors) and by the zero-copy [`StreamView`](crate::view::StreamView)
/// (one validated `.llcs` arena). Replay drivers take `&S` where
/// `S: StreamAccess` and monomorphize per representation, so the owned
/// path keeps its plane-walk codegen while the view path decodes records
/// on the fly from the arena — both without a per-record virtual call.
///
/// The iterator is `DoubleEnded + ExactSize` because the fused
/// annotation pre-pass walks the stream *backward* and pre-sizes its
/// output.
pub trait StreamAccess: Sized {
    /// Iterator over the stream's decoded access records, front to back.
    type Iter<'a>: Iterator<Item = AccessRecord> + DoubleEndedIterator + ExactSizeIterator
    where
        Self: 'a;

    /// Number of LLC accesses in the stream.
    fn len(&self) -> usize;

    /// `true` if the stream holds no accesses.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Fingerprint of the hierarchy the stream was recorded under.
    fn fingerprint(&self) -> u64;

    /// The decoded access records, in stream order.
    fn accesses(&self) -> Self::Iter<'_>;

    /// Coherence upgrades, sorted by [`UpgradeEvent::at`].
    fn upgrades(&self) -> &[UpgradeEvent];

    /// Total instructions of the recorded run.
    fn instructions(&self) -> u64;

    /// Total trace records of the recorded run.
    fn trace_accesses(&self) -> u64;

    /// Aggregated L1 counters of the recorded run.
    fn l1_stats(&self) -> PrivateCacheStats;

    /// Aggregated L2 counters of the recorded run.
    fn l2_stats(&self) -> PrivateCacheStats;

    /// The exact `.llcs` encoding size in bytes — the byte weight a
    /// stream cache charges against its cap.
    fn encoded_len(&self) -> usize {
        STREAM_HEADER_BYTES
            + self.len() * ACCESS_RECORD_BYTES
            + self.upgrades().len() * UPGRADE_RECORD_BYTES
    }

    /// A per-stream shard-index cache carried *inside* the stream
    /// representation, if it has one. Views carry their own slot (they
    /// are not interned anywhere a registry could key on); owned streams
    /// return `None` and rely on the allocation-identity registry in
    /// `llc_sharing::replay` instead.
    fn shard_slot(&self) -> Option<&ShardIndexSlot> {
        None
    }

    /// The allocation identity sharded replay uses to find a registered
    /// shard-index cache for this stream (see
    /// `llc_sharing::register_stream`). Smart-pointer wrappers delegate
    /// to their pointee so `&Arc<RecordedStream>` and the
    /// `&RecordedStream` it was registered as agree.
    fn registry_addr(&self) -> usize {
        self as *const Self as *const u8 as usize
    }
}

impl StreamAccess for RecordedStream {
    type Iter<'a> = OwnedAccessIter<'a>;

    fn len(&self) -> usize {
        self.blocks.len()
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn accesses(&self) -> OwnedAccessIter<'_> {
        OwnedAccessIter(
            self.blocks
                .iter()
                .zip(self.pcs.iter())
                .zip(self.cores.iter())
                .zip(self.kinds.iter()),
        )
    }

    fn upgrades(&self) -> &[UpgradeEvent] {
        &self.upgrades
    }

    fn instructions(&self) -> u64 {
        self.instructions
    }

    fn trace_accesses(&self) -> u64 {
        self.trace_accesses
    }

    fn l1_stats(&self) -> PrivateCacheStats {
        self.l1
    }

    fn l2_stats(&self) -> PrivateCacheStats {
        self.l2
    }
}

impl<S: StreamAccess> StreamAccess for Arc<S> {
    type Iter<'a>
        = S::Iter<'a>
    where
        Self: 'a;

    fn len(&self) -> usize {
        (**self).len()
    }

    fn fingerprint(&self) -> u64 {
        (**self).fingerprint()
    }

    fn accesses(&self) -> Self::Iter<'_> {
        (**self).accesses()
    }

    fn upgrades(&self) -> &[UpgradeEvent] {
        (**self).upgrades()
    }

    fn instructions(&self) -> u64 {
        (**self).instructions()
    }

    fn trace_accesses(&self) -> u64 {
        (**self).trace_accesses()
    }

    fn l1_stats(&self) -> PrivateCacheStats {
        (**self).l1_stats()
    }

    fn l2_stats(&self) -> PrivateCacheStats {
        (**self).l2_stats()
    }

    fn encoded_len(&self) -> usize {
        (**self).encoded_len()
    }

    fn shard_slot(&self) -> Option<&ShardIndexSlot> {
        (**self).shard_slot()
    }

    fn registry_addr(&self) -> usize {
        (**self).registry_addr()
    }
}

type OwnedZip<'a> = std::iter::Zip<
    std::iter::Zip<
        std::iter::Zip<std::slice::Iter<'a, BlockAddr>, std::slice::Iter<'a, Pc>>,
        std::slice::Iter<'a, CoreId>,
    >,
    std::slice::Iter<'a, AccessKind>,
>;

/// [`StreamAccess::accesses`] iterator of an owned [`RecordedStream`]:
/// a zip over the four access planes, compiling to the same code the
/// replay drivers' hand-written zips did.
#[derive(Debug, Clone)]
pub struct OwnedAccessIter<'a>(OwnedZip<'a>);

impl<'a> Iterator for OwnedAccessIter<'a> {
    type Item = AccessRecord;

    #[inline]
    fn next(&mut self) -> Option<AccessRecord> {
        self.0
            .next()
            .map(|(((&block, &pc), &core), &kind)| AccessRecord {
                block,
                pc,
                core,
                kind,
            })
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<'a> DoubleEndedIterator for OwnedAccessIter<'a> {
    #[inline]
    fn next_back(&mut self) -> Option<AccessRecord> {
        self.0
            .next_back()
            .map(|(((&block, &pc), &core), &kind)| AccessRecord {
                block,
                pc,
                core,
                kind,
            })
    }
}

impl<'a> ExactSizeIterator for OwnedAccessIter<'a> {
    fn len(&self) -> usize {
        self.0.len()
    }
}

fn encode_private_stats(out: &mut [u8], s: &PrivateCacheStats) {
    out[0..8].copy_from_slice(&s.accesses.to_le_bytes());
    out[8..16].copy_from_slice(&s.hits.to_le_bytes());
    out[16..24].copy_from_slice(&s.evictions.to_le_bytes());
    out[24..32].copy_from_slice(&s.invalidations.to_le_bytes());
    out[32..40].copy_from_slice(&s.back_invalidations.to_le_bytes());
}

pub(crate) fn read_u64(bytes: &[u8]) -> u64 {
    // infallible: callers pass fixed 8-byte windows of a fixed-size buffer.
    u64::from_le_bytes(bytes.try_into().expect("8 bytes"))
}

pub(crate) fn decode_private_stats(bytes: &[u8]) -> PrivateCacheStats {
    PrivateCacheStats {
        accesses: read_u64(&bytes[0..8]),
        hits: read_u64(&bytes[8..16]),
        evictions: read_u64(&bytes[16..24]),
        invalidations: read_u64(&bytes[24..32]),
        back_invalidations: read_u64(&bytes[32..40]),
    }
}

/// Writes a [`RecordedStream`] to any [`Write`] sink in `.llcs` format.
///
/// # Errors
///
/// Returns [`TraceError::CoreUnencodable`] if a core id does not fit the
/// 1-byte record encoding, [`TraceError::BadUpgrade`] if the upgrade list
/// is unsorted or points past the access stream (refusing to write a file
/// the decoder would reject), and propagates sink I/O errors.
pub fn write_stream<W: Write>(stream: &RecordedStream, mut sink: W) -> Result<(), TraceError> {
    let n = stream.len() as u64;
    let mut header = [0u8; STREAM_HEADER_BYTES];
    header[0..4].copy_from_slice(&STREAM_MAGIC);
    header[4..6].copy_from_slice(&STREAM_VERSION.to_le_bytes());
    // bytes 6..8 reserved, zero.
    header[8..16].copy_from_slice(&n.to_le_bytes());
    header[16..24].copy_from_slice(&(stream.upgrades.len() as u64).to_le_bytes());
    header[24..32].copy_from_slice(&stream.instructions.to_le_bytes());
    header[32..40].copy_from_slice(&stream.trace_accesses.to_le_bytes());
    header[40..48].copy_from_slice(&stream.fingerprint.to_le_bytes());
    encode_private_stats(&mut header[48..88], &stream.l1);
    encode_private_stats(&mut header[88..128], &stream.l2);
    sink.write_all(&header)?;

    for i in 0..stream.len() {
        let core = stream.cores[i].index();
        if core > usize::from(u8::MAX) {
            return Err(TraceError::CoreUnencodable { core });
        }
        let mut rec = [0u8; ACCESS_RECORD_BYTES];
        rec[0] = core as u8;
        rec[1] = u8::from(stream.kinds[i].is_write());
        rec[2..10].copy_from_slice(&stream.pcs[i].raw().to_le_bytes());
        rec[10..18].copy_from_slice(&stream.blocks[i].raw().to_le_bytes());
        rec[18..26].copy_from_slice(&stream.instr_deltas[i].to_le_bytes());
        sink.write_all(&rec)?;
    }

    let mut prev_at = 0u64;
    for (i, u) in stream.upgrades.iter().enumerate() {
        if u.at < prev_at || u.at > n {
            return Err(TraceError::BadUpgrade {
                at: u.at,
                accesses: n,
                index: i as u64,
            });
        }
        prev_at = u.at;
        let core = u.core.index();
        if core > usize::from(u8::MAX) {
            return Err(TraceError::CoreUnencodable { core });
        }
        let mut rec = [0u8; UPGRADE_RECORD_BYTES];
        rec[0..8].copy_from_slice(&u.at.to_le_bytes());
        rec[8..16].copy_from_slice(&u.block.raw().to_le_bytes());
        rec[16] = core as u8;
        sink.write_all(&rec)?;
    }
    sink.flush()?;
    Ok(())
}

/// Reads a [`RecordedStream`] from any [`Read`] source, validating every
/// field the way the `.llct` decoder does.
///
/// # Errors
///
/// Returns [`TraceError::BadMagic`], [`TraceError::UnsupportedVersion`] or
/// [`TraceError::TruncatedHeader`] for a malformed header;
/// [`TraceError::Truncated`], [`TraceError::CoreOutOfRange`] or
/// [`TraceError::BadKind`] for malformed access records;
/// [`TraceError::BadUpgrade`] for an out-of-order or out-of-range upgrade
/// record; and propagates other I/O errors. Never panics on any input.
pub fn read_stream<R: Read>(mut reader: R) -> Result<RecordedStream, TraceError> {
    let mut header = [0u8; STREAM_HEADER_BYTES];
    read_exact_or_truncated(&mut reader, &mut header).map_err(|failure| match failure {
        ReadFailure::Eof(got) => TraceError::TruncatedHeader {
            got,
            expected: STREAM_HEADER_BYTES,
        },
        ReadFailure::Io(e) => TraceError::Io(e),
    })?;
    if header[0..4] != STREAM_MAGIC {
        let mut found = [0u8; 4];
        found.copy_from_slice(&header[0..4]);
        return Err(TraceError::BadMagic { found });
    }
    let version = u16::from_le_bytes([header[4], header[5]]);
    if version != STREAM_VERSION {
        return Err(TraceError::UnsupportedVersion { version });
    }
    let accesses = read_u64(&header[8..16]);
    let upgrades = read_u64(&header[16..24]);
    let declared = accesses.saturating_add(upgrades);

    let mut stream = RecordedStream {
        fingerprint: read_u64(&header[40..48]),
        instructions: read_u64(&header[24..32]),
        trace_accesses: read_u64(&header[32..40]),
        l1: decode_private_stats(&header[48..88]),
        l2: decode_private_stats(&header[88..128]),
        ..RecordedStream::default()
    };
    // Clamp pre-allocation so a corrupt header cannot trigger a huge
    // up-front allocation (same defence as the `.llct` decoder).
    let cap = usize::try_from(accesses).unwrap_or(0).min(1 << 20);
    stream.blocks.reserve(cap);
    stream.cores.reserve(cap);
    stream.pcs.reserve(cap);
    stream.kinds.reserve(cap);
    stream.instr_deltas.reserve(cap);
    stream
        .upgrades
        .reserve(usize::try_from(upgrades).unwrap_or(0).min(1 << 20));

    let mut decoded = 0u64;
    for index in 0..accesses {
        let mut rec = [0u8; ACCESS_RECORD_BYTES];
        read_exact_or_truncated(&mut reader, &mut rec).map_err(|failure| match failure {
            ReadFailure::Eof(_) => TraceError::Truncated { decoded, declared },
            ReadFailure::Io(e) => TraceError::Io(e),
        })?;
        let core = usize::from(rec[0]);
        if core >= MAX_CORES {
            return Err(TraceError::CoreOutOfRange {
                core: rec[0],
                limit: MAX_CORES,
                index,
            });
        }
        let kind = match rec[1] {
            0 => AccessKind::Read,
            1 => AccessKind::Write,
            k => return Err(TraceError::BadKind { kind: k, index }),
        };
        stream.cores.push(CoreId::new(core));
        stream.kinds.push(kind);
        stream.pcs.push(Pc::new(read_u64(&rec[2..10])));
        stream.blocks.push(BlockAddr::new(read_u64(&rec[10..18])));
        stream.instr_deltas.push(read_u64(&rec[18..26]));
        decoded += 1;
    }

    let mut prev_at = 0u64;
    for index in 0..upgrades {
        let mut rec = [0u8; UPGRADE_RECORD_BYTES];
        read_exact_or_truncated(&mut reader, &mut rec).map_err(|failure| match failure {
            ReadFailure::Eof(_) => TraceError::Truncated { decoded, declared },
            ReadFailure::Io(e) => TraceError::Io(e),
        })?;
        let at = read_u64(&rec[0..8]);
        if at < prev_at || at > accesses {
            return Err(TraceError::BadUpgrade {
                at,
                accesses,
                index,
            });
        }
        prev_at = at;
        let core = usize::from(rec[16]);
        if core >= MAX_CORES {
            return Err(TraceError::CoreOutOfRange {
                core: rec[16],
                limit: MAX_CORES,
                index,
            });
        }
        stream.upgrades.push(UpgradeEvent {
            at,
            block: BlockAddr::new(read_u64(&rec[8..16])),
            core: CoreId::new(core),
        });
        decoded += 1;
    }
    Ok(stream)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CorruptingReader, Fault, FaultPlan};

    fn sample() -> RecordedStream {
        let n = 40usize;
        let mut s = RecordedStream {
            fingerprint: 0xFEED_FACE_CAFE_BEEF,
            instructions: 1234,
            trace_accesses: 567,
            l1: PrivateCacheStats {
                accesses: 500,
                hits: 450,
                evictions: 10,
                invalidations: 3,
                back_invalidations: 1,
            },
            l2: PrivateCacheStats::default(),
            ..RecordedStream::default()
        };
        for i in 0..n {
            s.blocks.push(BlockAddr::new(i as u64 * 3 % 17));
            s.cores.push(CoreId::new(i % 4));
            s.pcs.push(Pc::new(0x400 + i as u64));
            s.kinds.push(if i % 3 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            });
            s.instr_deltas.push(i as u64 + 1);
        }
        s.upgrades = vec![
            UpgradeEvent {
                at: 0,
                block: BlockAddr::new(3),
                core: CoreId::new(1),
            },
            UpgradeEvent {
                at: 7,
                block: BlockAddr::new(6),
                core: CoreId::new(2),
            },
            UpgradeEvent {
                at: 7,
                block: BlockAddr::new(9),
                core: CoreId::new(0),
            },
            UpgradeEvent {
                at: 40,
                block: BlockAddr::new(12),
                core: CoreId::new(3),
            },
        ];
        s
    }

    #[test]
    fn round_trips_exactly() {
        let s = sample();
        let bytes = s.to_vec().expect("encode");
        assert_eq!(
            bytes.len(),
            STREAM_HEADER_BYTES + 40 * ACCESS_RECORD_BYTES + 4 * UPGRADE_RECORD_BYTES
        );
        let back = RecordedStream::from_slice(&bytes).expect("decode");
        assert_eq!(back, s);
    }

    #[test]
    fn access_iterator_matches_the_planes() {
        let s = sample();
        assert_eq!(StreamAccess::len(&s), s.len());
        assert_eq!(s.accesses().len(), s.len());
        for (i, rec) in s.accesses().enumerate() {
            assert_eq!(rec.block, s.blocks[i]);
            assert_eq!(rec.pc, s.pcs[i]);
            assert_eq!(rec.core, s.cores[i]);
            assert_eq!(rec.kind, s.kinds[i]);
        }
        // The backward walk (annotation pre-pass) sees the same records.
        let fwd: Vec<AccessRecord> = s.accesses().collect();
        let mut bwd: Vec<AccessRecord> = s.accesses().rev().collect();
        bwd.reverse();
        assert_eq!(fwd, bwd);
        // Arc-wrapped streams delegate, and share the pointee's identity.
        let arc = Arc::new(s);
        assert_eq!(arc.accesses().len(), 40);
        assert_eq!(arc.registry_addr(), (*arc).registry_addr());
    }

    #[test]
    fn empty_stream_round_trips() {
        let s = RecordedStream::default();
        let back = RecordedStream::from_slice(&s.to_vec().expect("encode")).expect("decode");
        assert_eq!(back, s);
        assert!(back.is_empty());
    }

    #[test]
    fn rejects_bad_magic_version_and_short_header() {
        assert!(matches!(
            read_stream(&b"NOPE"[..]),
            Err(TraceError::TruncatedHeader {
                got: 4,
                expected: STREAM_HEADER_BYTES
            })
        ));
        let mut bytes = sample().to_vec().expect("encode");
        bytes[0] = b'X';
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::BadMagic { .. })
        ));
        let mut bytes = sample().to_vec().expect("encode");
        bytes[4] = 9;
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::UnsupportedVersion { version: 9 })
        ));
    }

    #[test]
    fn truncation_mid_record_is_typed() {
        let bytes = sample().to_vec().expect("encode");
        let cut = STREAM_HEADER_BYTES + 5 * ACCESS_RECORD_BYTES + 3;
        assert!(matches!(
            RecordedStream::from_slice(&bytes[..cut]),
            Err(TraceError::Truncated {
                decoded: 5,
                declared: 44
            })
        ));
        // Cut inside the upgrade section too.
        let cut = STREAM_HEADER_BYTES + 40 * ACCESS_RECORD_BYTES + UPGRADE_RECORD_BYTES + 1;
        assert!(matches!(
            RecordedStream::from_slice(&bytes[..cut]),
            Err(TraceError::Truncated {
                decoded: 41,
                declared: 44
            })
        ));
    }

    #[test]
    fn bad_kind_and_core_are_typed() {
        let mut bytes = sample().to_vec().expect("encode");
        bytes[STREAM_HEADER_BYTES + ACCESS_RECORD_BYTES + 1] = 7; // kind of record 1
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::BadKind { kind: 7, index: 1 })
        ));
        let mut bytes = sample().to_vec().expect("encode");
        bytes[STREAM_HEADER_BYTES] = 200; // core of record 0
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::CoreOutOfRange {
                core: 200,
                index: 0,
                ..
            })
        ));
    }

    #[test]
    fn unsorted_or_out_of_range_upgrades_are_rejected() {
        // Decoder side: corrupt the third upgrade's `at` to precede its
        // predecessor (7 -> 1 while upgrade 1 sits at 7).
        let mut bytes = sample().to_vec().expect("encode");
        let off = STREAM_HEADER_BYTES + 40 * ACCESS_RECORD_BYTES + 2 * UPGRADE_RECORD_BYTES;
        bytes[off..off + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::BadUpgrade {
                at: 1,
                accesses: 40,
                index: 2
            })
        ));
        // …and to point past the stream (41 > 40 accesses).
        let mut bytes = sample().to_vec().expect("encode");
        bytes[off..off + 8].copy_from_slice(&41u64.to_le_bytes());
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::BadUpgrade {
                at: 41,
                accesses: 40,
                index: 2
            })
        ));
        // Writer side: refuse to encode what the decoder would reject.
        let mut s = sample();
        s.upgrades[0].at = 99;
        assert!(matches!(
            s.to_vec(),
            Err(TraceError::BadUpgrade {
                at: 99,
                accesses: 40,
                index: 0
            })
        ));
    }

    #[test]
    fn random_corruption_never_panics_the_decoder() {
        // Mirror of the `.llct` fault-injection suite: whatever a random
        // bit flip or truncation hits, decoding must end in Ok or a typed
        // error, never a panic. Payload flips are silent by design.
        let bytes = sample().to_vec().expect("encode");
        for seed in 0..200u64 {
            let plan = FaultPlan::random_bit_flips(seed, bytes.len() as u64, 3);
            let r = CorruptingReader::new(bytes.as_slice(), &plan);
            let _ = read_stream(r);
        }
        for seed in 0..50u64 {
            let offset = llc_sim::splitmix64(seed) % (bytes.len() as u64 + 1);
            let plan = FaultPlan::new().with(Fault::TruncateAt { offset });
            let r = CorruptingReader::new(bytes.as_slice(), &plan);
            let _ = read_stream(r);
        }
    }

    #[test]
    fn header_count_corruption_cannot_exhaust_memory() {
        // Blow the declared access count up to u64::MAX: decoding must fail
        // with a typed truncation error, not attempt the allocation.
        let mut bytes = sample().to_vec().expect("encode");
        bytes[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(
            RecordedStream::from_slice(&bytes),
            Err(TraceError::Truncated { .. })
        ));
    }
}

//! Multi-threaded workload assembly: per-thread pattern mixtures and the
//! access interleaver.

use llc_sim::{splitmix64, CoreId, MemAccess};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::patterns::Pattern;
use crate::source::TraceSource;

/// One simulated thread: a weighted mixture of patterns and an access
/// budget.
pub struct ThreadSpec {
    arms: Vec<(u32, Box<dyn Pattern>)>,
    total_weight: u32,
    accesses: u64,
}

impl ThreadSpec {
    /// Creates a thread that issues `accesses` accesses drawn from the
    /// weighted `arms`.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty or all weights are zero.
    pub fn new(arms: Vec<(u32, Box<dyn Pattern>)>, accesses: u64) -> Self {
        assert!(!arms.is_empty(), "a thread needs at least one pattern");
        let total_weight: u32 = arms.iter().map(|(w, _)| *w).sum();
        assert!(total_weight > 0, "total pattern weight must be non-zero");
        ThreadSpec {
            arms,
            total_weight,
            accesses,
        }
    }

    /// Convenience: a thread running a single pattern.
    pub fn single(pattern: Box<dyn Pattern>, accesses: u64) -> Self {
        ThreadSpec::new(vec![(1, pattern)], accesses)
    }
}

impl std::fmt::Debug for ThreadSpec {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadSpec")
            .field("arms", &self.arms.len())
            .field("accesses", &self.accesses)
            .finish()
    }
}

struct ThreadState {
    core: CoreId,
    spec: ThreadSpec,
    rng: SmallRng,
    issued: u64,
}

impl ThreadState {
    fn exhausted(&self) -> bool {
        self.issued >= self.spec.accesses
    }

    fn next(&mut self) -> MemAccess {
        self.issued += 1;
        let mut pick = self.rng.gen_range(0..self.spec.total_weight);
        for (w, p) in &mut self.spec.arms {
            if pick < *w {
                let a = p.next_access(&mut self.rng);
                return MemAccess {
                    core: self.core,
                    pc: a.pc,
                    addr: a.block.first_byte(),
                    kind: a.kind,
                    instr_gap: a.instr_gap,
                };
            }
            pick -= *w;
        }
        unreachable!("weighted pick within total weight")
    }
}

/// A complete multi-threaded workload: the interleaving of all threads'
/// access streams.
///
/// Interleaving is round-robin with random burst lengths of 1–8 accesses,
/// emulating fine-grained hardware multi-threading across cores. Threads
/// therefore advance at (stochastically) equal rates, which is what keeps
/// barrier-phased patterns loosely in phase — the approximation this model
/// makes in place of simulating real barriers.
pub struct Workload {
    threads: Vec<ThreadState>,
    current: usize,
    burst_left: u32,
    rng: SmallRng,
    remaining: u64,
    total: u64,
}

impl Workload {
    /// Assembles a workload from per-thread specs; thread `i` runs on core
    /// `i`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or exceeds
    /// [`llc_sim::MAX_CORES`].
    pub fn new(threads: Vec<ThreadSpec>, seed: u64) -> Self {
        assert!(!threads.is_empty(), "a workload needs at least one thread");
        assert!(threads.len() <= llc_sim::MAX_CORES, "too many threads");
        let total: u64 = threads.iter().map(|t| t.accesses).sum();
        let threads = threads
            .into_iter()
            .enumerate()
            .map(|(i, spec)| ThreadState {
                core: CoreId::new(i),
                spec,
                rng: SmallRng::seed_from_u64(splitmix64(
                    seed ^ (i as u64).wrapping_mul(0x1234_5678_9abc),
                )),
                issued: 0,
            })
            .collect();
        Workload {
            threads,
            current: 0,
            burst_left: 0,
            rng: SmallRng::seed_from_u64(splitmix64(seed ^ 0xa110_f7ed_u64)),
            remaining: total,
            total,
        }
    }

    /// Number of threads.
    pub fn threads(&self) -> usize {
        self.threads.len()
    }
}

impl TraceSource for Workload {
    fn next_access(&mut self) -> Option<MemAccess> {
        if self.remaining == 0 {
            return None;
        }
        // Advance to a non-exhausted thread, honouring the current burst.
        if self.burst_left == 0 || self.threads[self.current].exhausted() {
            let n = self.threads.len();
            let mut idx = (self.current + 1) % n;
            for _ in 0..n {
                if !self.threads[idx].exhausted() {
                    break;
                }
                idx = (idx + 1) % n;
            }
            self.current = idx;
            self.burst_left = self.rng.gen_range(1..=8);
        }
        debug_assert!(!self.threads[self.current].exhausted());
        self.burst_left -= 1;
        self.remaining -= 1;
        Some(self.threads[self.current].next())
    }

    fn len_hint(&self) -> Option<u64> {
        Some(self.total)
    }
}

impl std::fmt::Debug for Workload {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workload")
            .field("threads", &self.threads.len())
            .field("total", &self.total)
            .field("remaining", &self.remaining)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{AddressSpace, PcAllocator};
    use crate::patterns::PrivateStream;

    fn stream_thread(space: &mut AddressSpace, pcs: &mut PcAllocator, n: u64) -> ThreadSpec {
        let r = space.alloc(128);
        ThreadSpec::single(Box::new(PrivateStream::new(r, pcs.alloc(2), 0, 1)), n)
    }

    #[test]
    fn produces_exactly_the_budgeted_accesses() {
        let mut space = AddressSpace::new();
        let mut pcs = PcAllocator::new();
        let threads = (0..4)
            .map(|_| stream_thread(&mut space, &mut pcs, 100))
            .collect::<Vec<_>>();
        let mut w = Workload::new(threads, 42);
        assert_eq!(w.len_hint(), Some(400));
        let mut count = 0;
        let mut per_core = [0u64; 4];
        while let Some(a) = w.next_access() {
            per_core[a.core.index()] += 1;
            count += 1;
        }
        assert_eq!(count, 400);
        assert_eq!(per_core, [100; 4]);
    }

    #[test]
    fn interleaving_mixes_cores() {
        let mut space = AddressSpace::new();
        let mut pcs = PcAllocator::new();
        let threads = (0..2)
            .map(|_| stream_thread(&mut space, &mut pcs, 1000))
            .collect::<Vec<_>>();
        let mut w = Workload::new(threads, 7);
        let mut switches = 0;
        let mut last = None;
        while let Some(a) = w.next_access() {
            if last.is_some() && last != Some(a.core) {
                switches += 1;
            }
            last = Some(a.core);
        }
        // With bursts of 1..=8 we expect hundreds of switches over 2000
        // accesses.
        assert!(switches > 200, "only {switches} switches");
    }

    #[test]
    fn deterministic_for_same_seed() {
        let build = || {
            let mut space = AddressSpace::new();
            let mut pcs = PcAllocator::new();
            let threads = (0..3)
                .map(|_| stream_thread(&mut space, &mut pcs, 50))
                .collect::<Vec<_>>();
            Workload::new(threads, 99)
        };
        let mut a = build();
        let mut b = build();
        loop {
            match (a.next_access(), b.next_access()) {
                (None, None) => break,
                (x, y) => assert_eq!(x, y),
            }
        }
    }

    #[test]
    fn uneven_budgets_drain_completely() {
        let mut space = AddressSpace::new();
        let mut pcs = PcAllocator::new();
        let threads = vec![
            stream_thread(&mut space, &mut pcs, 10),
            stream_thread(&mut space, &mut pcs, 500),
        ];
        let mut w = Workload::new(threads, 1);
        let mut per_core = [0u64; 2];
        while let Some(a) = w.next_access() {
            per_core[a.core.index()] += 1;
        }
        assert_eq!(per_core, [10, 500]);
    }
}

//! Zero-copy views over loaded `.llcs` arenas.
//!
//! [`read_stream`](crate::stream::read_stream) decodes a `.llcs` file
//! into five parallel heap vectors — roughly 1.3× the encoded bytes,
//! allocated and written on every load. A [`StreamView`] instead keeps
//! the loaded file as a single immutable arena (`Arc<[u8]>`) and decodes
//! access records *on the fly* as the replay loop walks them: a daemon
//! cache hit costs one allocation (the arena itself) and no per-record
//! decode pass.
//!
//! Construction validates everything `read_stream` validates — magic,
//! version, section sizes, core ranges, kind bytes, upgrade ordering —
//! so iteration is infallible and the view can promise the same "typed
//! error, never a panic" contract as the owned decoder. One check is
//! *stricter*: the arena must be exactly the size the header declares
//! (a longer one is [`TraceError::ArenaSizeMismatch`]), because a view
//! hands out sub-slices by offset and tolerating trailing bytes would
//! silently mask section misalignment.
//!
//! Upgrade events are decoded eagerly at construction: validation has to
//! walk them anyway (ordering is a cross-record property), they are rare
//! (thousands, not millions), and replay wants random access to them.

use std::sync::{Arc, Mutex};

use llc_sim::{AccessKind, BlockAddr, CoreId, Pc, PrivateCacheStats, MAX_CORES};

use crate::error::TraceError;
use crate::shard::ShardIndexSlot;
use crate::stream::{
    read_u64, AccessRecord, RecordedStream, StreamAccess, UpgradeEvent, ACCESS_RECORD_BYTES,
    STREAM_HEADER_BYTES, STREAM_MAGIC, STREAM_VERSION, UPGRADE_RECORD_BYTES,
};

/// A validated, zero-copy view over one loaded `.llcs` arena.
///
/// Implements [`StreamAccess`], so every replay driver in
/// `llc_sharing::replay` accepts a view wherever it accepts an owned
/// [`RecordedStream`] — bit-identically (property-tested in
/// `tests/replay_equivalence.rs`). The view also carries its own
/// shard-index slot, so concurrent sharded replays of the same view
/// share one index build per shard count.
pub struct StreamView {
    arena: Arc<[u8]>,
    len: usize,
    fingerprint: u64,
    instructions: u64,
    trace_accesses: u64,
    l1: PrivateCacheStats,
    l2: PrivateCacheStats,
    upgrades: Vec<UpgradeEvent>,
    shard_slot: ShardIndexSlot,
}

impl std::fmt::Debug for StreamView {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamView")
            .field("len", &self.len)
            .field("upgrades", &self.upgrades.len())
            .field("fingerprint", &self.fingerprint)
            .field("arena_bytes", &self.arena.len())
            .finish()
    }
}

impl StreamView {
    /// Validates `arena` as a complete `.llcs` image and wraps it.
    ///
    /// # Errors
    ///
    /// Every malformation maps to the same typed [`TraceError`] the
    /// owned decoder reports — [`TraceError::BadMagic`],
    /// [`TraceError::UnsupportedVersion`], [`TraceError::TruncatedHeader`],
    /// [`TraceError::Truncated`], [`TraceError::CoreOutOfRange`],
    /// [`TraceError::BadKind`], [`TraceError::BadUpgrade`] — plus
    /// [`TraceError::ArenaSizeMismatch`] for an arena longer than its
    /// header accounts for. Never panics on any input.
    pub fn new(arena: Arc<[u8]>) -> Result<StreamView, TraceError> {
        let bytes: &[u8] = &arena;
        if bytes.len() < STREAM_HEADER_BYTES {
            return Err(TraceError::TruncatedHeader {
                got: bytes.len(),
                expected: STREAM_HEADER_BYTES,
            });
        }
        if bytes[0..4] != STREAM_MAGIC {
            let mut found = [0u8; 4];
            found.copy_from_slice(&bytes[0..4]);
            return Err(TraceError::BadMagic { found });
        }
        let version = u16::from_le_bytes([bytes[4], bytes[5]]);
        if version != STREAM_VERSION {
            return Err(TraceError::UnsupportedVersion { version });
        }
        let accesses = read_u64(&bytes[8..16]);
        let upgrades = read_u64(&bytes[16..24]);
        let declared = accesses.saturating_add(upgrades);

        // Size the sections in u128 so a corrupt header cannot overflow
        // the arithmetic, then require the arena to match exactly.
        let expected = STREAM_HEADER_BYTES as u128
            + accesses as u128 * ACCESS_RECORD_BYTES as u128
            + upgrades as u128 * UPGRADE_RECORD_BYTES as u128;
        let actual = bytes.len() as u128;
        if actual < expected {
            // Report the same decoded/declared counts the owned decoder
            // would: how many whole records fit before the cut.
            let avail = bytes.len() - STREAM_HEADER_BYTES;
            let whole_accesses = ((avail / ACCESS_RECORD_BYTES) as u64).min(accesses);
            let decoded = if whole_accesses < accesses {
                whole_accesses
            } else {
                let rest = avail - whole_accesses as usize * ACCESS_RECORD_BYTES;
                accesses + ((rest / UPGRADE_RECORD_BYTES) as u64).min(upgrades)
            };
            return Err(TraceError::Truncated { decoded, declared });
        }
        if actual > expected {
            return Err(TraceError::ArenaSizeMismatch {
                // infallible: expected <= actual, and actual fits u64.
                expected: expected as u64,
                actual: bytes.len() as u64,
            });
        }
        // The exact-size check bounds both counts by the arena length,
        // so the usize conversions below cannot fail on any platform
        // that could hold the arena.
        let len = usize::try_from(accesses).map_err(|_| TraceError::Truncated {
            decoded: 0,
            declared,
        })?;
        let upgrade_count = usize::try_from(upgrades).map_err(|_| TraceError::Truncated {
            decoded: accesses,
            declared,
        })?;

        // Validate every access record once, so iteration never has to.
        let records = &bytes[STREAM_HEADER_BYTES..STREAM_HEADER_BYTES + len * ACCESS_RECORD_BYTES];
        for (index, rec) in records.chunks_exact(ACCESS_RECORD_BYTES).enumerate() {
            if usize::from(rec[0]) >= MAX_CORES {
                return Err(TraceError::CoreOutOfRange {
                    core: rec[0],
                    limit: MAX_CORES,
                    index: index as u64,
                });
            }
            if rec[1] > 1 {
                return Err(TraceError::BadKind {
                    kind: rec[1],
                    index: index as u64,
                });
            }
        }

        let upgrade_bytes = &bytes[STREAM_HEADER_BYTES + len * ACCESS_RECORD_BYTES..];
        let mut decoded_upgrades = Vec::with_capacity(upgrade_count);
        let mut prev_at = 0u64;
        for (index, rec) in upgrade_bytes.chunks_exact(UPGRADE_RECORD_BYTES).enumerate() {
            let at = read_u64(&rec[0..8]);
            if at < prev_at || at > accesses {
                return Err(TraceError::BadUpgrade {
                    at,
                    accesses,
                    index: index as u64,
                });
            }
            prev_at = at;
            let core = usize::from(rec[16]);
            if core >= MAX_CORES {
                return Err(TraceError::CoreOutOfRange {
                    core: rec[16],
                    limit: MAX_CORES,
                    index: index as u64,
                });
            }
            decoded_upgrades.push(UpgradeEvent {
                at,
                block: BlockAddr::new(read_u64(&rec[8..16])),
                core: CoreId::new(core),
            });
        }

        Ok(StreamView {
            fingerprint: read_u64(&bytes[40..48]),
            instructions: read_u64(&bytes[24..32]),
            trace_accesses: read_u64(&bytes[32..40]),
            l1: crate::stream::decode_private_stats(&bytes[48..88]),
            l2: crate::stream::decode_private_stats(&bytes[88..128]),
            len,
            upgrades: decoded_upgrades,
            shard_slot: Mutex::new(std::collections::HashMap::new()),
            arena,
        })
    }

    /// The underlying arena (the exact `.llcs` bytes).
    pub fn arena(&self) -> &Arc<[u8]> {
        &self.arena
    }

    /// Decodes the view into an owned [`RecordedStream`].
    ///
    /// # Errors
    ///
    /// Same conditions as [`read_stream`](crate::stream::read_stream) —
    /// in practice none, since construction already validated the arena.
    pub fn to_owned_stream(&self) -> Result<RecordedStream, TraceError> {
        RecordedStream::from_slice(&self.arena)
    }

    fn record_bytes(&self) -> &[u8] {
        &self.arena[STREAM_HEADER_BYTES..STREAM_HEADER_BYTES + self.len * ACCESS_RECORD_BYTES]
    }
}

impl StreamAccess for StreamView {
    type Iter<'a> = ViewAccessIter<'a>;

    fn len(&self) -> usize {
        self.len
    }

    fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    fn accesses(&self) -> ViewAccessIter<'_> {
        ViewAccessIter(self.record_bytes().chunks_exact(ACCESS_RECORD_BYTES))
    }

    fn upgrades(&self) -> &[UpgradeEvent] {
        &self.upgrades
    }

    fn instructions(&self) -> u64 {
        self.instructions
    }

    fn trace_accesses(&self) -> u64 {
        self.trace_accesses
    }

    fn l1_stats(&self) -> PrivateCacheStats {
        self.l1
    }

    fn l2_stats(&self) -> PrivateCacheStats {
        self.l2
    }

    fn encoded_len(&self) -> usize {
        self.arena.len()
    }

    fn shard_slot(&self) -> Option<&ShardIndexSlot> {
        Some(&self.shard_slot)
    }
}

/// [`StreamAccess::accesses`] iterator of a [`StreamView`]: fixed-stride
/// chunks of the arena, decoded on the fly. Decoding is infallible
/// because [`StreamView::new`] validated every record.
#[derive(Debug, Clone)]
pub struct ViewAccessIter<'a>(std::slice::ChunksExact<'a, u8>);

#[inline]
fn decode_record(rec: &[u8]) -> AccessRecord {
    AccessRecord {
        // infallible: core and kind bytes were validated at construction.
        core: CoreId::new(usize::from(rec[0])),
        kind: if rec[1] == 1 {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        pc: Pc::new(read_u64(&rec[2..10])),
        block: BlockAddr::new(read_u64(&rec[10..18])),
    }
}

impl<'a> Iterator for ViewAccessIter<'a> {
    type Item = AccessRecord;

    #[inline]
    fn next(&mut self) -> Option<AccessRecord> {
        self.0.next().map(decode_record)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

impl<'a> DoubleEndedIterator for ViewAccessIter<'a> {
    #[inline]
    fn next_back(&mut self) -> Option<AccessRecord> {
        self.0.next_back().map(decode_record)
    }
}

impl<'a> ExactSizeIterator for ViewAccessIter<'a> {
    fn len(&self) -> usize {
        self.0.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::{CorruptingReader, Fault, FaultPlan};
    use crate::stream::read_stream;
    use std::io::Read;

    fn sample() -> RecordedStream {
        let mut s = RecordedStream {
            fingerprint: 0xABCD_EF00_1234_5678,
            instructions: 999,
            trace_accesses: 321,
            l1: PrivateCacheStats {
                accesses: 100,
                hits: 80,
                evictions: 5,
                invalidations: 2,
                back_invalidations: 1,
            },
            ..RecordedStream::default()
        };
        for i in 0..64usize {
            s.blocks
                .push(BlockAddr::new(llc_sim::splitmix64(i as u64) % 97));
            s.cores.push(CoreId::new(i % 8));
            s.pcs.push(Pc::new(0x1000 + i as u64));
            s.kinds.push(if i % 5 == 0 {
                AccessKind::Write
            } else {
                AccessKind::Read
            });
            s.instr_deltas.push(i as u64 % 7 + 1);
        }
        for at in [0u64, 10, 10, 64] {
            s.upgrades.push(UpgradeEvent {
                at,
                block: BlockAddr::new(at * 3),
                core: CoreId::new((at % 4) as usize),
            });
        }
        s
    }

    fn view_of(s: &RecordedStream) -> StreamView {
        StreamView::new(s.to_vec().expect("encode").into()).expect("view")
    }

    #[test]
    fn view_matches_owned_decode_exactly() {
        let s = sample();
        let v = view_of(&s);
        assert_eq!(StreamAccess::len(&v), s.len());
        assert_eq!(v.fingerprint(), s.fingerprint);
        assert_eq!(v.instructions(), s.instructions);
        assert_eq!(v.trace_accesses(), s.trace_accesses);
        assert_eq!(v.l1_stats(), s.l1);
        assert_eq!(v.l2_stats(), s.l2);
        assert_eq!(StreamAccess::upgrades(&v), &s.upgrades[..]);
        assert_eq!(v.encoded_len(), s.encoded_len());
        let owned: Vec<AccessRecord> = s.accesses().collect();
        let viewed: Vec<AccessRecord> = v.accesses().collect();
        assert_eq!(owned, viewed);
        // Backward walks agree too (the annotation pre-pass direction).
        let owned_rev: Vec<AccessRecord> = s.accesses().rev().collect();
        let viewed_rev: Vec<AccessRecord> = v.accesses().rev().collect();
        assert_eq!(owned_rev, viewed_rev);
        assert_eq!(v.to_owned_stream().expect("decode"), s);
    }

    #[test]
    fn empty_stream_views_cleanly() {
        let v = view_of(&RecordedStream::default());
        assert!(StreamAccess::is_empty(&v));
        assert_eq!(v.accesses().count(), 0);
        assert!(StreamAccess::upgrades(&v).is_empty());
    }

    #[test]
    fn view_carries_its_own_shard_slot() {
        let v = view_of(&sample());
        assert!(v.shard_slot().is_some());
        let slot = v.shard_slot().expect("slot");
        assert!(slot.lock().expect("lock").is_empty());
    }

    #[test]
    fn header_malformations_are_typed() {
        let bytes = sample().to_vec().expect("encode");
        // Short header.
        let short: Arc<[u8]> = bytes[..40].to_vec().into();
        assert!(matches!(
            StreamView::new(short),
            Err(TraceError::TruncatedHeader { got: 40, .. })
        ));
        // Bad magic.
        let mut b = bytes.clone();
        b[0] = b'X';
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::BadMagic { .. })
        ));
        // Unsupported version.
        let mut b = bytes.clone();
        b[4] = 7;
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::UnsupportedVersion { version: 7 })
        ));
    }

    #[test]
    fn truncation_reports_owned_decoder_counts() {
        let bytes = sample().to_vec().expect("encode");
        // Cut mid-access-record: same decoded/declared as read_stream.
        let cut = STREAM_HEADER_BYTES + 9 * ACCESS_RECORD_BYTES + 11;
        let expect_err = read_stream(&bytes[..cut]).expect_err("owned decoder rejects");
        let view_err = StreamView::new(bytes[..cut].to_vec().into()).expect_err("view rejects");
        assert!(
            matches!(
                (&expect_err, &view_err),
                (
                    TraceError::Truncated {
                        decoded: 9,
                        declared: 68
                    },
                    TraceError::Truncated {
                        decoded: 9,
                        declared: 68
                    }
                )
            ),
            "owned: {expect_err:?}, view: {view_err:?}"
        );
        // Cut mid-upgrade-record.
        let cut = STREAM_HEADER_BYTES + 64 * ACCESS_RECORD_BYTES + 2 * UPGRADE_RECORD_BYTES + 5;
        assert!(matches!(
            StreamView::new(bytes[..cut].to_vec().into()),
            Err(TraceError::Truncated {
                decoded: 66,
                declared: 68
            })
        ));
    }

    #[test]
    fn trailing_bytes_are_a_misaligned_section() {
        let mut bytes = sample().to_vec().expect("encode");
        let expected = bytes.len() as u64;
        bytes.extend_from_slice(b"junk");
        let err = StreamView::new(bytes.into()).expect_err("reject padding");
        assert!(matches!(
            err,
            TraceError::ArenaSizeMismatch { expected: e, actual: a }
                if e == expected && a == expected + 4
        ));
    }

    #[test]
    fn bad_records_are_typed() {
        let bytes = sample().to_vec().expect("encode");
        // Bad kind byte on access record 3.
        let mut b = bytes.clone();
        b[STREAM_HEADER_BYTES + 3 * ACCESS_RECORD_BYTES + 1] = 9;
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::BadKind { kind: 9, index: 3 })
        ));
        // Out-of-range core on access record 0.
        let mut b = bytes.clone();
        b[STREAM_HEADER_BYTES] = 250;
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::CoreOutOfRange {
                core: 250,
                index: 0,
                ..
            })
        ));
        // Unsorted upgrade: rewrite upgrade 2's `at` below upgrade 1's.
        let off = STREAM_HEADER_BYTES + 64 * ACCESS_RECORD_BYTES + 2 * UPGRADE_RECORD_BYTES;
        let mut b = bytes.clone();
        b[off..off + 8].copy_from_slice(&1u64.to_le_bytes());
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::BadUpgrade {
                at: 1,
                accesses: 64,
                index: 2
            })
        ));
        // Upgrade past the stream.
        let mut b = bytes.clone();
        b[off..off + 8].copy_from_slice(&65u64.to_le_bytes());
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::BadUpgrade {
                at: 65,
                accesses: 64,
                index: 2
            })
        ));
        // Out-of-range core on an upgrade record.
        let mut b = bytes;
        b[off + 16] = 77;
        assert!(matches!(
            StreamView::new(b.into()),
            Err(TraceError::CoreOutOfRange { core: 77, .. })
        ));
    }

    #[test]
    fn header_count_corruption_cannot_exhaust_memory() {
        // A declared count of u64::MAX must fail the size check with a
        // typed error before any allocation is attempted — including the
        // overflow-prone `count * record_size` arithmetic.
        for (range, val) in [(8..16, u64::MAX), (16..24, u64::MAX / 16)] {
            let mut bytes = sample().to_vec().expect("encode");
            bytes[range].copy_from_slice(&val.to_le_bytes());
            assert!(matches!(
                StreamView::new(bytes.into()),
                Err(TraceError::Truncated { .. })
            ));
        }
    }

    #[test]
    fn random_corruption_never_panics_the_view() {
        // Fault-injection sweep mirroring the owned decoder's: whatever
        // a deterministic bit flip or truncation produces, construction
        // ends in Ok or a typed error, never a panic — and a view that
        // does construct still iterates without panicking.
        let bytes = sample().to_vec().expect("encode");
        for seed in 0..200u64 {
            let plan = FaultPlan::random_bit_flips(seed, bytes.len() as u64, 3);
            let mut damaged = Vec::new();
            CorruptingReader::new(bytes.as_slice(), &plan)
                .read_to_end(&mut damaged)
                .expect("apply plan");
            if let Ok(v) = StreamView::new(damaged.into()) {
                let n: usize = v.accesses().count();
                assert_eq!(n, StreamAccess::len(&v));
            }
        }
        for seed in 0..60u64 {
            let offset = llc_sim::splitmix64(seed ^ 0x5eed) % (bytes.len() as u64 + 1);
            let plan = FaultPlan::new().with(Fault::TruncateAt { offset });
            let mut damaged = Vec::new();
            CorruptingReader::new(bytes.as_slice(), &plan)
                .read_to_end(&mut damaged)
                .expect("apply plan");
            let _ = StreamView::new(damaged.into());
        }
    }
}

//! Set-dueling machinery shared by DIP and DRRIP.
//!
//! A small number of *leader* sets are hard-wired to each of two competing
//! policies (team A and team B). Misses in a leader set move a saturating
//! policy-selector counter (PSEL) against that team; *follower* sets use
//! whichever team currently has fewer leader misses (the PSEL's MSB).

/// Which team a set belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Team {
    /// Hard-wired to policy A (e.g. SRRIP in DRRIP, LRU in DIP).
    LeaderA,
    /// Hard-wired to policy B (e.g. BRRIP in DRRIP, BIP in DIP).
    LeaderB,
    /// Uses the currently winning policy.
    Follower,
}

/// Set-dueling monitor with a 10-bit PSEL.
#[derive(Debug, Clone)]
pub struct SetDuel {
    stride: usize,
    offset_b: usize,
    psel: u32,
    max: u32,
}

/// Number of leader sets per team (when the cache has enough sets).
pub const LEADERS_PER_TEAM: usize = 32;

impl SetDuel {
    /// Creates a monitor for a cache with `sets` sets.
    ///
    /// With fewer than `2 * LEADERS_PER_TEAM` sets, every other set leads
    /// for A and the rest for B (degenerate but well-defined; only unit
    /// tests use such tiny caches).
    pub fn new(sets: usize) -> Self {
        let leaders = LEADERS_PER_TEAM.min(sets / 2).max(1);
        let stride = (sets / leaders).max(2);
        SetDuel {
            stride,
            offset_b: stride / 2,
            psel: 512,
            max: 1023,
        }
    }

    /// Returns the team of `set`.
    pub fn team(&self, set: usize) -> Team {
        let r = set % self.stride;
        if r == 0 {
            Team::LeaderA
        } else if r == self.offset_b {
            Team::LeaderB
        } else {
            Team::Follower
        }
    }

    /// Records a miss (fill) in `set`, updating the PSEL if it is a leader.
    pub fn on_miss(&mut self, set: usize) {
        match self.team(set) {
            Team::LeaderA => self.psel = (self.psel + 1).min(self.max),
            Team::LeaderB => self.psel = self.psel.saturating_sub(1),
            Team::Follower => {}
        }
    }

    /// `true` if follower sets should currently use team B's policy
    /// (i.e. team A's leaders have been missing more).
    pub fn followers_use_b(&self) -> bool {
        self.psel > self.max / 2
    }

    /// Should `set` use team B's policy right now?
    pub fn use_b(&self, set: usize) -> bool {
        match self.team(set) {
            Team::LeaderA => false,
            Team::LeaderB => true,
            Team::Follower => self.followers_use_b(),
        }
    }

    /// Current PSEL value (test hook).
    pub fn psel(&self) -> u32 {
        self.psel
    }
}

/// Thread-aware set dueling (TA-DIP / TA-DRRIP, Jaleel et al.): one PSEL
/// per hardware thread, so each thread independently picks the insertion
/// policy that serves *its* misses best. This is the published fix for
/// multi-programmed interference; the paper's point is that it still does
/// nothing for *constructive* sharing.
#[derive(Debug, Clone)]
pub struct ThreadAwareDuel {
    stride: usize,
    offset_b: usize,
    psel: Vec<u32>,
    max: u32,
}

impl ThreadAwareDuel {
    /// Creates a monitor for `sets` sets and `threads` hardware threads.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn new(sets: usize, threads: usize) -> Self {
        assert!(threads > 0, "need at least one thread");
        let inner = SetDuel::new(sets);
        ThreadAwareDuel {
            stride: inner.stride,
            offset_b: inner.offset_b,
            psel: vec![512; threads],
            max: 1023,
        }
    }

    /// Returns the team of `set` (same leader layout as [`SetDuel`]).
    pub fn team(&self, set: usize) -> Team {
        let r = set % self.stride;
        if r == 0 {
            Team::LeaderA
        } else if r == self.offset_b {
            Team::LeaderB
        } else {
            Team::Follower
        }
    }

    /// Records a miss by `thread` in `set`.
    pub fn on_miss(&mut self, set: usize, thread: usize) {
        let team = self.team(set);
        let max = self.max;
        let p = &mut self.psel[thread];
        match team {
            Team::LeaderA => *p = (*p + 1).min(max),
            Team::LeaderB => *p = p.saturating_sub(1),
            Team::Follower => {}
        }
    }

    /// Should `thread`'s fill into `set` use team B's policy?
    pub fn use_b(&self, set: usize, thread: usize) -> bool {
        match self.team(set) {
            Team::LeaderA => false,
            Team::LeaderB => true,
            Team::Follower => self.psel[thread] > self.max / 2,
        }
    }

    /// Current PSEL of `thread` (test hook).
    pub fn psel(&self, thread: usize) -> u32 {
        self.psel[thread]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leader_layout_has_both_teams() {
        let d = SetDuel::new(4096);
        let mut a = 0;
        let mut b = 0;
        for s in 0..4096 {
            match d.team(s) {
                Team::LeaderA => a += 1,
                Team::LeaderB => b += 1,
                Team::Follower => {}
            }
        }
        assert_eq!(a, LEADERS_PER_TEAM);
        assert_eq!(b, LEADERS_PER_TEAM);
    }

    #[test]
    fn psel_moves_toward_less_missing_team() {
        let mut d = SetDuel::new(64);
        // Hammer team A's leader sets with misses.
        let a_leader = (0..64).find(|&s| d.team(s) == Team::LeaderA).unwrap();
        for _ in 0..600 {
            d.on_miss(a_leader);
        }
        assert!(d.followers_use_b());
        // Now hammer B harder.
        let b_leader = (0..64).find(|&s| d.team(s) == Team::LeaderB).unwrap();
        for _ in 0..1200 {
            d.on_miss(b_leader);
        }
        assert!(!d.followers_use_b());
    }

    #[test]
    fn leaders_ignore_psel() {
        let mut d = SetDuel::new(256);
        let a_leader = (0..256).find(|&s| d.team(s) == Team::LeaderA).unwrap();
        let b_leader = (0..256).find(|&s| d.team(s) == Team::LeaderB).unwrap();
        for _ in 0..2000 {
            d.on_miss(a_leader); // drives followers to B
        }
        assert!(!d.use_b(a_leader));
        assert!(d.use_b(b_leader));
        let follower = (0..256).find(|&s| d.team(s) == Team::Follower).unwrap();
        assert!(d.use_b(follower));
    }

    #[test]
    fn psel_saturates() {
        let mut d = SetDuel::new(64);
        let a_leader = (0..64).find(|&s| d.team(s) == Team::LeaderA).unwrap();
        for _ in 0..5000 {
            d.on_miss(a_leader);
        }
        assert_eq!(d.psel(), 1023);
        let b_leader = (0..64).find(|&s| d.team(s) == Team::LeaderB).unwrap();
        for _ in 0..5000 {
            d.on_miss(b_leader);
        }
        assert_eq!(d.psel(), 0);
    }

    #[test]
    fn tiny_caches_still_have_leaders() {
        let d = SetDuel::new(4);
        let teams: Vec<Team> = (0..4).map(|s| d.team(s)).collect();
        assert!(teams.contains(&Team::LeaderA));
        assert!(teams.contains(&Team::LeaderB));
    }

    #[test]
    fn thread_aware_psels_are_independent() {
        let mut d = ThreadAwareDuel::new(256, 4);
        let a_leader = (0..256).find(|&s| d.team(s) == Team::LeaderA).unwrap();
        let b_leader = (0..256).find(|&s| d.team(s) == Team::LeaderB).unwrap();
        // Thread 0 suffers under policy A; thread 1 suffers under B.
        for _ in 0..800 {
            d.on_miss(a_leader, 0);
            d.on_miss(b_leader, 1);
        }
        let follower = (0..256).find(|&s| d.team(s) == Team::Follower).unwrap();
        assert!(d.use_b(follower, 0), "thread 0 should switch to B");
        assert!(!d.use_b(follower, 1), "thread 1 should stay on A");
        // Leaders are hard-wired regardless of thread.
        assert!(!d.use_b(a_leader, 0));
        assert!(d.use_b(b_leader, 1));
    }

    #[test]
    fn thread_aware_saturates_per_thread() {
        let mut d = ThreadAwareDuel::new(64, 2);
        let a_leader = (0..64).find(|&s| d.team(s) == Team::LeaderA).unwrap();
        for _ in 0..5000 {
            d.on_miss(a_leader, 1);
        }
        assert_eq!(d.psel(1), 1023);
        assert_eq!(d.psel(0), 512); // untouched
    }
}

//! SHiP-PC: Signature-based Hit Predictor (Wu et al., MICRO 2011).
//!
//! Each fill is tagged with a signature derived from the fill PC. A table
//! of saturating counters (the SHCT) learns, per signature, whether fills
//! made by that signature tend to be re-referenced. Fills whose signature
//! has a zero counter are inserted with the distant RRPV (likely dead);
//! everything else inserts like SRRIP. SHiP is one of the "recent
//! proposals" whose sharing-awareness the paper characterizes: it is
//! PC-correlated but not sharing-aware.

use llc_sim::{AccessCtx, GenerationEnd, ReplacementPolicy, SetView, StateScope};

use crate::rrip::{RRPV_LONG, RRPV_MAX};

/// Number of SHCT entries (16K, as in the SHiP paper).
pub const SHCT_ENTRIES: usize = 16 * 1024;

/// Maximum SHCT counter value (3-bit counters).
pub const SHCT_MAX: u8 = 7;

/// SHiP-PC replacement.
///
/// Per-line state (RRPV, fill signature, reuse outcome) lives in one
/// set-blocked arena: each set owns a `4 * ways`-byte block laid out as
/// `[rrpv; ways][outcome; ways][sig as 2 LE bytes; ways]`. Every hook
/// therefore touches a single ~cache-line-sized region per set (separate
/// per-field vectors cost three scattered lines per access), and the RRPV
/// row is contiguous, so victim selection reuses the RRIP family's SWAR
/// scan.
#[derive(Debug, Clone)]
pub struct Ship {
    ways: usize,
    /// `4 * ways` bytes per set.
    stride: usize,
    arena: Vec<u8>,
    shct: Vec<u8>,
}

impl Ship {
    /// Creates a SHiP-PC policy for `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        let stride = 4 * ways;
        let mut arena = vec![0u8; sets * stride];
        for set in 0..sets {
            // Empty ways never consult the policy; distant for definiteness.
            arena[set * stride..set * stride + ways].fill(RRPV_MAX);
        }
        Ship {
            ways,
            stride,
            arena,
            shct: vec![1; SHCT_ENTRIES],
        }
    }

    fn signature(ctx: &AccessCtx) -> u16 {
        (ctx.pc.hash() % SHCT_ENTRIES as u64) as u16
    }

    /// The set's arena block: one bounds check per hook.
    #[inline]
    fn block(&mut self, set: usize) -> &mut [u8] {
        let base = set * self.stride;
        &mut self.arena[base..base + self.stride]
    }

    #[inline]
    fn sig_at(&self, set: usize, way: usize) -> u16 {
        let i = set * self.stride + 2 * self.ways + 2 * way;
        u16::from_le_bytes([self.arena[i], self.arena[i + 1]])
    }

    /// Current SHCT counter for a signature (test hook).
    pub fn shct(&self, sig: u16) -> u8 {
        self.shct[sig as usize]
    }

    /// Signature of the line currently in `(set, way)` (test hook).
    pub fn line_signature(&self, set: usize, way: usize) -> u16 {
        self.sig_at(set, way)
    }

    /// RRPV of the line currently in `(set, way)` (test hook).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.arena[set * self.stride + way]
    }
}

impl ReplacementPolicy for Ship {
    fn name(&self) -> String {
        "SHiP".into()
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let sig = Self::signature(ctx);
        let rrpv = if self.shct[sig as usize] == 0 {
            RRPV_MAX
        } else {
            RRPV_LONG
        };
        let ways = self.ways;
        let block = self.block(set);
        block[way] = rrpv;
        block[ways + way] = 0;
        let i = 2 * ways + 2 * way;
        block[i..i + 2].copy_from_slice(&sig.to_le_bytes());
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        let ways = self.ways;
        let block = self.block(set);
        block[way] = 0;
        if block[ways + way] == 0 {
            block[ways + way] = 1;
            let i = 2 * ways + 2 * way;
            let sig = u16::from_le_bytes([block[i], block[i + 1]]);
            let c = &mut self.shct[sig as usize];
            *c = (*c + 1).min(SHCT_MAX);
        }
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize, _gen: &GenerationEnd) {
        if self.arena[set * self.stride + self.ways + way] == 0 {
            let sig = self.sig_at(set, way);
            let c = &mut self.shct[sig as usize];
            *c = c.saturating_sub(1);
        }
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        let rrpv = &mut self.arena[set * self.stride..set * self.stride + self.ways];
        crate::rrip::choose_rrip_victim(rrpv, view)
    }

    /// Global: the signature history counter table is shared by every set,
    /// so insertion decisions in one set depend on generation outcomes in
    /// all the others.
    fn state_scope(&self) -> StateScope {
        StateScope::Global
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx_at, full_view};
    use llc_sim::{BlockAddr, CoreId, EvictCause, Pc};

    fn gen_end(hits: u32) -> GenerationEnd {
        GenerationEnd {
            block: BlockAddr::new(1),
            set: 0,
            fill_pc: Pc::new(0x400),
            fill_core: CoreId::new(0),
            fill_time: 0,
            end_time: 10,
            sharer_mask: 1,
            writer_mask: 0,
            hits,
            hits_by_non_filler: 0,
            writes: 0,
            cause: EvictCause::Replacement,
        }
    }

    #[test]
    fn dead_signature_inserts_distant() {
        let mut p = Ship::new(1, 2);
        let c = ctx_at(0, 1, 0xabc);
        let sig = Ship::signature(&c);
        // Drive the signature's counter to zero with dead generations.
        for t in 0..8 {
            p.on_fill(0, 0, &ctx_at(t, t, 0xabc));
            p.on_evict(0, 0, &gen_end(0));
        }
        assert_eq!(p.shct(sig), 0);
        p.on_fill(0, 0, &c);
        assert_eq!(p.rrpv(0, 0), RRPV_MAX);
    }

    #[test]
    fn live_signature_inserts_long() {
        let mut p = Ship::new(1, 2);
        let c = ctx_at(0, 1, 0xdef);
        p.on_fill(0, 0, &c);
        assert_eq!(p.rrpv(0, 0), RRPV_LONG); // initial counter is 1
        p.on_hit(0, 0, &c);
        assert_eq!(p.rrpv(0, 0), 0);
        let sig = Ship::signature(&c);
        assert_eq!(p.shct(sig), 2); // hit incremented the counter
    }

    #[test]
    fn outcome_increments_only_once_per_generation() {
        let mut p = Ship::new(1, 2);
        let c = ctx_at(0, 1, 0x123);
        let sig = Ship::signature(&c);
        p.on_fill(0, 0, &c);
        for t in 0..5 {
            p.on_hit(0, 0, &ctx_at(t, 1, 0x123));
        }
        assert_eq!(p.shct(sig), 2);
    }

    #[test]
    fn eviction_without_reuse_decrements() {
        let mut p = Ship::new(1, 2);
        let c = ctx_at(0, 1, 0x777);
        let sig = Ship::signature(&c);
        let before = p.shct(sig);
        p.on_fill(0, 0, &c);
        p.on_evict(0, 0, &gen_end(0));
        assert_eq!(p.shct(sig), before - 1);
    }

    #[test]
    fn victim_selection_ages_like_rrip() {
        let mut p = Ship::new(1, 2);
        p.on_fill(0, 0, &ctx_at(0, 1, 0x1));
        p.on_fill(0, 1, &ctx_at(1, 2, 0x2));
        p.on_hit(0, 0, &ctx_at(2, 1, 0x1));
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_at(3, 3, 0x3)), 1);
    }
}

//! The paper's generic sharing-aware oracle wrapper.
//!
//! `OracleWrap<P>` composes with **any** base policy `P`. At fill time the
//! oracle bit ([`llc_sim::Aux::oracle_shared`], computed by a pre-pass run
//! of the unwrapped base policy) says whether the block will be shared
//! (touched by ≥ 2 distinct cores) during its residency. The wrapper then
//! protects predicted-shared lines:
//!
//! * [`ProtectMode::Eviction`] (default): victim selection is restricted to
//!   predicted-*private* lines; a predicted-shared line is evicted only
//!   when every candidate is predicted shared. The base policy still picks
//!   *which* private line dies, so its recency/re-reference wisdom is kept.
//! * [`ProtectMode::Insertion`]: a predicted-shared fill is immediately
//!   "touch-promoted" (the base policy sees a hit right after the fill), a
//!   policy-agnostic way of inserting with high priority.
//! * [`ProtectMode::Both`]: both mechanisms.
//!
//! The same wrapper, fed by a realistic predictor instead of the oracle, is
//! `llc-predictors`' `PredictorWrap`.

use llc_sim::{AccessCtx, GenerationEnd, ReplacementPolicy, SetView, StateScope};

/// Where the wrapper applies sharing protection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ProtectMode {
    /// Restrict victim selection to predicted-private lines.
    #[default]
    Eviction,
    /// Touch-promote predicted-shared fills.
    Insertion,
    /// Both of the above.
    Both,
}

impl ProtectMode {
    fn protects_eviction(self) -> bool {
        matches!(self, ProtectMode::Eviction | ProtectMode::Both)
    }
    fn protects_insertion(self) -> bool {
        matches!(self, ProtectMode::Insertion | ProtectMode::Both)
    }
}

/// Sharing-aware oracle wrapper around a base policy.
#[derive(Debug, Clone)]
pub struct OracleWrap<P> {
    base: P,
    mode: ProtectMode,
    ways: usize,
    predicted_shared: Vec<bool>,
}

impl<P: ReplacementPolicy> OracleWrap<P> {
    /// Wraps `base` for an LLC with `sets` sets of `ways` ways, protecting
    /// at eviction time (the paper's oracle).
    pub fn new(base: P, sets: usize, ways: usize) -> Self {
        Self::with_mode(base, sets, ways, ProtectMode::Eviction)
    }

    /// Wraps `base` with an explicit [`ProtectMode`] (used by the `abl3`
    /// ablation).
    pub fn with_mode(base: P, sets: usize, ways: usize, mode: ProtectMode) -> Self {
        OracleWrap {
            base,
            mode,
            ways,
            predicted_shared: vec![false; sets * ways],
        }
    }

    /// The wrapped base policy.
    pub fn base(&self) -> &P {
        &self.base
    }

    /// Whether the line in `(set, way)` is currently predicted shared
    /// (test hook).
    pub fn is_predicted_shared(&self, set: usize, way: usize) -> bool {
        self.predicted_shared[set * self.ways + way]
    }
}

impl<P: ReplacementPolicy> ReplacementPolicy for OracleWrap<P> {
    fn name(&self) -> String {
        match self.mode {
            ProtectMode::Eviction => format!("Oracle({})", self.base.name()),
            ProtectMode::Insertion => format!("OracleIns({})", self.base.name()),
            ProtectMode::Both => format!("OracleBoth({})", self.base.name()),
        }
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        let shared = ctx.aux.oracle_shared.unwrap_or(false);
        self.predicted_shared[set * self.ways + way] = shared;
        self.base.on_fill(set, way, ctx);
        if shared && self.mode.protects_insertion() {
            self.base.on_hit(set, way, ctx);
        }
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        // Refresh the prediction: the oracle's answer at the latest access
        // reflects the remaining residency most accurately.
        if let Some(shared) = ctx.aux.oracle_shared {
            self.predicted_shared[set * self.ways + way] = shared;
        }
        self.base.on_hit(set, way, ctx);
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize, gen: &GenerationEnd) {
        self.base.on_evict(set, way, gen);
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, ctx: &AccessCtx) -> usize {
        if !self.mode.protects_eviction() {
            return self.base.choose_victim(set, view, ctx);
        }
        let base_idx = set * self.ways;
        let mut private_mask = 0u64;
        for w in view.allowed_ways() {
            if !self.predicted_shared[base_idx + w] {
                private_mask |= 1u64 << w;
            }
        }
        let restricted = if private_mask != 0 {
            SetView {
                lines: view.lines,
                allowed: private_mask,
            }
        } else {
            *view
        };
        self.base.choose_victim(set, &restricted, ctx)
    }

    /// The wrapper's own state (per-line predicted-shared bits) is per-set;
    /// the overall scope is whatever the base policy declares.
    fn state_scope(&self) -> StateScope {
        self.base.state_scope()
    }

    /// The wrapper only restricts the candidate mask; `lines` is read
    /// exactly when the base policy reads it.
    fn needs_line_views(&self) -> bool {
        self.base.needs_line_views()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;
    use crate::testutil::{ctx_aux, full_view};

    #[test]
    fn shields_predicted_shared_lines() {
        let mut p = OracleWrap::new(Lru::new(1, 3), 1, 3);
        p.on_fill(0, 0, &ctx_aux(0, None, Some(true))); // oldest, but shared
        p.on_fill(0, 1, &ctx_aux(1, None, Some(false)));
        p.on_fill(0, 2, &ctx_aux(2, None, Some(false)));
        let lines = full_view(3);
        let view = SetView {
            lines: &lines,
            allowed: 0b111,
        };
        // LRU would pick way 0; the oracle shields it, so the oldest
        // private line (way 1) dies.
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(3, None, None)), 1);
    }

    #[test]
    fn falls_back_when_all_predicted_shared() {
        let mut p = OracleWrap::new(Lru::new(1, 2), 1, 2);
        p.on_fill(0, 0, &ctx_aux(0, None, Some(true)));
        p.on_fill(0, 1, &ctx_aux(1, None, Some(true)));
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(2, None, None)), 0); // plain LRU order
    }

    #[test]
    fn hit_refreshes_prediction() {
        let mut p = OracleWrap::new(Lru::new(1, 2), 1, 2);
        p.on_fill(0, 0, &ctx_aux(0, None, Some(true)));
        assert!(p.is_predicted_shared(0, 0));
        // Later the oracle says the remaining residency is private.
        p.on_hit(0, 0, &ctx_aux(5, None, Some(false)));
        assert!(!p.is_predicted_shared(0, 0));
    }

    #[test]
    fn missing_oracle_bit_means_private() {
        let mut p = OracleWrap::new(Lru::new(1, 1), 1, 1);
        p.on_fill(0, 0, &ctx_aux(0, None, None));
        assert!(!p.is_predicted_shared(0, 0));
    }

    #[test]
    fn insertion_mode_touch_promotes() {
        // With an LRU base, a touch-promoted fill has a *newer* stamp than
        // a plain fill made later... it does not — promotion matters for
        // RRIP-like bases. Verify via SRRIP: a shared fill lands at RRPV 0.
        use crate::rrip::Rrip;
        let mut p = OracleWrap::with_mode(Rrip::srrip(1, 2), 1, 2, ProtectMode::Insertion);
        p.on_fill(0, 0, &ctx_aux(0, None, Some(true)));
        p.on_fill(0, 1, &ctx_aux(1, None, Some(false)));
        assert_eq!(p.base().rrpv(0, 0), 0); // promoted
        assert_ne!(p.base().rrpv(0, 1), 0); // normal long insertion
                                            // And eviction is NOT restricted in insertion mode.
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b10,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(2, None, None)), 1);
    }

    #[test]
    fn name_reflects_mode_and_base() {
        let p = OracleWrap::new(Lru::new(1, 1), 1, 1);
        assert_eq!(p.name(), "Oracle(LRU)");
        let q = OracleWrap::with_mode(Lru::new(1, 1), 1, 1, ProtectMode::Both);
        assert_eq!(q.name(), "OracleBoth(LRU)");
    }
}

//! Uniform-random replacement.

use llc_sim::{splitmix64, AccessCtx, ReplacementPolicy, SetView, StateScope};

/// Evicts a uniformly random candidate way.
///
/// Deterministic: the "random" stream is a counter passed through
/// SplitMix64, so simulations are exactly reproducible. Each set draws from
/// its own SplitMix64 chain (seeded from the policy seed and the set index),
/// so the victim chosen in one set never depends on how many evictions other
/// sets have suffered — the property that makes set-sharded replay exact.
#[derive(Debug, Clone)]
pub struct Random {
    base: u64,
    states: Vec<u64>,
}

impl Random {
    /// Creates a random policy with the given seed.
    pub fn new(seed: u64) -> Self {
        Random {
            base: splitmix64(seed ^ 0x5eed_5eed_5eed_5eed),
            states: Vec::new(),
        }
    }

    fn next(&mut self, set: usize) -> u64 {
        while self.states.len() <= set {
            let s = self.states.len() as u64;
            self.states.push(splitmix64(
                self.base ^ s.wrapping_mul(0x9e37_79b9_7f4a_7c15),
            ));
        }
        let state = &mut self.states[set];
        *state = splitmix64(*state);
        *state
    }
}

impl Default for Random {
    fn default() -> Self {
        Random::new(0)
    }
}

impl ReplacementPolicy for Random {
    fn name(&self) -> String {
        "Random".into()
    }

    #[inline]
    fn on_fill(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}

    #[inline]
    fn on_hit(&mut self, _set: usize, _way: usize, _ctx: &AccessCtx) {}

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        let n = view.allowed.count_ones() as u64;
        debug_assert!(n > 0, "victim candidates must be non-empty");
        let k = self.next(set) % n;
        // infallible: k < n = count of allowed ways by construction.
        view.allowed_ways()
            .nth(k as usize)
            .expect("k < candidate count")
    }

    /// Per-set: each set owns an independent SplitMix64 chain.
    fn state_scope(&self) -> StateScope {
        StateScope::PerSet
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, full_view};

    #[test]
    fn only_picks_allowed_ways() {
        let mut p = Random::new(7);
        let lines = full_view(8);
        let view = SetView {
            lines: &lines,
            allowed: 0b0101_0000,
        };
        for t in 0..100 {
            let v = p.choose_victim(0, &view, &ctx(t));
            assert!(v == 4 || v == 6, "picked disallowed way {v}");
        }
    }

    #[test]
    fn covers_all_candidates_eventually() {
        let mut p = Random::new(1);
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b1111,
        };
        let mut seen = [false; 4];
        for t in 0..200 {
            seen[p.choose_victim(0, &view, &ctx(t))] = true;
        }
        assert_eq!(seen, [true; 4]);
    }

    #[test]
    fn deterministic_for_same_seed() {
        let lines = full_view(8);
        let view = SetView {
            lines: &lines,
            allowed: 0xff,
        };
        let mut a = Random::new(42);
        let mut b = Random::new(42);
        for t in 0..50 {
            assert_eq!(
                a.choose_victim(0, &view, &ctx(t)),
                b.choose_victim(0, &view, &ctx(t))
            );
        }
    }
}

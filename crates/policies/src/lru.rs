//! True least-recently-used replacement.

use llc_sim::{AccessCtx, ReplacementPolicy, SetView, StateScope};

/// True LRU: evicts the candidate whose last touch is oldest.
///
/// This is the paper's baseline policy; the headline oracle numbers (6% /
/// 10% miss reduction at 4 MB / 8 MB) are measured against it.
#[derive(Debug, Clone)]
pub struct Lru {
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
}

impl Lru {
    /// Creates an LRU policy for an LLC with `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        Lru {
            ways,
            stamps: vec![0; sets * ways],
            clock: 0,
        }
    }

    fn touch(&mut self, set: usize, way: usize) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    /// The recency stamp of `(set, way)`; larger is more recent (test
    /// hook).
    pub fn stamp(&self, set: usize, way: usize) -> u64 {
        self.stamps[set * self.ways + way]
    }
}

impl ReplacementPolicy for Lru {
    fn name(&self) -> String {
        "LRU".into()
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.touch(set, way);
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.touch(set, way);
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        let stamps = &self.stamps[set * self.ways..(set + 1) * self.ways];
        if crate::full_row_mask(view, stamps.len()) {
            // Dense scan over the whole row — no mask tests.
            let (w, _) = stamps
                .iter()
                .enumerate()
                .min_by_key(|&(_, &s)| s)
                .expect("sets have at least one way");
            return w;
        }
        view.allowed_ways()
            .min_by_key(|&w| stamps[w])
            // infallible: the hierarchy never requests a victim from an
            // all-protected set (the oracle wrapper caps protections).
            .expect("victim candidates must be non-empty")
    }

    /// Per-set: the clock is global, but victim selection only ever
    /// *compares* stamps within one set, and replaying a set's accesses in
    /// stream order preserves their relative recency regardless of what the
    /// clock counts in between.
    fn state_scope(&self) -> StateScope {
        StateScope::PerSet
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, full_view};

    #[test]
    fn evicts_oldest() {
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        p.on_hit(0, 0, &ctx(10)); // refresh way 0
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b1111,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(11)), 1);
    }

    #[test]
    fn respects_allowed_mask() {
        let mut p = Lru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        // Way 0 is oldest but masked out.
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b1110,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(9)), 1);
    }

    #[test]
    fn stack_property_holds_under_hits() {
        // LRU inclusion property sanity: hitting never changes relative
        // order of untouched ways.
        let mut p = Lru::new(1, 3);
        p.on_fill(0, 0, &ctx(0));
        p.on_fill(0, 1, &ctx(1));
        p.on_fill(0, 2, &ctx(2));
        p.on_hit(0, 1, &ctx(3));
        assert!(p.stamp(0, 0) < p.stamp(0, 2));
        assert!(p.stamp(0, 2) < p.stamp(0, 1));
    }
}

//! The DIP family: LIP, BIP and set-dueling DIP (Qureshi et al., ISCA
//! 2007), built on an LRU recency stack.

use llc_sim::{splitmix64, AccessCtx, ReplacementPolicy, SetView, StateScope};

use crate::duel::SetDuel;

/// BIP promotes a fill to MRU once every `BIP_EPSILON` fills; all other
/// fills land in the LRU position.
pub const BIP_EPSILON: u64 = 32;

/// Which insertion rule a DIP-family instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DipFlavor {
    /// LRU-Insertion Policy: every fill lands in the LRU position.
    Lip,
    /// Bimodal Insertion Policy: MRU for 1-in-32 fills, LRU otherwise.
    Bip,
    /// Dynamic Insertion Policy: set-duel between LRU and BIP.
    Dip,
}

/// LIP / BIP / DIP replacement over a timestamp LRU stack.
#[derive(Debug, Clone)]
pub struct Dip {
    flavor: DipFlavor,
    ways: usize,
    stamps: Vec<u64>,
    clock: u64,
    duel: SetDuel,
    /// Per-set bimodal fill counters (see `Rrip::fill_seq`): BIP's 1-in-32
    /// MRU promotions in a set depend only on that set's fill history.
    fill_seq: Vec<u64>,
    seed: u64,
}

impl Dip {
    /// Creates a LIP policy.
    pub fn lip(sets: usize, ways: usize) -> Self {
        Self::new(DipFlavor::Lip, sets, ways, 0)
    }

    /// Creates a BIP policy.
    pub fn bip(sets: usize, ways: usize, seed: u64) -> Self {
        Self::new(DipFlavor::Bip, sets, ways, seed)
    }

    /// Creates a set-dueling DIP policy.
    #[allow(clippy::self_named_constructors)] // `Dip::dip` mirrors `Dip::bip`
    pub fn dip(sets: usize, ways: usize, seed: u64) -> Self {
        Self::new(DipFlavor::Dip, sets, ways, seed)
    }

    fn new(flavor: DipFlavor, sets: usize, ways: usize, seed: u64) -> Self {
        Dip {
            flavor,
            ways,
            stamps: vec![0; sets * ways],
            clock: 1,
            duel: SetDuel::new(sets),
            fill_seq: vec![0; sets],
            seed,
        }
    }

    fn bip_mru(&mut self, set: usize) -> bool {
        self.fill_seq[set] += 1;
        let lane = splitmix64(self.seed ^ (set as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        splitmix64(lane ^ self.fill_seq[set]).is_multiple_of(BIP_EPSILON)
    }

    /// The recency stamp of `(set, way)` (test hook).
    pub fn stamp(&self, set: usize, way: usize) -> u64 {
        self.stamps[set * self.ways + way]
    }
}

impl ReplacementPolicy for Dip {
    fn name(&self) -> String {
        match self.flavor {
            DipFlavor::Lip => "LIP".into(),
            DipFlavor::Bip => "BIP".into(),
            DipFlavor::Dip => "DIP".into(),
        }
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        if self.flavor == DipFlavor::Dip {
            self.duel.on_miss(set);
        }
        let lru_insert = match self.flavor {
            DipFlavor::Lip => true,
            DipFlavor::Bip => !self.bip_mru(set),
            DipFlavor::Dip => {
                // Team A = LRU (MRU insertion), team B = BIP.
                if self.duel.use_b(set) {
                    !self.bip_mru(set)
                } else {
                    false
                }
            }
        };
        self.clock += 1;
        // LRU-position insertion: a stamp of 0 is older than every live
        // line (live stamps are >= 1), so the line is the next victim
        // unless it is re-referenced first.
        self.stamps[set * self.ways + way] = if lru_insert { 0 } else { self.clock };
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.clock += 1;
        self.stamps[set * self.ways + way] = self.clock;
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        view.allowed_ways()
            .min_by_key(|&w| self.stamps[set * self.ways + w])
            // infallible: the hierarchy never requests a victim from an
            // all-protected set (the oracle wrapper caps protections).
            .expect("victim candidates must be non-empty")
    }

    /// LIP and BIP keep only per-set state (stamps compared within one set,
    /// per-set bimodal counters; the clock is global but only relative
    /// order within a set matters). DIP proper duels with a global PSEL.
    fn state_scope(&self) -> StateScope {
        match self.flavor {
            DipFlavor::Lip | DipFlavor::Bip => StateScope::PerSet,
            DipFlavor::Dip => StateScope::Global,
        }
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, full_view};

    #[test]
    fn lip_inserted_line_is_next_victim() {
        let mut p = Dip::lip(1, 4);
        for w in 0..3 {
            // Simulate MRU fills by hitting right after fill.
            p.on_fill(0, w, &ctx(w as u64));
            p.on_hit(0, w, &ctx(10 + w as u64));
        }
        p.on_fill(0, 3, &ctx(20)); // LIP fill: LRU position
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b1111,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(21)), 3);
    }

    #[test]
    fn lip_hit_rescues_line() {
        let mut p = Dip::lip(1, 2);
        p.on_fill(0, 0, &ctx(0));
        p.on_fill(0, 1, &ctx(1));
        p.on_hit(0, 1, &ctx(2));
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(3)), 0);
    }

    #[test]
    fn bip_occasionally_inserts_mru() {
        let mut p = Dip::bip(1, 2, 11);
        let mut mru = 0;
        for t in 0..1000 {
            p.on_fill(0, 0, &ctx(t));
            if p.stamp(0, 0) != 0 {
                mru += 1;
            }
        }
        assert!(mru > 5, "BIP never promoted ({mru})");
        assert!(mru < 100, "BIP promoted too often ({mru})");
    }

    #[test]
    fn dip_team_a_leader_inserts_mru() {
        let sets = 64;
        let mut p = Dip::dip(sets, 2, 5);
        let duel = SetDuel::new(sets);
        let a = (0..sets)
            .find(|&s| duel.team(s) == crate::duel::Team::LeaderA)
            .unwrap();
        p.on_fill(a, 0, &ctx(0));
        assert_ne!(p.stamp(a, 0), 0, "LRU-team leader must insert at MRU");
    }
}

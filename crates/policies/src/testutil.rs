//! Helpers shared by the policy unit tests.

use llc_sim::{AccessCtx, AccessKind, Aux, BlockAddr, CoreId, LineView, Pc};

/// An access context at logical time `t` touching block `t` from core 0.
pub fn ctx(t: u64) -> AccessCtx {
    AccessCtx {
        block: BlockAddr::new(t),
        pc: Pc::new(0x400),
        core: CoreId::new(0),
        kind: AccessKind::Read,
        time: t,
        aux: Aux::default(),
    }
}

/// A context with an explicit block and PC (for SHiP / predictor tests).
pub fn ctx_at(t: u64, block: u64, pc: u64) -> AccessCtx {
    AccessCtx {
        block: BlockAddr::new(block),
        pc: Pc::new(pc),
        core: CoreId::new(0),
        kind: AccessKind::Read,
        time: t,
        aux: Aux::default(),
    }
}

/// A context carrying OPT / oracle side-channel data.
pub fn ctx_aux(t: u64, next_use: Option<u64>, oracle_shared: Option<bool>) -> AccessCtx {
    AccessCtx {
        block: BlockAddr::new(t),
        pc: Pc::new(0x400),
        core: CoreId::new(0),
        kind: AccessKind::Read,
        time: t,
        aux: Aux {
            next_use,
            oracle_shared,
        },
    }
}

/// A set of `ways` anonymous valid lines.
pub fn full_view(ways: usize) -> Vec<LineView> {
    (0..ways)
        .map(|w| LineView {
            block: BlockAddr::new(w as u64),
            sharer_count: 1,
            dirty: false,
        })
        .collect()
}

//! Belady's optimal replacement (OPT / MIN).
//!
//! OPT evicts the line whose next reference lies farthest in the future.
//! It needs future knowledge: the experiment runner performs a pre-pass
//! over the (policy-independent) LLC reference stream, computes for every
//! access the stream index of the *next* access to the same block, and
//! feeds it to the policy through [`llc_sim::Aux::next_use`].
//!
//! Because the simulated LLC allocates on every demand miss, this is OPT
//! *without bypass* — optimal among all non-bypassing policies, which is
//! the standard comparison point for replacement studies (every evaluated
//! policy is likewise non-bypassing). The paper calls OPT "naturally
//! sharing-aware": a block about to be re-referenced by another core has a
//! near next-use and is retained automatically.

use llc_sim::{AccessCtx, ReplacementPolicy, SetView, StateScope};

/// Belady's OPT, driven by next-use annotations.
#[derive(Debug, Clone)]
pub struct Opt {
    ways: usize,
    next_use: Vec<u64>,
}

/// Sentinel next-use for "never referenced again".
const NEVER: u64 = u64::MAX;

impl Opt {
    /// Creates an OPT policy for `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        Opt {
            ways,
            next_use: vec![NEVER; sets * ways],
        }
    }

    fn record(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        debug_assert!(
            ctx.aux.next_use.is_none_or(|n| n > ctx.time),
            "next use must lie in the future"
        );
        self.next_use[set * self.ways + way] = ctx.aux.next_use.unwrap_or(NEVER);
    }

    /// The recorded next use of `(set, way)` (test hook).
    pub fn next_use(&self, set: usize, way: usize) -> u64 {
        self.next_use[set * self.ways + way]
    }
}

impl ReplacementPolicy for Opt {
    fn name(&self) -> String {
        "OPT".into()
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.record(set, way, ctx);
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.record(set, way, ctx);
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        view.allowed_ways()
            .max_by_key(|&w| self.next_use[set * self.ways + w])
            // infallible: the hierarchy never requests a victim from an
            // all-protected set (the oracle wrapper caps protections).
            .expect("victim candidates must be non-empty")
    }

    /// Per-set: next-use annotations are per line and expressed as global
    /// stream indices, which sharded replay preserves.
    fn state_scope(&self) -> StateScope {
        StateScope::PerSet
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx_aux, full_view};

    #[test]
    fn evicts_farthest_next_use() {
        let mut p = Opt::new(1, 3);
        p.on_fill(0, 0, &ctx_aux(0, Some(10), None));
        p.on_fill(0, 1, &ctx_aux(1, Some(100), None));
        p.on_fill(0, 2, &ctx_aux(2, Some(50), None));
        let lines = full_view(3);
        let view = SetView {
            lines: &lines,
            allowed: 0b111,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(3, None, None)), 1);
    }

    #[test]
    fn never_referenced_again_is_preferred_victim() {
        let mut p = Opt::new(1, 2);
        p.on_fill(0, 0, &ctx_aux(0, Some(5), None));
        p.on_fill(0, 1, &ctx_aux(1, None, None));
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(2, None, None)), 1);
        assert_eq!(p.next_use(0, 1), u64::MAX);
    }

    #[test]
    fn hit_updates_next_use() {
        let mut p = Opt::new(1, 2);
        p.on_fill(0, 0, &ctx_aux(0, Some(3), None));
        p.on_fill(0, 1, &ctx_aux(1, Some(4), None));
        // Way 0's next access happens and its following use is far away.
        p.on_hit(0, 0, &ctx_aux(3, Some(1000), None));
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(5, None, None)), 0);
    }

    #[test]
    fn respects_allowed_mask() {
        let mut p = Opt::new(1, 3);
        p.on_fill(0, 0, &ctx_aux(0, None, None)); // farthest
        p.on_fill(0, 1, &ctx_aux(1, Some(10), None));
        p.on_fill(0, 2, &ctx_aux(2, Some(20), None));
        let lines = full_view(3);
        let view = SetView {
            lines: &lines,
            allowed: 0b110,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx_aux(3, None, None)), 2);
    }
}

//! Not-recently-used replacement (one reference bit per line).

use llc_sim::{AccessCtx, ReplacementPolicy, SetView, StateScope};

/// NRU: each line has one reference bit, set on fill and on hit. The victim
/// is the first candidate (in way order, starting from a per-set rotating
/// pointer) whose bit is clear; if every candidate's bit is set, all bits in
/// the set are cleared first.
#[derive(Debug, Clone)]
pub struct Nru {
    ways: usize,
    refbit: Vec<bool>,
    scan_ptr: Vec<u8>,
}

impl Nru {
    /// Creates an NRU policy for `sets` sets of `ways` ways.
    pub fn new(sets: usize, ways: usize) -> Self {
        Nru {
            ways,
            refbit: vec![false; sets * ways],
            scan_ptr: vec![0; sets],
        }
    }
}

impl ReplacementPolicy for Nru {
    fn name(&self) -> String {
        "NRU".into()
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.refbit[set * self.ways + way] = true;
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        self.refbit[set * self.ways + way] = true;
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        let base = set * self.ways;
        let start = self.scan_ptr[set] as usize % self.ways;
        for round in 0..2 {
            for i in 0..self.ways {
                let w = (start + i) % self.ways;
                if view.is_allowed(w) && !self.refbit[base + w] {
                    self.scan_ptr[set] = ((w + 1) % self.ways) as u8;
                    return w;
                }
            }
            if round == 0 {
                for w in 0..self.ways {
                    self.refbit[base + w] = false;
                }
            }
        }
        // infallible: the hierarchy never requests a victim from an
        // all-protected set (the oracle wrapper caps protections).
        view.allowed_ways()
            .next()
            .expect("victim candidates must be non-empty")
    }

    /// Per-set: reference bits and the scan pointer are both keyed by set.
    fn state_scope(&self) -> StateScope {
        StateScope::PerSet
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, full_view};

    #[test]
    fn prefers_unreferenced_way() {
        let mut p = Nru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        // All referenced: a victim request clears bits and picks the scan
        // start.
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b1111,
        };
        let v1 = p.choose_victim(0, &view, &ctx(4));
        assert_eq!(v1, 0);
        // Now refill way 0 (sets its bit) and hit way 2.
        p.on_fill(0, 0, &ctx(5));
        p.on_hit(0, 2, &ctx(6));
        // Ways 1 and 3 have clear bits; scan pointer sits after way 0.
        let v2 = p.choose_victim(0, &view, &ctx(7));
        assert!(v2 == 1 || v2 == 3);
    }

    #[test]
    fn clears_bits_when_all_referenced() {
        let mut p = Nru::new(1, 2);
        p.on_fill(0, 0, &ctx(0));
        p.on_fill(0, 1, &ctx(1));
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        let v = p.choose_victim(0, &view, &ctx(2));
        assert!(v < 2);
        // After clearing, the other way must be victimizable without
        // another clear round.
        let v2 = p.choose_victim(0, &view, &ctx(3));
        assert_ne!(v, v2);
    }

    #[test]
    fn respects_allowed_mask_even_when_all_referenced() {
        let mut p = Nru::new(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b1000,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(9)), 3);
    }
}

//! The RRIP family: SRRIP, BRRIP and set-dueling DRRIP.
//!
//! Re-Reference Interval Prediction (Jaleel et al., ISCA 2010) attaches an
//! M-bit re-reference prediction value (RRPV) to each line. `0` means
//! "re-reference expected soon", `2^M - 1` means "re-reference expected in
//! the distant future". Victims are lines with the maximum RRPV; if none
//! exists, all RRPVs in the set are incremented until one appears.

use llc_sim::{splitmix64, AccessCtx, ReplacementPolicy, SetView, StateScope};

use crate::duel::{SetDuel, ThreadAwareDuel};

/// Number of RRPV bits (the paper family's standard M = 2).
pub const RRPV_BITS: u32 = 2;

/// Maximum ("distant") RRPV.
pub const RRPV_MAX: u8 = (1 << RRPV_BITS) - 1;

/// "Long" insertion RRPV used by SRRIP (distant minus one).
pub const RRPV_LONG: u8 = RRPV_MAX - 1;

/// BRRIP inserts with the long RRPV once every `BRRIP_EPSILON` fills and
/// with the distant RRPV otherwise.
pub const BRRIP_EPSILON: u64 = 32;

/// Which insertion rule an RRIP instance uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RripFlavor {
    /// Static RRIP: always insert with the long RRPV.
    Static,
    /// Bimodal RRIP: insert distant except for 1-in-32 fills.
    Bimodal,
    /// Dynamic RRIP: set-duel between SRRIP and BRRIP.
    Dynamic,
    /// Thread-aware dynamic RRIP: one PSEL per thread (TA-DRRIP).
    ThreadAware,
}

/// SRRIP / BRRIP / DRRIP replacement.
#[derive(Debug, Clone)]
pub struct Rrip {
    flavor: RripFlavor,
    ways: usize,
    rrpv: Vec<u8>,
    duel: SetDuel,
    ta_duel: Option<ThreadAwareDuel>,
    /// Per-set bimodal fill counters: the 1-in-32 "long" insertions of a
    /// set depend only on that set's own fill history, so BRRIP stays
    /// per-set-partitionable.
    fill_seq: Vec<u64>,
    seed: u64,
}

impl Rrip {
    /// Creates an SRRIP policy.
    pub fn srrip(sets: usize, ways: usize) -> Self {
        Self::new(RripFlavor::Static, sets, ways, 0)
    }

    /// Creates a BRRIP policy with a deterministic bimodal stream.
    pub fn brrip(sets: usize, ways: usize, seed: u64) -> Self {
        Self::new(RripFlavor::Bimodal, sets, ways, seed)
    }

    /// Creates a set-dueling DRRIP policy.
    pub fn drrip(sets: usize, ways: usize, seed: u64) -> Self {
        Self::new(RripFlavor::Dynamic, sets, ways, seed)
    }

    /// Creates a thread-aware DRRIP policy (TA-DRRIP): per-thread PSELs.
    pub fn ta_drrip(sets: usize, ways: usize, threads: usize, seed: u64) -> Self {
        let mut p = Self::new(RripFlavor::ThreadAware, sets, ways, seed);
        p.ta_duel = Some(ThreadAwareDuel::new(sets, threads));
        p
    }

    fn new(flavor: RripFlavor, sets: usize, ways: usize, seed: u64) -> Self {
        Rrip {
            flavor,
            ways,
            // Empty ways never consult the policy, so initial values are
            // irrelevant; use distant for definiteness.
            rrpv: vec![RRPV_MAX; sets * ways],
            duel: SetDuel::new(sets),
            ta_duel: None,
            fill_seq: vec![0; sets],
            seed,
        }
    }

    /// Current RRPV of a line (test hook).
    pub fn rrpv(&self, set: usize, way: usize) -> u8 {
        self.rrpv[set * self.ways + way]
    }

    fn bimodal_long(&mut self, set: usize) -> bool {
        self.fill_seq[set] += 1;
        let lane = splitmix64(self.seed ^ (set as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15));
        splitmix64(lane ^ self.fill_seq[set]).is_multiple_of(BRRIP_EPSILON)
    }

    fn insertion_rrpv(&mut self, set: usize, thread: usize) -> u8 {
        let bimodal = match self.flavor {
            RripFlavor::Static => false,
            RripFlavor::Bimodal => true,
            RripFlavor::Dynamic => self.duel.use_b(set),
            RripFlavor::ThreadAware => {
                // infallible: ta_duel is always built for this flavor.
                self.ta_duel
                    .as_ref()
                    .expect("TA duel present")
                    .use_b(set, thread)
            }
        };
        if bimodal {
            if self.bimodal_long(set) {
                RRPV_LONG
            } else {
                RRPV_MAX
            }
        } else {
            RRPV_LONG
        }
    }
}

/// RRIP victim selection over one set's RRPV row: the way with the maximum
/// ("distant") RRPV, aging every line until an allowed way reaches it.
///
/// The textbook formulation rescans after each unit increment; since aging
/// is a uniform `+1` clamped at [`RRPV_MAX`], the number of rounds is just
/// the deficit of the most-distant allowed way, so one aging pass with that
/// delta produces bit-identical RRPVs and the identical victim (the first
/// allowed way, in way order, whose original RRPV was maximal).
/// 0x01 in every byte: one flag bit per RRPV lane of a SWAR word.
const LANE_LSB: u64 = 0x0101_0101_0101_0101;

/// Returns `0x01` flags in the lanes of `x` (8 RRPV bytes, each ≤
/// [`RRPV_MAX`]) whose value is exactly `RRPV_MAX` (binary `11`).
#[inline]
fn lanes_at_max(x: u64) -> u64 {
    x & (x >> 1) & LANE_LSB
}

#[inline]
pub(crate) fn choose_rrip_victim(rrpv: &mut [u8], view: &SetView<'_>) -> usize {
    // Dense SWAR path: with every way allowed and 2-bit RRPVs, a u64 word
    // holds 8 lanes, "some lane is distant" is three ALU ops, and the
    // common case (a distant way already exists) decides the victim
    // without touching memory again. Byte-loop formulations of this scan
    // compile to either serial bit tests or variable-shift SIMD, both an
    // order of magnitude slower per miss.
    if crate::full_row_mask(view, rrpv.len()) && rrpv.len().is_multiple_of(8) {
        let mut any2 = false;
        let mut any1 = false;
        for (c, chunk) in rrpv.chunks_exact(8).enumerate() {
            // infallible: chunks_exact yields 8-byte windows.
            let x = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            let f = lanes_at_max(x);
            if f != 0 {
                return c * 8 + f.trailing_zeros() as usize / 8;
            }
            any2 |= (x >> 1) & !x & LANE_LSB != 0;
            any1 |= x & !(x >> 1) & LANE_LSB != 0;
        }
        // No distant way: age every lane by the deficit of the current
        // maximum, which lands the max lanes exactly on RRPV_MAX (so the
        // add needs no clamp), then take the first such lane.
        let delta = if any2 {
            1
        } else if any1 {
            2
        } else {
            3
        };
        let mut victim = None;
        for (c, chunk) in rrpv.chunks_exact_mut(8).enumerate() {
            // infallible: chunks_exact_mut yields 8-byte windows.
            let x = u64::from_le_bytes((&*chunk).try_into().expect("8-byte chunk"));
            let aged = x + delta * LANE_LSB;
            chunk.copy_from_slice(&aged.to_le_bytes());
            if victim.is_none() {
                let f = lanes_at_max(aged);
                if f != 0 {
                    victim = Some(c * 8 + f.trailing_zeros() as usize / 8);
                }
            }
        }
        return victim.expect("the maximal lane reaches RRPV_MAX after aging");
    }

    // Masked (wrapper) or odd-width path: plain scalar scan.
    let allowed = view.allowed;
    let mut max_allowed = 0u8;
    for (w, &v) in rrpv.iter().enumerate() {
        if allowed >> w & 1 != 0 {
            max_allowed = max_allowed.max(v);
        }
    }
    let delta = RRPV_MAX - max_allowed;
    if delta > 0 {
        for v in rrpv.iter_mut() {
            *v = (*v + delta).min(RRPV_MAX);
        }
    }
    for (w, &v) in rrpv.iter().enumerate() {
        if allowed >> w & 1 != 0 && v == RRPV_MAX {
            return w;
        }
    }
    unreachable!("an allowed way reaches RRPV_MAX after aging");
}

impl ReplacementPolicy for Rrip {
    fn name(&self) -> String {
        match self.flavor {
            RripFlavor::Static => "SRRIP".into(),
            RripFlavor::Bimodal => "BRRIP".into(),
            RripFlavor::Dynamic => "DRRIP".into(),
            RripFlavor::ThreadAware => "TA-DRRIP".into(),
        }
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        // Static (SRRIP) is the unconditional fast path: no dueling state,
        // no bimodal stream — keep the hot insertion free of the generic
        // machinery below.
        if self.flavor == RripFlavor::Static {
            self.rrpv[set * self.ways + way] = RRPV_LONG;
            return;
        }
        match self.flavor {
            RripFlavor::Dynamic => self.duel.on_miss(set),
            RripFlavor::ThreadAware => {
                // infallible: ta_duel is always built for this flavor.
                self.ta_duel
                    .as_mut()
                    .expect("TA duel present")
                    .on_miss(set, ctx.core.index());
            }
            _ => {}
        }
        let ins = self.insertion_rrpv(set, ctx.core.index());
        self.rrpv[set * self.ways + way] = ins;
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
        // Hit promotion policy: promote to "near-immediate" (RRPV = 0).
        self.rrpv[set * self.ways + way] = 0;
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
        let rrpv = &mut self.rrpv[set * self.ways..(set + 1) * self.ways];
        choose_rrip_victim(rrpv, view)
    }

    /// SRRIP and BRRIP keep only per-set state (RRPVs and the per-set
    /// bimodal counter); the dueling flavors share PSEL counters across
    /// sets and must replay sequentially.
    fn state_scope(&self) -> StateScope {
        match self.flavor {
            RripFlavor::Static | RripFlavor::Bimodal => StateScope::PerSet,
            RripFlavor::Dynamic | RripFlavor::ThreadAware => StateScope::Global,
        }
    }
    /// Victims come from this policy's own state; `lines` is never read.
    fn needs_line_views(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{ctx, full_view};

    #[test]
    fn srrip_inserts_long_and_promotes_on_hit() {
        let mut p = Rrip::srrip(1, 4);
        p.on_fill(0, 2, &ctx(0));
        assert_eq!(p.rrpv(0, 2), RRPV_LONG);
        p.on_hit(0, 2, &ctx(1));
        assert_eq!(p.rrpv(0, 2), 0);
    }

    #[test]
    fn victim_is_distant_line_after_aging() {
        let mut p = Rrip::srrip(1, 3);
        for w in 0..3 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        p.on_hit(0, 1, &ctx(3)); // way 1 becomes RRPV 0
        let lines = full_view(3);
        let view = SetView {
            lines: &lines,
            allowed: 0b111,
        };
        let v = p.choose_victim(0, &view, &ctx(4));
        // Ways 0 and 2 sit at RRPV_LONG; one aging round takes them to
        // RRPV_MAX; way 1 is younger.
        assert!(v == 0 || v == 2);
        assert_eq!(p.rrpv(0, 1), 1); // aged from 0 by one round
    }

    #[test]
    fn brrip_mostly_inserts_distant() {
        let mut p = Rrip::brrip(1, 1, 7);
        let mut distant = 0;
        for t in 0..1000 {
            p.on_fill(0, 0, &ctx(t));
            if p.rrpv(0, 0) == RRPV_MAX {
                distant += 1;
            }
        }
        // Expect roughly 1 - 1/32 distant insertions.
        assert!(distant > 900, "only {distant}/1000 distant insertions");
        assert!(distant < 1000, "bimodal long insertions never happened");
    }

    #[test]
    fn victim_respects_allowed_mask() {
        let mut p = Rrip::srrip(1, 4);
        for w in 0..4 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        let lines = full_view(4);
        let view = SetView {
            lines: &lines,
            allowed: 0b0100,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(5)), 2);
    }

    #[test]
    fn drrip_leader_sets_use_their_team() {
        let sets = 64;
        let mut p = Rrip::drrip(sets, 2, 3);
        // Find an SRRIP (team A) leader and verify long insertion.
        let duel = SetDuel::new(sets);
        let a_leader = (0..sets)
            .find(|&s| duel.team(s) == crate::duel::Team::LeaderA)
            .unwrap();
        p.on_fill(a_leader, 0, &ctx(0));
        assert_eq!(p.rrpv(a_leader, 0), RRPV_LONG);
    }

    #[test]
    fn aging_terminates_with_restricted_mask() {
        let mut p = Rrip::srrip(1, 2);
        p.on_fill(0, 0, &ctx(0));
        p.on_fill(0, 1, &ctx(1));
        p.on_hit(0, 0, &ctx(2));
        p.on_hit(0, 1, &ctx(3)); // both at RRPV 0
        let lines = full_view(2);
        let view = SetView {
            lines: &lines,
            allowed: 0b01,
        };
        // Needs 3 aging rounds; must not loop forever and must return the
        // only allowed way.
        assert_eq!(p.choose_victim(0, &view, &ctx(4)), 0);
    }
}

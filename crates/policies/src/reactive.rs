//! A realistic, prediction-free sharing-aware policy: reactive
//! protection.
//!
//! The inclusive-directory LLC already *knows* which resident lines have
//! been touched by ≥ 2 cores — no prediction needed. [`ReactiveWrap`]
//! restricts victim selection to lines that are (so far) private, falling
//! back to the base policy when every candidate is already shared.
//!
//! This is the natural "what can hardware do *today*" point between the
//! oblivious base policies and the future-knowing oracle: it protects
//! blocks only *after* their sharing has started, so it captures long
//! multi-visit sharing (read-only tables, migratory chains) but not the
//! first cross-core visit — the part only a fill-time predictor could
//! save. The gap ReactiveWrap leaves to the oracle quantifies exactly how
//! much of the oracle's gain requires prediction.

use llc_sim::{AccessCtx, GenerationEnd, ReplacementPolicy, SetView, StateScope};

/// Reactive sharing protection around a base policy.
#[derive(Debug, Clone)]
pub struct ReactiveWrap<P> {
    base: P,
}

impl<P: ReplacementPolicy> ReactiveWrap<P> {
    /// Wraps `base`.
    pub fn new(base: P) -> Self {
        ReactiveWrap { base }
    }

    /// The wrapped base policy.
    pub fn base(&self) -> &P {
        &self.base
    }
}

impl<P: ReplacementPolicy> ReplacementPolicy for ReactiveWrap<P> {
    fn name(&self) -> String {
        format!("Reactive({})", self.base.name())
    }

    #[inline]
    fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.base.on_fill(set, way, ctx);
    }

    #[inline]
    fn on_hit(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
        self.base.on_hit(set, way, ctx);
    }

    #[inline]
    fn on_evict(&mut self, set: usize, way: usize, gen: &GenerationEnd) {
        self.base.on_evict(set, way, gen);
    }

    #[inline]
    fn choose_victim(&mut self, set: usize, view: &SetView<'_>, ctx: &AccessCtx) -> usize {
        let mut private_mask = 0u64;
        for w in view.allowed_ways() {
            if view.lines[w].sharer_count < 2 {
                private_mask |= 1u64 << w;
            }
        }
        let restricted = if private_mask != 0 {
            SetView {
                lines: view.lines,
                allowed: private_mask,
            }
        } else {
            *view
        };
        self.base.choose_victim(set, &restricted, ctx)
    }

    /// Conservatively global: the wrapper reads live sharer counts off the
    /// set view, and its characterization-facing runs always attach
    /// observers (which disable sharding anyway), so it opts out rather
    /// than prove the per-set case.
    fn state_scope(&self) -> StateScope {
        StateScope::Global
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lru::Lru;
    use crate::testutil::ctx;
    use llc_sim::{BlockAddr, LineView};

    #[test]
    fn shields_currently_shared_lines() {
        let mut p = ReactiveWrap::new(Lru::new(1, 3));
        for w in 0..3 {
            p.on_fill(0, w, &ctx(w as u64));
        }
        // Way 0 is oldest but has two sharers.
        let lines = vec![
            LineView {
                block: BlockAddr::new(0),
                sharer_count: 2,
                dirty: false,
            },
            LineView {
                block: BlockAddr::new(1),
                sharer_count: 1,
                dirty: false,
            },
            LineView {
                block: BlockAddr::new(2),
                sharer_count: 1,
                dirty: false,
            },
        ];
        let view = SetView {
            lines: &lines,
            allowed: 0b111,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(5)), 1);
    }

    #[test]
    fn falls_back_when_all_shared() {
        let mut p = ReactiveWrap::new(Lru::new(1, 2));
        p.on_fill(0, 0, &ctx(0));
        p.on_fill(0, 1, &ctx(1));
        let lines = vec![
            LineView {
                block: BlockAddr::new(0),
                sharer_count: 3,
                dirty: false,
            },
            LineView {
                block: BlockAddr::new(1),
                sharer_count: 2,
                dirty: false,
            },
        ];
        let view = SetView {
            lines: &lines,
            allowed: 0b11,
        };
        assert_eq!(p.choose_victim(0, &view, &ctx(2)), 0); // LRU order
    }

    #[test]
    fn name_wraps_base() {
        let p = ReactiveWrap::new(Lru::new(1, 1));
        assert_eq!(p.name(), "Reactive(LRU)");
    }
}

//! # llc-policies — LLC replacement policies for the sharing study
//!
//! Implementations of the replacement policies the paper evaluates or
//! builds on:
//!
//! * the baseline: [`Lru`];
//! * simple hardware policies: [`Nru`], [`Random`];
//! * "recent proposals": the RRIP family ([`Rrip::srrip`], [`Rrip::brrip`],
//!   [`Rrip::drrip`]), the DIP family ([`Dip::lip`], [`Dip::bip`],
//!   [`Dip::dip`]) and [`Ship`] (SHiP-PC);
//! * the offline optimum: [`Opt`] (Belady), driven by next-use
//!   annotations;
//! * the paper's contribution scaffold: [`OracleWrap`], the generic
//!   sharing-aware oracle usable with any of the above;
//! * a realistic prediction-free variant: [`ReactiveWrap`], protecting
//!   lines the directory already knows to be shared.
//!
//! All policies implement [`llc_sim::ReplacementPolicy`] and honour the
//! victim-candidate mask, which is how [`OracleWrap`] composes with them.
//!
//! ## Example
//!
//! ```
//! use llc_policies::{build_policy, PolicyKind};
//!
//! let policy = build_policy(PolicyKind::Srrip, 4096, 16);
//! assert_eq!(policy.name(), "SRRIP");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dip;
pub mod duel;
pub mod lru;
pub mod nru;
pub mod opt;
pub mod oracle;
pub mod random;
pub mod reactive;
pub mod rrip;
pub mod ship;

#[cfg(test)]
pub(crate) mod testutil;

pub use dip::{Dip, DipFlavor, BIP_EPSILON};
pub use duel::{SetDuel, Team, ThreadAwareDuel, LEADERS_PER_TEAM};
pub use lru::Lru;
pub use nru::Nru;
pub use opt::Opt;
pub use oracle::{OracleWrap, ProtectMode};
pub use random::Random;
pub use reactive::ReactiveWrap;
pub use rrip::{Rrip, RripFlavor, BRRIP_EPSILON, RRPV_BITS, RRPV_LONG, RRPV_MAX};
pub use ship::{Ship, SHCT_ENTRIES, SHCT_MAX};

use llc_sim::ReplacementPolicy;

/// Returns `true` when `view.allowed` covers all `ways` ways — the common
/// case outside the masking wrappers, where victim scans may take a dense
/// (mask-test-free, vectorizable) path over the whole row.
#[inline]
pub(crate) fn full_row_mask(view: &llc_sim::SetView<'_>, ways: usize) -> bool {
    let full = if ways >= 64 {
        u64::MAX
    } else {
        (1u64 << ways) - 1
    };
    view.allowed == full
}

/// The policies the experiment harness can instantiate by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True least-recently-used (the paper's baseline).
    Lru,
    /// Uniform-random replacement.
    Random,
    /// Not-recently-used (one reference bit).
    Nru,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP.
    Brrip,
    /// Dynamic (set-dueling) RRIP.
    Drrip,
    /// Thread-aware DRRIP (per-thread PSELs).
    TaDrrip,
    /// LRU-insertion policy.
    Lip,
    /// Bimodal insertion policy.
    Bip,
    /// Dynamic (set-dueling) insertion policy.
    Dip,
    /// SHiP-PC.
    Ship,
    /// Belady's OPT (requires next-use annotations).
    Opt,
}

impl PolicyKind {
    /// All realistic (online) policies, in the order the paper-style
    /// figures report them.
    pub const REALISTIC: [PolicyKind; 11] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Nru,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::TaDrrip,
        PolicyKind::Lip,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Ship,
    ];

    /// The short display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::Nru => "NRU",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::TaDrrip => "TA-DRRIP",
            PolicyKind::Lip => "LIP",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Opt => "OPT",
        }
    }

    /// Parses a label as produced by [`PolicyKind::label`]
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        let s = s.to_ascii_lowercase();
        Some(match s.as_str() {
            "lru" => PolicyKind::Lru,
            "random" | "rand" => PolicyKind::Random,
            "nru" => PolicyKind::Nru,
            "srrip" => PolicyKind::Srrip,
            "brrip" => PolicyKind::Brrip,
            "drrip" => PolicyKind::Drrip,
            "ta-drrip" | "tadrrip" => PolicyKind::TaDrrip,
            "lip" => PolicyKind::Lip,
            "bip" => PolicyKind::Bip,
            "dip" => PolicyKind::Dip,
            "ship" | "ship-pc" => PolicyKind::Ship,
            "opt" | "belady" | "min" => PolicyKind::Opt,
            _ => return None,
        })
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// The monomorphization matrix: one constructor per [`PolicyKind`],
/// returning the *concrete* policy type (no `Box<dyn>`), so generic
/// drivers instantiated through [`with_policy!`] compile one specialized
/// copy per concrete type — `Lru`, `Random`, `Nru`, `Rrip` (×4 kinds),
/// `Dip` (×3 kinds), `Ship` and `Opt` resolve to seven distinct
/// instantiations.
///
/// These are the single source of truth for the fixed seeds of the
/// pseudo-random policies; [`build_policy`] is defined on top, so the
/// boxed and monomorphized paths construct bit-identical policies by
/// construction.
pub mod mono {
    use super::{Dip, Lru, Nru, Opt, Random, Rrip, Ship};

    /// True LRU.
    pub fn lru(sets: usize, ways: usize) -> Lru {
        Lru::new(sets, ways)
    }
    /// Uniform-random replacement (fixed seed).
    pub fn random(_sets: usize, _ways: usize) -> Random {
        Random::new(0x9d2c_5680)
    }
    /// Not-recently-used.
    pub fn nru(sets: usize, ways: usize) -> Nru {
        Nru::new(sets, ways)
    }
    /// Static RRIP.
    pub fn srrip(sets: usize, ways: usize) -> Rrip {
        Rrip::srrip(sets, ways)
    }
    /// Bimodal RRIP (fixed seed).
    pub fn brrip(sets: usize, ways: usize) -> Rrip {
        Rrip::brrip(sets, ways, 0xb111)
    }
    /// Dynamic (set-dueling) RRIP (fixed seed).
    pub fn drrip(sets: usize, ways: usize) -> Rrip {
        Rrip::drrip(sets, ways, 0xd111)
    }
    /// Thread-aware DRRIP (fixed seed, per-thread PSELs).
    pub fn ta_drrip(sets: usize, ways: usize) -> Rrip {
        Rrip::ta_drrip(sets, ways, llc_sim::MAX_CORES, 0x7ad1)
    }
    /// LRU-insertion policy.
    pub fn lip(sets: usize, ways: usize) -> Dip {
        Dip::lip(sets, ways)
    }
    /// Bimodal insertion policy (fixed seed).
    pub fn bip(sets: usize, ways: usize) -> Dip {
        Dip::bip(sets, ways, 0xb19)
    }
    /// Dynamic (set-dueling) insertion policy (fixed seed).
    pub fn dip(sets: usize, ways: usize) -> Dip {
        Dip::dip(sets, ways, 0xd19)
    }
    /// SHiP-PC.
    pub fn ship(sets: usize, ways: usize) -> Ship {
        Ship::new(sets, ways)
    }
    /// Belady's OPT.
    pub fn opt(sets: usize, ways: usize) -> Opt {
        Opt::new(sets, ways)
    }
}

/// Dispatches on a [`PolicyKind`] at runtime, binding `$ctor` to the
/// *monomorphic* constructor function for that kind (a plain `fn(usize,
/// usize) -> ConcretePolicy` item from [`mono`]) and evaluating `$body`
/// once per arm. Each arm therefore compiles `$body` against a concrete
/// policy type — this is how the replay drivers in `llc-sharing` get a
/// specialized, devirtualized inner loop per policy while keeping a single
/// generic implementation.
///
/// The constructor is a `Copy` function item, so `$body` can call it any
/// number of times (e.g. once per shard) or wrap it in `Sync` closures.
///
/// ```
/// use llc_policies::{with_policy, PolicyKind};
/// use llc_sim::ReplacementPolicy;
///
/// let name = with_policy!(PolicyKind::Srrip, |ctor| ctor(64, 8).name());
/// assert_eq!(name, "SRRIP");
/// ```
#[macro_export]
macro_rules! with_policy {
    ($kind:expr, |$ctor:ident| $body:expr) => {
        match $kind {
            $crate::PolicyKind::Lru => {
                let $ctor = $crate::mono::lru;
                $body
            }
            $crate::PolicyKind::Random => {
                let $ctor = $crate::mono::random;
                $body
            }
            $crate::PolicyKind::Nru => {
                let $ctor = $crate::mono::nru;
                $body
            }
            $crate::PolicyKind::Srrip => {
                let $ctor = $crate::mono::srrip;
                $body
            }
            $crate::PolicyKind::Brrip => {
                let $ctor = $crate::mono::brrip;
                $body
            }
            $crate::PolicyKind::Drrip => {
                let $ctor = $crate::mono::drrip;
                $body
            }
            $crate::PolicyKind::TaDrrip => {
                let $ctor = $crate::mono::ta_drrip;
                $body
            }
            $crate::PolicyKind::Lip => {
                let $ctor = $crate::mono::lip;
                $body
            }
            $crate::PolicyKind::Bip => {
                let $ctor = $crate::mono::bip;
                $body
            }
            $crate::PolicyKind::Dip => {
                let $ctor = $crate::mono::dip;
                $body
            }
            $crate::PolicyKind::Ship => {
                let $ctor = $crate::mono::ship;
                $body
            }
            $crate::PolicyKind::Opt => {
                let $ctor = $crate::mono::opt;
                $body
            }
        }
    };
}

/// Instantiates a policy for an LLC of `sets` sets and `ways` ways,
/// behind a `Box<dyn>` — the compatibility fallback for callers that need
/// type erasure (full-hierarchy simulation, external policies). The fast
/// replay drivers dispatch through [`with_policy!`] instead and never box.
///
/// Deterministic: pseudo-random policies (Random, BRRIP, BIP and their
/// dueling variants) derive their streams from fixed internal seeds (see
/// [`mono`]).
pub fn build_policy(kind: PolicyKind, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
    with_policy!(kind, |ctor| Box::new(ctor(sets, ways)))
}

/// Instantiates `kind` wrapped in reactive (directory-driven) sharing
/// protection.
pub fn build_reactive_policy(
    kind: PolicyKind,
    sets: usize,
    ways: usize,
) -> Box<dyn ReplacementPolicy> {
    Box::new(ReactiveWrap::new(build_policy(kind, sets, ways)))
}

/// Instantiates `kind` wrapped in the sharing-aware oracle
/// ([`OracleWrap`], eviction-protection mode).
pub fn build_oracle_policy(
    kind: PolicyKind,
    sets: usize,
    ways: usize,
) -> Box<dyn ReplacementPolicy> {
    build_oracle_policy_with_mode(kind, sets, ways, ProtectMode::Eviction)
}

/// Instantiates `kind` wrapped in the sharing-aware oracle with an explicit
/// protection mode.
pub fn build_oracle_policy_with_mode(
    kind: PolicyKind,
    sets: usize,
    ways: usize,
    mode: ProtectMode,
) -> Box<dyn ReplacementPolicy> {
    Box::new(OracleWrap::with_mode(
        build_policy(kind, sets, ways),
        sets,
        ways,
        mode,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_realistic_policies() {
        for kind in PolicyKind::REALISTIC {
            let p = build_policy(kind, 64, 8);
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for kind in PolicyKind::REALISTIC.into_iter().chain([PolicyKind::Opt]) {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("belady"), Some(PolicyKind::Opt));
        assert_eq!(PolicyKind::parse("nonsense"), None);
    }

    #[test]
    fn oracle_builder_wraps_base_name() {
        let p = build_oracle_policy(PolicyKind::Drrip, 64, 8);
        assert_eq!(p.name(), "Oracle(DRRIP)");
    }
}

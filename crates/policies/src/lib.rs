//! # llc-policies — LLC replacement policies for the sharing study
//!
//! Implementations of the replacement policies the paper evaluates or
//! builds on:
//!
//! * the baseline: [`Lru`];
//! * simple hardware policies: [`Nru`], [`Random`];
//! * "recent proposals": the RRIP family ([`Rrip::srrip`], [`Rrip::brrip`],
//!   [`Rrip::drrip`]), the DIP family ([`Dip::lip`], [`Dip::bip`],
//!   [`Dip::dip`]) and [`Ship`] (SHiP-PC);
//! * the offline optimum: [`Opt`] (Belady), driven by next-use
//!   annotations;
//! * the paper's contribution scaffold: [`OracleWrap`], the generic
//!   sharing-aware oracle usable with any of the above;
//! * a realistic prediction-free variant: [`ReactiveWrap`], protecting
//!   lines the directory already knows to be shared.
//!
//! All policies implement [`llc_sim::ReplacementPolicy`] and honour the
//! victim-candidate mask, which is how [`OracleWrap`] composes with them.
//!
//! ## Example
//!
//! ```
//! use llc_policies::{build_policy, PolicyKind};
//!
//! let policy = build_policy(PolicyKind::Srrip, 4096, 16);
//! assert_eq!(policy.name(), "SRRIP");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod dip;
pub mod duel;
pub mod lru;
pub mod nru;
pub mod opt;
pub mod oracle;
pub mod random;
pub mod reactive;
pub mod rrip;
pub mod ship;

#[cfg(test)]
pub(crate) mod testutil;

pub use dip::{Dip, DipFlavor, BIP_EPSILON};
pub use duel::{SetDuel, Team, ThreadAwareDuel, LEADERS_PER_TEAM};
pub use lru::Lru;
pub use nru::Nru;
pub use opt::Opt;
pub use oracle::{OracleWrap, ProtectMode};
pub use random::Random;
pub use reactive::ReactiveWrap;
pub use rrip::{Rrip, RripFlavor, BRRIP_EPSILON, RRPV_BITS, RRPV_LONG, RRPV_MAX};
pub use ship::{Ship, SHCT_ENTRIES, SHCT_MAX};

use llc_sim::ReplacementPolicy;

/// The policies the experiment harness can instantiate by name.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyKind {
    /// True least-recently-used (the paper's baseline).
    Lru,
    /// Uniform-random replacement.
    Random,
    /// Not-recently-used (one reference bit).
    Nru,
    /// Static RRIP.
    Srrip,
    /// Bimodal RRIP.
    Brrip,
    /// Dynamic (set-dueling) RRIP.
    Drrip,
    /// Thread-aware DRRIP (per-thread PSELs).
    TaDrrip,
    /// LRU-insertion policy.
    Lip,
    /// Bimodal insertion policy.
    Bip,
    /// Dynamic (set-dueling) insertion policy.
    Dip,
    /// SHiP-PC.
    Ship,
    /// Belady's OPT (requires next-use annotations).
    Opt,
}

impl PolicyKind {
    /// All realistic (online) policies, in the order the paper-style
    /// figures report them.
    pub const REALISTIC: [PolicyKind; 11] = [
        PolicyKind::Lru,
        PolicyKind::Random,
        PolicyKind::Nru,
        PolicyKind::Srrip,
        PolicyKind::Brrip,
        PolicyKind::Drrip,
        PolicyKind::TaDrrip,
        PolicyKind::Lip,
        PolicyKind::Bip,
        PolicyKind::Dip,
        PolicyKind::Ship,
    ];

    /// The short display name used in tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Lru => "LRU",
            PolicyKind::Random => "Random",
            PolicyKind::Nru => "NRU",
            PolicyKind::Srrip => "SRRIP",
            PolicyKind::Brrip => "BRRIP",
            PolicyKind::Drrip => "DRRIP",
            PolicyKind::TaDrrip => "TA-DRRIP",
            PolicyKind::Lip => "LIP",
            PolicyKind::Bip => "BIP",
            PolicyKind::Dip => "DIP",
            PolicyKind::Ship => "SHiP",
            PolicyKind::Opt => "OPT",
        }
    }

    /// Parses a label as produced by [`PolicyKind::label`]
    /// (case-insensitive).
    pub fn parse(s: &str) -> Option<PolicyKind> {
        let s = s.to_ascii_lowercase();
        Some(match s.as_str() {
            "lru" => PolicyKind::Lru,
            "random" | "rand" => PolicyKind::Random,
            "nru" => PolicyKind::Nru,
            "srrip" => PolicyKind::Srrip,
            "brrip" => PolicyKind::Brrip,
            "drrip" => PolicyKind::Drrip,
            "ta-drrip" | "tadrrip" => PolicyKind::TaDrrip,
            "lip" => PolicyKind::Lip,
            "bip" => PolicyKind::Bip,
            "dip" => PolicyKind::Dip,
            "ship" | "ship-pc" => PolicyKind::Ship,
            "opt" | "belady" | "min" => PolicyKind::Opt,
            _ => return None,
        })
    }
}

impl std::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Instantiates a policy for an LLC of `sets` sets and `ways` ways.
///
/// Deterministic: pseudo-random policies (Random, BRRIP, BIP and their
/// dueling variants) derive their streams from fixed internal seeds.
pub fn build_policy(kind: PolicyKind, sets: usize, ways: usize) -> Box<dyn ReplacementPolicy> {
    match kind {
        PolicyKind::Lru => Box::new(Lru::new(sets, ways)),
        PolicyKind::Random => Box::new(Random::new(0x9d2c_5680)),
        PolicyKind::Nru => Box::new(Nru::new(sets, ways)),
        PolicyKind::Srrip => Box::new(Rrip::srrip(sets, ways)),
        PolicyKind::Brrip => Box::new(Rrip::brrip(sets, ways, 0xb111)),
        PolicyKind::Drrip => Box::new(Rrip::drrip(sets, ways, 0xd111)),
        PolicyKind::TaDrrip => Box::new(Rrip::ta_drrip(sets, ways, llc_sim::MAX_CORES, 0x7ad1)),
        PolicyKind::Lip => Box::new(Dip::lip(sets, ways)),
        PolicyKind::Bip => Box::new(Dip::bip(sets, ways, 0xb19)),
        PolicyKind::Dip => Box::new(Dip::dip(sets, ways, 0xd19)),
        PolicyKind::Ship => Box::new(Ship::new(sets, ways)),
        PolicyKind::Opt => Box::new(Opt::new(sets, ways)),
    }
}

/// Instantiates `kind` wrapped in reactive (directory-driven) sharing
/// protection.
pub fn build_reactive_policy(
    kind: PolicyKind,
    sets: usize,
    ways: usize,
) -> Box<dyn ReplacementPolicy> {
    Box::new(ReactiveWrap::new(build_policy(kind, sets, ways)))
}

/// Instantiates `kind` wrapped in the sharing-aware oracle
/// ([`OracleWrap`], eviction-protection mode).
pub fn build_oracle_policy(
    kind: PolicyKind,
    sets: usize,
    ways: usize,
) -> Box<dyn ReplacementPolicy> {
    build_oracle_policy_with_mode(kind, sets, ways, ProtectMode::Eviction)
}

/// Instantiates `kind` wrapped in the sharing-aware oracle with an explicit
/// protection mode.
pub fn build_oracle_policy_with_mode(
    kind: PolicyKind,
    sets: usize,
    ways: usize,
    mode: ProtectMode,
) -> Box<dyn ReplacementPolicy> {
    Box::new(OracleWrap::with_mode(
        build_policy(kind, sets, ways),
        sets,
        ways,
        mode,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_all_realistic_policies() {
        for kind in PolicyKind::REALISTIC {
            let p = build_policy(kind, 64, 8);
            assert_eq!(p.name(), kind.label());
        }
    }

    #[test]
    fn parse_round_trips_labels() {
        for kind in PolicyKind::REALISTIC.into_iter().chain([PolicyKind::Opt]) {
            assert_eq!(PolicyKind::parse(kind.label()), Some(kind));
        }
        assert_eq!(PolicyKind::parse("belady"), Some(PolicyKind::Opt));
        assert_eq!(PolicyKind::parse("nonsense"), None);
    }

    #[test]
    fn oracle_builder_wraps_base_name() {
        let p = build_oracle_policy(PolicyKind::Drrip, 64, 8);
        assert_eq!(p.name(), "Oracle(DRRIP)");
    }
}

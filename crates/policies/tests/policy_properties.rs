//! Property tests over the policy implementations: every policy must pick
//! only allowed victims and keep its metadata within bounds under
//! arbitrary operation sequences.

use llc_policies::{build_policy, OracleWrap, PolicyKind, ProtectMode, Rrip, RRPV_MAX};
use llc_sim::{AccessCtx, AccessKind, Aux, BlockAddr, CoreId, LineView, Pc, SetView};
use proptest::prelude::*;

const SETS: usize = 4;
const WAYS: usize = 8;

#[derive(Debug, Clone, Copy)]
enum Op {
    Fill { set: u8, way: u8 },
    Hit { set: u8, way: u8 },
    Victim { set: u8, mask: u8 },
}

fn ops(len: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..SETS as u8, 0u8..WAYS as u8).prop_map(|(set, way)| Op::Fill { set, way }),
            (0u8..SETS as u8, 0u8..WAYS as u8).prop_map(|(set, way)| Op::Hit { set, way }),
            (0u8..SETS as u8, 1u8..=u8::MAX).prop_map(|(set, mask)| Op::Victim { set, mask }),
        ],
        len,
    )
}

fn ctx(t: u64, oracle_shared: Option<bool>) -> AccessCtx {
    AccessCtx {
        block: BlockAddr::new(t % 97),
        pc: Pc::new(0x400 + (t % 13) * 4),
        core: CoreId::new((t % 4) as usize),
        kind: if t.is_multiple_of(5) {
            AccessKind::Write
        } else {
            AccessKind::Read
        },
        time: t,
        aux: Aux {
            next_use: Some(t + 1 + t % 31),
            oracle_shared,
        },
    }
}

fn lines() -> Vec<LineView> {
    (0..WAYS)
        .map(|w| LineView {
            block: BlockAddr::new(w as u64),
            sharer_count: 1,
            dirty: false,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every policy returns an allowed way for arbitrary sequences, and
    /// never panics.
    #[test]
    fn victims_always_allowed(ops in ops(300), kind_idx in 0usize..12) {
        let kinds = [
            PolicyKind::Lru, PolicyKind::Random, PolicyKind::Nru,
            PolicyKind::Srrip, PolicyKind::Brrip, PolicyKind::Drrip,
            PolicyKind::TaDrrip, PolicyKind::Lip, PolicyKind::Bip,
            PolicyKind::Dip, PolicyKind::Ship, PolicyKind::Opt,
        ];
        let mut p = build_policy(kinds[kind_idx], SETS, WAYS);
        let lines = lines();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            match op {
                Op::Fill { set, way } => p.on_fill(set as usize, way as usize, &ctx(t, None)),
                Op::Hit { set, way } => p.on_hit(set as usize, way as usize, &ctx(t, None)),
                Op::Victim { set, mask } => {
                    let view = SetView { lines: &lines, allowed: mask as u64 };
                    let v = p.choose_victim(set as usize, &view, &ctx(t, None));
                    prop_assert!(view.is_allowed(v),
                        "{} picked disallowed way {} (mask {:#b})", p.name(), v, mask);
                }
            }
        }
    }

    /// The oracle wrapper preserves the allowed-mask contract for any
    /// base policy and any pattern of oracle bits.
    #[test]
    fn oracle_wrap_victims_always_allowed(ops in ops(300), bits in prop::collection::vec(prop::bool::ANY, 300)) {
        let base = llc_policies::Lru::new(SETS, WAYS);
        let mut p = OracleWrap::with_mode(base, SETS, WAYS, ProtectMode::Both);
        let lines = lines();
        for (i, op) in ops.into_iter().enumerate() {
            let t = i as u64 + 1;
            let bit = Some(bits[i]);
            use llc_sim::ReplacementPolicy as _;
            match op {
                Op::Fill { set, way } => p.on_fill(set as usize, way as usize, &ctx(t, bit)),
                Op::Hit { set, way } => p.on_hit(set as usize, way as usize, &ctx(t, bit)),
                Op::Victim { set, mask } => {
                    let view = SetView { lines: &lines, allowed: mask as u64 };
                    let v = llc_sim::ReplacementPolicy::choose_victim(
                        &mut p, set as usize, &view, &ctx(t, bit));
                    prop_assert!(view.is_allowed(v),
                        "oracle wrap picked disallowed way {} (mask {:#b})", v, mask);
                }
            }
        }
    }

    /// RRIP's per-line values never leave [0, RRPV_MAX].
    #[test]
    fn rrip_values_stay_bounded(ops in ops(300)) {
        let mut p = Rrip::srrip(SETS, WAYS);
        let lines = lines();
        let mut t = 0u64;
        for op in ops {
            t += 1;
            match op {
                Op::Fill { set, way } => {
                    llc_sim::ReplacementPolicy::on_fill(&mut p, set as usize, way as usize, &ctx(t, None));
                }
                Op::Hit { set, way } => {
                    llc_sim::ReplacementPolicy::on_hit(&mut p, set as usize, way as usize, &ctx(t, None));
                }
                Op::Victim { set, mask } => {
                    let view = SetView { lines: &lines, allowed: mask as u64 };
                    let _ = llc_sim::ReplacementPolicy::choose_victim(&mut p, set as usize, &view, &ctx(t, None));
                }
            }
            for set in 0..SETS {
                for way in 0..WAYS {
                    prop_assert!(p.rrpv(set, way) <= RRPV_MAX);
                }
            }
        }
    }

    /// LRU picks the least recently touched way among the allowed ones.
    #[test]
    fn lru_picks_least_recent_allowed(_touch_order in Just(()), mask in 1u8..=u8::MAX) {
        let mut p = llc_policies::Lru::new(1, WAYS);
        use llc_sim::ReplacementPolicy as _;
        for (t, way) in (0..WAYS).enumerate() {
            p.on_fill(0, way, &ctx(t as u64, None));
        }
        let lines = lines();
        let view = SetView { lines: &lines, allowed: mask as u64 };
        let v = p.choose_victim(0, &view, &ctx(99, None));
        // Least-recent allowed way = lowest set bit (fills happened in way
        // order).
        prop_assert_eq!(v, mask.trailing_zeros() as usize);
    }
}

//! Regenerates the paper-style tables and figures. See `repro --help`.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Service verbs (serve/submit/status/…) go to the llc-serve layer;
    // everything else is the classic batch experiment runner.
    if args
        .first()
        .is_some_and(|v| llc_serve::cli::is_serve_verb(v))
    {
        let command = match llc_serve::cli::parse(&args) {
            Ok(command) => command,
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        };
        match llc_serve::cli::run(&command) {
            Ok(out) => {
                print!("{out}");
                return;
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    let cli = match llc_bench::parse_cli(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if cli.list {
        print!("{}", llc_bench::experiment_list());
    }
    if let Err(e) = llc_bench::prepare_manifest(&cli) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    if cli.trace_out.is_some() {
        llc_telemetry::spans::set_enabled(true);
    }
    // Sequential runs stream experiment by experiment so long campaigns
    // show progress even when stdout is redirected. Parallel runs
    // (--jobs != 1) must hand the whole id list to one suite invocation —
    // the worker pool lives inside run_suite, so a per-id loop would
    // serialize it back down to one experiment at a time.
    let mut failures = 0;
    let batches: Vec<Vec<llc_sharing::ExperimentId>> = if cli.suite.jobs == 1 {
        cli.ids.iter().map(|&id| vec![id]).collect()
    } else {
        vec![cli.ids.clone()]
    };
    let mut batch_cli = cli.clone();
    batch_cli.list = false;
    for ids in batches {
        batch_cli.ids = ids;
        match llc_bench::run_cli(&batch_cli) {
            Ok((out, failed)) => {
                failures += failed;
                print!("{out}");
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if let Some(path) = &cli.trace_out {
        // Guarded experiment threads have all exited (or been abandoned
        // after their watchdog fired) by now, so the retired buffers
        // hold the full timeline.
        llc_telemetry::spans::set_enabled(false);
        let json = llc_telemetry::spans::chrome_trace_json();
        if let Err(e) = std::fs::write(path, &json) {
            eprintln!("error: writing trace to {}: {e}", path.display());
            std::process::exit(1);
        }
        let dropped = llc_telemetry::spans::dropped_events();
        if dropped > 0 {
            eprintln!("[trace: {dropped} span(s) dropped by ring-buffer caps]");
        }
        eprintln!(
            "[trace written to {} — open in chrome://tracing or ui.perfetto.dev]",
            path.display()
        );
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}

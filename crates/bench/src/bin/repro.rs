//! Regenerates the paper-style tables and figures. See `repro --help`.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let cli = match llc_bench::parse_cli(args) {
        Ok(cli) => cli,
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    };
    if cli.list {
        print!("{}", llc_bench::experiment_list());
    }
    if let Err(e) = llc_bench::prepare_manifest(&cli) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
    // Stream experiment by experiment so long campaigns show progress
    // even when stdout is redirected. Failures are rendered as FAILED
    // rows by the suite harness; the exit code reports them at the end.
    let mut failures = 0;
    let mut single = cli.clone();
    single.list = false;
    for &id in &cli.ids {
        single.ids = vec![id];
        match llc_bench::run_cli(&single) {
            Ok((out, failed)) => {
                failures += failed;
                print!("{out}");
                let _ = std::io::stdout().flush();
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(1);
            }
        }
    }
    if failures > 0 {
        eprintln!("{failures} experiment(s) failed");
        std::process::exit(1);
    }
}

//! Regenerates the paper-style tables and figures. See `repro --help`.

use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match llc_bench::parse_cli(args) {
        Ok(cli) => {
            // Stream experiment by experiment so long campaigns show
            // progress even when stdout is redirected.
            if cli.list {
                print!("{}", llc_bench::experiment_list());
            }
            let mut single = cli.clone();
            for &id in &cli.ids {
                single.ids = vec![id];
                single.list = false;
                print!("{}", llc_bench::run_cli(&single));
                let _ = std::io::stdout().flush();
            }
        }
        Err(e) => {
            eprintln!("{e}");
            std::process::exit(2);
        }
    }
}

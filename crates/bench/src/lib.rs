//! # llc-bench — the reproduction harness
//!
//! The `repro` binary regenerates every table and figure of the
//! paper-style evaluation (see `DESIGN.md` §6 for the index), and the
//! Criterion benches measure the simulator's own performance.
//!
//! ```text
//! cargo run --release -p llc-bench --bin repro -- list
//! cargo run --release -p llc-bench --bin repro -- fig7
//! cargo run --release -p llc-bench --bin repro -- --ctx quick all
//! ```

#![warn(missing_docs)]

use llc_sharing::{run_experiment, ExperimentCtx, ExperimentId};
use llc_trace::{App, Scale};

/// Parsed command line of the `repro` binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiments to run.
    pub ids: Vec<ExperimentId>,
    /// Execution context.
    pub ctx: ExperimentCtx,
    /// Print the experiment list and exit.
    pub list: bool,
}

/// Error produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage string printed on `--help` or a parse error.
pub const USAGE: &str = "\
usage: repro [OPTIONS] <experiment>... | all | list

experiments: table1 table2 fig1..fig12 table3 abl1..abl5 (see `repro list`)

options:
  --ctx <paper|quick|test>   machine + workload scale preset (default: paper)
  --scale <tiny|small|medium|large>  override the workload scale
  --apps <a,b,c>             restrict to a comma-separated app subset
  --threads <n>              override the core/thread count
  -h, --help                 show this help
";

/// Parses the `repro` command line.
///
/// # Errors
///
/// Returns a [`CliError`] describing the first invalid argument.
pub fn parse_cli<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, CliError> {
    let mut ctx = ExperimentCtx::paper();
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut list = false;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ctx" => {
                let v = it.next().ok_or_else(|| CliError("--ctx needs a value".into()))?;
                ctx = match v.as_str() {
                    "paper" => ExperimentCtx::paper(),
                    "quick" => ExperimentCtx::quick(),
                    "test" => ExperimentCtx::test(),
                    other => return Err(CliError(format!("unknown ctx preset '{other}'"))),
                };
            }
            "--scale" => {
                let v = it.next().ok_or_else(|| CliError("--scale needs a value".into()))?;
                ctx.scale =
                    Scale::parse(&v).ok_or_else(|| CliError(format!("unknown scale '{v}'")))?;
            }
            "--apps" => {
                let v = it.next().ok_or_else(|| CliError("--apps needs a value".into()))?;
                let mut apps = Vec::new();
                for name in v.split(',') {
                    apps.push(
                        App::parse(name.trim())
                            .ok_or_else(|| CliError(format!("unknown app '{name}'")))?,
                    );
                }
                if apps.is_empty() {
                    return Err(CliError("--apps needs at least one app".into()));
                }
                ctx.apps = apps;
            }
            "--threads" => {
                let v = it.next().ok_or_else(|| CliError("--threads needs a value".into()))?;
                ctx.cores = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0 && n <= llc_sim::MAX_CORES)
                    .ok_or_else(|| CliError(format!("bad thread count '{v}'")))?;
            }
            "-h" | "--help" => return Err(CliError(USAGE.into())),
            "list" => list = true,
            "all" => ids.extend(ExperimentId::ALL),
            other => ids.push(
                ExperimentId::parse(other)
                    .ok_or_else(|| CliError(format!("unknown experiment '{other}'\n\n{USAGE}")))?,
            ),
        }
    }
    if !list && ids.is_empty() {
        return Err(CliError(USAGE.into()));
    }
    ids.dedup();
    Ok(Cli { ids, ctx, list })
}

/// Renders the experiment list.
pub fn experiment_list() -> String {
    let mut out = String::from("available experiments:\n");
    for id in ExperimentId::ALL {
        out.push_str(&format!("  {:<8} {}\n", id.label(), id.description()));
    }
    out
}

/// Runs the parsed experiments and returns the rendered report.
pub fn run_cli(cli: &Cli) -> String {
    let mut out = String::new();
    if cli.list {
        out.push_str(&experiment_list());
    }
    for &id in &cli.ids {
        let started = std::time::Instant::now();
        for table in run_experiment(id, &cli.ctx) {
            out.push_str(&table.to_string());
            out.push('\n');
        }
        out.push_str(&format!("[{} finished in {:.1?}]\n\n", id.label(), started.elapsed()));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_single_experiment() {
        let cli = parse_cli(args("fig7")).unwrap();
        assert_eq!(cli.ids, vec![ExperimentId::Fig7]);
        assert!(!cli.list);
    }

    #[test]
    fn parses_all_and_presets() {
        let cli = parse_cli(args("--ctx quick all")).unwrap();
        assert_eq!(cli.ids.len(), ExperimentId::ALL.len());
        assert_eq!(cli.ctx.llc_capacities, vec![1 << 20, 2 << 20]);
    }

    #[test]
    fn parses_app_subset_and_threads() {
        let cli = parse_cli(args("--apps fft,water --threads 4 fig1")).unwrap();
        assert_eq!(cli.ctx.apps, vec![App::Fft, App::Water]);
        assert_eq!(cli.ctx.cores, 4);
    }

    #[test]
    fn rejects_unknown_tokens() {
        assert!(parse_cli(args("bogus")).is_err());
        assert!(parse_cli(args("--apps nope fig1")).is_err());
        assert!(parse_cli(args("--threads 0 fig1")).is_err());
        assert!(parse_cli(args("")).is_err());
    }

    #[test]
    fn list_requires_no_ids() {
        let cli = parse_cli(args("list")).unwrap();
        assert!(cli.list);
        assert!(cli.ids.is_empty());
        assert!(experiment_list().contains("fig7"));
    }

    #[test]
    fn test_ctx_runs_an_experiment_end_to_end() {
        let mut cli = parse_cli(args("--ctx test table1")).unwrap();
        cli.ctx.apps.truncate(2);
        let report = run_cli(&cli);
        assert!(report.contains("Table 1"));
        assert!(report.contains("cores"));
    }
}

//! # llc-bench — the reproduction harness
//!
//! The `repro` binary regenerates every table and figure of the
//! paper-style evaluation (see `DESIGN.md` §6 for the index), and the
//! Criterion benches measure the simulator's own performance.
//!
//! ```text
//! cargo run --release -p llc-bench --bin repro -- list
//! cargo run --release -p llc-bench --bin repro -- fig7
//! cargo run --release -p llc-bench --bin repro -- --ctx quick all
//! ```

#![warn(missing_docs)]

use std::path::PathBuf;
use std::time::Duration;

use llc_sharing::{
    run_suite, ExperimentCtx, ExperimentId, ExperimentOutcome, RunError, SuiteConfig,
};
use llc_trace::{App, Scale};

/// Parsed command line of the `repro` binary.
#[derive(Debug, Clone)]
pub struct Cli {
    /// Experiments to run.
    pub ids: Vec<ExperimentId>,
    /// Execution context.
    pub ctx: ExperimentCtx,
    /// Print the experiment list and exit.
    pub list: bool,
    /// Suite harness settings (watchdog, retries, checkpoint manifest).
    pub suite: SuiteConfig,
    /// Replay completed experiments from an existing `--out` manifest
    /// instead of truncating it at startup.
    pub resume: bool,
    /// Write a Chrome-trace JSON timeline of the run to this path
    /// (span tracing is enabled for the whole invocation).
    pub trace_out: Option<PathBuf>,
}

/// Error produced while parsing the command line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for CliError {}

/// Usage string printed on `--help` or a parse error.
pub const USAGE: &str = "\
usage: repro [OPTIONS] <experiment>... | all | list

experiments: table1 table2 fig1..fig12 table3 abl1..abl5 (see `repro list`)

options:
  --ctx <paper|quick|test>   machine + workload scale preset (default: paper)
  --scale <tiny|small|medium|large>  override the workload scale
  --apps <a,b,c>             restrict to a comma-separated app subset
  --threads <n>              override the core/thread count
  --out <path>               checkpoint completed experiments to a JSON manifest
  --resume                   replay completed experiments from the --out manifest
  --timeout <secs>           per-experiment wall-clock budget (0 disables; default 1800)
  --retries <n>              IO retry attempts for manifest reads/writes (default 3)
  --jobs <n>                 experiments run concurrently (0 = all cores, the
                             default; pass 1 to force sequential runs)
  --stream-cache-mb <n>      in-memory stream cache cap in MiB (default sized
                             off --jobs: 512 MiB per job, 2 GiB floor)
  --trace-out <path>         write a Chrome-trace JSON timeline of the run
                             (open in chrome://tracing or ui.perfetto.dev)
  -h, --help                 show this help

service mode: repro serve | submit | status | watch | result | cancel | stats | stop
              (see `repro serve --help`)
";

/// Parses the `repro` command line.
///
/// # Errors
///
/// Returns a [`CliError`] describing the first invalid argument.
pub fn parse_cli<I: IntoIterator<Item = String>>(args: I) -> Result<Cli, CliError> {
    let mut ctx = ExperimentCtx::paper();
    let mut ids: Vec<ExperimentId> = Vec::new();
    let mut list = false;
    // The CLI defaults to all cores (`--jobs 0`); the library-level
    // `SuiteConfig::default()` stays sequential so embedders opt in.
    let mut suite = SuiteConfig {
        jobs: 0,
        ..SuiteConfig::default()
    };
    let mut resume = false;
    let mut stream_cache_mb: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--ctx" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--ctx needs a value".into()))?;
                ctx = match v.as_str() {
                    "paper" => ExperimentCtx::paper(),
                    "quick" => ExperimentCtx::quick(),
                    "test" => ExperimentCtx::test(),
                    other => return Err(CliError(format!("unknown ctx preset '{other}'"))),
                };
            }
            "--scale" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--scale needs a value".into()))?;
                ctx.scale =
                    Scale::parse(&v).ok_or_else(|| CliError(format!("unknown scale '{v}'")))?;
            }
            "--apps" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--apps needs a value".into()))?;
                let mut apps = Vec::new();
                for name in v.split(',') {
                    apps.push(
                        App::parse(name.trim())
                            .ok_or_else(|| CliError(format!("unknown app '{name}'")))?,
                    );
                }
                if apps.is_empty() {
                    return Err(CliError("--apps needs at least one app".into()));
                }
                ctx.apps = apps;
            }
            "--threads" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--threads needs a value".into()))?;
                ctx.cores = v
                    .parse::<usize>()
                    .ok()
                    .filter(|&n| n > 0 && n <= llc_sim::MAX_CORES)
                    .ok_or_else(|| CliError(format!("bad thread count '{v}'")))?;
            }
            "--out" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--out needs a path".into()))?;
                suite.manifest_path = Some(PathBuf::from(v));
            }
            "--resume" => resume = true,
            "--timeout" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--timeout needs seconds".into()))?;
                let secs = v
                    .parse::<u64>()
                    .map_err(|_| CliError(format!("bad timeout '{v}'")))?;
                suite.timeout = (secs > 0).then(|| Duration::from_secs(secs));
            }
            "--retries" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--retries needs a count".into()))?;
                suite.io_retries = v
                    .parse::<u32>()
                    .map_err(|_| CliError(format!("bad retry count '{v}'")))?;
            }
            "--jobs" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--jobs needs a count".into()))?;
                suite.jobs = v
                    .parse::<usize>()
                    .map_err(|_| CliError(format!("bad job count '{v}'")))?;
            }
            "--stream-cache-mb" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--stream-cache-mb needs a size".into()))?;
                stream_cache_mb = Some(
                    v.parse::<u64>()
                        .ok()
                        .filter(|&n| n > 0)
                        .ok_or_else(|| CliError(format!("bad cache size '{v}'")))?,
                );
            }
            "--trace-out" => {
                let v = it
                    .next()
                    .ok_or_else(|| CliError("--trace-out needs a path".into()))?;
                trace_out = Some(PathBuf::from(v));
            }
            "-h" | "--help" => return Err(CliError(USAGE.into())),
            "list" => list = true,
            "all" => ids.extend(ExperimentId::ALL),
            other => ids.push(
                ExperimentId::parse(other)
                    .ok_or_else(|| CliError(format!("unknown experiment '{other}'\n\n{USAGE}")))?,
            ),
        }
    }
    if !list && ids.is_empty() {
        return Err(CliError(USAGE.into()));
    }
    if resume && suite.manifest_path.is_none() {
        return Err(CliError("--resume requires --out <path>".into()));
    }
    ids.dedup();
    // Bound the shared stream cache: an explicit --stream-cache-mb wins,
    // otherwise the default is sized off the suite's concurrency.
    let effective_jobs = if suite.jobs == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        suite.jobs
    };
    let limit = stream_cache_mb
        .map(|mb| mb << 20)
        .unwrap_or_else(|| llc_sharing::StreamCache::default_limit(effective_jobs));
    ctx.streams.set_limit(Some(limit));
    Ok(Cli {
        ids,
        ctx,
        list,
        suite,
        resume,
        trace_out,
    })
}

/// Renders the experiment list.
pub fn experiment_list() -> String {
    let mut out = String::from("available experiments:\n");
    for id in ExperimentId::ALL {
        out.push_str(&format!("  {:<8} {}\n", id.label(), id.description()));
    }
    out
}

/// Truncates a stale `--out` manifest when `--resume` was not given, so a
/// fresh run never silently replays last week's results. Call once per
/// invocation, before the first [`run_cli`].
///
/// # Errors
///
/// Fails with [`RunError::Io`] if the stale manifest cannot be removed.
pub fn prepare_manifest(cli: &Cli) -> Result<(), RunError> {
    if let Some(path) = &cli.suite.manifest_path {
        if !cli.resume && path.exists() {
            std::fs::remove_file(path).map_err(|source| RunError::Io {
                context: format!("removing stale manifest {}", path.display()),
                source,
            })?;
        }
    }
    Ok(())
}

/// Runs the parsed experiments under the crash-isolating suite harness.
/// Returns the rendered report and the number of failed experiments.
///
/// # Errors
///
/// Fails only if an existing checkpoint manifest cannot be read; failures
/// *inside* experiments become `FAILED` rows in the rendered report.
pub fn run_cli(cli: &Cli) -> Result<(String, usize), RunError> {
    let mut out = String::new();
    if cli.list {
        out.push_str(&experiment_list());
    }
    let report = run_suite(&cli.ids, &cli.ctx, &cli.suite)?;
    for (id, outcome) in &report.outcomes {
        match outcome {
            ExperimentOutcome::Completed { tables, elapsed } => {
                for table in tables {
                    out.push_str(&table.to_string());
                    out.push('\n');
                }
                out.push_str(&format!("[{} finished in {:.1?}]\n\n", id.label(), elapsed));
            }
            ExperimentOutcome::Resumed { tables, saved } => {
                for table in tables {
                    out.push_str(&table.to_string());
                    out.push('\n');
                }
                let saved = match saved {
                    Some(d) => format!(", skipped ~{:.1?}", d),
                    None => String::new(),
                };
                out.push_str(&format!(
                    "[{} resumed from checkpoint{saved}]\n\n",
                    id.label()
                ));
            }
            ExperimentOutcome::Failed { reason } => {
                out.push_str(&format!("[{} FAILED: {reason}]\n\n", id.label()));
            }
        }
    }
    if report.resumed() > 0 && report.time_skipped() > Duration::ZERO {
        out.push_str(&format!(
            "[resume skipped {} experiment(s), ~{:.1?} of recorded compute]\n\n",
            report.resumed(),
            report.time_skipped()
        ));
    }
    if report.failed() > 0 || !report.checkpoint_errors.is_empty() {
        out.push_str(&report.summary().to_string());
        out.push('\n');
    }
    Ok((out, report.failed()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parses_single_experiment() {
        let cli = parse_cli(args("fig7")).unwrap();
        assert_eq!(cli.ids, vec![ExperimentId::Fig7]);
        assert!(!cli.list);
    }

    #[test]
    fn parses_all_and_presets() {
        let cli = parse_cli(args("--ctx quick all")).unwrap();
        assert_eq!(cli.ids.len(), ExperimentId::ALL.len());
        assert_eq!(cli.ctx.llc_capacities, vec![1 << 20, 2 << 20]);
    }

    #[test]
    fn parses_app_subset_and_threads() {
        let cli = parse_cli(args("--apps fft,water --threads 4 fig1")).unwrap();
        assert_eq!(cli.ctx.apps, vec![App::Fft, App::Water]);
        assert_eq!(cli.ctx.cores, 4);
    }

    #[test]
    fn rejects_unknown_tokens() {
        assert!(parse_cli(args("bogus")).is_err());
        assert!(parse_cli(args("--apps nope fig1")).is_err());
        assert!(parse_cli(args("--threads 0 fig1")).is_err());
        assert!(parse_cli(args("")).is_err());
        assert!(parse_cli(args("--timeout soon fig1")).is_err());
        assert!(parse_cli(args("--jobs many fig1")).is_err());
        assert!(
            parse_cli(args("--resume fig1")).is_err(),
            "--resume requires --out"
        );
    }

    #[test]
    fn parses_suite_flags() {
        let cli = parse_cli(args(
            "--out /tmp/m.json --resume --timeout 60 --retries 5 --jobs 4 fig1",
        ))
        .unwrap();
        assert_eq!(
            cli.suite.manifest_path,
            Some(std::path::PathBuf::from("/tmp/m.json"))
        );
        assert!(cli.resume);
        assert_eq!(cli.suite.timeout, Some(Duration::from_secs(60)));
        assert_eq!(cli.suite.io_retries, 5);
        assert_eq!(cli.suite.jobs, 4);
        assert_eq!(
            parse_cli(args("fig1")).unwrap().suite.jobs,
            0,
            "all cores by default"
        );
        assert_eq!(parse_cli(args("--jobs 1 fig1")).unwrap().suite.jobs, 1);
        let cli = parse_cli(args("--timeout 0 fig1")).unwrap();
        assert_eq!(cli.suite.timeout, None, "--timeout 0 disables the watchdog");
    }

    #[test]
    fn stream_cache_flag_caps_the_shared_cache() {
        let cli = parse_cli(args("--stream-cache-mb 64 fig1")).unwrap();
        assert_eq!(cli.ctx.streams.stats().limit, Some(64 << 20));
        let cli = parse_cli(args("--jobs 1 fig1")).unwrap();
        assert_eq!(
            cli.ctx.streams.stats().limit,
            Some(llc_sharing::StreamCache::default_limit(1)),
            "sequential run: 2 GiB floor"
        );
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let cli = parse_cli(args("fig1")).unwrap();
        assert_eq!(
            cli.ctx.streams.stats().limit,
            Some(llc_sharing::StreamCache::default_limit(cores)),
            "default cache cap is sized off the all-cores job count"
        );
        assert!(parse_cli(args("--stream-cache-mb 0 fig1")).is_err());
        assert!(parse_cli(args("--stream-cache-mb lots fig1")).is_err());
    }

    #[test]
    fn parses_trace_out() {
        let cli = parse_cli(args("--trace-out /tmp/trace.json fig1")).unwrap();
        assert_eq!(cli.trace_out, Some(PathBuf::from("/tmp/trace.json")));
        assert_eq!(parse_cli(args("fig1")).unwrap().trace_out, None);
        assert!(parse_cli(args("--trace-out")).is_err());
    }

    #[test]
    fn list_requires_no_ids() {
        let cli = parse_cli(args("list")).unwrap();
        assert!(cli.list);
        assert!(cli.ids.is_empty());
        assert!(experiment_list().contains("fig7"));
    }

    #[test]
    fn test_ctx_runs_an_experiment_end_to_end() {
        let mut cli = parse_cli(args("--ctx test table1")).unwrap();
        cli.ctx.apps.truncate(2);
        let (report, failed) = run_cli(&cli).expect("suite runs");
        assert_eq!(failed, 0);
        assert!(report.contains("Table 1"));
        assert!(report.contains("cores"));
    }
}

//! Criterion bench: per-policy replacement overhead on a fixed workload,
//! including the oracle pre-pass cost — the "hardware cost" proxy column
//! of the evaluation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use llc_policies::{PolicyKind, ProtectMode};
use llc_sharing::{simulate_kind, simulate_oracle};
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, Scale};

fn config() -> HierarchyConfig {
    HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4).unwrap(),
        l2: None,
        llc: CacheConfig::from_kib(512, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

fn bench_policies(c: &mut Criterion) {
    let cfg = config();
    let accesses = 8 * Scale::Tiny.thread_accesses();
    let mut g = c.benchmark_group("policy");
    g.throughput(Throughput::Elements(accesses));
    g.sample_size(10);
    for kind in [
        PolicyKind::Lru,
        PolicyKind::Nru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Opt,
    ] {
        g.bench_with_input(BenchmarkId::new("run", kind.label()), &kind, |b, &kind| {
            b.iter(|| {
                simulate_kind(
                    &cfg,
                    kind,
                    &mut || App::Water.workload(8, Scale::Tiny),
                    vec![],
                )
                .expect("synthetic workload cannot fail")
                .llc
                .misses()
            });
        });
    }
    g.bench_function("run/Oracle(LRU)", |b| {
        b.iter(|| {
            simulate_oracle(
                &cfg,
                PolicyKind::Lru,
                ProtectMode::Eviction,
                None,
                &mut || App::Water.workload(8, Scale::Tiny),
                vec![],
            )
            .expect("synthetic workload cannot fail")
            .llc
            .misses()
        });
    });
    g.finish();
}

criterion_group!(benches, bench_policies);
criterion_main!(benches);

//! Bench: the monomorphized replay kernel vs the pre-PR dyn baseline.
//!
//! Records one LLC reference stream, then replays the same policies
//! through three kernels:
//!
//! * **dyn** — the replay kernel as it stood *before* the monomorphized
//!   drivers landed: array-of-structs line storage, a
//!   `Box<dyn ReplacementPolicy>`, a boxed per-access aux provider, a
//!   `MultiObserver` fan-out and division-based tag arithmetic. The
//!   in-tree fallback now shares the struct-of-arrays cache with the
//!   monomorphized path, so the pre-PR kernel is reconstructed here
//!   (module [`seed`], a line-for-line port of the previous
//!   `Llc`/`replay` hot loop) to stay measurable. This is the gate
//!   baseline.
//! * **fallback** — the in-tree compatibility driver `replay()`: still a
//!   boxed policy, aux provider and observer per access, but over the new
//!   SoA storage. Reported for transparency; not gated.
//! * **mono** — `replay_kind()`: dispatched once per run through
//!   `with_policy!` to a driver compiled against the concrete policy and
//!   `NullObserver` types, with no aux provider installed at all.
//!
//! All three produce bit-identical stats (asserted here and
//! property-tested in `tests/replay_equivalence.rs`); the benchmark
//! measures single-thread throughput (ns/access and Maccesses/s) and
//! writes `BENCH_kernel.json` at the workspace root (override with
//! `BENCH_KERNEL_OUT`). Exits nonzero if the *suite-aggregate*
//! mono-over-dyn speedup (total dyn time over total mono time across the
//! suite) falls below `BENCH_KERNEL_MIN_SPEEDUP` (default 1.5).
//!
//! The gate is aggregate rather than per-policy minimum because the dyn
//! baseline's cost is policy-dependent in a way the kernel cannot fix:
//! SHiP's ~50% hit rate halves how often the seed kernel runs its
//! expensive miss path (gather + multi-pass scan), so its dyn time is
//! structurally low even though its mono time matches the other
//! policies at the memory-bound floor. Per-policy speedups and their
//! minimum are still reported in the JSON for transparency.

use std::time::{Duration, Instant};

use criterion::black_box;
use llc_policies::{build_policy, PolicyKind};
use llc_sharing::{record_stream, replay, replay_kind};
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion, LlcStats, NoAux};
use llc_trace::{App, Scale};

const APP: App = App::Swaptions;
const CORES: usize = 4;
const SCALE: Scale = Scale::Small;

/// Policies measured: LRU (cheapest hooks, dispatch-bound), SRRIP
/// (counter updates on the scan) and SHiP (PC-indexed table work).
const SUITE: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Ship];

/// Faithful reconstruction of the replay kernel this PR replaced, ported
/// line for line from the previous `llc_sim::Llc` + `llc_sharing::replay`
/// (array-of-structs lines, virtual policy/aux/observer calls per access,
/// `tag = block / sets`). Kept in the bench — not the library — because
/// the library's own fallback now shares the SoA storage and would
/// under-state the PR's delta.
mod seed {
    use llc_sim::{
        AccessCtx, AccessKind, AuxProvider, BlockAddr, CacheConfig, CoreId, EvictCause,
        GenerationEnd, HierarchyConfig, LineView, LiveGeneration, LlcObserver, LlcStats,
        MultiObserver, NoAux, Pc, ReplacementPolicy, SetView,
    };
    use llc_trace::RecordedStream;

    #[derive(Debug, Clone, Copy, Default)]
    struct Line {
        valid: bool,
        tag: u64,
        sharer_mask: u32,
        writer_mask: u32,
        hits: u32,
        hits_by_non_filler: u32,
        writes: u32,
        fill_pc: Pc,
        fill_core: CoreId,
        fill_time: u64,
    }

    struct Llc {
        sets: u64,
        ways: usize,
        lines: Vec<Line>,
        policy: Box<dyn ReplacementPolicy>,
        aux: Box<dyn AuxProvider>,
        time: u64,
        stats: LlcStats,
        view_buf: Vec<LineView>,
        full_mask: u64,
    }

    impl Llc {
        fn new(config: CacheConfig, policy: Box<dyn ReplacementPolicy>) -> Self {
            let sets = config.sets();
            let ways = config.ways;
            Llc {
                sets,
                ways,
                lines: vec![Line::default(); (sets * ways as u64) as usize],
                policy,
                aux: Box::new(NoAux),
                time: 0,
                stats: LlcStats::default(),
                view_buf: vec![
                    LineView {
                        block: BlockAddr::new(0),
                        sharer_count: 0,
                        dirty: false
                    };
                    ways
                ],
                full_mask: if ways == 64 {
                    u64::MAX
                } else {
                    (1u64 << ways) - 1
                },
            }
        }

        #[inline]
        fn find_way(&self, base: usize, tag: u64) -> Option<usize> {
            (0..self.ways).find(|&w| {
                let line = &self.lines[base + w];
                line.valid && line.tag == tag
            })
        }

        fn note_upgrade(&mut self, block: BlockAddr, core: CoreId) {
            let set = block.set_index(self.sets);
            let tag = block.raw() / self.sets;
            let base = set as usize * self.ways;
            if let Some(w) = self.find_way(base, tag) {
                let line = &mut self.lines[base + w];
                line.sharer_mask |= core.bit();
                line.writer_mask |= core.bit();
                line.writes = line.writes.saturating_add(1);
            }
        }

        fn access(
            &mut self,
            block: BlockAddr,
            pc: Pc,
            core: CoreId,
            kind: AccessKind,
            obs: &mut dyn LlcObserver,
        ) {
            let time = self.time;
            self.time += 1;
            self.stats.accesses += 1;
            if kind.is_write() {
                self.stats.writes += 1;
            }

            let aux = self.aux.aux_for(time, block);
            let ctx = AccessCtx {
                block,
                pc,
                core,
                kind,
                time,
                aux,
            };

            let set = block.set_index(self.sets);
            let tag = block.raw() / self.sets;
            let base = set as usize * self.ways;

            if let Some(w) = self.find_way(base, tag) {
                let line = &mut self.lines[base + w];
                let was_new_sharer = line.sharer_mask & core.bit() == 0;
                line.sharer_mask |= core.bit();
                line.hits = line.hits.saturating_add(1);
                if core != line.fill_core {
                    line.hits_by_non_filler = line.hits_by_non_filler.saturating_add(1);
                    self.stats.hits_by_non_filler += 1;
                }
                if kind.is_write() {
                    line.writes = line.writes.saturating_add(1);
                    line.writer_mask |= core.bit();
                }
                self.stats.hits += 1;
                let live = LiveGeneration {
                    block,
                    sharer_mask: line.sharer_mask,
                    writer_mask: line.writer_mask,
                    hits: line.hits,
                    fill_core: line.fill_core,
                    fill_time: line.fill_time,
                };
                obs.on_hit(&ctx, &live, was_new_sharer);
                self.policy.on_hit(set as usize, w, &ctx);
                return;
            }

            let mut fill_way = None;
            for w in 0..self.ways {
                if !self.lines[base + w].valid {
                    fill_way = Some(w);
                    break;
                }
            }
            let way = match fill_way {
                Some(w) => w,
                None => {
                    for w in 0..self.ways {
                        let line = &self.lines[base + w];
                        self.view_buf[w] = LineView {
                            block: BlockAddr::new(line.tag * self.sets + set),
                            sharer_count: line.sharer_mask.count_ones(),
                            dirty: line.writes > 0,
                        };
                    }
                    let view = SetView {
                        lines: &self.view_buf,
                        allowed: self.full_mask,
                    };
                    let w = self.policy.choose_victim(set as usize, &view, &ctx);
                    let gen = self.end_generation(set, w, time, EvictCause::Replacement);
                    self.stats.evictions += 1;
                    self.policy.on_evict(set as usize, w, &gen);
                    obs.on_generation_end(&gen);
                    w
                }
            };

            self.stats.fills += 1;
            self.lines[base + way] = Line {
                valid: true,
                tag,
                sharer_mask: core.bit(),
                writer_mask: if kind.is_write() { core.bit() } else { 0 },
                hits: 0,
                hits_by_non_filler: 0,
                writes: if kind.is_write() { 1 } else { 0 },
                fill_pc: pc,
                fill_core: core,
                fill_time: time,
            };
            obs.on_fill(&ctx);
            self.policy.on_fill(set as usize, way, &ctx);
        }

        fn end_generation(
            &mut self,
            set: u64,
            way: usize,
            now: u64,
            cause: EvictCause,
        ) -> GenerationEnd {
            let base = set as usize * self.ways;
            let line = &mut self.lines[base + way];
            let gen = GenerationEnd {
                block: BlockAddr::new(line.tag * self.sets + set),
                set: set as usize,
                fill_pc: line.fill_pc,
                fill_core: line.fill_core,
                fill_time: line.fill_time,
                end_time: now,
                sharer_mask: line.sharer_mask,
                writer_mask: line.writer_mask,
                hits: line.hits,
                hits_by_non_filler: line.hits_by_non_filler,
                writes: line.writes,
                cause,
            };
            line.valid = false;
            gen
        }

        fn flush(&mut self, obs: &mut dyn LlcObserver) {
            let now = self.time;
            for set in 0..self.sets {
                for way in 0..self.ways {
                    let base = set as usize * self.ways;
                    if self.lines[base + way].valid {
                        let gen = self.end_generation(set, way, now, EvictCause::Flush);
                        self.stats.flushed += 1;
                        self.policy.on_evict(set as usize, way, &gen);
                        obs.on_generation_end(&gen);
                    }
                }
            }
        }
    }

    /// The suite policies as they stood before this PR, ported from the
    /// previous `llc-policies` sources. The in-tree policies since gained a
    /// one-pass RRIP victim scan and `needs_line_views` gather skipping;
    /// linking them into the baseline would smuggle those wins into the
    /// denominator. Decisions are bit-identical to the current policies
    /// (asserted below), only the work per decision differs.
    mod policies {
        use llc_sim::{AccessCtx, GenerationEnd, ReplacementPolicy, SetView, StateScope};

        pub const RRPV_MAX: u8 = 3;
        pub const RRPV_LONG: u8 = RRPV_MAX - 1;

        pub struct Lru {
            ways: usize,
            stamps: Vec<u64>,
            clock: u64,
        }

        impl Lru {
            pub fn new(sets: usize, ways: usize) -> Self {
                Lru {
                    ways,
                    stamps: vec![0; sets * ways],
                    clock: 0,
                }
            }

            fn touch(&mut self, set: usize, way: usize) {
                self.clock += 1;
                self.stamps[set * self.ways + way] = self.clock;
            }
        }

        impl ReplacementPolicy for Lru {
            fn name(&self) -> String {
                "LRU".into()
            }
            fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
                self.touch(set, way);
            }
            fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
                self.touch(set, way);
            }
            fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
                view.allowed_ways()
                    .min_by_key(|&w| self.stamps[set * self.ways + w])
                    .expect("victim candidates must be non-empty")
            }
            fn state_scope(&self) -> StateScope {
                StateScope::PerSet
            }
        }

        /// Multi-pass RRIP victim scan exactly as the seed wrote it: look
        /// for a distant way, age everything by one, rescan.
        fn rescan_victim(rrpv: &mut [u8], view: &SetView<'_>) -> usize {
            loop {
                for (w, v) in rrpv.iter().enumerate() {
                    if view.is_allowed(w) && *v == RRPV_MAX {
                        return w;
                    }
                }
                for v in rrpv.iter_mut() {
                    *v = (*v + 1).min(RRPV_MAX);
                }
            }
        }

        /// The seed's `Rrip` restricted to the Static flavor the suite
        /// measures (no dueling state).
        pub struct Srrip {
            ways: usize,
            rrpv: Vec<u8>,
        }

        impl Srrip {
            pub fn new(sets: usize, ways: usize) -> Self {
                Srrip {
                    ways,
                    rrpv: vec![RRPV_MAX; sets * ways],
                }
            }
        }

        impl ReplacementPolicy for Srrip {
            fn name(&self) -> String {
                "SRRIP".into()
            }
            fn on_fill(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
                self.rrpv[set * self.ways + way] = RRPV_LONG;
            }
            fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
                self.rrpv[set * self.ways + way] = 0;
            }
            fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
                let rrpv = &mut self.rrpv[set * self.ways..(set + 1) * self.ways];
                rescan_victim(rrpv, view)
            }
            fn state_scope(&self) -> StateScope {
                StateScope::PerSet
            }
        }

        pub const SHCT_ENTRIES: usize = 16 * 1024;
        pub const SHCT_MAX: u8 = 7;

        pub struct Ship {
            ways: usize,
            rrpv: Vec<u8>,
            line_sig: Vec<u16>,
            line_outcome: Vec<bool>,
            shct: Vec<u8>,
        }

        impl Ship {
            pub fn new(sets: usize, ways: usize) -> Self {
                Ship {
                    ways,
                    rrpv: vec![RRPV_MAX; sets * ways],
                    line_sig: vec![0; sets * ways],
                    line_outcome: vec![false; sets * ways],
                    shct: vec![1; SHCT_ENTRIES],
                }
            }

            fn signature(ctx: &AccessCtx) -> u16 {
                (ctx.pc.hash() % SHCT_ENTRIES as u64) as u16
            }
        }

        impl ReplacementPolicy for Ship {
            fn name(&self) -> String {
                "SHiP".into()
            }
            fn on_fill(&mut self, set: usize, way: usize, ctx: &AccessCtx) {
                let sig = Self::signature(ctx);
                let i = set * self.ways + way;
                self.line_sig[i] = sig;
                self.line_outcome[i] = false;
                self.rrpv[i] = if self.shct[sig as usize] == 0 {
                    RRPV_MAX
                } else {
                    RRPV_LONG
                };
            }
            fn on_hit(&mut self, set: usize, way: usize, _ctx: &AccessCtx) {
                let i = set * self.ways + way;
                self.rrpv[i] = 0;
                if !self.line_outcome[i] {
                    self.line_outcome[i] = true;
                    let c = &mut self.shct[self.line_sig[i] as usize];
                    *c = (*c + 1).min(SHCT_MAX);
                }
            }
            fn on_evict(&mut self, set: usize, way: usize, _gen: &GenerationEnd) {
                let i = set * self.ways + way;
                if !self.line_outcome[i] {
                    let c = &mut self.shct[self.line_sig[i] as usize];
                    *c = c.saturating_sub(1);
                }
            }
            fn choose_victim(&mut self, set: usize, view: &SetView<'_>, _ctx: &AccessCtx) -> usize {
                let rrpv = &mut self.rrpv[set * self.ways..(set + 1) * self.ways];
                rescan_victim(rrpv, view)
            }
            fn state_scope(&self) -> StateScope {
                StateScope::Global
            }
        }
    }

    /// Builds the seed-era boxed policy for a suite entry.
    pub fn build_policy(
        kind: llc_policies::PolicyKind,
        sets: usize,
        ways: usize,
    ) -> Box<dyn ReplacementPolicy> {
        use llc_policies::PolicyKind;
        match kind {
            PolicyKind::Lru => Box::new(policies::Lru::new(sets, ways)),
            PolicyKind::Srrip => Box::new(policies::Srrip::new(sets, ways)),
            PolicyKind::Ship => Box::new(policies::Ship::new(sets, ways)),
            other => panic!("no seed port for {}", other.label()),
        }
    }

    /// The previous `replay()` driver: per-iteration upgrade bounds check,
    /// every access through `&mut dyn LlcObserver`.
    pub fn replay(
        config: &HierarchyConfig,
        policy: Box<dyn ReplacementPolicy>,
        stream: &RecordedStream,
    ) -> LlcStats {
        let mut llc = Llc::new(config.llc, policy);
        let mut obs = MultiObserver::new(vec![]);
        let upgrades = &stream.upgrades;
        let mut up = 0usize;
        for i in 0..stream.len() {
            while up < upgrades.len() && upgrades[up].at <= i as u64 {
                llc.note_upgrade(upgrades[up].block, upgrades[up].core);
                obs.on_upgrade(upgrades[up].block, upgrades[up].core);
                up += 1;
            }
            llc.access(
                stream.blocks[i],
                stream.pcs[i],
                stream.cores[i],
                stream.kinds[i],
                &mut obs,
            );
        }
        while up < upgrades.len() {
            llc.note_upgrade(upgrades[up].block, upgrades[up].core);
            obs.on_upgrade(upgrades[up].block, upgrades[up].core);
            up += 1;
        }
        llc.flush(&mut obs);
        llc.stats
    }
}

fn config() -> HierarchyConfig {
    // Same paper-style hierarchy as the shard/streams benches.
    HierarchyConfig {
        cores: CORES,
        l1: CacheConfig::from_kib(32, 8).unwrap(),
        l2: Some(CacheConfig::from_kib(256, 8).unwrap()),
        llc: CacheConfig::from_kib(1024, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

/// One timed run of `f`.
fn time_once<F: FnMut() -> LlcStats>(f: &mut F) -> (Duration, LlcStats) {
    let start = Instant::now();
    let stats = black_box(f());
    (start.elapsed(), stats)
}

/// Best-of-`samples` wall clock for each of the three kernels, sampled in
/// interleaved rounds (dyn, fallback, mono, dyn, …) so slow phases of the
/// host hit all three paths alike. The minimum is the noise-robust
/// estimator: every perturbation only ever adds time.
fn time3<F1, F2, F3>(
    samples: usize,
    mut dyn_f: F1,
    mut fb_f: F2,
    mut mono_f: F3,
) -> ([Duration; 3], [LlcStats; 3])
where
    F1: FnMut() -> LlcStats,
    F2: FnMut() -> LlcStats,
    F3: FnMut() -> LlcStats,
{
    let mut best = [Duration::MAX; 3];
    let mut stats = [LlcStats::default(); 3];
    for _ in 0..samples {
        let (t0, s0) = time_once(&mut dyn_f);
        let (t1, s1) = time_once(&mut fb_f);
        let (t2, s2) = time_once(&mut mono_f);
        best = [best[0].min(t0), best[1].min(t1), best[2].min(t2)];
        stats = [s0, s1, s2];
    }
    (best, stats)
}

fn main() {
    let samples: usize = std::env::var("BENCH_KERNEL_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_speedup: f64 = std::env::var("BENCH_KERNEL_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let cfg = config();
    let sets = cfg.llc.sets() as usize;
    let ways = cfg.llc.ways;

    let stream = record_stream(&cfg, APP.workload(CORES, SCALE)).expect("recording runs");
    let accesses = stream.len() as u64;

    let mut rows = Vec::with_capacity(SUITE.len());
    for &kind in &SUITE {
        let ([dyn_t, fb_t, mono_t], [dyn_stats, fb_stats, mono_stats]) = time3(
            samples,
            || seed::replay(&cfg, seed::build_policy(kind, sets, ways), &stream),
            || {
                replay(
                    &cfg,
                    build_policy(kind, sets, ways),
                    Some(Box::new(NoAux)),
                    &stream,
                    vec![],
                )
                .expect("fallback replay runs")
                .llc
            },
            || {
                replay_kind(&cfg, kind, &stream, vec![])
                    .expect("mono replay runs")
                    .llc
            },
        );
        assert_eq!(
            dyn_stats,
            mono_stats,
            "seed and mono kernels must produce identical stats for {}",
            kind.label()
        );
        assert_eq!(
            fb_stats,
            mono_stats,
            "fallback and mono kernels must produce identical stats for {}",
            kind.label()
        );
        let miss_ratio = mono_stats.miss_ratio();
        let dyn_ns = dyn_t.as_secs_f64() * 1e9 / accesses as f64;
        let fb_ns = fb_t.as_secs_f64() * 1e9 / accesses as f64;
        let mono_ns = mono_t.as_secs_f64() * 1e9 / accesses as f64;
        let speedup = dyn_ns / mono_ns.max(f64::EPSILON);
        println!(
            "kernel/{}: dyn {dyn_ns:.1} ns/access, fallback {fb_ns:.1}, mono {mono_ns:.1} \
             ({speedup:.2}x, {:.1} Macc/s, miss ratio {miss_ratio:.3})",
            kind.label(),
            1e3 / mono_ns
        );
        rows.push((kind, dyn_ns, fb_ns, mono_ns, speedup));
    }

    let min = rows.iter().map(|r| r.4).fold(f64::INFINITY, f64::min);
    let dyn_total: f64 = rows.iter().map(|r| r.1).sum();
    let mono_total: f64 = rows.iter().map(|r| r.3).sum();
    let aggregate = dyn_total / mono_total.max(f64::EPSILON);
    println!("kernel/speedup_min:  {min:.2}x");
    println!("kernel/speedup_agg:  {aggregate:.2}x (gate: >= {min_speedup:.2}x)");

    let fmt_list = |items: Vec<String>| items.join(", ");
    let out = std::env::var("BENCH_KERNEL_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_kernel.json").into());
    let json = format!(
        "{{\n  \"benchmark\": \"kernel\",\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"cores\": {},\n  \"sets\": {},\n  \"ways\": {},\n  \"samples\": {},\n  \
         \"llc_refs\": {},\n  \"policies\": [\"{}\"],\n  \"dyn_ns_per_access\": [{}],\n  \
         \"fallback_ns_per_access\": [{}],\n  \"mono_ns_per_access\": [{}],\n  \
         \"speedups\": [{}],\n  \"speedup_min\": {:.3},\n  \"speedup_aggregate\": {:.3},\n  \
         \"min_speedup\": {:.3}\n}}\n",
        APP.label(),
        SCALE,
        CORES,
        cfg.llc.sets(),
        ways,
        samples,
        accesses,
        SUITE.map(|k| k.label()).join("\", \""),
        fmt_list(rows.iter().map(|r| format!("{:.2}", r.1)).collect()),
        fmt_list(rows.iter().map(|r| format!("{:.2}", r.2)).collect()),
        fmt_list(rows.iter().map(|r| format!("{:.2}", r.3)).collect()),
        fmt_list(rows.iter().map(|r| format!("{:.3}", r.4)).collect()),
        min,
        aggregate,
        min_speedup,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("kernel/report:       {out}");

    if aggregate < min_speedup {
        eprintln!(
            "error: kernel aggregate speedup {aggregate:.2}x below required {min_speedup:.2}x"
        );
        std::process::exit(1);
    }
}

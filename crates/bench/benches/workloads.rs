//! Criterion bench: trace-generation throughput of each workload model
//! (the generator must be far faster than the simulator to never be the
//! bottleneck).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use llc_trace::{App, Scale, TraceSource};

fn bench_generators(c: &mut Criterion) {
    let mut g = c.benchmark_group("workload-gen");
    let n = 8 * Scale::Tiny.thread_accesses();
    g.throughput(Throughput::Elements(n));
    g.sample_size(10);
    for app in [
        App::Blackscholes,
        App::Bodytrack,
        App::Dedup,
        App::Fft,
        App::Water,
        App::Ocean,
    ] {
        g.bench_with_input(BenchmarkId::new("drain", app.label()), &app, |b, &app| {
            b.iter(|| {
                let mut w = app.workload(8, Scale::Tiny);
                let mut sum = 0u64;
                while let Some(a) = w.next_access() {
                    sum = sum.wrapping_add(a.addr.raw());
                }
                sum
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_generators);
criterion_main!(benches);

//! Bench: stream-replay fast path vs the legacy per-policy pipeline.
//!
//! Measures a 4-policy suite — LRU, SRRIP, OPT, Oracle(LRU), the mix the
//! fig5/fig7 experiments actually run — two ways on the same workload and
//! configuration:
//!
//! * **legacy** — the pre-fast-path cost model, reconstructed from the
//!   public primitives: LRU and SRRIP each pay one full-hierarchy
//!   simulation, while OPT and the oracle each pay an annotation pre-pass
//!   (itself a full-hierarchy simulation) *plus* the measured
//!   full-hierarchy run — six hierarchy simulations in total.
//! * **replay** — the LLC reference stream is recorded once (one
//!   hierarchy simulation), then every policy replays it LLC-only with
//!   annotations derived from the recording.
//!
//! Writes the measurements to `BENCH_streams.json` at the workspace root
//! (override with `BENCH_STREAMS_OUT`) and exits nonzero if the measured
//! speedup falls below `BENCH_STREAMS_MIN_SPEEDUP` (default 1.0), so CI
//! can assert the fast path stays fast.

use std::time::{Duration, Instant};

use criterion::black_box;
use llc_policies::{build_oracle_policy_with_mode, build_policy, PolicyKind, ProtectMode};
use llc_sharing::{
    compute_next_use, compute_shared_soon, oracle_window, record_stream, replay_kind,
    replay_oracle, simulate, NextUseProvider, OracleProvider,
};
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, Scale};

const APP: App = App::Swaptions;
const CORES: usize = 4;
const SCALE: Scale = Scale::Small;

/// Policy labels of the measured suite, for the report.
const SUITE: [&str; 4] = ["lru", "srrip", "opt", "oracle-lru"];

fn config() -> HierarchyConfig {
    // Paper-style private hierarchy: the L1+L2 filter is what shrinks the
    // LLC reference stream relative to the trace, and that ratio is one
    // half of the fast path's advantage (the other is skipping the
    // per-policy pre-pass simulations).
    HierarchyConfig {
        cores: CORES,
        l1: CacheConfig::from_kib(32, 8).unwrap(),
        l2: Some(CacheConfig::from_kib(256, 8).unwrap()),
        llc: CacheConfig::from_kib(1024, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

/// Medians wall-clock over `samples` runs of `f`.
fn time<F: FnMut() -> u64>(samples: usize, mut f: F) -> (Duration, u64) {
    let mut times = Vec::with_capacity(samples);
    let mut checksum = 0;
    for _ in 0..samples {
        let start = Instant::now();
        checksum = black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    (times[times.len() / 2], checksum)
}

/// The suite as the runner priced it before the fast path: every policy
/// regenerates the trace and simulates the whole hierarchy, and the
/// annotated policies (OPT, oracle) pay an additional full-hierarchy
/// pre-pass each to derive their annotation vectors.
fn legacy_suite(cfg: &HierarchyConfig) -> u64 {
    let sets = cfg.llc.sets() as usize;
    let ways = cfg.llc.ways;
    let mut misses = 0;
    for kind in [PolicyKind::Lru, PolicyKind::Srrip] {
        let r = simulate(
            cfg,
            build_policy(kind, sets, ways),
            None,
            APP.workload(CORES, SCALE),
            vec![],
        )
        .expect("full simulation runs");
        misses += r.llc.misses();
    }
    let next = compute_next_use(cfg, APP.workload(CORES, SCALE)).expect("next-use pre-pass runs");
    let r = simulate(
        cfg,
        build_policy(PolicyKind::Opt, sets, ways),
        Some(Box::new(NextUseProvider::new(next))),
        APP.workload(CORES, SCALE),
        vec![],
    )
    .expect("OPT simulation runs");
    misses += r.llc.misses();
    let shared = compute_shared_soon(cfg, APP.workload(CORES, SCALE), oracle_window(cfg))
        .expect("shared-soon pre-pass runs");
    let r = simulate(
        cfg,
        build_oracle_policy_with_mode(PolicyKind::Lru, sets, ways, ProtectMode::Eviction),
        Some(Box::new(OracleProvider::new(shared))),
        APP.workload(CORES, SCALE),
        vec![],
    )
    .expect("oracle simulation runs");
    misses += r.llc.misses();
    misses
}

/// The same suite through the fast path: one recording, then LLC-only
/// replays (OPT and the oracle derive their annotations from the
/// recording in a single fused scan each).
fn replay_suite(cfg: &HierarchyConfig) -> u64 {
    let stream = record_stream(cfg, APP.workload(CORES, SCALE)).expect("recording runs");
    let mut misses = 0;
    for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt] {
        misses += replay_kind(cfg, kind, &stream, vec![])
            .expect("replay runs")
            .llc
            .misses();
    }
    misses += replay_oracle(
        cfg,
        PolicyKind::Lru,
        ProtectMode::Eviction,
        None,
        &stream,
        vec![],
    )
    .expect("oracle replay runs")
    .llc
    .misses();
    misses
}

fn main() {
    let samples: usize = std::env::var("BENCH_STREAMS_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_speedup: f64 = std::env::var("BENCH_STREAMS_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let cfg = config();

    let stream = record_stream(&cfg, APP.workload(CORES, SCALE)).expect("recording runs");
    let (llc_refs, trace_accesses) = (stream.len() as u64, stream.trace_accesses);
    drop(stream);

    let (legacy, legacy_misses) = time(samples, || legacy_suite(&cfg));
    let (fast, fast_misses) = time(samples, || replay_suite(&cfg));
    assert_eq!(
        legacy_misses, fast_misses,
        "replay must reproduce the legacy miss counts"
    );

    let speedup = legacy.as_secs_f64() / fast.as_secs_f64().max(f64::EPSILON);
    println!("streams/legacy_suite: {legacy:?}/iter over {samples} samples ({SUITE:?})");
    println!("streams/replay_suite: {fast:?}/iter over {samples} samples (record once + replay)");
    println!("streams/speedup:      {speedup:.2}x (gate: >= {min_speedup:.2}x)");
    println!(
        "streams/filter:       {llc_refs} LLC refs / {trace_accesses} trace accesses ({:.1}%)",
        llc_refs as f64 * 100.0 / trace_accesses.max(1) as f64
    );

    let out = std::env::var("BENCH_STREAMS_OUT").unwrap_or_else(|_| {
        concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_streams.json").into()
    });
    let json = format!(
        "{{\n  \"benchmark\": \"streams\",\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"cores\": {},\n  \"policies\": [\"{}\"],\n  \"samples\": {},\n  \
         \"trace_accesses\": {},\n  \"llc_refs\": {},\n  \
         \"legacy_suite_ms\": {:.3},\n  \"replay_suite_ms\": {:.3},\n  \
         \"speedup\": {:.3},\n  \"min_speedup\": {:.3}\n}}\n",
        APP.label(),
        SCALE,
        CORES,
        SUITE.join("\", \""),
        samples,
        trace_accesses,
        llc_refs,
        legacy.as_secs_f64() * 1e3,
        fast.as_secs_f64() * 1e3,
        speedup,
        min_speedup,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("streams/report:       {out}");

    if speedup < min_speedup {
        eprintln!("error: replay speedup {speedup:.2}x below required {min_speedup:.2}x");
        std::process::exit(1);
    }
}

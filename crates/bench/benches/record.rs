//! Bench: the monomorphized record kernel vs the pre-PR record path.
//!
//! `record_stream` is the cold path of the whole pipeline: every stream
//! that is not already cached pays one full hierarchy simulation here
//! before any policy can replay. This bench reconstructs the record path
//! as it stood *before* the monomorphized record kernel landed (module
//! [`seed`], a line-for-line port of the previous `llc_sim::l1` +
//! `llc_sim::hierarchy` + `llc_sharing::record_stream`):
//!
//! * **seed** — array-of-structs private caches probed line by line, a
//!   `Box<dyn ReplacementPolicy>` recording LLC, every record through
//!   `&mut dyn LlcObserver`, a directory hash-map upsert on *every*
//!   access (including private hits), and trace generation interleaved
//!   one virtual `next_access` call per simulated record. This is the
//!   gate baseline.
//! * **mono** — the in-tree `record_stream`: struct-of-arrays tag planes
//!   with per-set valid bitmasks and branchless probes, a concrete LRU
//!   and concrete recorder observer (zero virtual dispatch in the
//!   hierarchy loop), hit paths that skip the directory map entirely,
//!   and generation batched into chunks so the generator's dispatch and
//!   the probe loop stop interleaving.
//!
//! Both produce bit-identical `RecordedStream`s (asserted here for every
//! workload, including the L1/L2 counters and instruction deltas). The
//! benchmark measures single-thread record throughput (ns per trace
//! record) over a three-app suite with different private-hit profiles
//! and writes `BENCH_record.json` at the workspace root (override with
//! `BENCH_RECORD_OUT`). Exits nonzero if the suite-aggregate speedup
//! (total seed time over total mono time) falls below
//! `BENCH_RECORD_MIN_SPEEDUP` (default 1.5).

use std::time::{Duration, Instant};

use criterion::black_box;
use llc_sharing::record_stream;
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, RecordedStream, Scale};

const CORES: usize = 4;
const SCALE: Scale = Scale::Small;

/// Workloads measured: mostly-private (swaptions, highest L1 hit rate),
/// producer–consumer heavy (bodytrack) and all-to-all phases (fft) — the
/// mix stresses the private-hit fast path, the coherence path and the
/// LLC path in different proportions.
const SUITE: [App; 3] = [App::Swaptions, App::Bodytrack, App::Fft];

/// Faithful reconstruction of the record path this PR replaced, ported
/// line for line from the previous `llc_sim::l1` (array-of-structs
/// private cache), `llc_sim::hierarchy` (dyn-observer CMP with a
/// directory upsert on every path) and `llc_sharing::record_stream`
/// (interleaved generation, boxed LRU). Kept in the bench — not the
/// library — because the library's hierarchy now shares the SoA private
/// caches and would under-state the PR's delta.
mod seed {
    use fxhash::FxHashMap;
    use llc_policies::{build_policy, PolicyKind};
    use llc_sharing::StreamRecorder;
    use llc_sim::{
        BlockAddr, CacheConfig, CoreId, HierarchyConfig, Inclusion, Llc, LlcObserver, MemAccess,
        PrivateCacheStats, ReplacementPolicy,
    };
    use llc_trace::{RecordedStream, TraceSource};

    #[derive(Debug, Clone, Copy, Default)]
    struct Line {
        valid: bool,
        tag: u64,
        /// LRU timestamp: larger = more recently used.
        stamp: u64,
        dirty: bool,
    }

    enum L1Access {
        Hit,
        Miss { victim: Option<L1Victim> },
    }

    struct L1Victim {
        block: BlockAddr,
        dirty: bool,
    }

    /// The previous private cache: one `Line` struct per way, probed by
    /// iterating the set slice and short-circuiting on the first match.
    struct PrivateCache {
        sets: u64,
        ways: usize,
        lines: Vec<Line>,
        clock: u64,
        stats: PrivateCacheStats,
    }

    impl PrivateCache {
        fn new(config: CacheConfig) -> Self {
            let sets = config.sets();
            let ways = config.ways;
            PrivateCache {
                sets,
                ways,
                lines: vec![Line::default(); (sets * ways as u64) as usize],
                clock: 0,
                stats: PrivateCacheStats::default(),
            }
        }

        fn set_slice_mut(&mut self, set: u64) -> &mut [Line] {
            let base = (set as usize) * self.ways;
            &mut self.lines[base..base + self.ways]
        }

        fn access(&mut self, block: BlockAddr, write: bool) -> L1Access {
            self.stats.accesses += 1;
            self.clock += 1;
            let clock = self.clock;
            let set = block.set_index(self.sets);
            let tag = block.tag(self.sets);
            let sets = self.sets;
            let lines = self.set_slice_mut(set);

            for line in lines.iter_mut() {
                if line.valid && line.tag == tag {
                    line.stamp = clock;
                    line.dirty |= write;
                    self.stats.hits += 1;
                    return L1Access::Hit;
                }
            }

            let mut victim_way = 0;
            let mut victim_stamp = u64::MAX;
            let mut found_invalid = false;
            for (w, line) in lines.iter().enumerate() {
                if !line.valid {
                    victim_way = w;
                    found_invalid = true;
                    break;
                }
                if line.stamp < victim_stamp {
                    victim_stamp = line.stamp;
                    victim_way = w;
                }
            }

            let line = &mut lines[victim_way];
            let victim = if !found_invalid && line.valid {
                Some(L1Victim {
                    block: BlockAddr::new(line.tag * sets + set),
                    dirty: line.dirty,
                })
            } else {
                None
            };
            *line = Line {
                valid: true,
                tag,
                stamp: clock,
                dirty: write,
            };
            if victim.is_some() {
                self.stats.evictions += 1;
            }
            L1Access::Miss { victim }
        }

        fn contains(&self, block: BlockAddr) -> bool {
            let set = block.set_index(self.sets);
            let tag = block.tag(self.sets);
            let base = (set as usize) * self.ways;
            self.lines[base..base + self.ways]
                .iter()
                .any(|l| l.valid && l.tag == tag)
        }

        fn invalidate(&mut self, block: BlockAddr) -> bool {
            let set = block.set_index(self.sets);
            let tag = block.tag(self.sets);
            for line in self.set_slice_mut(set).iter_mut() {
                if line.valid && line.tag == tag {
                    line.valid = false;
                    line.dirty = false;
                    self.stats.invalidations += 1;
                    return true;
                }
            }
            false
        }
    }

    /// The previous CMP: boxed LLC policy, `&mut dyn LlcObserver` per
    /// record, and a `dir_set` hash-map upsert on every path including
    /// private hits.
    struct Cmp {
        config: HierarchyConfig,
        l1: Vec<PrivateCache>,
        l2: Vec<PrivateCache>,
        llc: Llc<Box<dyn ReplacementPolicy>>,
        private_dir: FxHashMap<BlockAddr, u32>,
        instructions: u64,
        trace_accesses: u64,
    }

    impl Cmp {
        fn new(config: HierarchyConfig) -> Self {
            let sets = config.llc.sets() as usize;
            let ways = config.llc.ways;
            let l1 = (0..config.cores)
                .map(|_| PrivateCache::new(config.l1))
                .collect();
            let l2 = match config.l2 {
                Some(l2cfg) => (0..config.cores)
                    .map(|_| PrivateCache::new(l2cfg))
                    .collect(),
                None => Vec::new(),
            };
            Cmp {
                config,
                l1,
                l2,
                llc: Llc::new(config.llc, build_policy(PolicyKind::Lru, sets, ways)),
                private_dir: FxHashMap::default(),
                instructions: 0,
                trace_accesses: 0,
            }
        }

        fn access(&mut self, a: MemAccess, obs: &mut dyn LlcObserver) {
            self.trace_accesses += 1;
            self.instructions += u64::from(a.instr_gap.max(1));
            let block = a.addr.block();
            let core = a.core.index();

            if a.kind.is_write() {
                self.invalidate_remote(block, a.core);
            }

            match self.l1[core].access(block, a.kind.is_write()) {
                L1Access::Hit => {
                    if a.kind.is_write() {
                        self.llc.note_upgrade(block, a.core);
                        obs.on_upgrade(block, a.core);
                    }
                    self.dir_set(block, a.core);
                    return;
                }
                L1Access::Miss { victim } => {
                    if let Some(v) = victim {
                        let _ = v.dirty;
                        self.note_private_eviction(v.block, a.core);
                    }
                }
            }

            if !self.l2.is_empty() {
                match self.l2[core].access(block, a.kind.is_write()) {
                    L1Access::Hit => {
                        if a.kind.is_write() {
                            self.llc.note_upgrade(block, a.core);
                            obs.on_upgrade(block, a.core);
                        }
                        self.dir_set(block, a.core);
                        return;
                    }
                    L1Access::Miss { victim } => {
                        if let Some(v) = victim {
                            let _ = v.dirty;
                            self.note_private_eviction(v.block, a.core);
                        }
                    }
                }
            }

            let result = self.llc.access(block, a.pc, a.core, a.kind, obs);
            debug_assert!(
                self.config.inclusion == Inclusion::NonInclusive || result.victim.is_none(),
                "seed port only models the non-inclusive record path"
            );
            self.dir_set(block, a.core);
        }

        fn dir_set(&mut self, block: BlockAddr, core: CoreId) {
            *self.private_dir.entry(block).or_insert(0) |= core.bit();
        }

        fn note_private_eviction(&mut self, block: BlockAddr, core: CoreId) {
            let still_held = self.l1[core.index()].contains(block)
                || self
                    .l2
                    .get(core.index())
                    .is_some_and(|l2| l2.contains(block));
            if still_held {
                return;
            }
            if let Some(mask) = self.private_dir.get_mut(&block) {
                *mask &= !core.bit();
                if *mask == 0 {
                    self.private_dir.remove(&block);
                }
            }
        }

        fn invalidate_remote(&mut self, block: BlockAddr, writer: CoreId) {
            let Some(&mask) = self.private_dir.get(&block) else {
                return;
            };
            let remote = mask & !writer.bit();
            if remote == 0 {
                return;
            }
            for c in 0..self.config.cores {
                if remote & (1u32 << c) != 0 {
                    self.l1[c].invalidate(block);
                    if let Some(l2) = self.l2.get_mut(c) {
                        l2.invalidate(block);
                    }
                }
            }
            self.private_dir.insert(block, mask & writer.bit());
            if mask & writer.bit() == 0 {
                self.private_dir.remove(&block);
            }
        }

        fn l1_stats(&self) -> PrivateCacheStats {
            let mut total = PrivateCacheStats::default();
            for c in &self.l1 {
                total += c.stats;
            }
            total
        }

        fn l2_stats(&self) -> PrivateCacheStats {
            let mut total = PrivateCacheStats::default();
            for c in &self.l2 {
                total += c.stats;
            }
            total
        }
    }

    /// The previous `record_stream` loop: one virtual `next_access` call
    /// per simulated record, recorder driven as `&mut dyn LlcObserver`.
    pub fn record<W: TraceSource>(config: &HierarchyConfig, mut trace: W) -> RecordedStream {
        let mut cmp = Cmp::new(*config);
        let mut rec = StreamRecorder::with_capacity(trace.len_hint());
        let mut instr_deltas = Vec::with_capacity(rec.blocks.capacity());
        let mut pending_instr = 0u64;
        while let Some(a) = trace.next_access() {
            pending_instr += u64::from(a.instr_gap.max(1));
            let before = rec.blocks.len();
            cmp.access(a, &mut rec);
            if rec.blocks.len() > before {
                instr_deltas.push(pending_instr);
                pending_instr = 0;
            }
        }
        assert!(trace.take_error().is_none(), "synthetic traces don't fail");
        RecordedStream {
            fingerprint: config.fingerprint(),
            blocks: rec.blocks,
            cores: rec.cores,
            pcs: rec.pcs,
            kinds: rec.kinds,
            instr_deltas,
            upgrades: rec.upgrades,
            instructions: cmp.instructions,
            trace_accesses: cmp.trace_accesses,
            l1: cmp.l1_stats(),
            l2: cmp.l2_stats(),
        }
    }
}

fn config() -> HierarchyConfig {
    // Same paper-style hierarchy as the kernel/shard/streams benches.
    HierarchyConfig {
        cores: CORES,
        l1: CacheConfig::from_kib(32, 8).unwrap(),
        l2: Some(CacheConfig::from_kib(256, 8).unwrap()),
        llc: CacheConfig::from_kib(1024, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

/// One timed run of `f`.
fn time_once<F: FnMut() -> RecordedStream>(f: &mut F) -> (Duration, RecordedStream) {
    let start = Instant::now();
    let stream = black_box(f());
    (start.elapsed(), stream)
}

/// Best-of-`samples` wall clock for both kernels, sampled in interleaved
/// rounds (seed, mono, seed, …) so slow phases of the host hit both
/// paths alike. The minimum is the noise-robust estimator: every
/// perturbation only ever adds time.
fn time2<F1, F2>(
    samples: usize,
    mut seed_f: F1,
    mut mono_f: F2,
) -> ([Duration; 2], [RecordedStream; 2])
where
    F1: FnMut() -> RecordedStream,
    F2: FnMut() -> RecordedStream,
{
    let mut best = [Duration::MAX; 2];
    let (mut t, mut s0) = time_once(&mut seed_f);
    best[0] = best[0].min(t);
    let mut s1;
    (t, s1) = time_once(&mut mono_f);
    best[1] = best[1].min(t);
    for _ in 1..samples {
        (t, s0) = time_once(&mut seed_f);
        best[0] = best[0].min(t);
        (t, s1) = time_once(&mut mono_f);
        best[1] = best[1].min(t);
    }
    (best, [s0, s1])
}

fn main() {
    let samples: usize = std::env::var("BENCH_RECORD_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_speedup: f64 = std::env::var("BENCH_RECORD_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.5);
    let cfg = config();

    let mut rows = Vec::with_capacity(SUITE.len());
    for &app in &SUITE {
        let ([seed_t, mono_t], [seed_stream, mono_stream]) = time2(
            samples,
            || seed::record(&cfg, app.workload(CORES, SCALE)),
            || record_stream(&cfg, app.workload(CORES, SCALE)).expect("recording runs"),
        );
        assert_eq!(
            seed_stream,
            mono_stream,
            "seed and mono record paths must produce identical streams for {}",
            app.label()
        );
        let records = mono_stream.trace_accesses;
        let llc_refs = mono_stream.len() as u64;
        let seed_ns = seed_t.as_secs_f64() * 1e9 / records as f64;
        let mono_ns = mono_t.as_secs_f64() * 1e9 / records as f64;
        let speedup = seed_ns / mono_ns.max(f64::EPSILON);
        println!(
            "record/{}: seed {seed_ns:.1} ns/record, mono {mono_ns:.1} ({speedup:.2}x, \
             {:.1} Mrec/s, {llc_refs} LLC refs of {records} records)",
            app.label(),
            1e3 / mono_ns
        );
        rows.push((app, records, llc_refs, seed_ns, mono_ns, speedup));
    }

    let min = rows.iter().map(|r| r.5).fold(f64::INFINITY, f64::min);
    let seed_total: f64 = rows.iter().map(|r| r.3 * r.1 as f64).sum();
    let mono_total: f64 = rows.iter().map(|r| r.4 * r.1 as f64).sum();
    let aggregate = seed_total / mono_total.max(f64::EPSILON);
    println!("record/speedup_min:  {min:.2}x");
    println!("record/speedup_agg:  {aggregate:.2}x (gate: >= {min_speedup:.2}x)");

    let fmt_list = |items: Vec<String>| items.join(", ");
    let out = std::env::var("BENCH_RECORD_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_record.json").into());
    let json = format!(
        "{{\n  \"benchmark\": \"record\",\n  \"scale\": \"{}\",\n  \"cores\": {},\n  \
         \"sets\": {},\n  \"ways\": {},\n  \"samples\": {},\n  \"workloads\": [\"{}\"],\n  \
         \"trace_records\": [{}],\n  \"llc_refs\": [{}],\n  \"seed_ns_per_record\": [{}],\n  \
         \"mono_ns_per_record\": [{}],\n  \"speedups\": [{}],\n  \"speedup_min\": {:.3},\n  \
         \"speedup_aggregate\": {:.3},\n  \"min_speedup\": {:.3}\n}}\n",
        SCALE,
        CORES,
        cfg.llc.sets(),
        cfg.llc.ways,
        samples,
        SUITE.map(|a| a.label().to_string()).join("\", \""),
        fmt_list(rows.iter().map(|r| r.1.to_string()).collect()),
        fmt_list(rows.iter().map(|r| r.2.to_string()).collect()),
        fmt_list(rows.iter().map(|r| format!("{:.2}", r.3)).collect()),
        fmt_list(rows.iter().map(|r| format!("{:.2}", r.4)).collect()),
        fmt_list(rows.iter().map(|r| format!("{:.3}", r.5)).collect()),
        min,
        aggregate,
        min_speedup,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("record/report:       {out}");

    if aggregate < min_speedup {
        eprintln!(
            "error: record aggregate speedup {aggregate:.2}x below required {min_speedup:.2}x"
        );
        std::process::exit(1);
    }
}

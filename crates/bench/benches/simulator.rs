//! Criterion bench: raw hierarchy throughput (trace accesses per second)
//! across LLC sizes and inclusion modes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use llc_policies::{build_policy, PolicyKind};
use llc_sim::{CacheConfig, Cmp, HierarchyConfig, Inclusion, NullObserver};
use llc_trace::{App, Scale, TraceSource};

const ACCESSES: u64 = 200_000;

fn config(llc_kib: u64, inclusion: Inclusion) -> HierarchyConfig {
    HierarchyConfig {
        cores: 8,
        l1: CacheConfig::from_kib(16, 4).unwrap(),
        l2: None,
        llc: CacheConfig::from_kib(llc_kib, 16).unwrap(),
        inclusion,
    }
}

fn run(cfg: &HierarchyConfig, app: App) -> u64 {
    let policy = build_policy(PolicyKind::Lru, cfg.llc.sets() as usize, cfg.llc.ways);
    let mut cmp = Cmp::new(*cfg, policy).unwrap();
    let mut obs = NullObserver;
    let mut trace = app.workload(cfg.cores, Scale::Small);
    let mut n = 0;
    while n < ACCESSES {
        match trace.next_access() {
            Some(a) => cmp.access(a, &mut obs),
            None => break,
        }
        n += 1;
    }
    cmp.llc_stats().misses()
}

fn bench_hierarchy(c: &mut Criterion) {
    let mut g = c.benchmark_group("hierarchy");
    g.throughput(Throughput::Elements(ACCESSES));
    g.sample_size(10);
    for llc_kib in [512u64, 2048] {
        let cfg = config(llc_kib, Inclusion::NonInclusive);
        g.bench_with_input(BenchmarkId::new("noninclusive", llc_kib), &cfg, |b, cfg| {
            b.iter(|| run(cfg, App::Bodytrack));
        });
    }
    let incl = config(512, Inclusion::Inclusive);
    g.bench_with_input(BenchmarkId::new("inclusive", 512u64), &incl, |b, cfg| {
        b.iter(|| run(cfg, App::Bodytrack));
    });
    g.finish();
}

criterion_group!(benches, bench_hierarchy);
criterion_main!(benches);

//! Bench: set-sharded replay vs sequential replay.
//!
//! Records one LLC reference stream, then replays a 3-policy per-set
//! suite — LRU, SRRIP, OPT — through `replay_kind_sharded` at 1, 2, 4
//! and 8 shards. Shard count 1 is the sequential path; the others fan
//! the set ranges out over `scoped_workers`. Sharded replay is
//! bit-identical to sequential replay (asserted here on the summed miss
//! counts, and property-tested in `tests/shard_equivalence.rs`), so the
//! only thing this benchmark measures is wall-clock.
//!
//! Every cell is measured twice, via `set_host_thread_override`:
//!
//! * **1-thread floor** (override = 1): every shard runs inline on one
//!   thread, exposing the pure sharding overhead. Gate: the *minimum*
//!   speedup across shard counts must stay above
//!   `BENCH_SHARD_MIN_SPEEDUP_1T` (default 0.95) — sharding must not
//!   lose even with no parallelism to gain from.
//! * **Multi-thread** (no override): whatever parallelism the host
//!   offers. On hosts with two or more hardware threads the *best*
//!   speedup across shard counts must clear `BENCH_SHARD_MIN_SPEEDUP`
//!   (default 1.0): sharding must actually win somewhere. On a
//!   single-hardware-thread host the numbers are recorded but the gate
//!   falls back to the floor above.
//!
//! Writes both series to `BENCH_shard.json` at the workspace root
//! (override with `BENCH_SHARD_OUT`) and exits nonzero on a gate miss.
//!
//! The stream is registered with the shard-index registry up front
//! (`register_stream`), as `StreamCache` does for every stream it hands
//! out, so each shard count builds its index once rather than once per
//! sample — the benchmark measures replay, not re-indexing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::black_box;
use llc_policies::PolicyKind;
use llc_sharing::{record_stream, register_stream, replay_kind_sharded, set_host_thread_override};
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, Scale};

const APP: App = App::Swaptions;
const CORES: usize = 4;
const SCALE: Scale = Scale::Small;
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Policy labels of the measured suite, for the report.
const SUITE: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt];

fn config() -> HierarchyConfig {
    // Same paper-style hierarchy as the streams bench: a 1 MiB 16-way
    // LLC gives 1024 sets, so even 8 shards get 128 sets each.
    HierarchyConfig {
        cores: CORES,
        l1: CacheConfig::from_kib(32, 8).unwrap(),
        l2: Some(CacheConfig::from_kib(256, 8).unwrap()),
        llc: CacheConfig::from_kib(1024, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

fn main() {
    let samples: usize = std::env::var("BENCH_SHARD_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_speedup: f64 = std::env::var("BENCH_SHARD_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let min_speedup_1t: f64 = std::env::var("BENCH_SHARD_MIN_SPEEDUP_1T")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let cfg = config();

    let stream = Arc::new(record_stream(&cfg, APP.workload(CORES, SCALE)).expect("recording runs"));
    register_stream(&stream);
    let llc_refs = stream.len() as u64;

    // Each (policy, shard count, thread mode) cell is timed on its own
    // and the cells are sampled in interleaved rounds, so slow phases of
    // the host hit every cell alike; per-cell best-of-`samples` is the
    // noise-robust estimator (perturbations only ever add time), and a
    // shard count's figure is the *sum* of its cells — min-of-a-sum
    // would instead need every policy to land in a quiet phase
    // simultaneously.
    let mut cell_1t = vec![[Duration::MAX; SHARDS.len()]; SUITE.len()];
    let mut cell_mt = vec![[Duration::MAX; SHARDS.len()]; SUITE.len()];
    let mut checksums = vec![0u64; SHARDS.len()];
    for _ in 0..samples {
        for (i, &shards) in SHARDS.iter().enumerate() {
            let mut checksum = 0u64;
            for (k, &kind) in SUITE.iter().enumerate() {
                set_host_thread_override(Some(1));
                let start = Instant::now();
                checksum += black_box(
                    replay_kind_sharded(&cfg, kind, &stream, shards)
                        .expect("replay runs")
                        .llc
                        .misses(),
                );
                cell_1t[k][i] = cell_1t[k][i].min(start.elapsed());

                set_host_thread_override(None);
                let start = Instant::now();
                checksum += black_box(
                    replay_kind_sharded(&cfg, kind, &stream, shards)
                        .expect("replay runs")
                        .llc
                        .misses(),
                );
                cell_mt[k][i] = cell_mt[k][i].min(start.elapsed());
            }
            checksums[i] = checksum;
        }
    }
    set_host_thread_override(None);
    let sum_cells = |cell: &[[Duration; SHARDS.len()]]| -> Vec<Duration> {
        (0..SHARDS.len())
            .map(|i| cell.iter().map(|row| row[i]).sum())
            .collect()
    };
    let best_1t = sum_cells(&cell_1t);
    let best_mt = sum_cells(&cell_mt);
    for (i, &shards) in SHARDS.iter().enumerate() {
        println!(
            "shard/replay_x{shards}: {:?}/iter 1-thread, {:?}/iter multi-thread (sums of {} \
             per-policy best-of-{samples})",
            best_1t[i],
            best_mt[i],
            SUITE.len()
        );
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "sharded replay must reproduce the sequential miss counts: {checksums:?}"
    );

    let speedups_of = |best: &[Duration]| -> Vec<f64> {
        let sequential = best[0];
        best.iter()
            .map(|m| sequential.as_secs_f64() / m.as_secs_f64().max(f64::EPSILON))
            .collect()
    };
    let speedups_1t = speedups_of(&best_1t);
    let speedups_mt = speedups_of(&best_mt);
    let floor_1t = speedups_1t[1..]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let best = speedups_mt[1..].iter().copied().fold(0.0f64, f64::max);
    let worst = speedups_mt[1..]
        .iter()
        .copied()
        .fold(f64::INFINITY, f64::min);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "shard/speedup_best:  {best:.2}x multi-thread, min {worst:.2}x; 1-thread floor \
         {floor_1t:.2}x ({host_threads} host threads; gate: best >= {min_speedup:.2}x \
         multi-thread, floor >= {min_speedup_1t:.2}x single-thread)"
    );

    let fmt_list = |items: Vec<String>| items.join(", ");
    let ms_list = |best: &[Duration]| {
        fmt_list(
            best.iter()
                .map(|m| format!("{:.3}", m.as_secs_f64() * 1e3))
                .collect(),
        )
    };
    let out = std::env::var("BENCH_SHARD_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").into());
    let json = format!(
        "{{\n  \"benchmark\": \"shard\",\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"cores\": {},\n  \"sets\": {},\n  \"host_threads\": {},\n  \"policies\": [\"{}\"],\n  \
         \"samples\": {},\n  \"llc_refs\": {},\n  \"shards\": [{}],\n  \"ms\": [{}],\n  \
         \"ms_1t\": [{}],\n  \"speedups\": [{}],\n  \"speedups_1t\": [{}],\n  \
         \"speedup\": {:.3},\n  \"speedup_min\": {:.3},\n  \"speedup_floor_1t\": {:.3},\n  \
         \"min_speedup\": {:.3},\n  \"min_speedup_1t\": {:.3}\n}}\n",
        APP.label(),
        SCALE,
        CORES,
        cfg.llc.sets(),
        host_threads,
        SUITE.map(|k| k.label()).join("\", \""),
        samples,
        llc_refs,
        fmt_list(SHARDS.iter().map(|s| s.to_string()).collect()),
        ms_list(&best_mt),
        ms_list(&best_1t),
        fmt_list(speedups_mt.iter().map(|s| format!("{s:.3}")).collect()),
        fmt_list(speedups_1t.iter().map(|s| format!("{s:.3}")).collect()),
        best,
        worst,
        floor_1t,
        min_speedup,
        min_speedup_1t,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("shard/report:        {out}");

    // The 1-thread floor is measured explicitly (override = 1), so it is
    // enforceable on every host.
    if floor_1t < min_speedup_1t {
        eprintln!(
            "error: 1-thread sharded speedup floor {floor_1t:.2}x below required \
             {min_speedup_1t:.2}x"
        );
        std::process::exit(1);
    }
    // The multi-thread win is only demanded where a second hardware
    // thread exists to win with.
    if host_threads >= 2 && best < min_speedup {
        eprintln!("error: sharded speedup {best:.2}x below required {min_speedup:.2}x");
        std::process::exit(1);
    }
}

//! Bench: set-sharded replay vs sequential replay.
//!
//! Records one LLC reference stream, then replays a 3-policy per-set
//! suite — LRU, SRRIP, OPT — through `replay_kind_sharded` at 1, 2, 4
//! and 8 shards. Shard count 1 is the sequential path; the others fan
//! the set ranges out over `scoped_workers`. Sharded replay is
//! bit-identical to sequential replay (asserted here on the summed miss
//! counts, and property-tested in `tests/shard_equivalence.rs`), so the
//! only thing this benchmark measures is wall-clock.
//!
//! Writes the measurements to `BENCH_shard.json` at the workspace root
//! (override with `BENCH_SHARD_OUT`) and exits nonzero on a gate miss.
//! With two or more hardware threads the gate is the *best* speedup
//! across shard counts against `BENCH_SHARD_MIN_SPEEDUP` (default 1.0):
//! sharding must actually win somewhere. On a single-hardware-thread
//! host sharding cannot win, but the monomorphized kernel keeps its
//! constant factors small enough that it must not *lose* either: the
//! gate becomes the *minimum* speedup across shard counts against
//! `BENCH_SHARD_MIN_SPEEDUP_1T` (default 0.95).
//!
//! The stream is registered with the shard-index registry up front
//! (`register_stream`), as `StreamCache` does for every stream it hands
//! out, so each shard count builds its index once rather than once per
//! sample — the benchmark measures replay, not re-indexing.

use std::sync::Arc;
use std::time::{Duration, Instant};

use criterion::black_box;
use llc_policies::PolicyKind;
use llc_sharing::{record_stream, register_stream, replay_kind_sharded};
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, Scale};

const APP: App = App::Swaptions;
const CORES: usize = 4;
const SCALE: Scale = Scale::Small;
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Policy labels of the measured suite, for the report.
const SUITE: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt];

fn config() -> HierarchyConfig {
    // Same paper-style hierarchy as the streams bench: a 1 MiB 16-way
    // LLC gives 1024 sets, so even 8 shards get 128 sets each.
    HierarchyConfig {
        cores: CORES,
        l1: CacheConfig::from_kib(32, 8).unwrap(),
        l2: Some(CacheConfig::from_kib(256, 8).unwrap()),
        llc: CacheConfig::from_kib(1024, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

fn main() {
    let samples: usize = std::env::var("BENCH_SHARD_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_speedup: f64 = std::env::var("BENCH_SHARD_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let min_speedup_1t: f64 = std::env::var("BENCH_SHARD_MIN_SPEEDUP_1T")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.95);
    let cfg = config();

    let stream = Arc::new(record_stream(&cfg, APP.workload(CORES, SCALE)).expect("recording runs"));
    register_stream(&stream);
    let llc_refs = stream.len() as u64;

    // Each (policy, shard count) cell is timed on its own and the cells
    // are sampled in interleaved rounds, so slow phases of the host hit
    // every cell alike; per-cell best-of-`samples` is the noise-robust
    // estimator (perturbations only ever add time), and a shard count's
    // figure is the *sum* of its cells — min-of-a-sum would instead need
    // every policy to land in a quiet phase simultaneously.
    let mut cell = vec![[Duration::MAX; SHARDS.len()]; SUITE.len()];
    let mut checksums = vec![0u64; SHARDS.len()];
    for _ in 0..samples {
        for (i, &shards) in SHARDS.iter().enumerate() {
            let mut checksum = 0u64;
            for (k, &kind) in SUITE.iter().enumerate() {
                let start = Instant::now();
                checksum += black_box(
                    replay_kind_sharded(&cfg, kind, &stream, shards)
                        .expect("replay runs")
                        .llc
                        .misses(),
                );
                cell[k][i] = cell[k][i].min(start.elapsed());
            }
            checksums[i] = checksum;
        }
    }
    let best: Vec<Duration> = (0..SHARDS.len())
        .map(|i| cell.iter().map(|row| row[i]).sum())
        .collect();
    for (i, &shards) in SHARDS.iter().enumerate() {
        println!(
            "shard/replay_x{shards}: {:?}/iter (sum of {} per-policy best-of-{samples})",
            best[i],
            SUITE.len()
        );
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "sharded replay must reproduce the sequential miss counts: {checksums:?}"
    );

    let sequential = best[0];
    let speedups: Vec<f64> = best
        .iter()
        .map(|m| sequential.as_secs_f64() / m.as_secs_f64().max(f64::EPSILON))
        .collect();
    let times = best;
    let best = speedups[1..].iter().copied().fold(0.0f64, f64::max);
    let worst = speedups[1..].iter().copied().fold(f64::INFINITY, f64::min);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "shard/speedup_best:  {best:.2}x, min {worst:.2}x ({host_threads} host threads; gate: \
         best >= {min_speedup:.2}x multi-thread, min >= {min_speedup_1t:.2}x single-thread)"
    );

    let fmt_list = |items: Vec<String>| items.join(", ");
    let out = std::env::var("BENCH_SHARD_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").into());
    let json = format!(
        "{{\n  \"benchmark\": \"shard\",\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"cores\": {},\n  \"sets\": {},\n  \"host_threads\": {},\n  \"policies\": [\"{}\"],\n  \
         \"samples\": {},\n  \"llc_refs\": {},\n  \"shards\": [{}],\n  \"ms\": [{}],\n  \
         \"speedups\": [{}],\n  \"speedup\": {:.3},\n  \"speedup_min\": {:.3},\n  \
         \"min_speedup\": {:.3},\n  \"min_speedup_1t\": {:.3}\n}}\n",
        APP.label(),
        SCALE,
        CORES,
        cfg.llc.sets(),
        host_threads,
        SUITE.map(|k| k.label()).join("\", \""),
        samples,
        llc_refs,
        fmt_list(SHARDS.iter().map(|s| s.to_string()).collect()),
        fmt_list(
            times
                .iter()
                .map(|m| format!("{:.3}", m.as_secs_f64() * 1e3))
                .collect()
        ),
        fmt_list(speedups.iter().map(|s| format!("{s:.3}")).collect()),
        best,
        worst,
        min_speedup,
        min_speedup_1t,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("shard/report:        {out}");

    if host_threads < 2 {
        // No second core: sharding cannot win, but it must not lose.
        if worst < min_speedup_1t {
            eprintln!(
                "error: sharded speedup {worst:.2}x below required {min_speedup_1t:.2}x \
                 on a single-hardware-thread host"
            );
            std::process::exit(1);
        }
    } else if best < min_speedup {
        eprintln!("error: sharded speedup {best:.2}x below required {min_speedup:.2}x");
        std::process::exit(1);
    }
}

//! Bench: set-sharded replay vs sequential replay.
//!
//! Records one LLC reference stream, then replays a 3-policy per-set
//! suite — LRU, SRRIP, OPT — through `replay_kind_sharded` at 1, 2, 4
//! and 8 shards. Shard count 1 is the sequential path; the others fan
//! the set ranges out over `scoped_workers`. Sharded replay is
//! bit-identical to sequential replay (asserted here on the summed miss
//! counts, and property-tested in `tests/shard_equivalence.rs`), so the
//! only thing this benchmark measures is wall-clock.
//!
//! Writes the measurements to `BENCH_shard.json` at the workspace root
//! (override with `BENCH_SHARD_OUT`) and exits nonzero if the best
//! speedup across shard counts falls below `BENCH_SHARD_MIN_SPEEDUP`
//! (default 1.0), so CI can assert sharding never becomes a slowdown.
//! On a single-hardware-thread host the floor is skipped (sharding
//! cannot win without a second core); the checksum assertion still runs.

use std::time::{Duration, Instant};

use criterion::black_box;
use llc_policies::PolicyKind;
use llc_sharing::{record_stream, replay_kind_sharded};
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, Scale};

const APP: App = App::Swaptions;
const CORES: usize = 4;
const SCALE: Scale = Scale::Small;
const SHARDS: [usize; 4] = [1, 2, 4, 8];

/// Policy labels of the measured suite, for the report.
const SUITE: [PolicyKind; 3] = [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt];

fn config() -> HierarchyConfig {
    // Same paper-style hierarchy as the streams bench: a 1 MiB 16-way
    // LLC gives 1024 sets, so even 8 shards get 128 sets each.
    HierarchyConfig {
        cores: CORES,
        l1: CacheConfig::from_kib(32, 8).unwrap(),
        l2: Some(CacheConfig::from_kib(256, 8).unwrap()),
        llc: CacheConfig::from_kib(1024, 16).unwrap(),
        inclusion: Inclusion::NonInclusive,
    }
}

/// Medians wall-clock over `samples` runs of `f`.
fn time<F: FnMut() -> u64>(samples: usize, mut f: F) -> (Duration, u64) {
    let mut times = Vec::with_capacity(samples);
    let mut checksum = 0;
    for _ in 0..samples {
        let start = Instant::now();
        checksum = black_box(f());
        times.push(start.elapsed());
    }
    times.sort();
    (times[times.len() / 2], checksum)
}

fn main() {
    let samples: usize = std::env::var("BENCH_SHARD_SAMPLES")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(5);
    let min_speedup: f64 = std::env::var("BENCH_SHARD_MIN_SPEEDUP")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1.0);
    let cfg = config();

    let stream = record_stream(&cfg, APP.workload(CORES, SCALE)).expect("recording runs");
    let llc_refs = stream.len() as u64;

    let mut medians = Vec::with_capacity(SHARDS.len());
    let mut checksums = Vec::with_capacity(SHARDS.len());
    for &shards in &SHARDS {
        let (median, checksum) = time(samples, || {
            SUITE
                .iter()
                .map(|&kind| {
                    replay_kind_sharded(&cfg, kind, &stream, shards)
                        .expect("replay runs")
                        .llc
                        .misses()
                })
                .sum()
        });
        medians.push(median);
        checksums.push(checksum);
        println!(
            "shard/replay_x{shards}: {median:?}/iter over {samples} samples ({} policies)",
            SUITE.len()
        );
    }
    assert!(
        checksums.iter().all(|&c| c == checksums[0]),
        "sharded replay must reproduce the sequential miss counts: {checksums:?}"
    );

    let sequential = medians[0];
    let speedups: Vec<f64> = medians
        .iter()
        .map(|m| sequential.as_secs_f64() / m.as_secs_f64().max(f64::EPSILON))
        .collect();
    let best = speedups[1..].iter().copied().fold(0.0f64, f64::max);
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    println!(
        "shard/speedup_best:  {best:.2}x (gate: >= {min_speedup:.2}x, {host_threads} host threads)"
    );

    let fmt_list = |items: Vec<String>| items.join(", ");
    let out = std::env::var("BENCH_SHARD_OUT")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json").into());
    let json = format!(
        "{{\n  \"benchmark\": \"shard\",\n  \"workload\": \"{}\",\n  \"scale\": \"{}\",\n  \
         \"cores\": {},\n  \"sets\": {},\n  \"host_threads\": {},\n  \"policies\": [\"{}\"],\n  \
         \"samples\": {},\n  \"llc_refs\": {},\n  \"shards\": [{}],\n  \"ms\": [{}],\n  \
         \"speedups\": [{}],\n  \"speedup\": {:.3},\n  \"min_speedup\": {:.3}\n}}\n",
        APP.label(),
        SCALE,
        CORES,
        cfg.llc.sets(),
        host_threads,
        SUITE.map(|k| k.label()).join("\", \""),
        samples,
        llc_refs,
        fmt_list(SHARDS.iter().map(|s| s.to_string()).collect()),
        fmt_list(
            medians
                .iter()
                .map(|m| format!("{:.3}", m.as_secs_f64() * 1e3))
                .collect()
        ),
        fmt_list(speedups.iter().map(|s| format!("{s:.3}")).collect()),
        best,
        min_speedup,
    );
    if let Err(e) = std::fs::write(&out, json) {
        eprintln!("error: writing {out}: {e}");
        std::process::exit(1);
    }
    println!("shard/report:        {out}");

    if host_threads < 2 {
        println!("shard/gate:          skipped (single-hardware-thread host)");
    } else if best < min_speedup {
        eprintln!("error: sharded speedup {best:.2}x below required {min_speedup:.2}x");
        std::process::exit(1);
    }
}

//! # llc-sharing — the sharing characterization and oracle study
//!
//! The top of the reproduction stack: this crate drives the `llc-sim`
//! hierarchy over `llc-trace` workloads with `llc-policies` replacement
//! and `llc-predictors` predictors, and implements everything the paper
//! *contributes*:
//!
//! * the **runner** with its exact offline pre-passes — Belady next-use
//!   chains and per-access oracle sharing outcomes
//!   ([`runner::simulate_opt`], [`runner::simulate_oracle`]);
//! * the **characterization passes** — hit/occupancy decomposition by
//!   sharing class ([`SharingProfile`]), premature shared-victimization
//!   rates ([`VictimizationStats`]), epoch-resolved sharing
//!   ([`EpochSeries`]);
//! * the **experiment index** — every paper-style table and figure as a
//!   runnable [`experiments::ExperimentId`].
//!
//! ## Example
//!
//! ```
//! use llc_policies::PolicyKind;
//! use llc_sharing::{simulate_kind, SharingProfile};
//! use llc_sim::HierarchyConfig;
//! use llc_trace::{App, Scale};
//!
//! # fn main() -> Result<(), llc_sharing::RunError> {
//! let cfg = HierarchyConfig::tiny();
//! let mut profile = SharingProfile::new();
//! let result = simulate_kind(
//!     &cfg,
//!     PolicyKind::Lru,
//!     &mut || App::Bodytrack.workload(cfg.cores, Scale::Tiny),
//!     vec![&mut profile],
//! )?;
//! assert!(result.llc.accesses > 0);
//! // bodytrack's shared model makes shared generations matter:
//! assert!(profile.shared_hit_fraction() > 0.0);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod awareness;
pub mod budget;
pub mod characterize;
pub mod epochs;
pub mod error;
pub mod experiments;
pub mod json;
pub mod memo;
pub mod model;
pub mod online;
pub mod planner;
pub mod replay;
pub mod report;
pub mod runner;
pub mod suite;

pub use awareness::VictimizationStats;
pub use characterize::{ClassTally, SharingProfile};
pub use epochs::{EpochSeries, EpochStat};
pub use error::RunError;
pub use experiments::{per_app, run_experiment, ExperimentCtx, ExperimentId};
pub use memo::{record_of, result_of};
pub use model::LatencyModel;
pub use online::{OnlineCharacterizer, OnlineStats, OnlineTally};
pub use planner::{configs_for, plan_experiment, replay_lineup};
pub use replay::{
    compute_annotations, record_stream, register_stream, replay, replay_characterized_sharded,
    replay_kind, replay_kind_sharded, replay_on, replay_opt, replay_opt_sharded, replay_oracle,
    replay_oracle_sharded, replay_predictor_wrap, replay_reactive, replay_sharded,
    set_host_thread_override, Annotations, AuxFactory, CachedAccessIter, CachedStream,
    PolicyFactory, StreamCache, StreamCacheStats, StreamKey, WorkloadId,
};
pub use report::{f2, f3, geomean, mean, pct, Table};
pub use runner::{
    compute_next_use, compute_shared_soon, oracle_window, run_simple, simulate, simulate_kind,
    simulate_opt, simulate_oracle, simulate_oracle_opt, simulate_predictor_wrap, simulate_reactive,
    CombinedProvider, NextUseProvider, OracleProvider, RunResult, StreamRecorder,
};
pub use suite::pool::scoped_workers;
pub use suite::{
    run_guarded, run_suite, run_suite_with, ExperimentOutcome, SuiteConfig, SuiteReport,
};

//! A first-order performance model on top of the miss counts.
//!
//! The paper reports miss counts only; this module adds the standard
//! back-of-envelope translation into cycles so the oracle's miss
//! reductions can be read as performance: a fixed-latency hierarchy and a
//! one-IPC in-order core, i.e.
//!
//! ```text
//! cycles = instructions
//!        + L1 hits   × t_l1
//!        + LLC hits  × t_llc
//!        + LLC misses × t_mem
//! ```
//!
//! This deliberately ignores overlap (MLP), so speedups are conservative
//! upper-structure estimates — fine for *comparing* policies on identical
//! access streams, which is the only use the experiments make of it.

use crate::runner::RunResult;

/// Fixed access latencies in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// Private-cache hit latency.
    pub l1_hit: f64,
    /// Shared-LLC hit latency.
    pub llc_hit: f64,
    /// Memory (LLC miss) latency.
    pub memory: f64,
}

impl LatencyModel {
    /// Typical mid-2010s CMP latencies: 3 / 30 / 220 cycles.
    pub fn typical() -> Self {
        LatencyModel {
            l1_hit: 3.0,
            llc_hit: 30.0,
            memory: 220.0,
        }
    }

    /// Total execution cycles of a run under the model.
    ///
    /// # Panics
    ///
    /// Panics if any latency is negative or non-finite.
    pub fn cycles(&self, r: &RunResult) -> f64 {
        self.validate();
        r.instructions as f64
            + r.l1.hits as f64 * self.l1_hit
            + r.llc.hits as f64 * self.llc_hit
            + r.llc.misses() as f64 * self.memory
    }

    /// Average memory access time per trace access, in cycles.
    pub fn amat(&self, r: &RunResult) -> f64 {
        self.validate();
        if r.trace_accesses == 0 {
            return 0.0;
        }
        (r.l1.hits as f64 * self.l1_hit
            + r.llc.hits as f64 * (self.l1_hit + self.llc_hit)
            + r.llc.misses() as f64 * (self.l1_hit + self.llc_hit + self.memory))
            / r.trace_accesses as f64
    }

    /// Speedup of `improved` over `base` (same trace; asserts matching
    /// instruction counts in debug builds).
    pub fn speedup(&self, base: &RunResult, improved: &RunResult) -> f64 {
        debug_assert_eq!(base.instructions, improved.instructions, "different traces");
        self.cycles(base) / self.cycles(improved)
    }

    fn validate(&self) {
        assert!(
            self.l1_hit.is_finite()
                && self.llc_hit.is_finite()
                && self.memory.is_finite()
                && self.l1_hit >= 0.0
                && self.llc_hit >= 0.0
                && self.memory >= 0.0,
            "latencies must be finite and non-negative"
        );
    }
}

impl Default for LatencyModel {
    fn default() -> Self {
        Self::typical()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{LlcStats, PrivateCacheStats};

    fn run(l1_hits: u64, llc_hits: u64, llc_misses: u64) -> RunResult {
        RunResult {
            policy: "test".into(),
            llc: LlcStats {
                accesses: llc_hits + llc_misses,
                hits: llc_hits,
                fills: llc_misses,
                ..Default::default()
            },
            l1: PrivateCacheStats {
                accesses: l1_hits + llc_hits + llc_misses,
                hits: l1_hits,
                ..Default::default()
            },
            l2: PrivateCacheStats::default(),
            instructions: 1000,
            trace_accesses: l1_hits + llc_hits + llc_misses,
        }
    }

    #[test]
    fn cycles_accumulate_by_level() {
        let m = LatencyModel {
            l1_hit: 1.0,
            llc_hit: 10.0,
            memory: 100.0,
        };
        let r = run(10, 5, 2);
        // 1000 + 10*1 + 5*10 + 2*100 = 1260.
        assert!((m.cycles(&r) - 1260.0).abs() < 1e-9);
    }

    #[test]
    fn fewer_misses_is_a_speedup() {
        let m = LatencyModel::typical();
        let worse = run(100, 50, 50);
        let better = run(100, 80, 20);
        assert!(m.speedup(&worse, &better) > 1.0);
        assert!((m.speedup(&worse, &worse) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn amat_is_weighted_latency() {
        let m = LatencyModel {
            l1_hit: 1.0,
            llc_hit: 10.0,
            memory: 100.0,
        };
        let r = run(0, 0, 10);
        // Every access goes to memory: 1 + 10 + 100 = 111.
        assert!((m.amat(&r) - 111.0).abs() < 1e-9);
        let r2 = run(10, 0, 0);
        assert!((m.amat(&r2) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_run_has_zero_amat() {
        let m = LatencyModel::typical();
        let r = run(0, 0, 0);
        assert_eq!(m.amat(&r), 0.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn rejects_negative_latency() {
        let m = LatencyModel {
            l1_hit: -1.0,
            llc_hit: 1.0,
            memory: 1.0,
        };
        let _ = m.cycles(&run(1, 1, 1));
    }
}

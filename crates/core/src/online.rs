//! Incremental sliding-window sharing characterization for live
//! streaming sessions.
//!
//! The offline pipeline annotates a *complete* recorded stream in one
//! fused backward scan ([`compute_annotations`](crate::compute_annotations)):
//! `shared_soon[i]` asks whether a core other than access `i`'s issuer
//! touches the same block within the next `window` accesses. A live
//! session cannot scan backward from the future, so
//! [`OnlineCharacterizer`] maintains the same per-block recurrence
//! *forward* over a sliding window of the last `window` accesses:
//!
//! * **Sharing taxonomy per access** — private vs shared read-only vs
//!   shared read-write, judged against the cores that touched the block
//!   within the window (the windowed form of the paper's
//!   generation-granular classes).
//! * **Predictor accuracy** — each access predicts its own `shared_soon`
//!   bit from history ("a different core touched this block within the
//!   window"), and the prediction resolves against ground truth as the
//!   stream advances: *shared* the moment a different core touches the
//!   block within `window` accesses, *not shared* when the access slides
//!   out of the window untouched. Ground truth is exact: after
//!   [`OnlineCharacterizer::finish`], the shared-resolution count equals
//!   the offline pass's `shared_soon` popcount (asserted in tests).
//!
//! State is bounded by the window: one ring entry plus at most one
//! pending prediction per in-window access, and a per-block touch table
//! that drains as accesses expire. The whole state checkpoints to JSON
//! ([`OnlineCharacterizer::to_json`]) and restores bit-identically
//! ([`OnlineCharacterizer::from_json`]), which is how `llc-serve`
//! sessions survive a daemon drain/restart.

use std::collections::VecDeque;

use fxhash::FxHashMap;
use llc_sim::{AccessKind, BlockAddr, CoreId, MemAccess, MAX_CORES};

use crate::json::Value;

/// Cumulative counters of an [`OnlineCharacterizer`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OnlineTally {
    /// Accesses pushed.
    pub accesses: u64,
    /// Read accesses.
    pub reads: u64,
    /// Write accesses.
    pub writes: u64,
    /// Accesses whose block was already touched within the window.
    pub reuses: u64,
    /// Reuses where a *different* core touched the block within the
    /// window.
    pub shared_reuses: u64,
    /// Accesses classified private (no other core in the window).
    pub private_accesses: u64,
    /// Accesses classified shared read-only.
    pub ro_shared_accesses: u64,
    /// Accesses classified shared read-write.
    pub rw_shared_accesses: u64,
    /// Predictions with a resolved ground truth.
    pub predictions_resolved: u64,
    /// Resolved predictions that matched the ground truth.
    pub predictions_correct: u64,
    /// Resolved predictions whose ground truth was *shared* — the online
    /// mirror of the offline `shared_soon` popcount.
    pub resolved_shared: u64,
}

/// A point-in-time snapshot of an [`OnlineCharacterizer`]:
/// the cumulative tally plus the live window occupancy.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct OnlineStats {
    /// The configured window, in accesses.
    pub window: u64,
    /// Cumulative counters.
    pub tally: OnlineTally,
    /// Distinct blocks currently inside the window.
    pub blocks_in_window: u64,
    /// Predictions not yet resolved (their windows are still open).
    pub predictions_pending: u64,
}

impl OnlineStats {
    /// Fraction of reuses served by a block another core touched within
    /// the window (0 when nothing reused yet).
    pub fn shared_reuse_fraction(&self) -> f64 {
        if self.tally.reuses == 0 {
            0.0
        } else {
            self.tally.shared_reuses as f64 / self.tally.reuses as f64
        }
    }

    /// Accuracy of the history-based `shared_soon` predictor over the
    /// resolved predictions (0 when nothing resolved yet).
    pub fn accuracy(&self) -> f64 {
        if self.tally.predictions_resolved == 0 {
            0.0
        } else {
            self.tally.predictions_correct as f64 / self.tally.predictions_resolved as f64
        }
    }
}

/// Per-core touch counts of one block inside the window.
#[derive(Debug, Clone, Copy)]
struct CoreTouches {
    core: u8,
    count: u32,
    writes: u32,
}

/// One not-yet-resolved `shared_soon` prediction.
#[derive(Debug, Clone, Copy)]
struct Pending {
    index: u64,
    core: u8,
    predicted: bool,
}

#[derive(Debug, Default)]
struct BlockState {
    touches: Vec<CoreTouches>,
    pending: Vec<Pending>,
}

impl BlockState {
    fn total(&self) -> u64 {
        self.touches.iter().map(|t| u64::from(t.count)).sum()
    }

    fn touched_by_other(&self, core: u8) -> bool {
        self.touches.iter().any(|t| t.core != core && t.count > 0)
    }

    fn any_write(&self) -> bool {
        self.touches.iter().any(|t| t.writes > 0)
    }
}

#[derive(Debug, Clone, Copy)]
struct RingEntry {
    block: u64,
    core: u8,
    write: bool,
}

/// The incremental sliding-window characterizer. See the module docs.
#[derive(Debug)]
pub struct OnlineCharacterizer {
    window: u64,
    clock: u64,
    ring: VecDeque<RingEntry>,
    blocks: FxHashMap<u64, BlockState>,
    tally: OnlineTally,
}

impl OnlineCharacterizer {
    /// Creates a characterizer over a sliding window of `window`
    /// accesses (clamped to at least 1).
    pub fn new(window: u64) -> Self {
        OnlineCharacterizer {
            window: window.max(1),
            clock: 0,
            ring: VecDeque::new(),
            blocks: FxHashMap::default(),
            tally: OnlineTally::default(),
        }
    }

    /// The configured window, in accesses.
    pub fn window(&self) -> u64 {
        self.window
    }

    /// Accesses pushed so far.
    pub fn len(&self) -> u64 {
        self.clock
    }

    /// `true` if nothing was pushed yet.
    pub fn is_empty(&self) -> bool {
        self.clock == 0
    }

    /// A snapshot of the counters and window occupancy.
    pub fn stats(&self) -> OnlineStats {
        OnlineStats {
            window: self.window,
            tally: self.tally,
            blocks_in_window: self.blocks.len() as u64,
            predictions_pending: self.blocks.values().map(|s| s.pending.len() as u64).sum(),
        }
    }

    /// Index of the ring's front entry.
    fn front_index(&self) -> u64 {
        self.clock - self.ring.len() as u64
    }

    /// Expires every window entry with index `< upto`, resolving its
    /// still-pending prediction as *not shared*.
    fn expire_below(&mut self, upto: u64) {
        while self.front_index() < upto {
            let index = self.front_index();
            let entry = self.ring.pop_front().expect("front_index < clock");
            let Some(state) = self.blocks.get_mut(&entry.block) else {
                debug_assert!(false, "ring entry without block state");
                continue;
            };
            if let Some(pos) = state.pending.iter().position(|p| p.index == index) {
                let p = state.pending.remove(pos);
                self.tally.predictions_resolved += 1;
                if !p.predicted {
                    self.tally.predictions_correct += 1;
                }
            }
            if let Some(pos) = state
                .touches
                .iter()
                .position(|t| t.core == entry.core && t.count > 0)
            {
                state.touches[pos].count -= 1;
                if entry.write {
                    state.touches[pos].writes -= 1;
                }
                if state.touches[pos].count == 0 {
                    state.touches.remove(pos);
                }
            }
            if state.touches.is_empty() {
                debug_assert!(state.pending.is_empty(), "pending without live touches");
                self.blocks.remove(&entry.block);
            }
        }
    }

    /// Pushes one access: classifies it against the current window,
    /// resolves any predictions its arrival settles, and registers its
    /// own `shared_soon` prediction.
    pub fn push(&mut self, core: CoreId, block: BlockAddr, kind: AccessKind) {
        let index = self.clock;
        let core = core.index().min(MAX_CORES - 1) as u8;
        let block = block.raw();
        let write = kind.is_write();
        self.expire_below(index.saturating_sub(self.window));

        let state = self.blocks.entry(block).or_default();
        let reuse = state.total() > 0;
        let shared = state.touched_by_other(core);
        let any_write = state.any_write() || write;
        self.tally.accesses += 1;
        if write {
            self.tally.writes += 1;
        } else {
            self.tally.reads += 1;
        }
        if reuse {
            self.tally.reuses += 1;
            if shared {
                self.tally.shared_reuses += 1;
            }
        }
        if !shared {
            self.tally.private_accesses += 1;
        } else if any_write {
            self.tally.rw_shared_accesses += 1;
        } else {
            self.tally.ro_shared_accesses += 1;
        }

        // This access is the "different core touches the block" event for
        // every pending prediction made by another core: their windows
        // are open (unexpired), so their ground truth is *shared*.
        let mut resolved_shared = 0u64;
        let mut correct = 0u64;
        state.pending.retain(|p| {
            if p.core == core {
                return true;
            }
            resolved_shared += 1;
            if p.predicted {
                correct += 1;
            }
            false
        });
        self.tally.predictions_resolved += resolved_shared;
        self.tally.predictions_correct += correct;
        self.tally.resolved_shared += resolved_shared;

        // History-based prediction of this access's own shared_soon bit.
        state.pending.push(Pending {
            index,
            core,
            predicted: shared,
        });

        match state.touches.iter_mut().find(|t| t.core == core) {
            Some(t) => {
                t.count += 1;
                t.writes += u32::from(write);
            }
            None => state.touches.push(CoreTouches {
                core,
                count: 1,
                writes: u32::from(write),
            }),
        }
        self.ring.push_back(RingEntry { block, core, write });
        self.clock = index + 1;
    }

    /// Convenience wrapper over [`push`](Self::push) taking a raw trace
    /// record (block-granular address).
    pub fn push_access(&mut self, a: &MemAccess) {
        self.push(a.core, a.addr.block(), a.kind);
    }

    /// Ends the stream: slides the window past every in-flight access so
    /// all remaining predictions resolve as *not shared*. After this,
    /// `predictions_resolved == accesses` and `resolved_shared` equals
    /// the offline `shared_soon` popcount of the same access sequence.
    pub fn finish(&mut self) {
        self.expire_below(self.clock);
    }

    /// Serializes the complete state (tally, ring, pending predictions)
    /// to the checkpoint JSON shape. Blocks render as hex strings —
    /// block addresses can exceed the 2^53 integers JSON numbers carry
    /// exactly.
    pub fn to_json(&self) -> Value {
        let t = &self.tally;
        let ring = self
            .ring
            .iter()
            .map(|e| {
                Value::Array(vec![
                    Value::Str(format!("{:x}", e.block)),
                    Value::Num(f64::from(e.core)),
                    Value::Bool(e.write),
                ])
            })
            .collect();
        let mut pending: Vec<(u64, &Pending, u64)> = Vec::new();
        for (block, state) in &self.blocks {
            for p in &state.pending {
                pending.push((p.index, p, *block));
            }
        }
        // Deterministic order (map iteration is not).
        pending.sort_by_key(|(index, _, _)| *index);
        let pending = pending
            .into_iter()
            .map(|(_, p, block)| {
                Value::Array(vec![
                    Value::Num(p.index as f64),
                    Value::Str(format!("{block:x}")),
                    Value::Num(f64::from(p.core)),
                    Value::Bool(p.predicted),
                ])
            })
            .collect();
        Value::object(vec![
            ("version", Value::Num(1.0)),
            ("window", Value::Num(self.window as f64)),
            ("clock", Value::Num(self.clock as f64)),
            (
                "tally",
                Value::object(vec![
                    ("accesses", Value::Num(t.accesses as f64)),
                    ("reads", Value::Num(t.reads as f64)),
                    ("writes", Value::Num(t.writes as f64)),
                    ("reuses", Value::Num(t.reuses as f64)),
                    ("shared_reuses", Value::Num(t.shared_reuses as f64)),
                    ("private", Value::Num(t.private_accesses as f64)),
                    ("ro_shared", Value::Num(t.ro_shared_accesses as f64)),
                    ("rw_shared", Value::Num(t.rw_shared_accesses as f64)),
                    ("resolved", Value::Num(t.predictions_resolved as f64)),
                    ("correct", Value::Num(t.predictions_correct as f64)),
                    ("resolved_shared", Value::Num(t.resolved_shared as f64)),
                ]),
            ),
            ("ring", Value::Array(ring)),
            ("pending", Value::Array(pending)),
        ])
    }

    /// Restores a characterizer from [`to_json`](Self::to_json) output.
    /// The per-block touch table is rebuilt from the ring; restored state
    /// behaves bit-identically to the uninterrupted original.
    ///
    /// # Errors
    ///
    /// A human-readable message for any structural mismatch (wrong
    /// version, missing field, malformed entry).
    pub fn from_json(v: &Value) -> Result<Self, String> {
        let version = v
            .field("version")
            .and_then(Value::as_u64)
            .ok_or("checkpoint missing version")?;
        if version != 1 {
            return Err(format!(
                "unsupported characterizer checkpoint version {version}"
            ));
        }
        let window = v
            .field("window")
            .and_then(Value::as_u64)
            .ok_or("checkpoint missing window")?;
        let clock = v
            .field("clock")
            .and_then(Value::as_u64)
            .ok_or("checkpoint missing clock")?;
        let t = v.field("tally").ok_or("checkpoint missing tally")?;
        let tn = |name: &str| -> Result<u64, String> {
            t.field(name)
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("tally missing {name}"))
        };
        let tally = OnlineTally {
            accesses: tn("accesses")?,
            reads: tn("reads")?,
            writes: tn("writes")?,
            reuses: tn("reuses")?,
            shared_reuses: tn("shared_reuses")?,
            private_accesses: tn("private")?,
            ro_shared_accesses: tn("ro_shared")?,
            rw_shared_accesses: tn("rw_shared")?,
            predictions_resolved: tn("resolved")?,
            predictions_correct: tn("correct")?,
            resolved_shared: tn("resolved_shared")?,
        };
        let hex = |v: &Value| -> Result<u64, String> {
            let s = v.as_str().ok_or("block must be a hex string")?;
            u64::from_str_radix(s, 16).map_err(|e| format!("bad block {s:?}: {e}"))
        };
        let mut this = OnlineCharacterizer::new(window.max(1));
        this.clock = clock;
        this.tally = tally;
        let ring = v
            .field("ring")
            .and_then(Value::as_array)
            .ok_or("checkpoint missing ring")?;
        if ring.len() as u64 > clock {
            return Err("ring longer than clock".to_string());
        }
        for e in ring {
            let e = e.as_array().ok_or("ring entry must be an array")?;
            let [block, core, write] = e else {
                return Err("ring entry must have 3 fields".to_string());
            };
            let entry = RingEntry {
                block: hex(block)?,
                core: core
                    .as_u64()
                    .filter(|&c| c < MAX_CORES as u64)
                    .ok_or("ring core out of range")? as u8,
                write: matches!(write, Value::Bool(true)),
            };
            let state = this.blocks.entry(entry.block).or_default();
            match state.touches.iter_mut().find(|t| t.core == entry.core) {
                Some(t) => {
                    t.count += 1;
                    t.writes += u32::from(entry.write);
                }
                None => state.touches.push(CoreTouches {
                    core: entry.core,
                    count: 1,
                    writes: u32::from(entry.write),
                }),
            }
            this.ring.push_back(entry);
        }
        let pending = v
            .field("pending")
            .and_then(Value::as_array)
            .ok_or("checkpoint missing pending")?;
        for p in pending {
            let p = p.as_array().ok_or("pending entry must be an array")?;
            let [index, block, core, predicted] = p else {
                return Err("pending entry must have 4 fields".to_string());
            };
            let index = index.as_u64().ok_or("pending index must be an integer")?;
            if index >= clock || index < clock - this.ring.len() as u64 {
                return Err("pending index outside the ring".to_string());
            }
            let block = hex(block)?;
            let state = this
                .blocks
                .get_mut(&block)
                .ok_or("pending prediction on a block outside the window")?;
            state.pending.push(Pending {
                index,
                core: core
                    .as_u64()
                    .filter(|&c| c < MAX_CORES as u64)
                    .ok_or("pending core out of range")? as u8,
                predicted: matches!(predicted, Value::Bool(true)),
            });
        }
        Ok(this)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::{compute_annotations, record_stream};
    use llc_sim::HierarchyConfig;
    use llc_trace::{App, Scale, StreamAccess};

    fn push_raw(c: &mut OnlineCharacterizer, core: usize, block: u64, write: bool) {
        c.push(
            CoreId::new(core),
            BlockAddr::new(block),
            if write {
                AccessKind::Write
            } else {
                AccessKind::Read
            },
        );
    }

    #[test]
    fn classifies_private_ro_and_rw_sharing() {
        let mut c = OnlineCharacterizer::new(16);
        push_raw(&mut c, 0, 1, false); // private
        push_raw(&mut c, 0, 1, false); // still private (same core)
        push_raw(&mut c, 1, 1, false); // shared RO
        push_raw(&mut c, 2, 1, true); // shared RW (this write)
        push_raw(&mut c, 0, 1, false); // shared RW (window holds the write)
        let s = c.stats();
        assert_eq!(s.tally.accesses, 5);
        assert_eq!(s.tally.private_accesses, 2);
        assert_eq!(s.tally.ro_shared_accesses, 1);
        assert_eq!(s.tally.rw_shared_accesses, 2);
        assert_eq!(s.tally.reuses, 4);
        assert_eq!(s.tally.shared_reuses, 3);
        assert_eq!(s.blocks_in_window, 1);
    }

    #[test]
    fn window_expiry_forgets_old_sharing() {
        let mut c = OnlineCharacterizer::new(2);
        push_raw(&mut c, 0, 7, false);
        push_raw(&mut c, 1, 8, false);
        push_raw(&mut c, 1, 9, false);
        // Block 7's touch (index 0) has expired: index 3 - window 2 = 1 > 0.
        push_raw(&mut c, 1, 7, false);
        let s = c.stats();
        assert_eq!(s.tally.reuses, 0, "expired touches are not reuses");
        assert_eq!(s.tally.private_accesses, 4);
    }

    #[test]
    fn predictions_resolve_to_exact_ground_truth() {
        let mut c = OnlineCharacterizer::new(4);
        push_raw(&mut c, 0, 1, false); // predicts not-shared; core 1 at idx 2 → shared
        push_raw(&mut c, 0, 2, false); // predicts not-shared; never touched again → not shared
        push_raw(&mut c, 1, 1, false); // resolves idx 0 (actual shared, predicted false)
        c.finish();
        let s = c.stats();
        assert_eq!(s.tally.predictions_resolved, 3);
        assert_eq!(s.tally.resolved_shared, 1, "only idx 0 was shared-soon");
        // idx 0 predicted false but was shared (wrong); idx 1 predicted
        // false, not shared (right); idx 2 predicted shared (block 1 core 0
        // in window) and after finish resolves not-shared (wrong).
        assert_eq!(s.tally.predictions_correct, 1);
        assert_eq!(s.predictions_pending, 0);
    }

    #[test]
    fn matches_the_offline_fused_prepass_ground_truth() {
        // The online resolution of shared_soon must agree with the exact
        // offline backward scan on the same access sequence and window.
        let cfg = HierarchyConfig::tiny();
        for app in [App::Bodytrack, App::Fft, App::Dedup] {
            let stream = record_stream(&cfg, app.workload(cfg.cores, Scale::Tiny)).expect("record");
            for window in [8u64, 64, 1024] {
                let offline = compute_annotations(&stream, window);
                let expected = offline.shared_soon.iter().filter(|&&b| b).count() as u64;
                let mut online = OnlineCharacterizer::new(window);
                for a in stream.accesses() {
                    online.push(a.core, a.block, a.kind);
                }
                online.finish();
                let s = online.stats();
                assert_eq!(
                    s.tally.resolved_shared, expected,
                    "{app:?} window {window}: online ground truth diverged"
                );
                assert_eq!(s.tally.predictions_resolved, stream.len() as u64);
            }
        }
    }

    #[test]
    fn checkpoint_restores_bit_identically() {
        let cfg = HierarchyConfig::tiny();
        let stream =
            record_stream(&cfg, App::Bodytrack.workload(cfg.cores, Scale::Tiny)).expect("record");
        let accesses: Vec<_> = stream.accesses().collect();
        let split = accesses.len() / 3;
        for window in [16u64, 256] {
            // Uninterrupted run.
            let mut whole = OnlineCharacterizer::new(window);
            for a in &accesses {
                whole.push(a.core, a.block, a.kind);
            }
            // Run interrupted by a JSON round-trip mid-stream.
            let mut first = OnlineCharacterizer::new(window);
            for a in &accesses[..split] {
                first.push(a.core, a.block, a.kind);
            }
            let json = first.to_json().render();
            let parsed = crate::json::parse(&json).expect("checkpoint parses");
            let mut restored = OnlineCharacterizer::from_json(&parsed).expect("restore");
            for a in &accesses[split..] {
                restored.push(a.core, a.block, a.kind);
            }
            assert_eq!(restored.stats(), whole.stats(), "window {window}");
            whole.finish();
            restored.finish();
            assert_eq!(
                restored.stats(),
                whole.stats(),
                "window {window} after finish"
            );
        }
    }

    #[test]
    fn corrupt_checkpoints_are_errors_not_panics() {
        let mut c = OnlineCharacterizer::new(8);
        push_raw(&mut c, 0, 0xabc, true);
        push_raw(&mut c, 1, 0xabc, false);
        let good = c.to_json().render();
        assert!(OnlineCharacterizer::from_json(
            &crate::json::parse(&good.replace("\"version\":1", "\"version\":9")).unwrap()
        )
        .is_err());
        assert!(OnlineCharacterizer::from_json(
            &crate::json::parse(&good.replace("\"clock\":2", "\"clock\":0")).unwrap()
        )
        .is_err());
        assert!(
            OnlineCharacterizer::from_json(&crate::json::parse("{}").unwrap()).is_err(),
            "empty object is rejected"
        );
    }
}

//! Time-resolved sharing behaviour (experiment `fig11`).
//!
//! [`EpochSeries`] slices the LLC access stream into fixed-length epochs
//! and records, per epoch, the share of hits that landed on
//! already-shared generations. Phase-structured applications (`fft`,
//! `ocean`, `mgrid`) show sharing arriving in bursts aligned with their
//! communication phases — the time-varying behaviour that history-based
//! fill-time predictors cannot track, i.e. the mechanism behind the
//! paper's negative predictor result.

use llc_sim::{AccessCtx, LiveGeneration, LlcObserver};

/// Per-epoch counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EpochStat {
    /// LLC accesses in the epoch.
    pub accesses: u64,
    /// LLC hits in the epoch.
    pub hits: u64,
    /// Hits whose target generation had ≥ 2 sharers at hit time.
    pub shared_hits: u64,
    /// Fills (misses) in the epoch.
    pub fills: u64,
}

impl EpochStat {
    /// Fraction of this epoch's hits that were to shared-so-far
    /// generations.
    pub fn shared_hit_fraction(&self) -> f64 {
        if self.hits == 0 {
            0.0
        } else {
            self.shared_hits as f64 / self.hits as f64
        }
    }

    /// Epoch miss ratio.
    pub fn miss_ratio(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.fills as f64 / self.accesses as f64
        }
    }
}

/// Observer splitting the run into fixed-size epochs.
#[derive(Debug)]
pub struct EpochSeries {
    epoch_len: u64,
    epochs: Vec<EpochStat>,
}

impl EpochSeries {
    /// Creates a series with `epoch_len` LLC accesses per epoch.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_len` is zero.
    pub fn new(epoch_len: u64) -> Self {
        assert!(epoch_len > 0, "epoch length must be non-zero");
        EpochSeries {
            epoch_len,
            epochs: Vec::new(),
        }
    }

    fn epoch_at(&mut self, time: u64) -> &mut EpochStat {
        let idx = (time / self.epoch_len) as usize;
        if self.epochs.len() <= idx {
            self.epochs.resize(idx + 1, EpochStat::default());
        }
        &mut self.epochs[idx]
    }

    /// The completed series.
    pub fn epochs(&self) -> &[EpochStat] {
        &self.epochs
    }

    /// Coefficient of variation of the per-epoch shared-hit fraction — a
    /// single number summarizing how phase-bursty an application's sharing
    /// is (≈ 0 for steady sharing, large for bursty sharing).
    pub fn sharing_burstiness(&self) -> f64 {
        let vals: Vec<f64> = self
            .epochs
            .iter()
            .filter(|e| e.hits > 0)
            .map(EpochStat::shared_hit_fraction)
            .collect();
        if vals.len() < 2 {
            return 0.0;
        }
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        if mean == 0.0 {
            return 0.0;
        }
        let var = vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / vals.len() as f64;
        var.sqrt() / mean
    }
}

impl LlcObserver for EpochSeries {
    fn on_hit(&mut self, ctx: &AccessCtx, live: &LiveGeneration, _was_new_sharer: bool) {
        let shared = live.is_shared_so_far();
        let e = self.epoch_at(ctx.time);
        e.accesses += 1;
        e.hits += 1;
        if shared {
            e.shared_hits += 1;
        }
    }

    fn on_fill(&mut self, ctx: &AccessCtx) {
        let e = self.epoch_at(ctx.time);
        e.accesses += 1;
        e.fills += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{AccessKind, Aux, BlockAddr, CoreId, Pc};

    fn ctx(time: u64) -> AccessCtx {
        AccessCtx {
            block: BlockAddr::new(1),
            pc: Pc::new(0x400),
            core: CoreId::new(0),
            kind: AccessKind::Read,
            time,
            aux: Aux::default(),
        }
    }

    fn live(shared: bool) -> LiveGeneration {
        LiveGeneration {
            block: BlockAddr::new(1),
            sharer_mask: if shared { 0b11 } else { 0b1 },
            writer_mask: 0,
            hits: 1,
            fill_core: CoreId::new(0),
            fill_time: 0,
        }
    }

    #[test]
    fn buckets_by_epoch() {
        let mut s = EpochSeries::new(10);
        s.on_fill(&ctx(0));
        s.on_hit(&ctx(5), &live(true), false);
        s.on_hit(&ctx(12), &live(false), false);
        assert_eq!(s.epochs().len(), 2);
        assert_eq!(s.epochs()[0].accesses, 2);
        assert_eq!(s.epochs()[0].fills, 1);
        assert_eq!(s.epochs()[0].shared_hits, 1);
        assert_eq!(s.epochs()[1].hits, 1);
        assert_eq!(s.epochs()[1].shared_hits, 0);
        assert!((s.epochs()[0].shared_hit_fraction() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn burstiness_zero_for_steady_sharing() {
        let mut s = EpochSeries::new(2);
        for t in 0..20 {
            s.on_hit(&ctx(t), &live(true), false);
        }
        assert!(s.sharing_burstiness() < 1e-12);
    }

    #[test]
    fn burstiness_positive_for_phased_sharing() {
        let mut s = EpochSeries::new(10);
        for t in 0..100 {
            // Sharing only in every other epoch.
            let shared = (t / 10) % 2 == 0;
            s.on_hit(&ctx(t), &live(shared), false);
        }
        assert!(s.sharing_burstiness() > 0.5);
    }

    #[test]
    fn miss_ratio_per_epoch() {
        let mut s = EpochSeries::new(4);
        s.on_fill(&ctx(0));
        s.on_fill(&ctx(1));
        s.on_hit(&ctx(2), &live(false), false);
        s.on_hit(&ctx(3), &live(false), false);
        assert!((s.epochs()[0].miss_ratio() - 0.5).abs() < 1e-12);
    }
}

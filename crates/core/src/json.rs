//! A minimal JSON reader/writer shared by the checkpoint manifest and the
//! `llc-serve` HTTP API.
//!
//! The workspace deliberately carries no serde dependency, and its JSON
//! documents only need objects, arrays, strings and small integers, so
//! this hand-rolled implementation covers exactly that: full string
//! escaping (including `\uXXXX`), numbers parsed as `f64`, and strict
//! errors on trailing garbage or malformed input.
//!
//! [`table_to_json`] / [`table_from_json`] define the canonical JSON shape
//! of a rendered [`Table`], used both by the suite checkpoint manifest and
//! by the persistent result store behind `llc-serve`.

use crate::report::Table;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Object as an ordered list of `(key, value)` pairs.
    Object(Vec<(String, Value)>),
    /// Array.
    Array(Vec<Value>),
    /// String.
    Str(String),
    /// Number (the manifest only uses small non-negative integers).
    Num(f64),
    /// Boolean.
    Bool(bool),
    /// Null.
    Null,
}

impl Value {
    /// Builds an object from `(&str, Value)` pairs.
    pub fn object(fields: Vec<(&str, Value)>) -> Value {
        Value::Object(
            fields
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a field if this is an object.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Object(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(v) => Some(v),
            _ => None,
        }
    }

    /// The number as a `u64`, if this is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// Serializes to compact JSON.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out);
        out
    }

    fn render_into(&self, out: &mut String) {
        match self {
            Value::Object(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render_into(out);
                }
                out.push('}');
            }
            Value::Array(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_into(out);
                }
                out.push(']');
            }
            Value::Str(s) => escape_into(s, out),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    out.push_str(&format!("{}", *n as i64));
                } else {
                    out.push_str(&format!("{n}"));
                }
            }
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Null => out.push_str("null"),
        }
    }
}

fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses a complete JSON document; trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing garbage at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn consume(&mut self, b: u8) -> Result<(), String> {
        if self.peek()? == b {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => self.string().map(Value::Str),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!(
                "unexpected character {:?} at byte {}",
                other as char, self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, String> {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected {word:?} at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.consume(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            if self.peek()? != b'"' {
                return Err(format!("expected object key at byte {}", self.pos));
            }
            let key = self.string()?;
            self.consume(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}', found {:?} at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.consume(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']', found {:?} at byte {}",
                        other as char, self.pos
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.consume(b'"')?;
        let mut out = String::new();
        loop {
            let b = *self
                .bytes
                .get(self.pos)
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = *self
                        .bytes
                        .get(self.pos)
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| "truncated \\u escape".to_string())?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| "non-ASCII in \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape {hex:?}"))?;
                            self.pos += 4;
                            // Surrogates never appear in our own output;
                            // map them to U+FFFD rather than erroring so
                            // foreign manifests still load.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        other => return Err(format!("bad escape \\{}", other as char)),
                    }
                }
                _ => {
                    // Multi-byte UTF-8: copy the whole character through.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| "truncated UTF-8 sequence".to_string())?;
                    let s = std::str::from_utf8(chunk)
                        .map_err(|_| "invalid UTF-8 in string".to_string())?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        self.skip_ws();
        let start = self.pos;
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9') {
                self.pos += 1;
            } else {
                break;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            // infallible: the scanned range contains only ASCII digit/sign bytes.
            .expect("number slice is ASCII");
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number {text:?}"))
    }
}

/// Encodes a [`Table`] as the canonical JSON object
/// (`{"title","headers","rows","notes"}`) used by checkpoint manifests
/// and the `llc-serve` result store.
pub fn table_to_json(t: &Table) -> Value {
    let strings = |v: &[String]| Value::Array(v.iter().map(|s| Value::Str(s.clone())).collect());
    Value::object(vec![
        ("title", Value::Str(t.title.clone())),
        ("headers", strings(&t.headers)),
        (
            "rows",
            Value::Array(t.rows.iter().map(|r| strings(r)).collect()),
        ),
        ("notes", strings(&t.notes)),
    ])
}

/// Decodes a [`Table`] from its canonical JSON object, validating the
/// shape (string cells, rows as wide as the header).
///
/// # Errors
///
/// Returns a human-readable description of the first structural problem.
pub fn table_from_json(v: &Value) -> Result<Table, String> {
    let strings = |v: Option<&Value>, what: &str| -> Result<Vec<String>, String> {
        v.and_then(Value::as_array)
            .ok_or_else(|| format!("table missing {what}"))?
            .iter()
            .map(|s| {
                s.as_str()
                    .map(str::to_string)
                    .ok_or_else(|| format!("non-string in {what}"))
            })
            .collect()
    };
    let title = v
        .field("title")
        .and_then(Value::as_str)
        .ok_or("table missing title")?
        .to_string();
    let headers = strings(v.field("headers"), "headers")?;
    let rows = v
        .field("rows")
        .and_then(Value::as_array)
        .ok_or("table missing rows")?
        .iter()
        .map(|r| strings(Some(r), "row"))
        .collect::<Result<Vec<_>, _>>()?;
    for row in &rows {
        if row.len() != headers.len() {
            return Err(format!("ragged row in table {title:?}"));
        }
    }
    let notes = strings(v.field("notes"), "notes")?;
    Ok(Table {
        title,
        headers,
        rows,
        notes,
    })
}

fn utf8_width(first: u8) -> usize {
    match first {
        0x00..=0x7F => 1,
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_nested_values() {
        let v = Value::object(vec![
            ("version", Value::Num(1.0)),
            (
                "entries",
                Value::Array(vec![Value::object(vec![
                    ("id", Value::Str("fig7 — 100% \"done\"\n".into())),
                    ("ok", Value::Bool(true)),
                    ("none", Value::Null),
                ])]),
            ),
        ]);
        let text = v.render();
        assert_eq!(parse(&text).expect("own output parses"), v);
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\" 1}",
            "\"unterminated",
            "{} trailing",
            "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        let v = parse("\"a\\u00e9b\\u0041, raw é too\"").expect("parse");
        assert_eq!(v.as_str(), Some("aébA, raw é too"));
    }

    #[test]
    fn tables_round_trip_through_json() {
        let mut t = Table::new("T — «x»", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("note with \"quotes\"");
        let back = table_from_json(&table_to_json(&t)).expect("round trip");
        assert_eq!(back.title, t.title);
        assert_eq!(back.headers, t.headers);
        assert_eq!(back.rows, t.rows);
        assert_eq!(back.notes, t.notes);
        assert!(table_from_json(&parse("{\"title\":\"x\"}").expect("parse")).is_err());
    }

    #[test]
    fn numbers_as_u64() {
        assert_eq!(parse("17").expect("parse").as_u64(), Some(17));
        assert_eq!(parse("-1").expect("parse").as_u64(), None);
        assert_eq!(parse("1.5").expect("parse").as_u64(), None);
    }
}

//! The stream-replay fast path: record the LLC reference stream once,
//! then replay any number of replacement policies directly against the
//! LLC — skipping trace generation and private-cache simulation entirely.
//!
//! # Why this is exact
//!
//! In the default non-inclusive hierarchy the LLC reference stream — the
//! demand accesses *and* the coherence upgrades that mutate resident lines
//! — is a pure function of the workload and the private caches,
//! independent of the LLC replacement policy (DESIGN.md "Why pre-passes
//! are exact"). [`record_stream`] captures that stream (plus the L1/L2
//! counters and instruction totals, which are equally policy-independent)
//! from one full-hierarchy run; [`replay`] then drives a bare
//! [`Llc`] with it, producing **bit-identical** [`LlcStats`] to a full
//! [`simulate`](crate::simulate) run of the same policy.
//!
//! # The inclusive-hierarchy caveat
//!
//! With [`Inclusion::Inclusive`] an LLC eviction back-invalidates private
//! copies, so the reference stream *depends on the LLC policy*: a stream
//! recorded under LRU is only an approximation of what another policy
//! would see. Recording is still permitted (the oracle pre-passes have
//! always used exactly this approximation for the `abl2` ablation), but
//! the replay drivers refuse inclusive configurations — measured runs
//! must fall back to full simulation there, and
//! [`simulate_opt`](crate::simulate_opt) /
//! [`simulate_oracle`](crate::simulate_oracle) do exactly that.

use std::collections::HashMap;
use std::sync::{Arc, LazyLock, Mutex};

use fxhash::FxHashMap;
use llc_policies::{mono, with_policy, OracleWrap, PolicyKind, ProtectMode, ReactiveWrap};
use llc_predictors::{PredictorWrap, SharingPredictor};
use llc_sim::{
    AuxProvider, BlockAddr, Cmp, ConfigError, CoreId, HierarchyConfig, Inclusion, Llc, LlcObserver,
    LlcStats, MemAccess, MultiObserver, NullObserver, PrivateCacheStats, RecordCmp,
    ReplacementPolicy, SimError, StateScope,
};
use llc_telemetry::metrics::{global, Counter, Gauge};
use llc_telemetry::spans;
use llc_trace::stream::OwnedAccessIter;
use llc_trace::view::ViewAccessIter;
use llc_trace::{
    AccessRecord, App, RecordedStream, Scale, ShardIndex, ShardIndexSlot, StreamAccess,
    StreamStore, StreamView, TraceSource, UpgradeEvent,
};

use crate::budget;
use crate::characterize::SharingProfile;
use crate::error::RunError;
use crate::runner::{
    oracle_window, CombinedProvider, NextUseProvider, OracleProvider, RunResult, StreamRecorder,
};
use crate::suite::pool::scoped_workers;

/// Global mirrors of [`StreamCacheStats`] plus the stream-recording
/// counter, resolved once and then touched with relaxed atomics only.
/// Counter bumps happen at the same sites as the per-cache stats, so
/// the `/metrics` view aggregates every cache in the process.
struct ReplayMetrics {
    records: Arc<Counter>,
    cache_hits: Arc<Counter>,
    cache_disk_hits: Arc<Counter>,
    cache_misses: Arc<Counter>,
    cache_evictions: Arc<Counter>,
    cache_disk_errors: Arc<Counter>,
    cache_quarantined: Arc<Counter>,
    cache_bytes: Arc<Gauge>,
    view_loads: Arc<Counter>,
    index_hits: Arc<Counter>,
    index_misses: Arc<Counter>,
}

static METRICS: LazyLock<ReplayMetrics> = LazyLock::new(|| ReplayMetrics {
    records: global().counter(
        "llc_stream_records_total",
        "Reference streams recorded with a full-hierarchy simulation",
    ),
    cache_hits: global().counter(
        "llc_stream_cache_hits_total",
        "Stream requests answered from process memory",
    ),
    cache_disk_hits: global().counter(
        "llc_stream_cache_disk_hits_total",
        "Stream requests answered by loading a .llcs file from the attached store",
    ),
    cache_misses: global().counter(
        "llc_stream_cache_misses_total",
        "Stream requests that had to record the stream with a full simulation",
    ),
    cache_evictions: global().counter(
        "llc_stream_cache_evictions_total",
        "Entries evicted from memory by the byte cap",
    ),
    cache_disk_errors: global().counter(
        "llc_stream_cache_disk_errors_total",
        "Stored-copy failures recovered by re-recording or shrugged off",
    ),
    cache_quarantined: global().counter_with(
        "llc_store_quarantined_total",
        "Corrupt store entries moved to quarantine/ instead of being deleted",
        &[("store", "streams")],
    ),
    cache_bytes: global().gauge(
        "llc_stream_cache_bytes",
        "Encoded stream bytes currently held in memory across all caches",
    ),
    view_loads: global().counter(
        "llc_stream_view_loads_total",
        "Disk hits loaded as zero-copy stream views (no per-record decode)",
    ),
    // Shard indexes are memory-resident DAG nodes; their hit/miss
    // series share the llc_dag_* names so one scrape covers the graph.
    index_hits: global().counter_with(
        "llc_dag_node_hits_total",
        "DAG nodes resolved from a cached artifact, by node kind",
        &[("kind", "index")],
    ),
    index_misses: global().counter_with(
        "llc_dag_node_misses_total",
        "DAG nodes that had to be computed, by node kind",
        &[("kind", "index")],
    ),
});

/// Records the policy-independent LLC reference stream of `trace` under
/// `config` with one full-hierarchy simulation (LRU in the LLC — the
/// recording policy is irrelevant to the stream in non-inclusive mode and
/// is the conventional approximation in inclusive mode).
///
/// # Errors
///
/// Returns [`RunError::Sim`] for an invalid configuration or an
/// out-of-range core id, and [`RunError::Trace`] if the source ends on a
/// decode error.
pub fn record_stream<W: TraceSource>(
    config: &HierarchyConfig,
    trace: W,
) -> Result<RecordedStream, RunError> {
    let _span = spans::span("record_stream");
    METRICS.records.inc();
    if config.inclusion == Inclusion::NonInclusive {
        // Non-inclusive: the stream is independent of LLC state, so the
        // record kernel skips LLC simulation entirely — private levels and
        // the coherence directory are the whole hierarchy.
        let kernel = RecordCmp::new(*config).map_err(SimError::from)?;
        record_stream_with(config, trace, kernel)
    } else {
        // Inclusive (approximation, see `compute_shared_soon`): the LLC's
        // back-invalidations shape the stream, so drive the full
        // hierarchy. The recording LLC is a concrete monomorphized LRU.
        let sets = config.llc.sets() as usize;
        let ways = config.llc.ways;
        let kernel = Cmp::new(*config, mono::lru(sets, ways)).map_err(SimError::from)?;
        record_stream_with(config, trace, kernel)
    }
}

/// A hierarchy the record loop can drive: the full [`Cmp`] (inclusive
/// configs) or the LLC-free [`RecordCmp`] (non-inclusive configs). The
/// loop monomorphizes per kernel, and the recorder observer is concrete,
/// so the record hot path compiles with zero virtual dispatch — the only
/// indirect call left per *trace record* is the generator's
/// `next_access`, batched below.
trait RecordKernel {
    fn check_access(&self, a: &MemAccess) -> Result<(), SimError>;
    fn access(&mut self, a: MemAccess, rec: &mut StreamRecorder);
    fn instructions(&self) -> u64;
    fn trace_accesses(&self) -> u64;
    fn l1_stats(&self) -> PrivateCacheStats;
    fn l2_stats(&self) -> PrivateCacheStats;
}

impl<P: ReplacementPolicy> RecordKernel for Cmp<P> {
    fn check_access(&self, a: &MemAccess) -> Result<(), SimError> {
        Cmp::check_access(self, a)
    }
    fn access(&mut self, a: MemAccess, rec: &mut StreamRecorder) {
        Cmp::access(self, a, rec);
    }
    fn instructions(&self) -> u64 {
        Cmp::instructions(self)
    }
    fn trace_accesses(&self) -> u64 {
        Cmp::trace_accesses(self)
    }
    fn l1_stats(&self) -> PrivateCacheStats {
        Cmp::l1_stats(self)
    }
    fn l2_stats(&self) -> PrivateCacheStats {
        Cmp::l2_stats(self)
    }
}

impl RecordKernel for RecordCmp {
    fn check_access(&self, a: &MemAccess) -> Result<(), SimError> {
        RecordCmp::check_access(self, a)
    }
    fn access(&mut self, a: MemAccess, rec: &mut StreamRecorder) {
        RecordCmp::access(self, a, rec);
    }
    fn instructions(&self) -> u64 {
        RecordCmp::instructions(self)
    }
    fn trace_accesses(&self) -> u64 {
        RecordCmp::trace_accesses(self)
    }
    fn l1_stats(&self) -> PrivateCacheStats {
        RecordCmp::l1_stats(self)
    }
    fn l2_stats(&self) -> PrivateCacheStats {
        RecordCmp::l2_stats(self)
    }
}

fn record_stream_with<W: TraceSource, K: RecordKernel>(
    config: &HierarchyConfig,
    mut trace: W,
    mut kernel: K,
) -> Result<RecordedStream, RunError> {
    let mut rec = StreamRecorder::with_capacity(trace.len_hint());
    let mut instr_deltas = Vec::with_capacity(rec.blocks.capacity());
    // Instructions accumulated since the previous LLC access; folded into
    // the next access's delta (an observer cannot see `instr_gap`, so the
    // recording loop threads it through here).
    let mut pending_instr = 0u64;
    // Batch trace generation so the generator's per-record virtual
    // dispatch and the private-cache probe loop stop interleaving: fill a
    // chunk of records, then simulate the chunk in one tight loop. The
    // chunk fits comfortably in L1d (4096 × 32 B), so the handoff costs
    // one extra pass over cache-resident data.
    const RECORD_CHUNK: usize = 4096;
    let mut chunk: Vec<MemAccess> = Vec::with_capacity(RECORD_CHUNK);
    loop {
        chunk.clear();
        while chunk.len() < RECORD_CHUNK {
            match trace.next_access() {
                Some(a) => chunk.push(a),
                None => break,
            }
        }
        for &a in &chunk {
            kernel.check_access(&a)?;
            pending_instr += u64::from(a.instr_gap.max(1));
            let before = rec.blocks.len();
            kernel.access(a, &mut rec);
            if rec.blocks.len() > before {
                instr_deltas.push(pending_instr);
                pending_instr = 0;
            }
        }
        if chunk.len() < RECORD_CHUNK {
            break;
        }
    }
    if let Some(e) = trace.take_error() {
        return Err(RunError::Trace(e));
    }
    Ok(RecordedStream {
        fingerprint: config.fingerprint(),
        blocks: rec.blocks,
        cores: rec.cores,
        pcs: rec.pcs,
        kinds: rec.kinds,
        instr_deltas,
        upgrades: rec.upgrades,
        instructions: kernel.instructions(),
        trace_accesses: kernel.trace_accesses(),
        l1: kernel.l1_stats(),
        l2: kernel.l2_stats(),
    })
}

fn check_replayable<S: StreamAccess>(config: &HierarchyConfig, stream: &S) -> Result<(), RunError> {
    config.validate().map_err(SimError::from)?;
    if config.inclusion == Inclusion::Inclusive {
        return Err(ConfigError::new(
            "stream replay requires a non-inclusive hierarchy (inclusive back-invalidations \
             make the LLC reference stream policy-dependent); run the full simulation instead",
        )
        .into());
    }
    if stream.fingerprint() != config.fingerprint() {
        return Err(ConfigError::new(format!(
            "recorded stream fingerprint {:#x} does not match hierarchy fingerprint {:#x}",
            stream.fingerprint(),
            config.fingerprint()
        ))
        .into());
    }
    Ok(())
}

/// Replays `policy` over a recorded stream (owned [`RecordedStream`],
/// zero-copy [`StreamView`] or cache-handle [`CachedStream`] — anything
/// [`StreamAccess`]): the `LlcOnly` driver. Only the LLC is simulated;
/// the result's L1/L2 counters and instruction totals come from the
/// recording. For any non-inclusive configuration the returned
/// [`LlcStats`](llc_sim::LlcStats) are bit-identical to a full
/// [`simulate`](crate::simulate) of the same policy over the same
/// workload — whichever stream representation drives it.
///
/// # Errors
///
/// Returns [`RunError::Sim`] if the configuration is invalid, inclusive
/// (see the module docs), or does not match the stream's fingerprint.
pub fn replay<S: StreamAccess>(
    config: &HierarchyConfig,
    policy: Box<dyn ReplacementPolicy>,
    aux: Option<Box<dyn AuxProvider>>,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    replay_on(
        config,
        policy,
        aux,
        stream,
        &mut MultiObserver::new(observers),
    )
}

/// The monomorphized replay driver: [`replay`] generic over the concrete
/// policy *and* observer types, so each (`P`, `O`) pair compiles its own
/// specialized inner loop — policy callbacks and observer hooks are
/// static calls (inlined for trivial hooks like [`NullObserver`]'s), and
/// a policy replayed without an aux provider skips the per-access virtual
/// `aux_for` call entirely. The `PolicyKind`-driven entry points
/// ([`replay_kind`] & co.) dispatch here through
/// [`with_policy!`](llc_policies::with_policy); [`replay`] is the
/// `Box<dyn>` compatibility wrapper for external policies.
///
/// All telemetry is phase-level: one span per replay, zero atomics on the
/// per-access path (see `tests/telemetry.rs`).
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_on<P, O, S>(
    config: &HierarchyConfig,
    policy: P,
    aux: Option<Box<dyn AuxProvider>>,
    stream: &S,
    obs: &mut O,
) -> Result<RunResult, RunError>
where
    P: ReplacementPolicy,
    O: LlcObserver + ?Sized,
    S: StreamAccess,
{
    check_replayable(config, stream)?;
    let mut llc = Llc::new(config.llc, policy);
    let _span = spans::span_with(|| format!("replay {}", llc.policy().name()));
    if let Some(aux) = aux {
        llc.set_aux_provider(aux);
    }
    let upgrades = stream.upgrades();
    let mut up = 0usize;
    // Next upgrade timestamp, hoisted so the common no-upgrade-due case
    // is one register compare per access instead of a bounds check plus
    // a load from the upgrade list.
    let mut next_at = upgrades.first().map_or(u64::MAX, |u| u.at);
    // The stream's own access iterator: lockstep plane walks for an
    // owned stream, in-place record decode for a view — either way the
    // inner loop is free of bounds checks and per-record virtual calls.
    for (i, a) in stream.accesses().enumerate() {
        // Upgrades recorded at LLC time `i` happened before access `i`.
        if i as u64 >= next_at {
            while up < upgrades.len() && upgrades[up].at <= i as u64 {
                llc.note_upgrade(upgrades[up].block, upgrades[up].core);
                obs.on_upgrade(upgrades[up].block, upgrades[up].core);
                up += 1;
            }
            next_at = upgrades.get(up).map_or(u64::MAX, |u| u.at);
        }
        llc.access(a.block, a.pc, a.core, a.kind, obs);
    }
    // Trailing upgrades (after the last access) land before the flush.
    while up < upgrades.len() {
        llc.note_upgrade(upgrades[up].block, upgrades[up].core);
        obs.on_upgrade(upgrades[up].block, upgrades[up].core);
        up += 1;
    }
    llc.flush(obs);
    Ok(RunResult {
        policy: llc.policy().name(),
        llc: llc.stats(),
        l1: stream.l1_stats(),
        l2: stream.l2_stats(),
        instructions: stream.instructions(),
        trace_accesses: stream.trace_accesses(),
    })
}

/// A thread-safe factory producing one replacement-policy instance per
/// shard of a set-sharded replay.
pub type PolicyFactory<'a> = &'a (dyn Fn() -> Box<dyn ReplacementPolicy> + Sync);

/// A thread-safe factory producing one aux provider per shard of a
/// set-sharded replay (providers built from [`Arc`]-shared annotation
/// vectors, so the factories are cheap).
pub type AuxFactory<'a> = &'a (dyn Fn() -> Box<dyn AuxProvider> + Sync);

/// The largest number of spare workers one replay will borrow from the
/// donation pool — a sanity bound far above any realistic core count,
/// not a tuning knob (the pool itself reflects the `--jobs` grant).
const MAX_DONATED_WORKERS: usize = 63;

/// Process-global override of the sharded-replay worker clamp; 0 means
/// "use `available_parallelism`" (the default).
static HOST_THREAD_OVERRIDE: std::sync::atomic::AtomicUsize =
    std::sync::atomic::AtomicUsize::new(0);

/// Overrides the number of host threads sharded replay clamps its worker
/// pool to; `None` restores the `available_parallelism` default.
///
/// A measurement knob, not a tuning knob: `benches/shard.rs` uses it to
/// record both the 1-thread floor (`Some(1)` — every shard runs inline,
/// which is what the ≥ 0.95× sequential gate measures) and the
/// multi-thread speedup on whatever host CI lands on. The override is
/// process-global and racy-by-design (a relaxed atomic): flipping it
/// mid-replay only changes how many workers the *next* replay spawns,
/// never the replayed bits.
pub fn set_host_thread_override(threads: Option<usize>) {
    HOST_THREAD_OVERRIDE.store(threads.unwrap_or(0), std::sync::atomic::Ordering::Relaxed);
}

/// Replays a stream split into contiguous set-range shards, one LLC (and
/// one policy instance, and one observer) per shard, fanned out over
/// scoped worker threads — the parallel twin of [`replay_on`].
///
/// Each shard's LLC covers only its set range but keeps the full
/// geometry for indexing, and is driven with the *global* stream index
/// as its logical clock ([`Llc::seek_time`]), so for any policy whose
/// state is per-set ([`StateScope::PerSet`]) the merged result is
/// **bit-identical** to the sequential replay: sets never interact, every
/// timestamp matches, and [`LlcStats`] merging is pure `u64` addition in
/// fixed shard order. The caller is responsible for the scope check —
/// the public wrappers ([`replay_kind_sharded`] & co.) fall back to
/// sequential replay for [`StateScope::Global`] policies.
///
/// Generic over the policy factory's return type, so the `PolicyKind`
/// entry points construct one *concrete* policy per shard — no `Box<dyn>`
/// allocation and no virtual dispatch inside any shard's loop. The loop
/// itself walks the shard's own gathered access planes
/// ([`llc_trace::StreamShard`]) front to back: sequential reads of
/// shard-compact arrays instead of strided gathers through the full
/// stream, which is what makes k shards on one host thread cost ~the
/// sequential replay instead of k× its memory traffic.
///
/// Returns the merged result plus the per-shard observers (in ascending
/// set order) for the caller to merge.
fn replay_sharded_on<P, O, S, FP, FO>(
    config: &HierarchyConfig,
    make_policy: &FP,
    make_aux: Option<AuxFactory<'_>>,
    stream: &S,
    index: &ShardIndex,
    make_obs: &FO,
) -> Result<(RunResult, Vec<O>), RunError>
where
    P: ReplacementPolicy,
    O: LlcObserver + Send,
    S: StreamAccess + Sync,
    FP: Fn() -> P + Sync + ?Sized,
    FO: Fn() -> O + Sync + ?Sized,
{
    check_replayable(config, stream)?;
    if index.sets() != config.llc.sets() {
        return Err(ConfigError::new(format!(
            "shard index built for {} sets cannot drive an LLC with {} sets",
            index.sets(),
            config.llc.sets()
        ))
        .into());
    }
    let shards = index.shards();
    let _span = spans::span_with(|| format!("replay_sharded x{}", shards.len()));
    let slots: Vec<Mutex<Option<(String, LlcStats, O)>>> =
        shards.iter().map(|_| Mutex::new(None)).collect();
    let run_shard = |w: usize| {
        let shard = &shards[w];
        let _span = spans::span_with(|| format!("shard {w}"));
        let mut llc = Llc::new_range(config.llc, make_policy(), shard.set_base, shard.set_len);
        if let Some(make_aux) = make_aux {
            llc.set_aux_provider(make_aux());
        }
        let mut obs = make_obs();
        let upgrades = stream.upgrades();
        let mut up = 0usize;
        let mut next_at = shard
            .upgrades
            .first()
            .map_or(u64::MAX, |&u| upgrades[u as usize].at);
        // Zipped like the sequential inner loop: one bounds check for the
        // whole walk instead of four per access.
        let planes = shard
            .accesses
            .iter()
            .zip(&shard.blocks)
            .zip(&shard.pcs)
            .zip(&shard.cores)
            .zip(&shard.kinds);
        for ((((&pos, &block), &pc), &core), &kind) in planes {
            let i = pos as u64;
            // Upgrades recorded at LLC time `i` happened before access
            // `i`; only this shard's upgrades touch this shard's lines.
            if i >= next_at {
                while up < shard.upgrades.len() {
                    let u = &upgrades[shard.upgrades[up] as usize];
                    if u.at > i {
                        break;
                    }
                    llc.note_upgrade(u.block, u.core);
                    obs.on_upgrade(u.block, u.core);
                    up += 1;
                }
                next_at = shard
                    .upgrades
                    .get(up)
                    .map_or(u64::MAX, |&u| upgrades[u as usize].at);
            }
            // The shard's logical clock is the *global* stream index, so
            // every timestamp the policy or observer sees (LRU order,
            // OPT next-use chains, generation spans) matches the
            // sequential run exactly.
            llc.seek_time(i);
            llc.access(block, pc, core, kind, &mut obs);
        }
        while up < shard.upgrades.len() {
            let u = &upgrades[shard.upgrades[up] as usize];
            llc.note_upgrade(u.block, u.core);
            obs.on_upgrade(u.block, u.core);
            up += 1;
        }
        llc.seek_time(stream.len() as u64);
        llc.flush(&mut obs);
        *lock_recovering(&slots[w]) = Some((llc.policy().name(), llc.stats(), obs));
    };
    // More shards than hardware threads just timeslice against each
    // other (context switches plus cache churn between shard working
    // sets), so clamp the thread count and let workers claim shards from
    // a counter; shard results land in fixed slots, so the merge order —
    // and the merged bits — don't depend on who ran what. One worker
    // means no spawn at all: the shards run inline back to back, which
    // is what makes k-shard replay on a single-thread host cost ~the
    // sequential replay.
    let host_threads = match HOST_THREAD_OVERRIDE.load(std::sync::atomic::Ordering::Relaxed) {
        0 => std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        n => n,
    };
    let workers = shards.len().min(host_threads);
    if workers <= 1 {
        for w in 0..shards.len() {
            run_shard(w);
        }
    } else {
        let next = std::sync::atomic::AtomicUsize::new(0);
        scoped_workers(workers, |_| loop {
            let w = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if w >= shards.len() {
                break;
            }
            run_shard(w);
        });
    }
    let _merge_span = spans::span("merge shards");
    let mut llc_stats = LlcStats::default();
    let mut policy = String::new();
    let mut observers = Vec::with_capacity(shards.len());
    for slot in slots {
        let (name, stats, obs) = slot
            .into_inner()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            // infallible: `scoped_workers` re-raises worker panics, so
            // reaching this line means every worker filled its slot.
            .expect("every shard slot is filled");
        llc_stats += stats;
        policy = name;
        observers.push(obs);
    }
    Ok((
        RunResult {
            policy,
            llc: llc_stats,
            l1: stream.l1_stats(),
            l2: stream.l2_stats(),
            instructions: stream.instructions(),
            trace_accesses: stream.trace_accesses(),
        },
        observers,
    ))
}

/// Set-sharded replay with no observers: stats only. See
/// [`replay_sharded_core`] for the exactness argument; the caller is
/// responsible for only passing per-set-state policies (the `*_sharded`
/// wrappers check and fall back).
///
/// # Errors
///
/// Same conditions as [`replay`], plus a config error if `index` was
/// built for a different set count.
pub fn replay_sharded<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    make_policy: PolicyFactory<'_>,
    make_aux: Option<AuxFactory<'_>>,
    stream: &S,
    index: &ShardIndex,
) -> Result<RunResult, RunError> {
    let (result, _) = replay_sharded_on(config, make_policy, make_aux, stream, index, &|| {
        NullObserver
    })?;
    Ok(result)
}

/// Process-global registry associating streams handed out by a
/// [`StreamCache`] with their lazily built [`ShardIndex`]es, so every
/// policy replaying the same recording shares one index build per shard
/// count. Streams are matched by allocation identity (the `Arc` the
/// cache holds), which is stable for as long as the stream is alive;
/// entries whose stream has been dropped (e.g. evicted by the cache's
/// byte cap) are pruned on the next registration, which bounds the
/// registry — and the indices it keeps alive — by the cache contents.
mod shard_registry {
    use std::collections::HashMap;
    use std::sync::{Arc, Mutex, Weak};

    use llc_trace::{RecordedStream, ShardIndexSlot};

    use super::lock_recovering;

    /// Per-stream cache of shard indices, keyed by (set count, shard
    /// count) — the same map type a view-backed stream carries in-struct
    /// (see [`llc_trace::StreamAccess::shard_slot`]).
    pub(super) type IndexMap = ShardIndexSlot;

    static REGISTRY: Mutex<Vec<(Weak<RecordedStream>, Arc<IndexMap>)>> = Mutex::new(Vec::new());

    /// Registers a cached stream (idempotent), pruning dead entries.
    pub(super) fn register(stream: &Arc<RecordedStream>) {
        let mut reg = lock_recovering(&REGISTRY);
        reg.retain(|(weak, _)| weak.strong_count() > 0);
        if reg
            .iter()
            .any(|(weak, _)| weak.upgrade().is_some_and(|s| Arc::ptr_eq(&s, stream)))
        {
            return;
        }
        reg.push((Arc::downgrade(stream), Arc::new(Mutex::new(HashMap::new()))));
    }

    /// The index map of the registered stream whose allocation sits at
    /// `addr` (see [`llc_trace::StreamAccess::registry_addr`]), or
    /// `None` for ad-hoc streams that never went through a cache. The
    /// `Weak` upgrade makes the raw-address comparison safe: a live
    /// registered allocation cannot share an address with anything else.
    pub(super) fn lookup(addr: usize) -> Option<Arc<IndexMap>> {
        let reg = lock_recovering(&REGISTRY);
        reg.iter()
            .find(|(weak, _)| {
                weak.upgrade()
                    .is_some_and(|s| Arc::as_ptr(&s) as *const u8 as usize == addr)
            })
            .map(|(_, map)| Arc::clone(map))
    }
}

/// Registers `stream` with the process-global shard-index registry, so
/// subsequent sharded replays of the *same* [`Arc`] share one
/// [`ShardIndex`] build per shard count instead of re-indexing the
/// stream on every call. Streams handed out by a [`StreamCache`] are
/// registered automatically; call this for ad-hoc streams (benchmarks,
/// tests, external drivers) that replay more than once. Idempotent;
/// entries die with their stream's last `Arc`.
pub fn register_stream(stream: &Arc<RecordedStream>) {
    shard_registry::register(stream);
}

/// Builds (or fetches) the shard index splitting `stream` over `shards`
/// contiguous set ranges. View-backed streams carry their own index
/// slot; owned streams handed out by a [`StreamCache`] cache their
/// indices in the allocation-identity registry — either way concurrent
/// replays of the same recording share one build, and ad-hoc streams
/// build privately (see [`register_stream`]). Returns `None` for streams
/// too large for `u32` index positions (the caller replays
/// sequentially).
fn shard_index_for<S: StreamAccess>(
    stream: &S,
    sets: u64,
    shards: usize,
) -> Option<Arc<ShardIndex>> {
    let fetch_or_build = |map: &mut HashMap<(u64, usize), Arc<ShardIndex>>| {
        if let Some(index) = map.get(&(sets, shards)) {
            METRICS.index_hits.inc();
            return Some(Arc::clone(index));
        }
        METRICS.index_misses.inc();
        let index = Arc::new(ShardIndex::build(stream, sets, shards)?);
        map.insert((sets, shards), Arc::clone(&index));
        Some(index)
    };
    if let Some(slot) = stream.shard_slot() {
        return fetch_or_build(&mut lock_recovering(slot));
    }
    match shard_registry::lookup(stream.registry_addr()) {
        Some(map) => fetch_or_build(&mut lock_recovering(&map)),
        None => {
            METRICS.index_misses.inc();
            ShardIndex::build(stream, sets, shards).map(Arc::new)
        }
    }
}

/// Replays a realistic policy ([`PolicyKind::Opt`] dispatches to
/// [`replay_opt`]).
///
/// With no observers attached, a per-set-state policy
/// ([`StateScope::PerSet`]) automatically borrows any spare workers a
/// suite or daemon has donated (see [`crate::budget`]) and runs
/// set-sharded — same bits, less wall-clock. Global-state policies,
/// observer-carrying runs, and processes that never donate replay
/// sequentially.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_kind<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    kind: PolicyKind,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    if kind == PolicyKind::Opt {
        return replay_opt(config, stream, observers);
    }
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    with_policy!(kind, |ctor| {
        let policy = ctor(sets, ways);
        if observers.is_empty() {
            if policy.state_scope() == StateScope::PerSet {
                let borrowed = budget::borrow(MAX_DONATED_WORKERS);
                if borrowed.count() > 0 {
                    if let Some(index) =
                        shard_index_for(stream, config.llc.sets(), borrowed.count() + 1)
                    {
                        let (result, _) = replay_sharded_on(
                            config,
                            &|| ctor(sets, ways),
                            None,
                            stream,
                            &index,
                            &|| NullObserver,
                        )?;
                        return Ok(result);
                    }
                }
            }
            replay_on(config, policy, None, stream, &mut NullObserver)
        } else {
            replay_on(
                config,
                policy,
                None,
                stream,
                &mut MultiObserver::new(observers),
            )
        }
    })
}

/// Explicitly set-sharded [`replay_kind`]: splits the stream into (at
/// most) `shards` set ranges and replays them in parallel. For
/// [`StateScope::Global`] policies — DIP/DRRIP (global PSEL), SHiP
/// (global SHCT) — or streams too large to index, this transparently
/// falls back to the sequential path and still returns the exact result.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_kind_sharded<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    kind: PolicyKind,
    stream: &S,
    shards: usize,
) -> Result<RunResult, RunError> {
    if kind == PolicyKind::Opt {
        return replay_opt_sharded(config, stream, shards);
    }
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    with_policy!(kind, |ctor| {
        let policy = ctor(sets, ways);
        if shards > 1 && policy.state_scope() == StateScope::PerSet {
            if let Some(index) = shard_index_for(stream, config.llc.sets(), shards) {
                // One concrete policy per shard, straight from the
                // constructor — no per-shard `Box<dyn>` allocation.
                let (result, _) =
                    replay_sharded_on(config, &|| ctor(sets, ways), None, stream, &index, &|| {
                        NullObserver
                    })?;
                return Ok(result);
            }
        }
        replay_on(config, policy, None, stream, &mut NullObserver)
    })
}

/// Set-sharded [`replay_kind`] that also gathers the paper's sharing
/// characterization: one [`SharingProfile`] rides along each shard and
/// the per-shard profiles are merged in fixed shard order. The merge is
/// exact — every generation ends in exactly one shard with globally
/// correct timestamps, and blocks never cross sets, so all counters are
/// disjoint sums and the footprint union is disjoint too. Falls back to
/// a sequential observer run under the same conditions as
/// [`replay_kind_sharded`].
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_characterized_sharded<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    kind: PolicyKind,
    stream: &S,
    shards: usize,
) -> Result<(RunResult, SharingProfile), RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    // OPT needs its next-use annotations in either path.
    let next_use =
        (kind == PolicyKind::Opt).then(|| Arc::new(compute_annotations(stream, 0).next_use));
    let make_aux = next_use.map(|next_use| {
        move || Box::new(NextUseProvider::shared(Arc::clone(&next_use))) as Box<dyn AuxProvider>
    });
    with_policy!(kind, |ctor| {
        let policy = ctor(sets, ways);
        if shards > 1 && policy.state_scope() == StateScope::PerSet {
            if let Some(index) = shard_index_for(stream, config.llc.sets(), shards) {
                let (result, profiles) = replay_sharded_on(
                    config,
                    &|| ctor(sets, ways),
                    make_aux.as_ref().map(|f| f as AuxFactory<'_>),
                    stream,
                    &index,
                    &SharingProfile::new,
                )?;
                let mut merged = SharingProfile::new();
                for profile in &profiles {
                    merged.merge(profile);
                }
                return Ok((result, merged));
            }
        }
        let mut profile = SharingProfile::new();
        let result = replay_on(
            config,
            policy,
            make_aux.as_ref().map(|f| f()),
            stream,
            &mut profile,
        )?;
        Ok((result, profile))
    })
}

/// Replays Belady's OPT, deriving the next-use chains from the recording
/// itself (no extra simulation passes). Borrows donated spare workers
/// for automatic set-sharding exactly like [`replay_kind`] — OPT's
/// per-line next-use state is per-set, and the annotations are indexed
/// by global stream position, which sharded replay preserves.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_opt<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let next_use = Arc::new(compute_annotations(stream, 0).next_use);
    replay_opt_with(config, next_use, stream, observers)
}

/// [`replay_opt`] with caller-supplied next-use annotations (the DAG
/// memo layer injects a cached pre-pass instead of rescanning the
/// stream). `next_use` must index `stream` positions — i.e. come from
/// [`compute_annotations`] over this exact stream.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_opt_with<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    next_use: Arc<Vec<u64>>,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    if observers.is_empty() && mono::opt(sets, ways).state_scope() == StateScope::PerSet {
        let borrowed = budget::borrow(MAX_DONATED_WORKERS);
        if borrowed.count() > 0 {
            if let Some(index) = shard_index_for(stream, config.llc.sets(), borrowed.count() + 1) {
                return replay_opt_on(config, &next_use, stream, &index);
            }
        }
        return replay_on(
            config,
            mono::opt(sets, ways),
            Some(Box::new(NextUseProvider::shared(next_use))),
            stream,
            &mut NullObserver,
        );
    }
    replay_on(
        config,
        mono::opt(sets, ways),
        Some(Box::new(NextUseProvider::shared(next_use))),
        stream,
        &mut MultiObserver::new(observers),
    )
}

/// Explicitly set-sharded [`replay_opt`] (the OPT arm of
/// [`replay_kind_sharded`]).
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_opt_sharded<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    stream: &S,
    shards: usize,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    let next_use = Arc::new(compute_annotations(stream, 0).next_use);
    if shards > 1 && mono::opt(sets, ways).state_scope() == StateScope::PerSet {
        if let Some(index) = shard_index_for(stream, config.llc.sets(), shards) {
            return replay_opt_on(config, &next_use, stream, &index);
        }
    }
    replay_on(
        config,
        mono::opt(sets, ways),
        Some(Box::new(NextUseProvider::shared(next_use))),
        stream,
        &mut NullObserver,
    )
}

/// Sharded OPT replay over an already-built index with already-computed
/// annotations.
fn replay_opt_on<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    next_use: &Arc<Vec<u64>>,
    stream: &S,
    index: &ShardIndex,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    let make_aux = {
        let next_use = Arc::clone(next_use);
        move || Box::new(NextUseProvider::shared(Arc::clone(&next_use))) as Box<dyn AuxProvider>
    };
    let (result, _) = replay_sharded_on(
        config,
        &|| mono::opt(sets, ways),
        Some(&make_aux),
        stream,
        index,
        &|| NullObserver,
    )?;
    Ok(result)
}

/// Replays the sharing-aware oracle wrapper around `base`, deriving both
/// annotation vectors from the recording in a single fused backward scan
/// (`None` selects [`oracle_window`]). Borrows donated spare workers for
/// automatic set-sharding exactly like [`replay_kind`]: the oracle
/// wrapper's own state (per-line protection bits) is per-set, so its
/// scope is its base policy's scope.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_oracle<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    base: PolicyKind,
    mode: ProtectMode,
    window: Option<u64>,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let window = window.unwrap_or_else(|| oracle_window(config));
    let ann = compute_annotations(stream, window);
    replay_oracle_with(
        config,
        base,
        mode,
        Arc::new(ann.next_use),
        Arc::new(ann.shared_soon),
        stream,
        observers,
    )
}

/// [`replay_oracle`] with caller-supplied annotation vectors (the DAG
/// memo layer injects a cached pre-pass instead of rescanning the
/// stream). Both vectors must come from [`compute_annotations`] over
/// this exact stream; the retention window is already baked into
/// `shared_soon`, so none is passed.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_oracle_with<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    base: PolicyKind,
    mode: ProtectMode,
    next_use: Arc<Vec<u64>>,
    shared_soon: Arc<Vec<bool>>,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    with_policy!(base, |ctor| {
        let make_policy = || OracleWrap::with_mode(ctor(sets, ways), sets, ways, mode);
        // OPT under the oracle needs both annotation vectors; every other
        // base only consumes the shared-soon answers.
        let make_aux = || -> Box<dyn AuxProvider> {
            if base == PolicyKind::Opt {
                Box::new(CombinedProvider::shared(
                    Arc::clone(&next_use),
                    Arc::clone(&shared_soon),
                ))
            } else {
                Box::new(OracleProvider::shared(Arc::clone(&shared_soon)))
            }
        };
        if observers.is_empty() {
            if make_policy().state_scope() == StateScope::PerSet {
                let borrowed = budget::borrow(MAX_DONATED_WORKERS);
                if borrowed.count() > 0 {
                    if let Some(index) =
                        shard_index_for(stream, config.llc.sets(), borrowed.count() + 1)
                    {
                        let (result, _) = replay_sharded_on(
                            config,
                            &make_policy,
                            Some(&make_aux),
                            stream,
                            &index,
                            &|| NullObserver,
                        )?;
                        return Ok(result);
                    }
                }
            }
            replay_on(
                config,
                make_policy(),
                Some(make_aux()),
                stream,
                &mut NullObserver,
            )
        } else {
            replay_on(
                config,
                make_policy(),
                Some(make_aux()),
                stream,
                &mut MultiObserver::new(observers),
            )
        }
    })
}

/// Explicitly set-sharded [`replay_oracle`]. Falls back to the
/// sequential path when the base policy's state is global or the stream
/// is not indexable, exactly like [`replay_kind_sharded`].
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_oracle_sharded<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    base: PolicyKind,
    mode: ProtectMode,
    window: Option<u64>,
    stream: &S,
    shards: usize,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    let window = window.unwrap_or_else(|| oracle_window(config));
    let ann = compute_annotations(stream, window);
    let next_use = Arc::new(ann.next_use);
    let shared_soon = Arc::new(ann.shared_soon);
    with_policy!(base, |ctor| {
        let make_policy = || OracleWrap::with_mode(ctor(sets, ways), sets, ways, mode);
        let make_aux = || -> Box<dyn AuxProvider> {
            if base == PolicyKind::Opt {
                Box::new(CombinedProvider::shared(
                    Arc::clone(&next_use),
                    Arc::clone(&shared_soon),
                ))
            } else {
                Box::new(OracleProvider::shared(Arc::clone(&shared_soon)))
            }
        };
        if shards > 1 && make_policy().state_scope() == StateScope::PerSet {
            if let Some(index) = shard_index_for(stream, config.llc.sets(), shards) {
                let (result, _) = replay_sharded_on(
                    config,
                    &make_policy,
                    Some(&make_aux),
                    stream,
                    &index,
                    &|| NullObserver,
                )?;
                return Ok(result);
            }
        }
        replay_on(
            config,
            make_policy(),
            Some(make_aux()),
            stream,
            &mut NullObserver,
        )
    })
}

/// Replays reactive (directory-driven, prediction-free) sharing
/// protection around `base`.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_reactive<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    base: PolicyKind,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    // ReactiveWrap's directory state is global, so no sharding arm.
    with_policy!(base, |ctor| replay_on(
        config,
        ReactiveWrap::new(ctor(sets, ways)),
        None,
        stream,
        &mut MultiObserver::new(observers),
    ))
}

/// Replays a predictor-driven sharing-aware wrapper around `base`.
///
/// # Errors
///
/// Same conditions as [`replay`].
pub fn replay_predictor_wrap<S: StreamAccess + Sync>(
    config: &HierarchyConfig,
    base: PolicyKind,
    predictor: Box<dyn SharingPredictor>,
    stream: &S,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    with_policy!(base, |ctor| replay_on(
        config,
        PredictorWrap::new(ctor(sets, ways), predictor, sets, ways),
        None,
        stream,
        &mut MultiObserver::new(observers),
    ))
}

/// Both offline annotation vectors, produced by one fused backward scan
/// over a recorded stream (see [`compute_annotations`]).
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// For each access, the stream index of the next access to the same
    /// block (`u64::MAX` = never used again). Feeds Belady's OPT.
    pub next_use: Vec<u64>,
    /// For each access, whether a *different core* touches the block
    /// within the oracle retention window. Feeds the oracle wrapper.
    pub shared_soon: Vec<bool>,
}

/// Computes `next_use` and `shared_soon` in **one** backward scan over
/// `stream` — the fused form of the runner's historical
/// `compute_next_use` + `compute_shared_soon` pre-passes, which each ran
/// their own full simulation plus scan.
///
/// The fusion is exact because both annotations are functions of the same
/// per-block recurrence: walking the stream backwards, keep for each
/// block its nearest future access (`n1`, issued by core `c1`) and the
/// nearest future access by a core other than `c1` (`n2`). Then
/// `next_use[i] = n1` and `shared_soon[i]` asks whether the nearest
/// future *differing-core* access falls within `window`.
pub fn compute_annotations<S: StreamAccess>(stream: &S, window: u64) -> Annotations {
    let _span = spans::span("compute_annotations");
    let n = stream.len();
    let mut next_use = vec![u64::MAX; n];
    let mut shared_soon = vec![false; n];
    struct Next {
        n1: u64,
        c1: CoreId,
        n2: u64,
    }
    let mut next: FxHashMap<BlockAddr, Next> = FxHashMap::default();
    // Backward walk over the stream's own iterator (the trait requires
    // `DoubleEnded + ExactSize` exactly for this pass).
    for (i, a) in stream.accesses().enumerate().rev() {
        let block = a.block;
        let core = a.core;
        if let Some(e) = next.get(&block) {
            next_use[i] = e.n1;
            let next_diff = if e.c1 != core { e.n1 } else { e.n2 };
            shared_soon[i] = next_diff != u64::MAX && next_diff - i as u64 <= window;
        }
        let entry = next.entry(block).or_insert(Next {
            n1: u64::MAX,
            c1: core,
            n2: u64::MAX,
        });
        let new_n2 = if entry.n1 != u64::MAX && entry.c1 != core {
            entry.n1
        } else {
            entry.n2
        };
        *entry = Next {
            n1: i as u64,
            c1: core,
            n2: new_n2,
        };
    }
    Annotations {
        next_use,
        shared_soon,
    }
}

/// Identity of a workload for stream-cache keying.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadId {
    /// A single multi-threaded application.
    App(App),
    /// A named multiprogrammed mix (experiment `abl5`).
    Mix(&'static str),
}

impl WorkloadId {
    /// The workload's stable name (an app label or a mix name).
    pub fn label(&self) -> &'static str {
        match self {
            WorkloadId::App(app) => app.label(),
            WorkloadId::Mix(name) => name,
        }
    }
}

/// FNV-1a over a byte string; folded into the splitmix chain of
/// [`StreamKey::fingerprint`] so workload names contribute stably.
fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Cache key: workload identity × thread count × scale × hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamKey {
    /// The workload.
    pub workload: WorkloadId,
    /// Thread/core count the workload was generated with.
    pub cores: usize,
    /// Workload scale.
    pub scale: Scale,
    /// The hierarchy the stream was recorded under.
    pub config: HierarchyConfig,
}

impl StreamKey {
    /// A stable 64-bit fingerprint of the key, safe to persist: it
    /// content-addresses `.llcs` recordings in an on-disk
    /// [`StreamStore`], so — unlike `Hash` — it is defined by this crate
    /// (a splitmix64 chain over the workload name, thread count, scale
    /// and the hierarchy's own stable fingerprint) and does not change
    /// across Rust releases, platforms or process restarts.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0x4c4c_4353_4b45_5931; // "LLCSKEY1"
        let mut fold = |v: u64| h = llc_sim::splitmix64(h ^ v);
        fold(match self.workload {
            WorkloadId::App(_) => 1,
            WorkloadId::Mix(_) => 2,
        });
        fold(fnv1a64(self.workload.label().as_bytes()));
        fold(self.cores as u64);
        fold(fnv1a64(self.scale.to_string().as_bytes()));
        fold(self.config.fingerprint());
        h
    }
}

/// A replayable handle from [`StreamCache::get_or_record`]: either a
/// fully decoded in-memory recording or a zero-copy [`StreamView`] over
/// one `.llcs` arena loaded from the attached store. Both replay
/// bit-identically — the variants only decide how the record bytes are
/// held — and the whole dispatch cost is one predicted branch per record
/// inside [`CachedAccessIter`]. Callers that want the branch gone
/// entirely (the daemon's memo path) match once and hand the inner
/// stream to the monomorphized drivers directly.
#[derive(Debug, Clone)]
pub enum CachedStream {
    /// A stream recorded in this process: plane vectors, registered in
    /// the process-wide shard-index registry.
    Owned(Arc<RecordedStream>),
    /// A disk hit held as a validated view over the loaded arena: one
    /// allocation, no per-record decode, shard-index slot carried in the
    /// view itself.
    View(Arc<StreamView>),
}

impl CachedStream {
    /// Number of LLC accesses (inherent mirror of [`StreamAccess::len`]
    /// so call sites need no trait import).
    #[allow(clippy::len_without_is_empty)] // is_empty is right below
    pub fn len(&self) -> usize {
        match self {
            CachedStream::Owned(s) => StreamAccess::len(&**s),
            CachedStream::View(v) => StreamAccess::len(&**v),
        }
    }

    /// `true` if the stream holds no accesses.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The decoded plane-vector recording behind this handle, if it is
    /// one (recorded in this process); `None` for zero-copy disk views.
    pub fn as_owned(&self) -> Option<&Arc<RecordedStream>> {
        match self {
            CachedStream::Owned(s) => Some(s),
            CachedStream::View(_) => None,
        }
    }

    /// The exact `.llcs` encoding size — for a view, the bytes of the
    /// shared arena, charged against the cache cap exactly once.
    pub fn encoded_len(&self) -> usize {
        match self {
            CachedStream::Owned(s) => StreamAccess::encoded_len(&**s),
            CachedStream::View(v) => StreamAccess::encoded_len(&**v),
        }
    }
}

/// [`CachedStream`]'s access iterator: the owned-plane or view-decode
/// iterator behind one enum tag.
#[derive(Debug)]
pub enum CachedAccessIter<'a> {
    /// Iterating decoded plane vectors.
    Owned(OwnedAccessIter<'a>),
    /// Decoding records out of a view's arena on the fly.
    View(ViewAccessIter<'a>),
}

impl Iterator for CachedAccessIter<'_> {
    type Item = AccessRecord;

    fn next(&mut self) -> Option<AccessRecord> {
        match self {
            CachedAccessIter::Owned(it) => it.next(),
            CachedAccessIter::View(it) => it.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self {
            CachedAccessIter::Owned(it) => it.size_hint(),
            CachedAccessIter::View(it) => it.size_hint(),
        }
    }
}

impl DoubleEndedIterator for CachedAccessIter<'_> {
    fn next_back(&mut self) -> Option<AccessRecord> {
        match self {
            CachedAccessIter::Owned(it) => it.next_back(),
            CachedAccessIter::View(it) => it.next_back(),
        }
    }
}

impl ExactSizeIterator for CachedAccessIter<'_> {}

impl StreamAccess for CachedStream {
    type Iter<'a> = CachedAccessIter<'a>;

    fn len(&self) -> usize {
        CachedStream::len(self)
    }

    fn fingerprint(&self) -> u64 {
        match self {
            CachedStream::Owned(s) => s.fingerprint(),
            CachedStream::View(v) => StreamAccess::fingerprint(&**v),
        }
    }

    fn accesses(&self) -> CachedAccessIter<'_> {
        match self {
            CachedStream::Owned(s) => CachedAccessIter::Owned(s.accesses()),
            CachedStream::View(v) => CachedAccessIter::View(v.accesses()),
        }
    }

    fn upgrades(&self) -> &[UpgradeEvent] {
        match self {
            CachedStream::Owned(s) => StreamAccess::upgrades(&**s),
            CachedStream::View(v) => StreamAccess::upgrades(&**v),
        }
    }

    fn instructions(&self) -> u64 {
        match self {
            CachedStream::Owned(s) => StreamAccess::instructions(&**s),
            CachedStream::View(v) => StreamAccess::instructions(&**v),
        }
    }

    fn trace_accesses(&self) -> u64 {
        match self {
            CachedStream::Owned(s) => StreamAccess::trace_accesses(&**s),
            CachedStream::View(v) => StreamAccess::trace_accesses(&**v),
        }
    }

    fn l1_stats(&self) -> PrivateCacheStats {
        match self {
            CachedStream::Owned(s) => StreamAccess::l1_stats(&**s),
            CachedStream::View(v) => StreamAccess::l1_stats(&**v),
        }
    }

    fn l2_stats(&self) -> PrivateCacheStats {
        match self {
            CachedStream::Owned(s) => StreamAccess::l2_stats(&**s),
            CachedStream::View(v) => StreamAccess::l2_stats(&**v),
        }
    }

    fn encoded_len(&self) -> usize {
        CachedStream::encoded_len(self)
    }

    fn shard_slot(&self) -> Option<&ShardIndexSlot> {
        match self {
            CachedStream::Owned(s) => StreamAccess::shard_slot(&**s),
            CachedStream::View(v) => StreamAccess::shard_slot(&**v),
        }
    }

    fn registry_addr(&self) -> usize {
        match self {
            CachedStream::Owned(s) => s.registry_addr(),
            CachedStream::View(v) => StreamAccess::registry_addr(&**v),
        }
    }
}

type Slot = Arc<Mutex<Option<CachedStream>>>;

/// Counters of a [`StreamCache`] and its optional disk backing — the
/// numbers `llc-serve` reports under `GET /store/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StreamCacheStats {
    /// Requests answered from process memory.
    pub hits: u64,
    /// Requests answered by loading a `.llcs` file from the attached
    /// [`StreamStore`] (no simulation ran).
    pub disk_hits: u64,
    /// Disk hits served as zero-copy [`StreamView`]s — no per-record
    /// decode, arena bytes charged once (a subset of `disk_hits`; today
    /// every disk hit loads as a view, so the split exists to catch the
    /// day that stops being true).
    pub view_loads: u64,
    /// Requests that had to record the stream with a full simulation.
    pub misses: u64,
    /// Entries evicted from memory by the byte cap (their disk copies,
    /// if any, survive).
    pub evictions: u64,
    /// Stored-copy failures that were recovered by re-recording (a
    /// corrupt `.llcs` file) or shrugged off (a failed persist).
    pub disk_errors: u64,
    /// Corrupt `.llcs` files moved into the store's `quarantine/`
    /// directory (a subset of `disk_errors`).
    pub quarantined: u64,
    /// Encoded bytes currently held in memory.
    pub bytes: u64,
    /// The configured in-memory byte cap, if any.
    pub limit: Option<u64>,
}

/// One cache entry: the slot streams are recorded into, plus the LRU
/// bookkeeping the byte cap needs.
#[derive(Debug, Default)]
struct CacheEntry {
    slot: Slot,
    /// Recency stamp (monotone per-cache counter; larger = fresher).
    stamp: u64,
    /// Encoded size once recorded; 0 while the recording is in flight.
    bytes: u64,
}

#[derive(Debug, Default)]
struct CacheInner {
    map: HashMap<StreamKey, CacheEntry>,
    clock: u64,
    limit: Option<u64>,
    store: Option<StreamStore>,
    stats: StreamCacheStats,
}

/// A keyed, thread-safe cache of recorded streams, shared by every
/// experiment in a suite (or every job in an `llc-serve` daemon) so each
/// (workload, hierarchy) pair is recorded exactly once no matter how many
/// policies replay it — including from parallel workers.
///
/// Locking is two-level: a brief outer lock resolves the key to a
/// per-key slot, and recording happens under the slot's own lock, so two
/// experiments wanting *different* streams record concurrently while two
/// wanting the *same* stream share one recording. Errors are not cached —
/// a failed recording is retried by the next caller.
///
/// Two optional behaviours, both off by default:
///
/// * **A byte cap** ([`StreamCache::set_limit`]): the cache tracks the
///   encoded size of every resident stream and evicts the
///   least-recently-used entries when an insert pushes the total over
///   the cap (the newest entry is never evicted, so a single oversized
///   stream still caches). Counters are exposed via
///   [`StreamCache::stats`].
/// * **A persistent backing store** ([`StreamCache::attach_store`]): the
///   in-memory cache becomes a read-through layer over an on-disk
///   [`StreamStore`] keyed by [`StreamKey::fingerprint`]. A miss first
///   tries the store (a *disk hit* skips the recording simulation
///   entirely, even in a fresh process); a recording is persisted back.
///   A corrupt stored file is counted, re-recorded and overwritten —
///   never an error for the caller.
#[derive(Debug, Clone, Default)]
pub struct StreamCache {
    inner: Arc<Mutex<CacheInner>>,
}

impl StreamCache {
    /// Creates an empty, unbounded, memory-only cache.
    pub fn new() -> Self {
        StreamCache::default()
    }

    /// Creates an empty cache with an in-memory byte cap.
    pub fn with_limit(limit_bytes: u64) -> Self {
        let cache = StreamCache::new();
        cache.set_limit(Some(limit_bytes));
        cache
    }

    /// Sets (or clears) the in-memory byte cap and evicts immediately if
    /// the cache is already over the new cap.
    pub fn set_limit(&self, limit_bytes: Option<u64>) {
        let mut inner = lock_recovering(&self.inner);
        inner.limit = limit_bytes;
        Self::evict_over_limit(&mut inner, None);
    }

    /// Attaches a persistent [`StreamStore`]; the cache becomes a
    /// read-through/write-through layer over it.
    pub fn attach_store(&self, store: StreamStore) {
        lock_recovering(&self.inner).store = Some(store);
    }

    /// Builds a cache backed by `store` with an in-memory cap.
    pub fn with_store(store: StreamStore, limit_bytes: Option<u64>) -> Self {
        let cache = StreamCache::new();
        cache.attach_store(store);
        cache.set_limit(limit_bytes);
        cache
    }

    /// The default in-memory byte cap for a run with `jobs` concurrent
    /// experiments: 512 MiB of encoded streams per job — comfortably the
    /// working set of a paper-scale experiment — with a 2 GiB floor so
    /// small worker counts never thrash the suite's shared recordings.
    pub fn default_limit(jobs: usize) -> u64 {
        ((jobs.max(1) as u64) * (512 << 20)).max(2 << 30)
    }

    /// A snapshot of the cache counters.
    pub fn stats(&self) -> StreamCacheStats {
        let inner = lock_recovering(&self.inner);
        StreamCacheStats {
            limit: inner.limit,
            ..inner.stats
        }
    }

    /// Number of cached streams (recorded, not merely reserved).
    pub fn len(&self) -> usize {
        let inner = lock_recovering(&self.inner);
        inner
            .map
            .values()
            .filter(|entry| lock_recovering(&entry.slot).is_some())
            .count()
    }

    /// `true` if nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-destructive availability probe for DAG planners: the encoded
    /// size of `key`'s stream if it is resident in memory or present in
    /// the attached store, `None` otherwise. Never records, loads or
    /// touches LRU state, so planning a spec cannot perturb the cache.
    pub fn probe(&self, key: &StreamKey) -> Option<u64> {
        let (slot, store) = {
            let inner = lock_recovering(&self.inner);
            (
                inner.map.get(key).map(|e| Arc::clone(&e.slot)),
                inner.store.clone(),
            )
        };
        if let Some(slot) = slot {
            if let Some(stream) = lock_recovering(&slot).as_ref() {
                return Some(stream.encoded_len() as u64);
            }
        }
        let store = store?;
        std::fs::metadata(store.path_for(key.fingerprint()))
            .ok()
            .map(|m| m.len())
    }

    /// `true` if `key`'s stream is resident in memory right now — the
    /// condition under which its registered shard indexes are alive (a
    /// planner's approximation of the index node's hit state).
    pub fn resident(&self, key: &StreamKey) -> bool {
        let slot = {
            let inner = lock_recovering(&self.inner);
            inner.map.get(key).map(|e| Arc::clone(&e.slot))
        };
        slot.is_some_and(|slot| lock_recovering(&slot).is_some())
    }

    /// Returns the stream for `key`: from memory if resident, else from
    /// the attached store's `.llcs` file if present and intact (loaded
    /// as a zero-copy [`CachedStream::View`]), else by recording it via
    /// `make_trace` under `key.config` (and persisting the recording if
    /// a store is attached).
    ///
    /// # Errors
    ///
    /// Propagates [`record_stream`] errors; they are not cached. Disk
    /// problems never fail the call — a corrupt stored copy falls back
    /// to re-recording and a failed persist only bumps a counter.
    pub fn get_or_record<W, F>(
        &self,
        key: StreamKey,
        make_trace: F,
    ) -> Result<CachedStream, RunError>
    where
        W: TraceSource,
        F: FnOnce() -> W,
    {
        let (slot, store) = {
            let mut inner = lock_recovering(&self.inner);
            inner.clock += 1;
            let clock = inner.clock;
            let entry = inner.map.entry(key).or_default();
            entry.stamp = clock;
            (Arc::clone(&entry.slot), inner.store.clone())
        };
        let mut guard = lock_recovering(&slot);
        if let Some(stream) = guard.as_ref() {
            let stream = stream.clone();
            drop(guard);
            let size = stream.encoded_len() as u64;
            let mut inner = lock_recovering(&self.inner);
            inner.stats.hits += 1;
            METRICS.cache_hits.inc();
            // A hit can race the byte cap: eviction may have removed the
            // map entry between slot resolution and here while this Arc
            // kept the stream alive. Re-adopt the slot so the bytes this
            // handle pins stay accounted — otherwise the next request
            // would load a second arena for a stream still resident,
            // double-charging the cap in real memory.
            if !inner.map.contains_key(&key) {
                Self::charge(&mut inner, key, &slot, size);
                Self::evict_over_limit(&mut inner, Some(&key));
            }
            return Ok(stream);
        }

        // Not in memory: try the persistent store, then record. Both
        // happen under the slot lock so concurrent requesters of the same
        // key share one load/recording. A disk hit is served zero-copy:
        // the `.llcs` bytes are validated in place and replayed straight
        // out of the arena, with no per-record decode into plane vectors.
        let fp = key.fingerprint();
        let mut from_disk = false;
        let stream = match store.as_ref().map(|s| s.load_view(fp)) {
            Some(Ok(Some(view))) => {
                from_disk = true;
                CachedStream::View(Arc::new(view))
            }
            Some(Err(_)) => {
                // Corrupt stored copy: count it, move the evidence to
                // quarantine/ (never delete it), re-record, overwrite.
                {
                    let mut inner = lock_recovering(&self.inner);
                    inner.stats.disk_errors += 1;
                    METRICS.cache_disk_errors.inc();
                    if let Some(store) = inner.store.clone() {
                        drop(inner);
                        if let Ok(Some(_)) = store.quarantine(fp) {
                            lock_recovering(&self.inner).stats.quarantined += 1;
                            METRICS.cache_quarantined.inc();
                        }
                    }
                }
                CachedStream::Owned(Arc::new(record_stream(&key.config, make_trace())?))
            }
            Some(Ok(None)) | None => {
                CachedStream::Owned(Arc::new(record_stream(&key.config, make_trace())?))
            }
        };
        if let (false, Some(store), CachedStream::Owned(owned)) =
            (from_disk, store.as_ref(), &stream)
        {
            if store.save(fp, owned).is_err() {
                lock_recovering(&self.inner).stats.disk_errors += 1;
                METRICS.cache_disk_errors.inc();
            }
        }
        *guard = Some(stream.clone());
        drop(guard);
        // Cached streams get a shard-index slot: replays of this stream
        // can now share lazily built `ShardIndex`es (see
        // `shard_index_for`), which live exactly as long as the stream.
        // Views carry the slot inside themselves; owned streams register
        // in the process-wide allocation-identity registry.
        if let CachedStream::Owned(owned) = &stream {
            shard_registry::register(owned);
        }

        // Account the insert and enforce the cap (never evicting the
        // entry just inserted).
        let mut inner = lock_recovering(&self.inner);
        if from_disk {
            inner.stats.disk_hits += 1;
            inner.stats.view_loads += 1;
            METRICS.cache_disk_hits.inc();
            METRICS.view_loads.inc();
        } else {
            inner.stats.misses += 1;
            METRICS.cache_misses.inc();
        }
        let size = stream.encoded_len() as u64;
        Self::charge(&mut inner, key, &slot, size);
        Self::evict_over_limit(&mut inner, Some(&key));
        Ok(stream)
    }

    /// Charges exactly `size` bytes for `key`'s filled `slot`, keeping
    /// the invariant `stats.bytes == Σ entry.bytes`: a re-charge adjusts
    /// by the signed difference (never drifts on shrink), and an entry
    /// evicted while its fill was in flight is re-inserted so the stream
    /// the caller's slot handle pins stays accounted. If another caller
    /// already re-created the entry around a *different* slot, that copy
    /// owns the accounting and this one is left as a transient duplicate
    /// rather than double-charging the key.
    fn charge(inner: &mut CacheInner, key: StreamKey, slot: &Slot, size: u64) {
        inner.clock += 1;
        let clock = inner.clock;
        let entry = inner.map.entry(key).or_insert_with(|| CacheEntry {
            slot: Arc::clone(slot),
            stamp: clock,
            bytes: 0,
        });
        if !Arc::ptr_eq(&entry.slot, slot) {
            return;
        }
        entry.stamp = clock;
        let prev = entry.bytes;
        entry.bytes = size;
        inner.stats.bytes = inner.stats.bytes - prev + size;
        METRICS.cache_bytes.add(size as i64 - prev as i64);
    }

    /// Evicts least-recently-used recorded entries until the cache fits
    /// its cap again. `keep` (the entry being inserted) and in-flight
    /// recordings (`bytes == 0`) are never evicted.
    fn evict_over_limit(inner: &mut CacheInner, keep: Option<&StreamKey>) {
        let Some(limit) = inner.limit else { return };
        while inner.stats.bytes > limit {
            let victim = inner
                .map
                .iter()
                .filter(|&(k, e)| e.bytes > 0 && Some(k) != keep)
                .min_by_key(|(_, e)| e.stamp)
                .map(|(k, _)| *k);
            let Some(victim) = victim else { break };
            // infallible: the key was just found in the map under the
            // same lock.
            let entry = inner.map.remove(&victim).expect("victim present");
            inner.stats.bytes -= entry.bytes;
            inner.stats.evictions += 1;
            METRICS.cache_bytes.add(-(entry.bytes as i64));
            METRICS.cache_evictions.inc();
        }
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (a recording
/// panic elsewhere must not wedge the whole cache — the poisoned slot
/// simply holds `None` and is re-recorded).
fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::LlcStats;
    use llc_trace::{App, Scale};

    fn cfg() -> HierarchyConfig {
        HierarchyConfig::tiny()
    }

    fn stream_of(app: App) -> RecordedStream {
        record_stream(&cfg(), app.workload(4, Scale::Tiny)).expect("record")
    }

    fn full_sim(kind: PolicyKind, app: App) -> LlcStats {
        crate::runner::simulate_kind(&cfg(), kind, &mut || app.workload(4, Scale::Tiny), vec![])
            .expect("simulate")
            .llc
    }

    #[test]
    fn replay_matches_full_simulation_for_every_policy_kind() {
        let c = cfg();
        let stream = stream_of(App::Bodytrack);
        for kind in [
            PolicyKind::Lru,
            PolicyKind::Random,
            PolicyKind::Nru,
            PolicyKind::Srrip,
            PolicyKind::Drrip,
            PolicyKind::Dip,
            PolicyKind::Ship,
            PolicyKind::Opt,
        ] {
            let fast = replay_kind(&c, kind, &stream, vec![]).expect("replay");
            assert_eq!(fast.llc, full_sim(kind, App::Bodytrack), "{kind} diverged");
            assert_eq!(fast.instructions, stream.instructions);
            assert_eq!(fast.trace_accesses, stream.trace_accesses);
        }
    }

    #[test]
    fn replay_oracle_matches_full_simulation() {
        let c = cfg();
        let stream = stream_of(App::Streamcluster);
        for base in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Opt] {
            let fast = replay_oracle(&c, base, ProtectMode::Eviction, None, &stream, vec![])
                .expect("replay");
            let slow = crate::runner::simulate_oracle(
                &c,
                base,
                ProtectMode::Eviction,
                None,
                &mut || App::Streamcluster.workload(4, Scale::Tiny),
                vec![],
            )
            .expect("simulate");
            assert_eq!(fast.llc, slow.llc, "oracle({base}) diverged");
        }
    }

    #[test]
    fn fused_annotations_match_legacy_pre_passes() {
        let c = cfg();
        let window = 64;
        let stream = stream_of(App::Dedup);
        let ann = compute_annotations(&stream, window);
        let next_legacy = crate::runner::compute_next_use(&c, App::Dedup.workload(4, Scale::Tiny))
            .expect("legacy next-use");
        let shared_legacy =
            crate::runner::compute_shared_soon(&c, App::Dedup.workload(4, Scale::Tiny), window)
                .expect("legacy shared-soon");
        assert_eq!(ann.next_use, next_legacy);
        assert_eq!(ann.shared_soon, shared_legacy);
    }

    #[test]
    fn replay_refuses_inclusive_and_mismatched_configs() {
        let stream = stream_of(App::Fft);
        let mut inclusive = cfg();
        inclusive.inclusion = Inclusion::Inclusive;
        assert!(matches!(
            replay_kind(&inclusive, PolicyKind::Lru, &stream, vec![]),
            Err(RunError::Sim(SimError::Config(_)))
        ));
        let mut other = cfg();
        other.llc = llc_sim::CacheConfig::from_kib(128, 8).expect("valid");
        assert!(matches!(
            replay_kind(&other, PolicyKind::Lru, &stream, vec![]),
            Err(RunError::Sim(SimError::Config(_)))
        ));
    }

    #[test]
    fn stream_cache_records_each_key_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let cache = StreamCache::new();
        let recordings = AtomicUsize::new(0);
        let key = StreamKey {
            workload: WorkloadId::App(App::Swaptions),
            cores: 4,
            scale: Scale::Tiny,
            config: cfg(),
        };
        let a = cache
            .get_or_record(key, || {
                recordings.fetch_add(1, Ordering::SeqCst);
                App::Swaptions.workload(4, Scale::Tiny)
            })
            .expect("record");
        let b = cache
            .get_or_record(key, || {
                recordings.fetch_add(1, Ordering::SeqCst);
                App::Swaptions.workload(4, Scale::Tiny)
            })
            .expect("cached");
        assert_eq!(
            recordings.load(Ordering::SeqCst),
            1,
            "second get must hit the cache"
        );
        assert!(Arc::ptr_eq(
            a.as_owned().expect("recorded"),
            b.as_owned().expect("cached")
        ));
        assert_eq!(cache.len(), 1);
    }

    fn key_for(app: App) -> StreamKey {
        StreamKey {
            workload: WorkloadId::App(app),
            cores: 4,
            scale: Scale::Tiny,
            config: cfg(),
        }
    }

    #[test]
    fn stream_key_fingerprints_are_stable_and_distinct() {
        let key = key_for(App::Fft);
        assert_eq!(key.fingerprint(), key.fingerprint());
        // Pin the value: fingerprints name files in the persistent store,
        // so silently changing the scheme would orphan every stored
        // stream. Bump the seed constant if the scheme must change.
        assert_eq!(key.fingerprint(), 0x8641_6d06_bf56_88ce);
        assert_ne!(key.fingerprint(), key_for(App::Dedup).fingerprint());
        let mut other = key_for(App::Fft);
        other.cores = 8;
        assert_ne!(key.fingerprint(), other.fingerprint());
        let mut other = key_for(App::Fft);
        other.scale = Scale::Small;
        assert_ne!(key.fingerprint(), other.fingerprint());
        let mut other = key_for(App::Fft);
        other.config.llc = llc_sim::CacheConfig::from_kib(128, 8).expect("valid");
        assert_ne!(key.fingerprint(), other.fingerprint());
        assert_ne!(
            StreamKey {
                workload: WorkloadId::Mix("fft"),
                ..key
            }
            .fingerprint(),
            key.fingerprint(),
            "an app and a mix with the same name must not collide"
        );
    }

    #[test]
    fn byte_cap_evicts_lru_and_counts() {
        let apps = [App::Swaptions, App::Bodytrack, App::Dedup, App::Fft];
        let unbounded = StreamCache::new();
        let mut sizes = Vec::new();
        for &app in &apps {
            let s = unbounded
                .get_or_record(key_for(app), || app.workload(4, Scale::Tiny))
                .expect("record");
            sizes.push(s.encoded_len() as u64);
        }
        assert_eq!(unbounded.stats().bytes, sizes.iter().sum::<u64>());
        assert_eq!(unbounded.stats().evictions, 0);

        // Cap at exactly the two largest-so-far entries' budget: holding
        // all four is impossible, so older entries must be evicted.
        let limit = sizes[2] + sizes[3];
        let bounded = StreamCache::with_limit(limit);
        for &app in &apps {
            bounded
                .get_or_record(key_for(app), || app.workload(4, Scale::Tiny))
                .expect("record");
        }
        let stats = bounded.stats();
        assert_eq!(stats.limit, Some(limit));
        assert!(stats.bytes <= limit, "cache over its cap: {stats:?}");
        assert!(stats.evictions > 0, "expected evictions: {stats:?}");
        assert_eq!(stats.misses as usize, apps.len());
        assert!(bounded.len() < apps.len());

        // A re-request of an evicted stream is a miss that re-records.
        let before = bounded.stats().misses;
        bounded
            .get_or_record(key_for(App::Swaptions), || {
                App::Swaptions.workload(4, Scale::Tiny)
            })
            .expect("re-record");
        assert_eq!(bounded.stats().misses, before + 1);
    }

    #[test]
    fn hits_touch_lru_order() {
        let apps = [App::Swaptions, App::Bodytrack, App::Dedup];
        let cache = StreamCache::new();
        let mut sizes = Vec::new();
        for &app in &apps {
            let s = cache
                .get_or_record(key_for(app), || app.workload(4, Scale::Tiny))
                .expect("record");
            sizes.push(s.encoded_len() as u64);
        }
        // Touch the oldest entry, then shrink the cap so exactly one
        // entry must go: the victim must be Bodytrack (now the LRU), not
        // the freshly touched Swaptions.
        cache
            .get_or_record(key_for(App::Swaptions), || {
                App::Swaptions.workload(4, Scale::Tiny)
            })
            .expect("hit");
        assert_eq!(cache.stats().hits, 1);
        cache.set_limit(Some(sizes.iter().sum::<u64>() - 1));
        assert_eq!(cache.stats().evictions, 1);
        let miss_free = cache.stats().misses;
        cache
            .get_or_record(key_for(App::Swaptions), || {
                App::Swaptions.workload(4, Scale::Tiny)
            })
            .expect("still resident");
        cache
            .get_or_record(key_for(App::Dedup), || App::Dedup.workload(4, Scale::Tiny))
            .expect("still resident");
        assert_eq!(
            cache.stats().misses,
            miss_free,
            "touched entries must have survived"
        );
    }

    #[test]
    fn store_backed_cache_reads_through_and_recovers_from_corruption() {
        use llc_trace::StreamStore;
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = std::env::temp_dir().join(format!("llc-cache-store-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let store = StreamStore::open(&dir).expect("open store");
        let key = key_for(App::Bodytrack);
        let recordings = AtomicUsize::new(0);
        let make = || {
            recordings.fetch_add(1, Ordering::SeqCst);
            App::Bodytrack.workload(4, Scale::Tiny)
        };

        // First process lifetime: records once, persists.
        let first = StreamCache::with_store(store.clone(), None);
        let a = first.get_or_record(key, make).expect("record");
        assert_eq!(recordings.load(Ordering::SeqCst), 1);
        assert!(store.contains(key.fingerprint()));
        assert_eq!(first.stats().misses, 1);

        // "Restart": a fresh cache over the same directory must serve the
        // stream from disk without simulating.
        let second = StreamCache::with_store(store.clone(), None);
        let b = second.get_or_record(key, make).expect("disk hit");
        assert_eq!(
            recordings.load(Ordering::SeqCst),
            1,
            "disk hit must not re-record"
        );
        assert_eq!(second.stats().disk_hits, 1);
        assert_eq!(second.stats().misses, 0);
        assert_eq!(
            second.stats().view_loads,
            1,
            "the disk hit loads as a zero-copy view"
        );
        assert!(b.as_owned().is_none(), "disk hits are views, not decodes");
        assert!(a.accesses().eq(b.accesses()));
        assert_eq!(a.upgrades(), b.upgrades());

        // Corrupt the stored copy: the next fresh cache falls back to
        // re-recording (typed error internally, never surfaced) and
        // overwrites the bad file.
        let path = store.path_for(key.fingerprint());
        let bytes = std::fs::read(&path).expect("read");
        std::fs::write(&path, &bytes[..bytes.len() / 3]).expect("truncate");
        let third = StreamCache::with_store(store.clone(), None);
        let c = third.get_or_record(key, make).expect("recover");
        assert_eq!(
            recordings.load(Ordering::SeqCst),
            2,
            "corruption must re-record"
        );
        assert_eq!(third.stats().disk_errors, 1);
        assert_eq!(
            third.stats().quarantined,
            1,
            "corrupt copy is quarantined, not deleted"
        );
        assert!(
            dir.join(llc_trace::QUARANTINE_DIR)
                .join(format!("{:016x}.llcs", key.fingerprint()))
                .exists(),
            "quarantined evidence file exists"
        );
        assert_eq!(
            **a.as_owned().expect("recorded"),
            **c.as_owned().expect("re-recorded")
        );
        let healed = StreamCache::with_store(store.clone(), None);
        healed.get_or_record(key, make).expect("healed");
        assert_eq!(
            recordings.load(Ordering::SeqCst),
            2,
            "overwritten copy must load"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn recorded_stream_round_trips_through_llcs_and_still_replays() {
        let c = cfg();
        let stream = stream_of(App::Bodytrack);
        let bytes = stream.to_vec().expect("encode");
        let back = RecordedStream::from_slice(&bytes).expect("decode");
        assert_eq!(back, stream);
        let a = replay_kind(&c, PolicyKind::Ship, &stream, vec![]).expect("replay");
        let b = replay_kind(&c, PolicyKind::Ship, &back, vec![]).expect("replay decoded");
        assert_eq!(a.llc, b.llc);
    }
}

//! Sharing-awareness characterization of replacement policies
//! (experiment `fig6`).
//!
//! A policy is *sharing-oblivious* to the extent that it evicts blocks
//! which are about to be re-referenced — and in particular about to be
//! *shared*. [`VictimizationStats`] measures this directly: an eviction is
//! **premature** if the same block is refilled within a window of `W`
//! subsequent LLC accesses, and it is a **shared victimization** if that
//! refill starts a generation that turns out shared. OPT, being driven by
//! next-use distance, is naturally sharing-aware and scores near zero;
//! the gap between a realistic policy and OPT is the paper's motivation
//! for adding explicit sharing-awareness.

use std::collections::HashMap;

use llc_sim::{AccessCtx, BlockAddr, EvictCause, GenerationEnd, LlcObserver};

/// Premature-eviction and shared-victimization counters.
#[derive(Debug)]
pub struct VictimizationStats {
    window: u64,
    evictions: u64,
    premature: u64,
    premature_shared: u64,
    last_evicted: HashMap<BlockAddr, u64>,
    /// Open generations that began as premature refills.
    premature_refill: HashMap<BlockAddr, ()>,
}

impl VictimizationStats {
    /// Creates the observer with a refill window of `window` LLC accesses
    /// (a multiple of the LLC associativity is a natural choice; the
    /// reproduction uses `64 × ways`).
    pub fn new(window: u64) -> Self {
        VictimizationStats {
            window,
            evictions: 0,
            premature: 0,
            premature_shared: 0,
            last_evicted: HashMap::new(),
            premature_refill: HashMap::new(),
        }
    }

    /// Total replacement evictions observed.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Evictions whose block was refilled within the window.
    pub fn premature(&self) -> u64 {
        self.premature
    }

    /// Premature evictions whose refilled generation became shared.
    pub fn premature_shared(&self) -> u64 {
        self.premature_shared
    }

    /// Fraction of evictions that were premature.
    pub fn premature_rate(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.premature as f64 / self.evictions as f64
        }
    }

    /// Fraction of evictions that prematurely killed a would-be-shared
    /// block — the *shared-block victimization rate*.
    pub fn shared_victimization_rate(&self) -> f64 {
        if self.evictions == 0 {
            0.0
        } else {
            self.premature_shared as f64 / self.evictions as f64
        }
    }
}

impl LlcObserver for VictimizationStats {
    fn on_fill(&mut self, ctx: &AccessCtx) {
        if let Some(&t_evict) = self.last_evicted.get(&ctx.block) {
            if ctx.time.saturating_sub(t_evict) <= self.window {
                self.premature += 1;
                self.premature_refill.insert(ctx.block, ());
            }
            self.last_evicted.remove(&ctx.block);
        }
    }

    fn on_generation_end(&mut self, gen: &GenerationEnd) {
        if self.premature_refill.remove(&gen.block).is_some() && gen.is_shared() {
            self.premature_shared += 1;
        }
        if gen.cause == EvictCause::Replacement {
            self.evictions += 1;
            self.last_evicted.insert(gen.block, gen.end_time);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{AccessKind, Aux, CoreId, Pc};

    fn fill(block: u64, time: u64) -> AccessCtx {
        AccessCtx {
            block: BlockAddr::new(block),
            pc: Pc::new(0x400),
            core: CoreId::new(0),
            kind: AccessKind::Read,
            time,
            aux: Aux::default(),
        }
    }

    fn evict(block: u64, end_time: u64, shared: bool) -> GenerationEnd {
        GenerationEnd {
            block: BlockAddr::new(block),
            set: 0,
            fill_pc: Pc::new(0x400),
            fill_core: CoreId::new(0),
            fill_time: 0,
            end_time,
            sharer_mask: if shared { 0b11 } else { 0b1 },
            writer_mask: 0,
            hits: 0,
            hits_by_non_filler: 0,
            writes: 0,
            cause: EvictCause::Replacement,
        }
    }

    #[test]
    fn counts_premature_shared_victimization() {
        let mut v = VictimizationStats::new(10);
        v.on_generation_end(&evict(1, 100, false)); // evicted at t=100
        v.on_fill(&fill(1, 105)); // refilled within window
        v.on_generation_end(&evict(1, 300, true)); // the refill became shared
        assert_eq!(v.evictions(), 2);
        assert_eq!(v.premature(), 1);
        assert_eq!(v.premature_shared(), 1);
        assert!((v.shared_victimization_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn late_refill_is_not_premature() {
        let mut v = VictimizationStats::new(10);
        v.on_generation_end(&evict(1, 100, false));
        v.on_fill(&fill(1, 200)); // outside the window
        assert_eq!(v.premature(), 0);
    }

    #[test]
    fn premature_private_refill_not_counted_as_shared() {
        let mut v = VictimizationStats::new(10);
        v.on_generation_end(&evict(1, 100, false));
        v.on_fill(&fill(1, 101));
        v.on_generation_end(&evict(1, 400, false)); // refill stayed private
        assert_eq!(v.premature(), 1);
        assert_eq!(v.premature_shared(), 0);
    }

    #[test]
    fn empty_stats_have_zero_rates() {
        let v = VictimizationStats::new(16);
        assert_eq!(v.premature_rate(), 0.0);
        assert_eq!(v.shared_victimization_rate(), 0.0);
    }
}

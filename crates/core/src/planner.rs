//! Experiment-aware DAG planning: maps an [`ExperimentId`] onto the
//! artifact nodes its run would touch and reports, per node, whether
//! the store already holds it.
//!
//! The planner is deliberately conservative: only the pure-stats
//! experiments (`fig5`, `fig7`, `fig8`, `abl1`, `abl3`) have a replay
//! lineup, because only those resolve through
//! [`ExperimentCtx::replay_cached`] — observer-carrying experiments
//! re-execute unconditionally and plan stream/index nodes only. A plan
//! is advisory: the run itself re-resolves every node, so a stale plan
//! can never corrupt a result, only mispredict the work.

use llc_dag::{annotations_fp, index_fp, DagStore, NodeKind, Plan, ReplayDesc};
use llc_policies::{PolicyKind, ProtectMode};
use llc_sim::HierarchyConfig;

use crate::experiments::{policies::LINEUP, ExperimentCtx, ExperimentId};
use crate::runner::oracle_window;

/// The per-policy replay lineup of a pure-stats experiment under one
/// hierarchy config, with all defaulted windows resolved. `None` means
/// the experiment carries observers (or composes custom workloads) and
/// its replays are not memoizable.
pub fn replay_lineup(id: ExperimentId, config: &HierarchyConfig) -> Option<Vec<ReplayDesc>> {
    let w = oracle_window(config);
    match id {
        ExperimentId::Fig5 => Some(LINEUP.iter().map(|&k| ReplayDesc::plain(k)).collect()),
        ExperimentId::Fig7 => Some(vec![
            ReplayDesc::plain(PolicyKind::Lru),
            ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Eviction, w),
        ]),
        ExperimentId::Fig8 => {
            let bases = [
                PolicyKind::Lru,
                PolicyKind::Srrip,
                PolicyKind::Drrip,
                PolicyKind::Ship,
            ];
            Some(
                bases
                    .iter()
                    .flat_map(|&b| {
                        [
                            ReplayDesc::plain(b),
                            ReplayDesc::oracle(b, ProtectMode::Eviction, w),
                        ]
                    })
                    .collect(),
            )
        }
        ExperimentId::Abl1 => {
            let lines = config.llc.lines();
            let mut descs = vec![ReplayDesc::plain(PolicyKind::Lru)];
            descs.extend(
                [1u64, 4, 16].iter().map(|&f| {
                    ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Eviction, f * lines)
                }),
            );
            Some(descs)
        }
        ExperimentId::Abl3 => {
            let bases = [PolicyKind::Lru, PolicyKind::Srrip];
            let modes = [
                ProtectMode::Eviction,
                ProtectMode::Insertion,
                ProtectMode::Both,
            ];
            Some(
                bases
                    .iter()
                    .flat_map(|&b| {
                        std::iter::once(ReplayDesc::plain(b))
                            .chain(modes.iter().map(move |&m| ReplayDesc::oracle(b, m, w)))
                    })
                    .collect(),
            )
        }
        _ => None,
    }
}

/// The hierarchy configs an experiment records streams under, mirroring
/// each experiment body's capacity loop. `table1` touches no streams;
/// `abl5` composes multi-programmed mixes with synthetic workload ids
/// the planner does not model.
pub fn configs_for(id: ExperimentId, ctx: &ExperimentCtx) -> Vec<HierarchyConfig> {
    let all = || {
        ctx.llc_capacities
            .iter()
            .filter_map(|&cap| ctx.config(cap).ok())
            .collect::<Vec<_>>()
    };
    let main = || ctx.main_config().into_iter().collect::<Vec<_>>();
    match id {
        ExperimentId::Table1 | ExperimentId::Abl5 => Vec::new(),
        ExperimentId::Fig1
        | ExperimentId::Fig5
        | ExperimentId::Fig7
        | ExperimentId::Fig8
        | ExperimentId::Fig12 => all(),
        ExperimentId::Abl2 => {
            let cap = ctx.llc_capacities[0];
            ctx.config(cap)
                .into_iter()
                .chain(ctx.config_inclusive(cap))
                .collect()
        }
        _ => main(),
    }
}

/// Plans `id` against the context's stream cache and an optional DAG
/// store, returning one node per artifact the run would resolve:
/// stream and (memory-resident) shard-index nodes for every
/// (config, app) pair, plus deduplicated annotation nodes and
/// per-policy replay nodes for memoizable experiments. The serve layer
/// appends the merged-table node, which is keyed by the whole job spec.
pub fn plan_experiment(id: ExperimentId, ctx: &ExperimentCtx, dag: Option<&DagStore>) -> Plan {
    let mut plan = Plan::default();
    for config in configs_for(id, ctx) {
        let lineup = replay_lineup(id, &config);
        let cap_kb = config.llc.capacity_bytes >> 10;
        for &app in &ctx.apps {
            let key = ctx.stream_key(app, &config);
            let stream_fp = key.fingerprint();
            let stream_bytes = ctx.streams.probe(&key);
            plan.push(
                NodeKind::Stream,
                stream_fp,
                format!("{} @{}KB", app.label(), cap_kb),
                stream_bytes.is_some(),
                stream_bytes.unwrap_or(0),
            );
            // Shard indexes are memory-only artifacts keyed by the live
            // stream allocation; a memory-resident stream means its
            // registered index is reusable, anything else rebuilds.
            plan.push(
                NodeKind::Index,
                index_fp(stream_fp, config.llc.sets(), 0),
                format!("{} @{}KB shard index", app.label(), cap_kb),
                ctx.streams.resident(&key),
                0,
            );
            let Some(descs) = &lineup else { continue };
            let mut windows: Vec<u64> = descs
                .iter()
                .filter_map(ReplayDesc::annotation_window)
                .collect();
            windows.sort_unstable();
            windows.dedup();
            for w in windows {
                let fp = annotations_fp(stream_fp, w);
                let bytes = dag.and_then(|d| d.bytes_of(NodeKind::Annotations, fp));
                plan.push(
                    NodeKind::Annotations,
                    fp,
                    format!("{} @{}KB w={w}", app.label(), cap_kb),
                    bytes.is_some(),
                    bytes.unwrap_or(0),
                );
            }
            for desc in descs {
                let fp = llc_dag::replay_fp(stream_fp, desc.fingerprint());
                let bytes = dag.and_then(|d| d.bytes_of(NodeKind::Replay, fp));
                plan.push(
                    NodeKind::Replay,
                    fp,
                    format!("{} @{}KB {}", app.label(), cap_kb, desc.label()),
                    bytes.is_some(),
                    bytes.unwrap_or(0),
                );
            }
        }
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lineups_match_experiment_bodies() {
        let ctx = ExperimentCtx::test();
        let cfg = ctx.main_config().unwrap();
        assert_eq!(replay_lineup(ExperimentId::Fig5, &cfg).unwrap().len(), 8);
        assert_eq!(replay_lineup(ExperimentId::Fig7, &cfg).unwrap().len(), 2);
        assert_eq!(replay_lineup(ExperimentId::Fig8, &cfg).unwrap().len(), 8);
        assert_eq!(replay_lineup(ExperimentId::Abl1, &cfg).unwrap().len(), 4);
        assert_eq!(replay_lineup(ExperimentId::Abl3, &cfg).unwrap().len(), 8);
        assert!(replay_lineup(ExperimentId::Fig6, &cfg).is_none());
        assert!(replay_lineup(ExperimentId::Table2, &cfg).is_none());
    }

    #[test]
    fn fig7_shares_abl1_default_window_node() {
        // fig7's defaulted oracle window is 4x LLC lines — exactly
        // abl1's middle factor, so the two experiments share the
        // annotation artifact. The CI cache-reuse smoke leans on this.
        let ctx = ExperimentCtx::test();
        let cfg = ctx.main_config().unwrap();
        assert_eq!(oracle_window(&cfg), 4 * cfg.llc.lines());
    }

    #[test]
    fn configs_follow_experiment_capacity_loops() {
        let ctx = ExperimentCtx::test();
        let n = ctx.llc_capacities.len();
        assert!(configs_for(ExperimentId::Table1, &ctx).is_empty());
        assert!(configs_for(ExperimentId::Abl5, &ctx).is_empty());
        assert_eq!(configs_for(ExperimentId::Fig5, &ctx).len(), n);
        assert_eq!(configs_for(ExperimentId::Fig7, &ctx).len(), n);
        assert_eq!(configs_for(ExperimentId::Table2, &ctx).len(), 1);
        assert_eq!(configs_for(ExperimentId::Abl2, &ctx).len(), 2);
    }

    #[test]
    fn cold_plan_is_all_misses_with_replay_nodes() {
        let ctx = ExperimentCtx::test();
        let plan = plan_experiment(ExperimentId::Fig7, &ctx, None);
        assert_eq!(plan.hits(), 0);
        let n = ctx.llc_capacities.len() * ctx.apps.len();
        assert_eq!(plan.misses_of(NodeKind::Stream), n);
        assert_eq!(plan.misses_of(NodeKind::Index), n);
        assert_eq!(plan.misses_of(NodeKind::Annotations), n);
        assert_eq!(plan.misses_of(NodeKind::Replay), 2 * n);
    }

    #[test]
    fn observer_experiment_plans_streams_only() {
        let ctx = ExperimentCtx::test();
        let plan = plan_experiment(ExperimentId::Fig6, &ctx, None);
        assert!(plan.misses_of(NodeKind::Stream) > 0);
        assert_eq!(plan.misses_of(NodeKind::Replay), 0);
        assert_eq!(plan.misses_of(NodeKind::Annotations), 0);
    }
}

//! DAG-memoized replay: the execution side of the artifact graph.
//!
//! [`ExperimentCtx::replay_cached`] is the single entry through which
//! pure-stats experiment replays resolve when a [`DagStore`] is
//! attached. Resolution order per [`ReplayDesc`]:
//!
//! 1. **Replay node** (`replay_fp(stream_fp, desc_fp)`): a hit returns
//!    the stored [`llc_dag::ReplayRecord`] converted back to a
//!    [`RunResult`] — without touching the stream at all, so a fully
//!    warmed spec never loads a `.llcs` file.
//! 2. **Annotation node** (`annotations_fp(stream_fp, window)`), for
//!    descriptors that need a pre-pass (oracle wraps, OPT): loaded from
//!    the store or computed once with the fused backward scan and
//!    persisted.
//! 3. The replay executes through the annotation-injected drivers
//!    ([`replay_opt_with`]/[`replay_oracle_with`]) and the result is
//!    persisted as a new replay node.
//!
//! Bit-identity holds by construction: a replay node stores the exact
//! counters of the run that produced it, and annotation artifacts store
//! the exact vectors the scan produced, so warm and cold paths feed
//! byte-identical inputs to byte-identical kernels. Observer-carrying
//! runs never come through here — observers see per-access events that
//! a cached result cannot reproduce.
//!
//! Persistence failures only bump counters; corruption is quarantined
//! inside [`DagStore`] and surfaces here as a miss.

use std::sync::Arc;

use llc_dag::{
    annotations_fp, replay_fp, AnnotationsData, DagStore, NodeKind, ReplayDesc, ReplayRecord,
    ReplayWrap,
};
use llc_policies::PolicyKind;
use llc_sim::HierarchyConfig;
use llc_trace::{App, StreamAccess};

use crate::error::RunError;
use crate::experiments::ExperimentCtx;
use crate::replay::{
    compute_annotations, replay_kind, replay_opt_with, replay_oracle_with, CachedStream,
};
use crate::runner::RunResult;

/// Converts a run result into its storable record.
pub fn record_of(result: &RunResult) -> ReplayRecord {
    ReplayRecord {
        policy: result.policy.clone(),
        llc: result.llc,
        l1: result.l1,
        l2: result.l2,
        instructions: result.instructions,
        trace_accesses: result.trace_accesses,
    }
}

/// Converts a stored record back into a run result.
pub fn result_of(rec: ReplayRecord) -> RunResult {
    RunResult {
        policy: rec.policy,
        llc: rec.llc,
        l1: rec.l1,
        l2: rec.l2,
        instructions: rec.instructions,
        trace_accesses: rec.trace_accesses,
    }
}

/// Resolves the annotation vectors for `window` over `stream`: from the
/// DAG store when attached and intact, otherwise by one fused backward
/// scan (persisted back when a store is attached). The loaded artifact
/// is shape-checked against the stream — a mismatch (which the
/// fingerprint should make impossible) recomputes rather than corrupts.
fn resolve_annotations<S: StreamAccess>(
    dag: Option<(&DagStore, u64)>,
    stream: &S,
    window: u64,
) -> (Arc<Vec<u64>>, Arc<Vec<bool>>) {
    let Some((dag, stream_fp)) = dag else {
        let ann = compute_annotations(stream, window);
        return (Arc::new(ann.next_use), Arc::new(ann.shared_soon));
    };
    let fp = annotations_fp(stream_fp, window);
    if let Some(data) = dag.load_annotations(fp) {
        if data.window == window && data.next_use.len() == stream.len() {
            dag.record_hit(NodeKind::Annotations);
            return (Arc::new(data.next_use), Arc::new(data.shared_soon));
        }
    }
    dag.record_miss(NodeKind::Annotations);
    let ann = compute_annotations(stream, window);
    let saved = dag.save_annotations(
        fp,
        &AnnotationsData {
            window,
            next_use: ann.next_use.clone(),
            shared_soon: ann.shared_soon.clone(),
        },
    );
    if saved.is_err() {
        dag.record_disk_error();
    }
    (Arc::new(ann.next_use), Arc::new(ann.shared_soon))
}

/// Runs one descriptor over `stream`, resolving any needed annotations
/// through the DAG. Generic so the daemon path monomorphizes separately
/// for owned streams and zero-copy views — the [`CachedStream`] enum is
/// matched exactly once, in [`dispatch`], and the replay loops below run
/// branch-free over the concrete representation.
fn execute<S: StreamAccess + Sync>(
    dag: Option<(&DagStore, u64)>,
    config: &HierarchyConfig,
    desc: &ReplayDesc,
    stream: &S,
) -> Result<RunResult, RunError> {
    match desc.wrap {
        ReplayWrap::Plain if desc.kind == PolicyKind::Opt => {
            let (next_use, _) = resolve_annotations(dag, stream, 0);
            replay_opt_with(config, next_use, stream, vec![])
        }
        ReplayWrap::Plain => replay_kind(config, desc.kind, stream, vec![]),
        ReplayWrap::Oracle { mode, window } => {
            let (next_use, shared_soon) = resolve_annotations(dag, stream, window);
            replay_oracle_with(
                config,
                desc.kind,
                mode,
                next_use,
                shared_soon,
                stream,
                vec![],
            )
        }
    }
}

/// The single point where a [`CachedStream`]'s representation is
/// branched on: everything downstream of here is monomorphized for the
/// concrete stream type.
fn dispatch(
    dag: Option<(&DagStore, u64)>,
    config: &HierarchyConfig,
    desc: &ReplayDesc,
    stream: &CachedStream,
) -> Result<RunResult, RunError> {
    match stream {
        CachedStream::Owned(s) => execute(dag, config, desc, &**s),
        CachedStream::View(v) => execute(dag, config, desc, &**v),
    }
}

impl ExperimentCtx {
    /// Replays `desc` for `app` under `config`, resolving through the
    /// attached DAG store: a cached replay node answers without loading
    /// the stream; a miss records/loads the stream, reuses any cached
    /// annotation pre-pass, executes exactly one replay and persists
    /// both partials. Without a DAG this is a plain uncached replay.
    ///
    /// # Errors
    ///
    /// Propagates recording/replay errors; store problems never fail
    /// the call (they surface as misses and counter bumps).
    pub fn replay_cached(
        &self,
        app: App,
        config: &HierarchyConfig,
        desc: &ReplayDesc,
    ) -> Result<RunResult, RunError> {
        let Some(dag) = &self.dag else {
            let stream = self.stream(app, config)?;
            return dispatch(None, config, desc, &stream);
        };
        let stream_fp = self.stream_key(app, config).fingerprint();
        let node_fp = replay_fp(stream_fp, desc.fingerprint());
        if let Some(rec) = dag.load_replay(node_fp) {
            dag.record_hit(NodeKind::Replay);
            return Ok(result_of(rec));
        }
        dag.record_miss(NodeKind::Replay);
        let stream = self.stream(app, config)?;
        let result = dispatch(Some((dag, stream_fp)), config, desc, &stream)?;
        dag.record_replay_executed();
        if dag.save_replay(node_fp, &record_of(&result)).is_err() {
            dag.record_disk_error();
        }
        Ok(result)
    }
}

//! The simulation driver: wires a trace source into the CMP, performs the
//! offline pre-passes (Belady next-use chains, oracle sharing outcomes)
//! and runs policies — realistic, OPT, oracle-wrapped or
//! predictor-wrapped — over identical LLC reference streams.
//!
//! # Why pre-passes are exact
//!
//! In the default non-inclusive hierarchy the sequence of LLC references
//! is a pure function of the workload and the private caches — it does not
//! depend on the LLC replacement policy. Two runs of the same workload
//! therefore produce *identical* LLC access streams, and an annotation
//! computed at stream index `i` in a pre-pass describes exactly the access
//! the second run performs at index `i`. This is what makes Belady's OPT
//! exact and the oracle bits perfectly aligned.
//!
//! Since the stream-replay fast path landed, the annotated runs
//! ([`simulate_opt`], [`simulate_oracle`]) exploit this property twice
//! over: on a non-inclusive hierarchy they record the stream **once**
//! ([`crate::replay::record_stream`]), derive all annotations from the
//! recording in a single fused backward scan, and replay only the LLC —
//! instead of running up to three full hierarchy simulations. Inclusive
//! hierarchies keep the historical full-simulation path (see the
//! [`crate::replay`] module docs for why).

use std::sync::Arc;

use llc_policies::{
    build_oracle_policy_with_mode, build_policy, build_reactive_policy, OracleWrap, PolicyKind,
    ProtectMode,
};
use llc_predictors::{PredictorWrap, SharingPredictor};
use llc_sim::{
    AccessCtx, AccessKind, Aux, AuxProvider, BlockAddr, Cmp, CoreId, HierarchyConfig, Inclusion,
    LiveGeneration, LlcObserver, LlcStats, MultiObserver, Pc, PrivateCacheStats, ReplacementPolicy,
};
use llc_trace::{TraceSource, UpgradeEvent};

use crate::error::RunError;
use crate::replay::{compute_annotations, record_stream, replay_opt, replay_oracle};

/// Aggregate result of one simulation run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunResult {
    /// Name of the policy that ran.
    pub policy: String,
    /// LLC counters.
    pub llc: LlcStats,
    /// Aggregated private L1 counters.
    pub l1: PrivateCacheStats,
    /// Aggregated private L2 counters (zero without an L2).
    pub l2: PrivateCacheStats,
    /// Instructions represented by the trace.
    pub instructions: u64,
    /// Trace records processed.
    pub trace_accesses: u64,
}

impl RunResult {
    /// LLC misses per kilo-instruction.
    pub fn llc_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.llc.misses() as f64 * 1000.0 / self.instructions as f64
        }
    }

    /// L1 misses per kilo-instruction (aggregated over cores).
    pub fn l1_mpki(&self) -> f64 {
        if self.instructions == 0 {
            0.0
        } else {
            self.l1.misses() as f64 * 1000.0 / self.instructions as f64
        }
    }
}

/// Runs `policy` over `trace` with optional aux annotations and
/// observers. The hierarchy is flushed at the end so every generation is
/// reported.
///
/// # Errors
///
/// Returns [`RunError::Sim`] if the hierarchy configuration is invalid or
/// a record names a core the hierarchy does not have (a trace recorded on
/// a wider machine, or a corrupted core byte that slipped past the
/// decoder), and [`RunError::Trace`] if the trace source ended on a
/// decode error (file replay of a corrupt trace) rather than clean
/// exhaustion.
pub fn simulate<W: TraceSource>(
    config: &HierarchyConfig,
    policy: Box<dyn ReplacementPolicy>,
    aux: Option<Box<dyn AuxProvider>>,
    mut trace: W,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError> {
    let mut cmp = Cmp::new(*config, policy).map_err(llc_sim::SimError::from)?;
    if let Some(aux) = aux {
        cmp.set_aux_provider(aux);
    }
    let mut obs = MultiObserver::new(observers);
    while let Some(a) = trace.next_access() {
        cmp.check_access(&a)?;
        cmp.access(a, &mut obs);
    }
    if let Some(e) = trace.take_error() {
        return Err(RunError::Trace(e));
    }
    cmp.finish(&mut obs);
    Ok(RunResult {
        policy: cmp.llc().policy().name(),
        llc: cmp.llc_stats(),
        l1: cmp.l1_stats(),
        l2: cmp.l2_stats(),
        instructions: cmp.instructions(),
        trace_accesses: cmp.trace_accesses(),
    })
}

/// Runs a realistic policy (no annotations needed).
pub fn simulate_kind<W, F>(
    config: &HierarchyConfig,
    kind: PolicyKind,
    make_trace: &mut F,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    if kind == PolicyKind::Opt {
        return simulate_opt(config, make_trace, observers);
    }
    simulate(
        config,
        build_policy(kind, sets, ways),
        None,
        make_trace(),
        observers,
    )
}

/// Runs Belady's OPT: one recording pass captures the LLC reference
/// stream, the next-use chains are derived from the recording, and the
/// OPT run itself replays only the LLC (non-inclusive hierarchies).
/// Inclusive hierarchies fall back to the historical pre-pass + full
/// simulation.
pub fn simulate_opt<W, F>(
    config: &HierarchyConfig,
    make_trace: &mut F,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    if config.inclusion == Inclusion::Inclusive {
        let sets = config.llc.sets() as usize;
        let ways = config.llc.ways;
        let next_use = compute_next_use(config, make_trace())?;
        return simulate(
            config,
            build_policy(PolicyKind::Opt, sets, ways),
            Some(Box::new(NextUseProvider::new(next_use))),
            make_trace(),
            observers,
        );
    }
    let stream = record_stream(config, make_trace())?;
    replay_opt(config, &stream, observers)
}

/// Runs the sharing-aware oracle wrapper around `base`.
///
/// One recording pre-pass over the (policy-independent) LLC reference
/// stream computes, for every access, whether another core touches the
/// block within the retention horizon (`window`; `None` selects
/// [`oracle_window`]); the wrapper then protects lines whose most recent
/// access carried a positive answer.
pub fn simulate_oracle<W, F>(
    config: &HierarchyConfig,
    base: PolicyKind,
    mode: ProtectMode,
    window: Option<u64>,
    make_trace: &mut F,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    if config.inclusion != Inclusion::Inclusive {
        // Fast path: one recording, fused annotations, LLC-only replay.
        // (Historically `base == Opt` here cost THREE full pre-pass
        // simulations; the recording now happens exactly once.)
        let stream = record_stream(config, make_trace())?;
        return replay_oracle(config, base, mode, window, &stream, observers);
    }
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    let window = window.unwrap_or_else(|| oracle_window(config));
    // Inclusive: the stream depends on the policy, so the measured run
    // must be a full simulation — but both annotation vectors still come
    // from a single recording of the LRU-run approximation.
    let stream = record_stream(config, make_trace())?;
    let ann = compute_annotations(&stream, window);
    if base == PolicyKind::Opt {
        let policy = Box::new(OracleWrap::with_mode(
            build_policy(PolicyKind::Opt, sets, ways),
            sets,
            ways,
            mode,
        ));
        return simulate(
            config,
            policy,
            Some(Box::new(CombinedProvider::new(
                ann.next_use,
                ann.shared_soon,
            ))),
            make_trace(),
            observers,
        );
    }
    let policy = build_oracle_policy_with_mode(base, sets, ways, mode);
    simulate(
        config,
        policy,
        Some(Box::new(OracleProvider::new(ann.shared_soon))),
        make_trace(),
        observers,
    )
}

/// Runs the oracle wrapper around Belady's OPT (needs both annotation
/// kinds). Of theoretical interest only: OPT is already optimal, so the
/// wrapper's victim restriction can only *add* misses. The integration
/// tests assert exactly this one-sided bound — it is the quantitative
/// form of "OPT is naturally sharing-aware: there is nothing left for the
/// oracle to protect".
pub fn simulate_oracle_opt<W, F>(
    config: &HierarchyConfig,
    make_trace: &mut F,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    simulate_oracle(
        config,
        PolicyKind::Opt,
        ProtectMode::Eviction,
        None,
        make_trace,
        observers,
    )
}

/// Runs reactive (directory-driven, prediction-free) sharing protection
/// around `base`: lines whose current generation is already shared are
/// protected. The gap between this and the oracle is the part of the gain
/// that genuinely requires fill-time prediction (experiment `abl4`).
pub fn simulate_reactive<W, F>(
    config: &HierarchyConfig,
    base: PolicyKind,
    make_trace: &mut F,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    simulate(
        config,
        build_reactive_policy(base, sets, ways),
        None,
        make_trace(),
        observers,
    )
}

/// Runs a predictor-driven sharing-aware wrapper around `base` (the
/// realistic end-to-end configuration of experiment `fig10`).
pub fn simulate_predictor_wrap<W, F>(
    config: &HierarchyConfig,
    base: PolicyKind,
    predictor: Box<dyn SharingPredictor>,
    make_trace: &mut F,
    observers: Vec<&mut dyn LlcObserver>,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    let sets = config.llc.sets() as usize;
    let ways = config.llc.ways;
    let policy = Box::new(PredictorWrap::new(
        build_policy(base, sets, ways),
        predictor,
        sets,
        ways,
    ));
    simulate(config, policy, None, make_trace(), observers)
}

/// Records the LLC reference stream and computes, for each access, the
/// stream index of the next access to the same block.
pub fn compute_next_use<W: TraceSource>(
    config: &HierarchyConfig,
    trace: W,
) -> Result<Vec<u64>, RunError> {
    let stream = record_stream(config, trace)?;
    Ok(compute_annotations(&stream, 0).next_use)
}

/// Computes the oracle's answer vector from the (policy-independent) LLC
/// reference stream: `outcome[t]` is `true` iff the block accessed at
/// stream position `t` is touched by a *different core* within the next
/// `window` LLC accesses.
///
/// This is the precise form of the paper's fill-time oracle question —
/// "will this block be shared during its residency?" — made
/// policy-independent by bounding "residency" with a retention horizon
/// proportional to the LLC capacity (see [`oracle_window`]). Because the
/// horizon grows with the cache, a larger LLC lets the oracle protect
/// shared blocks with longer re-reference distances, which is exactly why
/// the paper's oracle gains are larger at 8 MB than at 4 MB.
///
/// With an [`Inclusion::Inclusive`](llc_sim::Inclusion) hierarchy the LLC
/// reference stream is *not* policy-independent (back-invalidations feed
/// back into the private caches), so the annotations are an approximation
/// there — the `abl2` ablation quantifies the effect.
pub fn compute_shared_soon<W: TraceSource>(
    config: &HierarchyConfig,
    trace: W,
    window: u64,
) -> Result<Vec<bool>, RunError> {
    let stream = record_stream(config, trace)?;
    Ok(compute_annotations(&stream, window).shared_soon)
}

/// The default oracle retention horizon for a hierarchy: four times the
/// number of LLC lines. A block re-referenced within this many LLC
/// accesses is plausibly retainable; the factor is swept in the `abl1`
/// ablation.
pub fn oracle_window(config: &HierarchyConfig) -> u64 {
    4 * config.llc.lines()
}

/// Observer recording every LLC access (block, core, PC, kind) plus the
/// interleaved coherence upgrades, in stream order — everything a
/// [`crate::replay::replay`] run needs to reproduce the LLC
/// bit-identically.
#[derive(Debug, Default)]
pub struct StreamRecorder {
    /// One entry per LLC access.
    pub blocks: Vec<BlockAddr>,
    /// The issuing core of each access.
    pub cores: Vec<CoreId>,
    /// The program counter of each access.
    pub pcs: Vec<Pc>,
    /// Read or write.
    pub kinds: Vec<AccessKind>,
    /// Coherence upgrades, positioned by the number of LLC accesses that
    /// preceded them.
    pub upgrades: Vec<UpgradeEvent>,
}

impl StreamRecorder {
    /// Creates a recorder pre-sized from a trace length hint
    /// ([`TraceSource::len_hint`]). LLC accesses are the private caches'
    /// misses — typically a small fraction of the trace — so the capacity
    /// is a quarter of the hint, bounded to keep a corrupt hint from
    /// reserving gigabytes.
    pub fn with_capacity(len_hint: Option<u64>) -> Self {
        let cap = len_hint.map_or(0, |h| (h / 4).min(1 << 22) as usize);
        StreamRecorder {
            blocks: Vec::with_capacity(cap),
            cores: Vec::with_capacity(cap),
            pcs: Vec::with_capacity(cap),
            kinds: Vec::with_capacity(cap),
            upgrades: Vec::new(),
        }
    }

    fn push(&mut self, ctx: &AccessCtx) {
        self.blocks.push(ctx.block);
        self.cores.push(ctx.core);
        self.pcs.push(ctx.pc);
        self.kinds.push(ctx.kind);
    }
}

impl LlcObserver for StreamRecorder {
    fn on_hit(&mut self, ctx: &AccessCtx, _: &LiveGeneration, _: bool) {
        self.push(ctx);
    }
    fn on_fill(&mut self, ctx: &AccessCtx) {
        self.push(ctx);
    }
    fn on_upgrade(&mut self, block: BlockAddr, core: CoreId) {
        // `on_hit`/`on_fill` fire exactly once per LLC access, in order,
        // so `blocks.len()` is the LLC time this upgrade lands at.
        self.upgrades.push(UpgradeEvent {
            at: self.blocks.len() as u64,
            block,
            core,
        });
    }
}

/// Aux provider feeding next-use chains to OPT.
///
/// Annotation vectors are held behind [`Arc`] so set-sharded replays can
/// hand every shard its own provider without cloning megabytes of
/// annotations (see [`crate::replay::replay_sharded`]).
#[derive(Debug, Clone)]
pub struct NextUseProvider {
    next_use: Arc<Vec<u64>>,
}

impl NextUseProvider {
    /// Wraps a next-use vector (`u64::MAX` = never used again).
    pub fn new(next_use: Vec<u64>) -> Self {
        NextUseProvider::shared(Arc::new(next_use))
    }

    /// Wraps an already-shared next-use vector.
    pub fn shared(next_use: Arc<Vec<u64>>) -> Self {
        NextUseProvider { next_use }
    }
}

impl AuxProvider for NextUseProvider {
    fn aux_for(&mut self, time: u64, _block: BlockAddr) -> Aux {
        let n = self
            .next_use
            .get(time as usize)
            .copied()
            .unwrap_or(u64::MAX);
        Aux {
            next_use: (n != u64::MAX).then_some(n),
            oracle_shared: None,
        }
    }
}

/// Aux provider feeding oracle sharing outcomes to [`OracleWrap`].
#[derive(Debug, Clone)]
pub struct OracleProvider {
    outcome: Arc<Vec<bool>>,
}

impl OracleProvider {
    /// Wraps an outcome vector indexed by LLC access stream position.
    pub fn new(outcome: Vec<bool>) -> Self {
        OracleProvider::shared(Arc::new(outcome))
    }

    /// Wraps an already-shared outcome vector.
    pub fn shared(outcome: Arc<Vec<bool>>) -> Self {
        OracleProvider { outcome }
    }
}

impl AuxProvider for OracleProvider {
    fn aux_for(&mut self, time: u64, _block: BlockAddr) -> Aux {
        let s = self.outcome.get(time as usize).copied().unwrap_or(false);
        Aux {
            next_use: None,
            oracle_shared: Some(s),
        }
    }
}

/// Aux provider feeding both annotation kinds (for `OracleWrap<Opt>`).
#[derive(Debug, Clone)]
pub struct CombinedProvider {
    next_use: Arc<Vec<u64>>,
    outcome: Arc<Vec<bool>>,
}

impl CombinedProvider {
    /// Combines a next-use vector and an outcome vector.
    pub fn new(next_use: Vec<u64>, outcome: Vec<bool>) -> Self {
        CombinedProvider::shared(Arc::new(next_use), Arc::new(outcome))
    }

    /// Combines already-shared annotation vectors.
    pub fn shared(next_use: Arc<Vec<u64>>, outcome: Arc<Vec<bool>>) -> Self {
        CombinedProvider { next_use, outcome }
    }
}

impl AuxProvider for CombinedProvider {
    fn aux_for(&mut self, time: u64, _block: BlockAddr) -> Aux {
        let n = self
            .next_use
            .get(time as usize)
            .copied()
            .unwrap_or(u64::MAX);
        let s = self.outcome.get(time as usize).copied().unwrap_or(false);
        Aux {
            next_use: (n != u64::MAX).then_some(n),
            oracle_shared: Some(s),
        }
    }
}

/// Convenience: runs a policy (including OPT) with no observers.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn run_simple<W, F>(
    config: &HierarchyConfig,
    kind: PolicyKind,
    make_trace: &mut F,
) -> Result<RunResult, RunError>
where
    W: TraceSource,
    F: FnMut() -> W,
{
    simulate_kind(config, kind, make_trace, vec![])
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_trace::{App, Scale};

    fn cfg() -> HierarchyConfig {
        HierarchyConfig::tiny()
    }

    fn make(app: App) -> impl FnMut() -> llc_trace::Workload {
        move || app.workload(4, Scale::Tiny)
    }

    #[test]
    fn llc_stream_is_policy_independent() {
        let mut rec_lru = StreamRecorder::default();
        let mut rec_rand = StreamRecorder::default();
        let c = cfg();
        simulate(
            &c,
            build_policy(PolicyKind::Lru, c.llc.sets() as usize, c.llc.ways),
            None,
            make(App::Bodytrack)(),
            vec![&mut rec_lru],
        )
        .expect("run");
        simulate(
            &c,
            build_policy(PolicyKind::Random, c.llc.sets() as usize, c.llc.ways),
            None,
            make(App::Bodytrack)(),
            vec![&mut rec_rand],
        )
        .expect("run");
        assert_eq!(rec_lru.blocks, rec_rand.blocks);
        assert!(!rec_lru.blocks.is_empty());
    }

    #[test]
    fn next_use_chains_are_consistent() {
        let c = cfg();
        let mut rec = StreamRecorder::default();
        simulate(
            &c,
            build_policy(PolicyKind::Lru, c.llc.sets() as usize, c.llc.ways),
            None,
            make(App::Water)(),
            vec![&mut rec],
        )
        .expect("run");
        let next = compute_next_use(&c, make(App::Water)()).expect("pre-pass");
        assert_eq!(next.len(), rec.blocks.len());
        for (i, &n) in next.iter().enumerate() {
            if n != u64::MAX {
                let n = n as usize;
                assert!(n > i);
                assert_eq!(rec.blocks[n], rec.blocks[i], "chain broken at {i}");
                // No intervening access to the same block.
                for j in i + 1..n {
                    assert_ne!(rec.blocks[j], rec.blocks[i]);
                }
            }
        }
    }

    #[test]
    fn opt_beats_every_realistic_policy() {
        let c = cfg();
        for app in [App::Bodytrack, App::Fft, App::Canneal] {
            let opt = simulate_opt(&c, &mut make(app), vec![]).expect("run");
            for kind in [PolicyKind::Lru, PolicyKind::Srrip, PolicyKind::Random] {
                let r = simulate_kind(&c, kind, &mut make(app), vec![]).expect("run");
                assert!(
                    opt.llc.misses() <= r.llc.misses(),
                    "{app}: OPT {} > {} {}",
                    opt.llc.misses(),
                    kind,
                    r.llc.misses()
                );
                // Identical streams: same access counts.
                assert_eq!(opt.llc.accesses, r.llc.accesses);
            }
        }
    }

    #[test]
    fn oracle_never_hurts_much_and_usually_helps() {
        let c = cfg();
        for app in [App::Bodytrack, App::Streamcluster] {
            let lru = simulate_kind(&c, PolicyKind::Lru, &mut make(app), vec![]).expect("run");
            let oracle = simulate_oracle(
                &c,
                PolicyKind::Lru,
                ProtectMode::Eviction,
                None,
                &mut make(app),
                vec![],
            )
            .expect("run");
            assert_eq!(lru.llc.accesses, oracle.llc.accesses);
            // The oracle is an approximation (outcomes from the base run),
            // so allow a small regression margin but catch blow-ups.
            let limit = lru.llc.misses() + lru.llc.misses() / 20 + 10;
            assert!(
                oracle.llc.misses() <= limit,
                "{app}: oracle {} vs LRU {}",
                oracle.llc.misses(),
                lru.llc.misses()
            );
        }
    }

    #[test]
    fn shared_soon_matches_brute_force() {
        let c = cfg();
        let mut rec = StreamRecorder::default();
        simulate(
            &c,
            build_policy(PolicyKind::Lru, c.llc.sets() as usize, c.llc.ways),
            None,
            make(App::Dedup)(),
            vec![&mut rec],
        )
        .expect("run");
        let window = 64u64;
        let fast = compute_shared_soon(&c, make(App::Dedup)(), window).expect("pre-pass");
        assert_eq!(fast.len(), rec.blocks.len());
        // Brute force on a prefix (quadratic).
        let n = rec.blocks.len().min(3000);
        for (i, &got) in fast.iter().enumerate().take(n) {
            let mut expected = false;
            for j in i + 1..rec.blocks.len().min(i + 1 + window as usize) {
                if rec.blocks[j] == rec.blocks[i] && rec.cores[j] != rec.cores[i] {
                    expected = true;
                    break;
                }
            }
            assert_eq!(got, expected, "mismatch at stream position {i}");
        }
        // The workload has sharing, so some positions must be positive.
        assert!(fast.iter().any(|&b| b));
        assert!(fast.iter().any(|&b| !b));
    }

    #[test]
    fn oracle_run_is_deterministic() {
        let c = cfg();
        let a = simulate_oracle(
            &c,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &mut make(App::Water),
            vec![],
        )
        .expect("run");
        let b = simulate_oracle(
            &c,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &mut make(App::Water),
            vec![],
        )
        .expect("run");
        assert_eq!(a.llc, b.llc);
    }

    #[test]
    fn run_result_mpki_uses_instructions() {
        let c = cfg();
        let r = simulate_kind(&c, PolicyKind::Lru, &mut make(App::Swaptions), vec![]).expect("run");
        assert!(r.instructions > r.trace_accesses);
        assert!(r.llc_mpki() > 0.0);
        assert!(r.l1_mpki() >= r.llc_mpki());
    }
}

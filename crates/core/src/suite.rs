//! A crash-isolating, resumable experiment-suite runner.
//!
//! [`run_experiment`](crate::experiments::run_experiment) runs one
//! experiment and returns its tables or a typed error. This module wraps
//! that in the harness a long unattended campaign needs:
//!
//! * **Crash isolation** — each experiment runs on its own thread under
//!   `catch_unwind`; a panic (or a typed error) becomes a structured
//!   [`ExperimentOutcome::Failed`] row and the suite moves on instead of
//!   aborting, so one broken experiment cannot take down an overnight run.
//! * **Watchdog** — a configurable wall-clock budget per experiment. On
//!   timeout the worker thread is abandoned (detached, never joined) and
//!   the experiment is recorded as failed; the suite continues.
//! * **Checkpointing** — each completed experiment's tables are appended
//!   to a JSON manifest with an atomic write-to-temp-then-rename. A rerun
//!   pointed at the same manifest replays completed experiments from disk
//!   ([`ExperimentOutcome::Resumed`]) instead of recomputing their
//!   OPT/oracle pre-passes.
//! * **Bounded IO retry** — manifest reads and writes retry with
//!   exponential backoff before giving up; a checkpoint that still fails
//!   is recorded in the report but does not fail the suite.
//! * **Worker pool** — independent experiments run on up to
//!   [`SuiteConfig::jobs`] workers concurrently (scoped threads, no extra
//!   dependencies). Each worker still gets the full per-experiment
//!   isolation and watchdog; completed experiments are checkpointed as
//!   they finish (manifest writes serialized by a lock) and the report
//!   keeps request order regardless of completion order. The shared
//!   [`StreamCache`](crate::replay::StreamCache) in the context means
//!   concurrent experiments record each reference stream only once.
//!
//! The manifest format is a small hand-rolled JSON document (this
//! workspace deliberately has no serde dependency); see [`SuiteReport`]
//! for the shape.

use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, LazyLock, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use llc_telemetry::metrics::{global, Counter, Histogram, TIME_BOUNDS};
use llc_telemetry::spans;

use crate::error::RunError;
use crate::experiments::{run_experiment, ExperimentCtx, ExperimentId};
use crate::json;
use crate::report::Table;

pub mod pool;

/// Suite-level telemetry, resolved once per process.
struct SuiteMetrics {
    queue_wait: Arc<Histogram>,
    completed: Arc<Counter>,
    resumed: Arc<Counter>,
    failed: Arc<Counter>,
    checkpoint_writes: Arc<Counter>,
    checkpoint_write: Arc<Histogram>,
}

static METRICS: LazyLock<SuiteMetrics> = LazyLock::new(|| {
    let experiments = |status| {
        global().counter_with(
            "llc_suite_experiments_total",
            "Experiments finished by the suite runner, by outcome",
            &[("status", status)],
        )
    };
    SuiteMetrics {
        queue_wait: global().histogram(
            "llc_suite_queue_wait_seconds",
            "Time experiments waited from suite start until a worker claimed them",
            &TIME_BOUNDS,
        ),
        completed: experiments("completed"),
        resumed: experiments("resumed"),
        failed: experiments("failed"),
        checkpoint_writes: global().counter(
            "llc_suite_checkpoint_writes_total",
            "Checkpoint manifest writes attempted after completed experiments",
        ),
        checkpoint_write: global().histogram(
            "llc_suite_checkpoint_write_seconds",
            "Duration of checkpoint manifest serialization + atomic write",
            &TIME_BOUNDS,
        ),
    }
});

/// Configuration of the suite harness.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Wall-clock budget per experiment; `None` disables the watchdog.
    pub timeout: Option<Duration>,
    /// Additional attempts for a failing manifest read/write (0 = one
    /// attempt, no retries).
    pub io_retries: u32,
    /// Backoff before the first retry; doubled after each failure.
    pub retry_backoff: Duration,
    /// Checkpoint manifest path; `None` disables checkpointing/resume.
    pub manifest_path: Option<PathBuf>,
    /// Maximum experiments running concurrently. `1` = sequential
    /// (default); `0` = one worker per available hardware thread.
    pub jobs: usize,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            timeout: Some(Duration::from_secs(1800)),
            io_retries: 3,
            retry_backoff: Duration::from_millis(50),
            manifest_path: None,
            jobs: 1,
        }
    }
}

impl SuiteConfig {
    /// The resolved worker count: [`jobs`](SuiteConfig::jobs), with `0`
    /// meaning the machine's available parallelism.
    pub fn effective_jobs(&self) -> usize {
        match self.jobs {
            0 => thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
            n => n,
        }
    }
}

/// What happened to one experiment in a suite run.
#[derive(Debug, Clone)]
pub enum ExperimentOutcome {
    /// Ran to completion in this invocation.
    Completed {
        /// The experiment's rendered tables.
        tables: Vec<Table>,
        /// Wall time the experiment took (isolation thread + watchdog
        /// included); checkpointed so later resumes can report it.
        elapsed: Duration,
    },
    /// Replayed from the checkpoint manifest without recomputation.
    Resumed {
        /// The tables as checkpointed by the earlier invocation.
        tables: Vec<Table>,
        /// Wall time the checkpointed run took — i.e. roughly what the
        /// resume just saved. `None` for manifests written before the
        /// field existed.
        saved: Option<Duration>,
    },
    /// Did not produce tables; the suite recorded why and moved on.
    Failed {
        /// Human-readable failure reason (typed error, panic payload or
        /// watchdog timeout).
        reason: String,
    },
}

impl ExperimentOutcome {
    /// The tables, if the experiment produced any.
    pub fn tables(&self) -> Option<&[Table]> {
        match self {
            ExperimentOutcome::Completed { tables, .. }
            | ExperimentOutcome::Resumed { tables, .. } => Some(tables),
            ExperimentOutcome::Failed { .. } => None,
        }
    }
}

/// The result of a suite run: one outcome per requested experiment, in
/// request order, plus any checkpoint-write complaints.
#[derive(Debug)]
pub struct SuiteReport {
    /// One `(experiment, outcome)` row per requested experiment.
    pub outcomes: Vec<(ExperimentId, ExperimentOutcome)>,
    /// Checkpoint writes that failed even after retries (the suite still
    /// completed; only resumability is degraded).
    pub checkpoint_errors: Vec<String>,
}

impl SuiteReport {
    /// Experiments that ran to completion in this invocation.
    pub fn completed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ExperimentOutcome::Completed { .. }))
            .count()
    }

    /// Experiments replayed from the checkpoint manifest.
    pub fn resumed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ExperimentOutcome::Resumed { .. }))
            .count()
    }

    /// Experiments that failed (error, panic or timeout).
    pub fn failed(&self) -> usize {
        self.outcomes
            .iter()
            .filter(|(_, o)| matches!(o, ExperimentOutcome::Failed { .. }))
            .count()
    }

    /// Total wall time spent by experiments completed in this
    /// invocation (per-experiment times, so parallel runs sum to more
    /// than the suite's own wall clock).
    pub fn time_spent(&self) -> Duration {
        self.outcomes
            .iter()
            .filter_map(|(_, o)| match o {
                ExperimentOutcome::Completed { elapsed, .. } => Some(*elapsed),
                _ => None,
            })
            .sum()
    }

    /// Total wall time the resumes skipped, as recorded by the earlier
    /// invocations that checkpointed them (experiments resumed from
    /// manifests predating the timing field contribute nothing).
    pub fn time_skipped(&self) -> Duration {
        self.outcomes
            .iter()
            .filter_map(|(_, o)| match o {
                ExperimentOutcome::Resumed { saved, .. } => *saved,
                _ => None,
            })
            .sum()
    }

    /// A one-row-per-experiment status table for the end of a report.
    pub fn summary(&self) -> Table {
        let mut t = Table::new("Suite summary", &["experiment", "status", "detail"]);
        for (id, outcome) in &self.outcomes {
            let (status, detail) = match outcome {
                ExperimentOutcome::Completed { tables, elapsed } => (
                    "completed".to_string(),
                    format!("{} table(s) in {:.1?}", tables.len(), elapsed),
                ),
                ExperimentOutcome::Resumed { tables, saved } => {
                    let saved = match saved {
                        Some(d) => format!(", ~{:.1?} skipped", d),
                        None => String::new(),
                    };
                    (
                        "resumed".to_string(),
                        format!("{} table(s) from checkpoint{saved}", tables.len()),
                    )
                }
                ExperimentOutcome::Failed { reason } => ("FAILED".to_string(), reason.clone()),
            };
            t.row(vec![id.label().to_string(), status, detail]);
        }
        for e in &self.checkpoint_errors {
            t.note(format!("checkpoint warning: {e}"));
        }
        t
    }
}

/// Runs the given experiments under the full harness (isolation,
/// watchdog, checkpoint/resume) using the real
/// [`run_experiment`](crate::experiments::run_experiment).
///
/// # Errors
///
/// Fails only if an existing checkpoint manifest cannot be read or
/// parsed — per-experiment failures are recorded in the report, not
/// returned. Delete (or move) a corrupt manifest to proceed without it.
pub fn run_suite(
    ids: &[ExperimentId],
    ctx: &ExperimentCtx,
    config: &SuiteConfig,
) -> Result<SuiteReport, RunError> {
    run_suite_with(ids, ctx, config, run_experiment)
}

/// [`run_suite`] generic over the experiment body, so tests can inject
/// panicking, hanging or counting experiments without touching the real
/// registry.
///
/// # Errors
///
/// Same conditions as [`run_suite`].
pub fn run_suite_with<F>(
    ids: &[ExperimentId],
    ctx: &ExperimentCtx,
    config: &SuiteConfig,
    run_fn: F,
) -> Result<SuiteReport, RunError>
where
    F: Fn(ExperimentId, &ExperimentCtx) -> Result<Vec<Table>, RunError> + Send + Sync + 'static,
{
    let run_fn = Arc::new(run_fn);
    let manifest = match &config.manifest_path {
        Some(path) => load_manifest(path, config)?,
        None => Manifest::default(),
    };

    // Resolve resumes up front; everything left is independent work.
    let mut slots: Vec<Option<ExperimentOutcome>> = Vec::with_capacity(ids.len());
    let mut pending: Vec<(usize, ExperimentId)> = Vec::new();
    for (i, &id) in ids.iter().enumerate() {
        match manifest.get(id.label()) {
            Some((tables, elapsed_ms)) => {
                METRICS.resumed.inc();
                slots.push(Some(ExperimentOutcome::Resumed {
                    tables: tables.to_vec(),
                    saved: elapsed_ms.map(Duration::from_millis),
                }));
            }
            None => {
                slots.push(None);
                pending.push((i, id));
            }
        }
    }

    // Shared between workers: the manifest plus accumulated checkpoint
    // complaints, both mutated under one lock so every completed
    // experiment is persisted immediately, exactly as in sequential runs.
    let checkpoint = Mutex::new((manifest, Vec::<String>::new()));
    let result_slots: Vec<Mutex<Option<ExperimentOutcome>>> =
        slots.iter_mut().map(|s| Mutex::new(s.take())).collect();
    let next = AtomicUsize::new(0);
    let workers = config.effective_jobs().min(pending.len().max(1));
    // Workers the `--jobs` grant covers but the suite cannot use (fewer
    // runnable experiments than jobs) are donated to set-sharded replay
    // up front; each worker re-donates itself when it runs out of
    // claimable experiments, so the tail of a suite — a few long
    // stragglers on an otherwise idle machine — still saturates it.
    crate::budget::reset(config.effective_jobs().saturating_sub(workers));
    let suite_start = Instant::now();
    pool::scoped_workers(workers, |_| loop {
        let w = next.fetch_add(1, Ordering::SeqCst);
        let Some(&(slot, id)) = pending.get(w) else {
            crate::budget::donate(1);
            break;
        };
        // Queue wait: how long the experiment sat behind others before a
        // worker picked it up (zero-ish for the first `workers` claims).
        METRICS.queue_wait.observe_duration(suite_start.elapsed());
        let outcome = run_isolated(id, ctx, config, Arc::clone(&run_fn));
        if let (Some(path), ExperimentOutcome::Completed { tables, elapsed }) =
            (&config.manifest_path, &outcome)
        {
            let _span = spans::span("checkpoint write");
            let write_start = Instant::now();
            let mut guard = checkpoint
                .lock()
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            let (manifest, errors) = &mut *guard;
            manifest.insert(id.label(), tables.clone(), Some(elapsed.as_millis() as u64));
            if let Err(e) = save_manifest(manifest, path, config) {
                errors.push(e.to_string());
            }
            METRICS.checkpoint_writes.inc();
            METRICS
                .checkpoint_write
                .observe_duration(write_start.elapsed());
        }
        *result_slots[slot].lock().unwrap_or_else(|p| p.into_inner()) = Some(outcome);
    });

    let outcomes = ids
        .iter()
        .zip(result_slots)
        .map(|(&id, slot)| {
            let outcome = slot
                .into_inner()
                .unwrap_or_else(|poisoned| poisoned.into_inner())
                // infallible: every slot is either pre-filled (resumed) or
                // assigned by the worker that claimed its pending index.
                .expect("every experiment slot is filled");
            (id, outcome)
        })
        .collect();
    let (_, checkpoint_errors) = checkpoint
        .into_inner()
        .unwrap_or_else(|poisoned| poisoned.into_inner());
    Ok(SuiteReport {
        outcomes,
        checkpoint_errors,
    })
}

/// Runs `work` on a dedicated thread under `catch_unwind` and a watchdog,
/// converting a panic into [`RunError::Panicked`] and a blown time budget
/// into [`RunError::TimedOut`] (both labelled with `label`). On timeout
/// the worker is abandoned: its thread keeps running detached until the
/// process exits (acceptable for a batch harness or a daemon discarding
/// the result; the alternative — killing a thread — is unsound in Rust).
///
/// This is the isolation primitive behind both the suite runner's
/// per-experiment crash containment and the `llc-serve` daemon's job
/// execution (including `DELETE /jobs/{id}` cancellation of a running
/// job, which abandons the guarded thread the same way).
///
/// # Errors
///
/// Returns `work`'s own error, or the panic/timeout/spawn-failure it was
/// shielded from.
pub fn run_guarded<T, F>(label: &str, timeout: Option<Duration>, work: F) -> Result<T, RunError>
where
    T: Send + 'static,
    F: FnOnce() -> Result<T, RunError> + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let spawned = thread::Builder::new()
        .name(format!("guarded-{label}"))
        .spawn(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(work));
            // The receiver may be gone after a watchdog timeout; that is
            // fine, the outcome was already recorded.
            let _ = tx.send(result);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => {
            return Err(RunError::Io {
                context: format!("spawning guarded thread for {label}"),
                source: e,
            })
        }
    };
    let disconnected = || RunError::Panicked {
        label: label.to_string(),
        reason: "worker thread exited without reporting".into(),
    };
    let received = match timeout {
        Some(limit) => match rx.recv_timeout(limit) {
            Ok(r) => r,
            Err(mpsc::RecvTimeoutError::Timeout) => {
                drop(handle); // abandon the worker; see the function docs
                return Err(RunError::TimedOut {
                    label: label.to_string(),
                    limit,
                });
            }
            Err(mpsc::RecvTimeoutError::Disconnected) => return Err(disconnected()),
        },
        None => match rx.recv() {
            Ok(r) => r,
            Err(_) => return Err(disconnected()),
        },
    };
    let _ = handle.join(); // already reported; join cannot block long
    match received {
        Ok(result) => result,
        Err(payload) => Err(RunError::Panicked {
            label: label.to_string(),
            reason: panic_message(payload.as_ref()),
        }),
    }
}

/// Runs one experiment under [`run_guarded`], folding the typed error
/// into a structured suite outcome.
fn run_isolated<F>(
    id: ExperimentId,
    ctx: &ExperimentCtx,
    config: &SuiteConfig,
    run_fn: Arc<F>,
) -> ExperimentOutcome
where
    F: Fn(ExperimentId, &ExperimentCtx) -> Result<Vec<Table>, RunError> + Send + Sync + 'static,
{
    let ctx = ctx.clone();
    let _span = spans::span_with(|| format!("experiment {}", id.label()));
    let start = Instant::now();
    match run_guarded(id.label(), config.timeout, move || run_fn(id, &ctx)) {
        Ok(tables) => {
            METRICS.completed.inc();
            ExperimentOutcome::Completed {
                tables,
                elapsed: start.elapsed(),
            }
        }
        Err(e) => {
            METRICS.failed.inc();
            ExperimentOutcome::Failed {
                reason: e.to_string(),
            }
        }
    }
}

/// Extracts the human-readable message from a panic payload.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Retries an IO operation with exponential backoff, converting the final
/// failure into [`RunError::Io`].
fn with_retries<T>(
    config: &SuiteConfig,
    context: &str,
    mut op: impl FnMut() -> io::Result<T>,
) -> Result<T, RunError> {
    let mut backoff = config.retry_backoff;
    let mut last_err: Option<io::Error> = None;
    for attempt in 0..=config.io_retries {
        if attempt > 0 {
            thread::sleep(backoff);
            backoff = backoff.saturating_mul(2);
        }
        match op() {
            Ok(v) => return Ok(v),
            Err(e) => last_err = Some(e),
        }
    }
    Err(RunError::Io {
        context: context.to_string(),
        // infallible: the loop body ran at least once, so last_err is set.
        source: last_err.expect("at least one attempt"),
    })
}

/// The checkpoint manifest: completed experiments, their tables and
/// (since the timing field was added) their wall time, in completion
/// order.
#[derive(Debug, Default)]
struct Manifest {
    entries: Vec<ManifestEntry>,
}

#[derive(Debug)]
struct ManifestEntry {
    label: String,
    tables: Vec<Table>,
    /// Wall time of the run that produced the tables. Optional so
    /// manifests written before the field existed still parse (the
    /// format version stays at 1 — old readers ignore unknown fields
    /// and old writers simply omit this one).
    elapsed_ms: Option<u64>,
}

impl Manifest {
    fn get(&self, label: &str) -> Option<(&[Table], Option<u64>)> {
        self.entries
            .iter()
            .find(|e| e.label == label)
            .map(|e| (e.tables.as_slice(), e.elapsed_ms))
    }

    fn insert(&mut self, label: &str, tables: Vec<Table>, elapsed_ms: Option<u64>) {
        if let Some(entry) = self.entries.iter_mut().find(|e| e.label == label) {
            entry.tables = tables;
            entry.elapsed_ms = elapsed_ms;
        } else {
            self.entries.push(ManifestEntry {
                label: label.to_string(),
                tables,
                elapsed_ms,
            });
        }
    }
}

/// Loads a manifest; a missing file is an empty manifest, an unreadable
/// or unparsable one is a typed error.
fn load_manifest(path: &Path, config: &SuiteConfig) -> Result<Manifest, RunError> {
    if !path.exists() {
        return Ok(Manifest::default());
    }
    let text = with_retries(
        config,
        &format!("reading manifest {}", path.display()),
        || std::fs::read_to_string(path),
    )?;
    parse_manifest(&text).map_err(|reason| RunError::Manifest {
        path: path.display().to_string(),
        reason,
    })
}

/// Writes the manifest crash-safely via [`llc_trace::atomic_write`]:
/// serialize to a temporary sibling file, fsync, then rename over the
/// target, so a crash mid-write can never leave a truncated or
/// half-written manifest where the next run would find it.
fn save_manifest(manifest: &Manifest, path: &Path, config: &SuiteConfig) -> Result<(), RunError> {
    let text = render_manifest(manifest);
    with_retries(
        config,
        &format!("writing manifest {}", path.display()),
        || llc_trace::atomic_write(path, text.as_bytes()),
    )
}

const MANIFEST_VERSION: u64 = 1;

fn render_manifest(manifest: &Manifest) -> String {
    use json::Value;
    let entries: Vec<Value> = manifest
        .entries
        .iter()
        .map(|entry| {
            let mut fields = vec![
                ("id", Value::Str(entry.label.clone())),
                (
                    "tables",
                    Value::Array(entry.tables.iter().map(json::table_to_json).collect()),
                ),
            ];
            if let Some(ms) = entry.elapsed_ms {
                fields.push(("elapsed_ms", Value::Num(ms as f64)));
            }
            Value::object(fields)
        })
        .collect();
    let doc = Value::object(vec![
        ("version", Value::Num(MANIFEST_VERSION as f64)),
        ("entries", Value::Array(entries)),
    ]);
    let mut out = doc.render();
    out.push('\n');
    out
}

fn parse_manifest(text: &str) -> Result<Manifest, String> {
    use json::Value;
    let doc = json::parse(text)?;
    let version = doc
        .field("version")
        .and_then(Value::as_u64)
        .ok_or("missing version")?;
    if version != MANIFEST_VERSION {
        return Err(format!("unsupported manifest version {version}"));
    }
    let entries = doc
        .field("entries")
        .and_then(Value::as_array)
        .ok_or("missing entries")?;
    let mut manifest = Manifest::default();
    for entry in entries {
        let label = entry
            .field("id")
            .and_then(Value::as_str)
            .ok_or("entry missing id")?
            .to_string();
        let tables = entry
            .field("tables")
            .and_then(Value::as_array)
            .ok_or("entry missing tables")?;
        let tables: Result<Vec<Table>, String> = tables.iter().map(json::table_from_json).collect();
        let elapsed_ms = entry.field("elapsed_ms").and_then(Value::as_u64);
        manifest.insert(&label, tables?, elapsed_ms);
    }
    Ok(manifest)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(title: &str) -> Table {
        let mut t = Table::new(title, &["k", "v"]);
        t.row(vec!["a".into(), "1".into()]);
        t.note("a note with \"quotes\" and a \\ backslash");
        t
    }

    fn quick_config() -> SuiteConfig {
        SuiteConfig {
            timeout: Some(Duration::from_secs(10)),
            io_retries: 1,
            retry_backoff: Duration::from_millis(1),
            manifest_path: None,
            jobs: 1,
        }
    }

    #[test]
    fn manifest_round_trips_tables() {
        let mut m = Manifest::default();
        m.insert("fig7", vec![table("Fig 7 — «headline», 100%")], Some(4321));
        m.insert("table1", vec![table("T1"), table("T1b")], None);
        let text = render_manifest(&m);
        let back = parse_manifest(&text).expect("parse own output");
        assert_eq!(back.entries.len(), 2);
        let (fig7, elapsed) = back.get("fig7").expect("fig7 present");
        assert_eq!(fig7.len(), 1);
        assert_eq!(fig7[0].title, "Fig 7 — «headline», 100%");
        assert_eq!(fig7[0].rows, vec![vec!["a".to_string(), "1".to_string()]]);
        assert_eq!(elapsed, Some(4321), "wall time survives the round trip");
        let (t1, t1_elapsed) = back.get("table1").expect("table1 present");
        assert_eq!(t1.len(), 2);
        assert_eq!(t1_elapsed, None);
    }

    #[test]
    fn manifest_without_elapsed_field_still_parses() {
        // The exact shape PR 1 wrote, before per-experiment timing
        // existed: same version, no elapsed_ms.
        let text = "{\"version\": 1, \"entries\": [{\"id\": \"fig1\", \"tables\": []}]}";
        let m = parse_manifest(text).expect("old manifests stay readable");
        let (tables, elapsed) = m.get("fig1").expect("entry present");
        assert!(tables.is_empty());
        assert_eq!(elapsed, None);
    }

    #[test]
    fn corrupt_manifest_is_a_typed_error() {
        assert!(parse_manifest("{").is_err());
        assert!(parse_manifest("{\"version\": 99, \"entries\": []}").is_err());
        assert!(parse_manifest("{\"version\": 1}").is_err());
    }

    #[test]
    fn suite_records_failures_and_continues() {
        let ctx = ExperimentCtx::test();
        let ids = [ExperimentId::Table1, ExperimentId::Fig1, ExperimentId::Fig2];
        let report = run_suite_with(&ids, &ctx, &quick_config(), |id, _ctx| match id {
            ExperimentId::Fig1 => panic!("injected panic"),
            ExperimentId::Fig2 => Err(RunError::UnknownExperiment {
                id: "injected error".into(),
            }),
            _ => Ok(vec![Table::new("ok", &["x"])]),
        })
        .expect("suite runs");
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 2);
        match &report.outcomes[1].1 {
            ExperimentOutcome::Failed { reason } => assert!(reason.contains("injected panic")),
            other => panic!("expected failure, got {other:?}"),
        }
        match &report.outcomes[2].1 {
            ExperimentOutcome::Failed { reason } => assert!(reason.contains("injected error")),
            other => panic!("expected failure, got {other:?}"),
        }
    }

    #[test]
    fn watchdog_times_out_hung_experiments() {
        let ctx = ExperimentCtx::test();
        let config = SuiteConfig {
            timeout: Some(Duration::from_millis(50)),
            ..quick_config()
        };
        let ids = [ExperimentId::Table1, ExperimentId::Fig1];
        let report = run_suite_with(&ids, &ctx, &config, |id, _ctx| {
            if id == ExperimentId::Table1 {
                thread::sleep(Duration::from_secs(60)); // hangs well past the budget
            }
            Ok(vec![Table::new("ok", &["x"])])
        })
        .expect("suite runs");
        match &report.outcomes[0].1 {
            ExperimentOutcome::Failed { reason } => assert!(reason.contains("time budget")),
            other => panic!("expected timeout, got {other:?}"),
        }
        // The suite moved on past the hung experiment.
        assert_eq!(report.completed(), 1);
    }

    #[test]
    fn checkpoint_resume_skips_completed_experiments() {
        let dir = std::env::temp_dir().join(format!("llc-suite-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let manifest = dir.join("manifest.json");
        let _ = std::fs::remove_file(&manifest);
        let config = SuiteConfig {
            manifest_path: Some(manifest.clone()),
            ..quick_config()
        };
        let ctx = ExperimentCtx::test();
        let ids = [ExperimentId::Table1, ExperimentId::Fig1];

        // First run: fig1 fails, table1 completes and is checkpointed.
        let report = run_suite_with(&ids, &ctx, &config, |id, _ctx| {
            if id == ExperimentId::Fig1 {
                panic!("first run failure");
            }
            Ok(vec![Table::new("ok", &["x"])])
        })
        .expect("first run");
        assert_eq!(report.completed(), 1);
        assert!(
            manifest.exists(),
            "completed experiment must be checkpointed"
        );

        // Second run: table1 must come from the checkpoint (the closure
        // panics if asked to recompute it), fig1 runs for real now.
        let report = run_suite_with(&ids, &ctx, &config, |id, _ctx| {
            if id == ExperimentId::Table1 {
                panic!("resume must not recompute table1");
            }
            Ok(vec![Table::new("fig1 ok", &["x"])])
        })
        .expect("second run");
        assert_eq!(report.resumed(), 1);
        assert_eq!(report.completed(), 1);
        assert_eq!(report.failed(), 0);
        // The resume reports how much wall time the checkpoint saved
        // (the first run recorded its elapsed time in the manifest).
        match &report.outcomes[0].1 {
            ExperimentOutcome::Resumed { saved, .. } => {
                assert!(saved.is_some(), "checkpointed run must carry its wall time")
            }
            other => panic!("expected resume, got {other:?}"),
        }
        let _ = std::fs::remove_file(&manifest);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn corrupt_manifest_file_fails_the_suite_with_manifest_error() {
        let dir = std::env::temp_dir();
        let manifest = dir.join(format!("llc-suite-corrupt-{}.json", std::process::id()));
        std::fs::write(&manifest, "this is not json").expect("write corrupt file");
        let config = SuiteConfig {
            manifest_path: Some(manifest.clone()),
            ..quick_config()
        };
        let ctx = ExperimentCtx::test();
        let r = run_suite_with(&[ExperimentId::Table1], &ctx, &config, |_, _| Ok(vec![]));
        assert!(matches!(r, Err(RunError::Manifest { .. })));
        let _ = std::fs::remove_file(&manifest);
    }

    #[test]
    fn retries_give_up_with_io_error() {
        let config = quick_config();
        let mut calls = 0;
        let r: Result<(), RunError> = with_retries(&config, "always failing", || {
            calls += 1;
            Err(io::Error::new(io::ErrorKind::PermissionDenied, "nope"))
        });
        assert_eq!(calls, 2); // initial attempt + io_retries(1)
        assert!(matches!(r, Err(RunError::Io { .. })));
    }

    #[test]
    fn parallel_suite_preserves_request_order_and_checkpoints() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let dir = std::env::temp_dir().join(format!("llc-suite-par-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        let manifest = dir.join("manifest.json");
        let _ = std::fs::remove_file(&manifest);
        let config = SuiteConfig {
            jobs: 4,
            manifest_path: Some(manifest.clone()),
            ..quick_config()
        };
        let ctx = ExperimentCtx::test();
        let ids = [
            ExperimentId::Table1,
            ExperimentId::Fig1,
            ExperimentId::Fig2,
            ExperimentId::Fig3,
        ];
        let in_flight = Arc::new(AtomicUsize::new(0));
        let peak = Arc::new(AtomicUsize::new(0));
        let report = {
            let (in_flight, peak) = (Arc::clone(&in_flight), Arc::clone(&peak));
            run_suite_with(&ids, &ctx, &config, move |id, _ctx| {
                let now = in_flight.fetch_add(1, Ordering::SeqCst) + 1;
                peak.fetch_max(now, Ordering::SeqCst);
                thread::sleep(Duration::from_millis(30));
                in_flight.fetch_sub(1, Ordering::SeqCst);
                if id == ExperimentId::Fig2 {
                    panic!("injected parallel failure");
                }
                Ok(vec![Table::new(id.label(), &["x"])])
            })
            .expect("suite runs")
        };
        // Outcomes come back in request order no matter who finished first.
        let labels: Vec<&str> = report.outcomes.iter().map(|(id, _)| id.label()).collect();
        assert_eq!(labels, vec!["table1", "fig1", "fig2", "fig3"]);
        assert_eq!(report.completed(), 3);
        assert_eq!(report.failed(), 1);
        assert!(
            peak.load(Ordering::SeqCst) > 1,
            "with 4 jobs and 30ms experiments, some must overlap"
        );
        // Completed experiments were checkpointed despite the pool.
        let saved = parse_manifest(&std::fs::read_to_string(&manifest).expect("manifest"))
            .expect("valid manifest");
        assert!(saved.get("table1").is_some());
        assert!(
            saved.get("fig2").is_none(),
            "failed experiment must not be checkpointed"
        );
        let (_, elapsed) = saved.get("fig1").expect("fig1 checkpointed");
        assert!(
            elapsed.is_some(),
            "checkpoints record per-experiment wall time"
        );
        let _ = std::fs::remove_file(&manifest);
        let _ = std::fs::remove_dir(&dir);
    }

    #[test]
    fn zero_jobs_resolves_to_available_parallelism() {
        let config = SuiteConfig {
            jobs: 0,
            ..quick_config()
        };
        assert!(config.effective_jobs() >= 1);
        let config = SuiteConfig {
            jobs: 3,
            ..quick_config()
        };
        assert_eq!(config.effective_jobs(), 3);
    }

    #[test]
    fn summary_table_shows_one_row_per_experiment() {
        let report = SuiteReport {
            outcomes: vec![
                (
                    ExperimentId::Table1,
                    ExperimentOutcome::Completed {
                        tables: vec![],
                        elapsed: Duration::from_millis(1500),
                    },
                ),
                (
                    ExperimentId::Fig1,
                    ExperimentOutcome::Failed {
                        reason: "boom".into(),
                    },
                ),
                (
                    ExperimentId::Fig2,
                    ExperimentOutcome::Resumed {
                        tables: vec![],
                        saved: Some(Duration::from_secs(42)),
                    },
                ),
            ],
            checkpoint_errors: vec!["disk full".into()],
        };
        let s = report.summary().to_string();
        assert!(s.contains("table1"));
        assert!(s.contains("FAILED"));
        assert!(s.contains("boom"));
        assert!(s.contains("disk full"));
        assert!(
            s.contains("skipped"),
            "resume rows show the time the checkpoint saved: {s}"
        );
        assert_eq!(report.time_spent(), Duration::from_millis(1500));
        assert_eq!(report.time_skipped(), Duration::from_secs(42));
    }
}

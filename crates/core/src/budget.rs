//! The ambient worker-donation budget behind automatic set-sharded
//! replay.
//!
//! A suite (or the `llc-serve` daemon) knows how many workers the user
//! granted (`--jobs`) and how many are actually busy; whatever is left
//! over is *donated* here as a process-global pool of spare-worker
//! permits. The replay drivers ([`crate::replay_kind`] and friends)
//! borrow from the pool when they are about to replay a per-set-state
//! policy with no observers attached: `k` borrowed permits turn one
//! sequential replay into a `k + 1`-way set-sharded replay (see
//! [`crate::replay_sharded`]), so a lone runnable experiment still
//! saturates the machine.
//!
//! Borrowing only ever changes *how fast* a replay runs, never what it
//! computes — sharded replay is bit-identical to sequential replay — so
//! the pool needs no fairness or ordering guarantees. A single atomic
//! counter suffices: donations add permits, schedulers reclaim permits
//! when workers become busy again (the count may transiently go
//! negative while both race; borrowers simply see an empty pool), and
//! borrows are returned by an RAII guard. Processes that never donate —
//! unit tests, library users driving [`crate::replay`] directly — keep
//! an empty pool and always replay sequentially.

use std::sync::atomic::{AtomicIsize, Ordering};
use std::sync::{Arc, LazyLock};

use llc_telemetry::metrics::{global, Counter, Gauge};

static PERMITS: AtomicIsize = AtomicIsize::new(0);

static SPARE_GAUGE: LazyLock<Arc<Gauge>> = LazyLock::new(|| {
    global().gauge(
        "llc_budget_spare_workers",
        "Spare workers currently donated to the process-global pool and available for borrowing",
    )
});
static BORROWED_TOTAL: LazyLock<Arc<Counter>> = LazyLock::new(|| {
    global().counter(
        "llc_budget_borrowed_workers_total",
        "Workers handed out by budget::borrow over the process lifetime",
    )
});

/// Mirrors the pool into the spare-workers gauge (clamped at zero,
/// matching [`available`]). Called after every pool mutation; the load
/// races benignly with concurrent mutations — the gauge is a sample,
/// not a ledger.
fn sync_gauge() {
    SPARE_GAUGE.set(PERMITS.load(Ordering::SeqCst).max(0) as i64);
}

/// Resets the pool to exactly `permits` spare workers. Schedulers call
/// this once at start-up (suite launch, daemon bind) so permits left
/// over from an earlier run in the same process cannot leak across.
pub fn reset(permits: usize) {
    PERMITS.store(permits as isize, Ordering::SeqCst);
    sync_gauge();
}

/// Donates `n` spare workers to the pool (a suite worker running out of
/// claimable experiments, a daemon job finishing).
pub fn donate(n: usize) {
    PERMITS.fetch_add(n as isize, Ordering::SeqCst);
    sync_gauge();
}

/// Reclaims `n` workers from the pool (a daemon job starting). The
/// count may transiently dip below zero when every spare worker is
/// currently borrowed; it self-corrects as borrows are returned.
pub fn reclaim(n: usize) {
    PERMITS.fetch_sub(n as isize, Ordering::SeqCst);
    sync_gauge();
}

/// Spare workers currently available for borrowing.
pub fn available() -> usize {
    PERMITS.load(Ordering::SeqCst).max(0) as usize
}

/// Borrows up to `max` spare workers, returning an RAII guard that
/// gives them back on drop. May return an empty borrow ([`Borrowed::count`]
/// `== 0`) when the pool is dry.
pub fn borrow(max: usize) -> Borrowed {
    // Saturate before the cast: `usize::MAX as isize` would be negative.
    let max = max.min(isize::MAX as usize) as isize;
    let mut current = PERMITS.load(Ordering::SeqCst);
    loop {
        let take = current.max(0).min(max);
        if take == 0 {
            return Borrowed { taken: 0 };
        }
        match PERMITS.compare_exchange_weak(
            current,
            current - take,
            Ordering::SeqCst,
            Ordering::SeqCst,
        ) {
            Ok(_) => {
                BORROWED_TOTAL.add(take as u64);
                sync_gauge();
                return Borrowed {
                    taken: take as usize,
                };
            }
            Err(observed) => current = observed,
        }
    }
}

/// Reclaims `n` workers for the lifetime of the returned guard, which
/// donates them back on drop — the panic-safe form of a
/// [`reclaim`]/[`donate`] pair. Schedulers wrap each busy worker in one
/// of these so a panicking (or early-returning) job body can never leak
/// its permit out of the pool.
pub fn reclaim_scoped(n: usize) -> Reclaimed {
    reclaim(n);
    Reclaimed { taken: n }
}

/// An RAII reclaim of workers; donates them back to the pool on drop.
#[derive(Debug)]
pub struct Reclaimed {
    taken: usize,
}

impl Reclaimed {
    /// Number of workers this guard holds out of the pool.
    pub fn count(&self) -> usize {
        self.taken
    }
}

impl Drop for Reclaimed {
    fn drop(&mut self) {
        if self.taken > 0 {
            donate(self.taken);
        }
    }
}

/// A borrow of spare workers; returns them to the pool on drop.
#[derive(Debug)]
pub struct Borrowed {
    taken: usize,
}

impl Borrowed {
    /// Number of workers actually borrowed (possibly zero).
    pub fn count(&self) -> usize {
        self.taken
    }
}

impl Drop for Borrowed {
    fn drop(&mut self) {
        if self.taken > 0 {
            donate(self.taken);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pool is process-global, so these tests serialize behind one
    // lock to avoid observing each other's permits.
    static SERIAL: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn borrow_is_capped_by_pool_and_request() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset(3);
        let a = borrow(2);
        assert_eq!(a.count(), 2);
        let b = borrow(5);
        assert_eq!(b.count(), 1);
        let c = borrow(1);
        assert_eq!(c.count(), 0);
        drop(a);
        assert_eq!(available(), 2);
        drop(b);
        drop(c);
        assert_eq!(available(), 3);
        reset(0);
    }

    #[test]
    fn reclaim_may_go_negative_and_recovers() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset(1);
        let a = borrow(1);
        assert_eq!(a.count(), 1);
        reclaim(1); // pool now at -1
        assert_eq!(available(), 0);
        drop(a); // returns the borrow: pool back to 0
        assert_eq!(available(), 0);
        donate(1);
        assert_eq!(available(), 1);
        reset(0);
    }

    #[test]
    fn empty_pool_always_replays_sequentially() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset(0);
        assert_eq!(borrow(8).count(), 0);
    }

    #[test]
    fn reclaim_scoped_returns_permits_even_on_unwind() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset(4);
        {
            let held = reclaim_scoped(3);
            assert_eq!(held.count(), 3);
            assert_eq!(available(), 1);
        }
        assert_eq!(available(), 4, "drop donates the permits back");
        let unwound = std::panic::catch_unwind(|| {
            let _held = reclaim_scoped(2);
            panic!("job body panics");
        });
        assert!(unwound.is_err());
        assert_eq!(available(), 4, "a panicking holder cannot leak permits");
        reset(0);
    }

    #[test]
    fn unbounded_borrow_request_saturates() {
        let _guard = SERIAL.lock().unwrap_or_else(|p| p.into_inner());
        reset(2);
        let a = borrow(usize::MAX);
        assert_eq!(a.count(), 2);
        drop(a);
        assert_eq!(available(), 2);
        reset(0);
    }
}

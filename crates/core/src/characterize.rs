//! The paper's core characterization: decomposing LLC activity by sharing
//! class.
//!
//! [`SharingProfile`] rides along a simulation and aggregates every
//! finished generation into the quantities the paper's first half reports:
//! how many generations (and live-line time, and hits) belong to shared
//! blocks versus private blocks, the sharing-degree distribution, and the
//! read-only/read-write split.

use std::collections::HashMap;

use llc_sim::{BlockAddr, GenerationEnd, LlcObserver, MAX_CORES};

/// Per-class tallies (one for shared generations, one for private).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassTally {
    /// Generations in this class.
    pub generations: u64,
    /// Demand hits received by generations of this class.
    pub hits: u64,
    /// Sum of generation lifetimes (LLC accesses × lines): the
    /// time-integrated occupancy of the class.
    pub occupancy: u64,
    /// Stores observed by this class.
    pub writes: u64,
}

/// Aggregated sharing characterization of one run.
#[derive(Debug, Clone, PartialEq)]
pub struct SharingProfile {
    /// Tallies over shared generations (≥ 2 distinct cores).
    pub shared: ClassTally,
    /// Tallies over private generations.
    pub private: ClassTally,
    /// Hits to *read-only* shared generations.
    pub read_only_shared_hits: u64,
    /// Hits to *read-write* shared generations.
    pub read_write_shared_hits: u64,
    /// Read-only shared generation count.
    pub read_only_shared_gens: u64,
    /// Read-write shared generation count.
    pub read_write_shared_gens: u64,
    /// Histogram of generations by sharer count (index = sharers; 0
    /// unused).
    pub degree_histogram: [u64; MAX_CORES + 1],
    /// Hits received from a core other than the filler (cross-thread
    /// reuse volume).
    pub hits_by_non_filler: u64,
    /// Per distinct block: was any of its generations shared?
    footprint: HashMap<BlockAddr, bool>,
}

impl Default for SharingProfile {
    fn default() -> Self {
        SharingProfile {
            shared: ClassTally::default(),
            private: ClassTally::default(),
            read_only_shared_hits: 0,
            read_write_shared_hits: 0,
            read_only_shared_gens: 0,
            read_write_shared_gens: 0,
            degree_histogram: [0; MAX_CORES + 1],
            hits_by_non_filler: 0,
            footprint: HashMap::new(),
        }
    }
}

impl ClassTally {
    /// Adds another tally's counts into this one.
    pub fn merge(&mut self, other: &ClassTally) {
        self.generations += other.generations;
        self.hits += other.hits;
        self.occupancy += other.occupancy;
        self.writes += other.writes;
    }
}

impl SharingProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        SharingProfile::default()
    }

    /// Merges another profile into this one.
    ///
    /// Merging is exact for profiles gathered over disjoint generation
    /// populations — e.g. the per-shard observers of a set-sharded
    /// replay (`llc_sharing::replay_characterized_sharded`): every
    /// counter is a sum over generations, the degree histogram adds
    /// bin-wise, and the footprint unions with OR ("was this block
    /// *ever* shared"). The operation is associative and
    /// order-insensitive, so any merge tree over the same parts yields
    /// the same profile.
    pub fn merge(&mut self, other: &SharingProfile) {
        self.shared.merge(&other.shared);
        self.private.merge(&other.private);
        self.read_only_shared_hits += other.read_only_shared_hits;
        self.read_write_shared_hits += other.read_write_shared_hits;
        self.read_only_shared_gens += other.read_only_shared_gens;
        self.read_write_shared_gens += other.read_write_shared_gens;
        for (bin, count) in self.degree_histogram.iter_mut().zip(other.degree_histogram) {
            *bin += count;
        }
        self.hits_by_non_filler += other.hits_by_non_filler;
        for (&block, &shared) in &other.footprint {
            let e = self.footprint.entry(block).or_insert(false);
            *e |= shared;
        }
    }

    /// Total generations observed.
    pub fn generations(&self) -> u64 {
        self.shared.generations + self.private.generations
    }

    /// Total hits observed.
    pub fn hits(&self) -> u64 {
        self.shared.hits + self.private.hits
    }

    /// Fraction of LLC hits that went to shared generations — the paper's
    /// headline characterization number ("the shared blocks are more
    /// important than the private blocks").
    pub fn shared_hit_fraction(&self) -> f64 {
        fraction(self.shared.hits, self.hits())
    }

    /// Fraction of generations that were shared (population share; the
    /// contrast with [`SharingProfile::shared_hit_fraction`] is the
    /// paper's Fig. 1-vs-2 argument).
    pub fn shared_generation_fraction(&self) -> f64 {
        fraction(self.shared.generations, self.generations())
    }

    /// Fraction of time-integrated LLC occupancy held by shared
    /// generations.
    pub fn shared_occupancy_fraction(&self) -> f64 {
        fraction(
            self.shared.occupancy,
            self.shared.occupancy + self.private.occupancy,
        )
    }

    /// Fraction of shared-generation hits that went to read-only shared
    /// generations.
    pub fn read_only_hit_fraction(&self) -> f64 {
        fraction(self.read_only_shared_hits, self.shared.hits)
    }

    /// Average hits per generation, by class: `(shared, private)`.
    pub fn hits_per_generation(&self) -> (f64, f64) {
        (
            fraction(self.shared.hits, self.shared.generations),
            fraction(self.private.hits, self.private.generations),
        )
    }

    /// Number of distinct blocks that appeared in the LLC.
    pub fn footprint_blocks(&self) -> u64 {
        self.footprint.len() as u64
    }

    /// Fraction of distinct blocks that were shared in at least one
    /// generation.
    pub fn shared_footprint_fraction(&self) -> f64 {
        let shared = self.footprint.values().filter(|&&s| s).count() as u64;
        fraction(shared, self.footprint_blocks())
    }

    /// Sharing-degree distribution over shared generations: fractions of
    /// shared generations with exactly 2, 3–4, and ≥ 5 sharers.
    pub fn degree_buckets(&self) -> (f64, f64, f64) {
        let total: u64 = self.degree_histogram[2..].iter().sum();
        let two = self.degree_histogram[2];
        let three_four = self.degree_histogram[3] + self.degree_histogram[4];
        let five_plus: u64 = self.degree_histogram[5..].iter().sum();
        (
            fraction(two, total),
            fraction(three_four, total),
            fraction(five_plus, total),
        )
    }
}

fn fraction(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

impl LlcObserver for SharingProfile {
    fn on_generation_end(&mut self, gen: &GenerationEnd) {
        let tally = if gen.is_shared() {
            &mut self.shared
        } else {
            &mut self.private
        };
        tally.generations += 1;
        tally.hits += u64::from(gen.hits);
        tally.occupancy += gen.lifetime();
        tally.writes += u64::from(gen.writes);
        self.hits_by_non_filler += u64::from(gen.hits_by_non_filler);
        self.degree_histogram[gen.sharer_count() as usize] += 1;
        if gen.is_shared() {
            if gen.is_read_only_shared() {
                self.read_only_shared_hits += u64::from(gen.hits);
                self.read_only_shared_gens += 1;
            } else {
                self.read_write_shared_hits += u64::from(gen.hits);
                self.read_write_shared_gens += 1;
            }
        }
        let e = self.footprint.entry(gen.block).or_insert(false);
        *e |= gen.is_shared();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::{CoreId, EvictCause, Pc};

    fn gen(block: u64, sharers: u32, hits: u32, writes: u32) -> GenerationEnd {
        GenerationEnd {
            block: BlockAddr::new(block),
            set: 0,
            fill_pc: Pc::new(0x400),
            fill_core: CoreId::new(0),
            fill_time: 0,
            end_time: 100,
            sharer_mask: (1u32 << sharers) - 1,
            writer_mask: if writes > 0 { 1 } else { 0 },
            hits,
            hits_by_non_filler: if sharers > 1 { hits } else { 0 },
            writes,
            cause: EvictCause::Replacement,
        }
    }

    #[test]
    fn classifies_shared_and_private() {
        let mut p = SharingProfile::new();
        p.on_generation_end(&gen(1, 1, 3, 0)); // private
        p.on_generation_end(&gen(2, 4, 9, 0)); // shared RO
        p.on_generation_end(&gen(3, 2, 6, 2)); // shared RW
        assert_eq!(p.generations(), 3);
        assert_eq!(p.shared.generations, 2);
        assert_eq!(p.private.generations, 1);
        assert_eq!(p.hits(), 18);
        assert!((p.shared_hit_fraction() - 15.0 / 18.0).abs() < 1e-12);
        assert!((p.shared_generation_fraction() - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(p.read_only_shared_hits, 9);
        assert_eq!(p.read_write_shared_hits, 6);
    }

    #[test]
    fn degree_buckets_partition_shared_gens() {
        let mut p = SharingProfile::new();
        p.on_generation_end(&gen(1, 2, 0, 0));
        p.on_generation_end(&gen(2, 3, 0, 0));
        p.on_generation_end(&gen(3, 4, 0, 0));
        p.on_generation_end(&gen(4, 8, 0, 0));
        let (two, mid, high) = p.degree_buckets();
        assert!((two - 0.25).abs() < 1e-12);
        assert!((mid - 0.5).abs() < 1e-12);
        assert!((high - 0.25).abs() < 1e-12);
        assert!((two + mid + high - 1.0).abs() < 1e-12);
    }

    #[test]
    fn footprint_marks_blocks_ever_shared() {
        let mut p = SharingProfile::new();
        p.on_generation_end(&gen(7, 1, 0, 0)); // private generation of 7
        p.on_generation_end(&gen(7, 3, 0, 0)); // later shared generation of 7
        p.on_generation_end(&gen(8, 1, 0, 0));
        assert_eq!(p.footprint_blocks(), 2);
        assert!((p.shared_footprint_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn occupancy_accumulates_lifetimes() {
        let mut p = SharingProfile::new();
        p.on_generation_end(&gen(1, 1, 0, 0)); // lifetime 100
        p.on_generation_end(&gen(2, 2, 0, 0)); // lifetime 100
        assert!((p.shared_occupancy_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn empty_profile_is_all_zero() {
        let p = SharingProfile::new();
        assert_eq!(p.generations(), 0);
        assert_eq!(p.shared_hit_fraction(), 0.0);
        assert_eq!(p.degree_buckets(), (0.0, 0.0, 0.0));
    }
}

//! The experiment index: one module per table/figure of the paper-style
//! evaluation, all driven through [`run_experiment`].

mod characterization;
mod config;
mod extensions;
mod oracle;
mod phases;
pub(crate) mod policies;
mod predictor;

use llc_dag::DagStore;
use llc_sim::{CacheConfig, HierarchyConfig, Inclusion};
use llc_trace::{App, Scale};

use crate::error::RunError;
use crate::replay::{CachedStream, StreamCache, StreamKey, WorkloadId};
use crate::report::Table;

/// Shared parameters of an experiment run.
#[derive(Debug, Clone)]
pub struct ExperimentCtx {
    /// Simulated cores (one thread each).
    pub cores: usize,
    /// Private L1 geometry.
    pub l1: CacheConfig,
    /// LLC associativity.
    pub llc_ways: usize,
    /// LLC capacities (bytes) to evaluate; the paper uses 4 MB and 8 MB.
    pub llc_capacities: Vec<u64>,
    /// Workload scale.
    pub scale: Scale,
    /// Applications to run.
    pub apps: Vec<App>,
    /// Recorded LLC reference streams, shared across every experiment in a
    /// suite run (cloning the ctx shares the cache): each (workload,
    /// hierarchy) pair is recorded once, then every policy replays it.
    pub streams: StreamCache,
    /// Optional content-addressed artifact DAG: when attached, pure-stats
    /// replays resolve through [`ExperimentCtx::replay_cached`] and the
    /// fused annotation pre-passes are persisted per (stream, window), so
    /// near-duplicate specs only pay for their delta.
    pub dag: Option<DagStore>,
}

impl ExperimentCtx {
    /// The paper's configuration: 8 cores, 32 KB 8-way L1s, 16-way LLC of
    /// 4 MB and 8 MB, medium-scale workloads, all sixteen applications.
    pub fn paper() -> Self {
        ExperimentCtx {
            cores: 8,
            // infallible: fixed power-of-two preset geometry.
            l1: CacheConfig::from_kib(32, 8).expect("valid L1"),
            llc_ways: 16,
            llc_capacities: vec![4 << 20, 8 << 20],
            scale: Scale::Medium,
            apps: App::ALL.to_vec(),
            streams: StreamCache::new(),
            dag: None,
        }
    }

    /// A proportionally shrunk configuration for quick runs: small-scale
    /// workloads against 1 MB / 2 MB LLCs (footprint-to-capacity pressure
    /// comparable to the paper setup at a fraction of the time).
    pub fn quick() -> Self {
        ExperimentCtx {
            cores: 8,
            // infallible: fixed power-of-two preset geometry.
            l1: CacheConfig::from_kib(16, 4).expect("valid L1"),
            llc_ways: 16,
            llc_capacities: vec![1 << 20, 2 << 20],
            scale: Scale::Small,
            apps: App::ALL.to_vec(),
            streams: StreamCache::new(),
            dag: None,
        }
    }

    /// A unit-test configuration: tiny workloads, 64 KB / 128 KB LLCs,
    /// four cores, a four-app subset covering the sharing classes.
    pub fn test() -> Self {
        ExperimentCtx {
            cores: 4,
            // infallible: fixed power-of-two preset geometry.
            l1: CacheConfig::from_kib(2, 2).expect("valid L1"),
            llc_ways: 8,
            llc_capacities: vec![64 << 10, 128 << 10],
            scale: Scale::Tiny,
            apps: vec![App::Swaptions, App::Bodytrack, App::Dedup, App::Fft],
            streams: StreamCache::new(),
            dag: None,
        }
    }

    /// The hierarchy for one LLC capacity (non-inclusive by default; see
    /// [`ExperimentCtx::config_inclusive`]).
    ///
    /// # Errors
    ///
    /// Returns [`RunError::Sim`] if `llc_capacity` (user-settable via
    /// [`ExperimentCtx::llc_capacities`]) does not form a valid cache
    /// geometry with [`llc_ways`](ExperimentCtx::llc_ways).
    pub fn config(&self, llc_capacity: u64) -> Result<HierarchyConfig, RunError> {
        Ok(HierarchyConfig {
            cores: self.cores,
            l1: self.l1,
            l2: None,
            llc: CacheConfig::new(llc_capacity, self.llc_ways)?,
            inclusion: Inclusion::NonInclusive,
        })
    }

    /// Same hierarchy with an inclusive LLC (the `abl2` ablation).
    ///
    /// # Errors
    ///
    /// Same conditions as [`ExperimentCtx::config`].
    pub fn config_inclusive(&self, llc_capacity: u64) -> Result<HierarchyConfig, RunError> {
        Ok(HierarchyConfig {
            inclusion: Inclusion::Inclusive,
            ..self.config(llc_capacity)?
        })
    }

    /// The primary (smallest) LLC configuration.
    ///
    /// # Errors
    ///
    /// Fails if [`llc_capacities`](ExperimentCtx::llc_capacities) is empty
    /// or its first entry is not a valid geometry.
    pub fn main_config(&self) -> Result<HierarchyConfig, RunError> {
        let cap = *self.llc_capacities.first().ok_or_else(|| {
            RunError::Sim(llc_sim::SimError::from(llc_sim::ConfigError::new(
                "ExperimentCtx.llc_capacities is empty",
            )))
        })?;
        self.config(cap)
    }

    /// Builds `app`'s workload under this context.
    pub fn workload(&self, app: App) -> llc_trace::Workload {
        app.workload(self.cores, self.scale)
    }

    /// The [`StreamKey`] `app` resolves to under `config` — the identity
    /// a stream node is fingerprinted by, computable without recording.
    pub fn stream_key(&self, app: App, config: &HierarchyConfig) -> StreamKey {
        StreamKey {
            workload: WorkloadId::App(app),
            cores: self.cores,
            scale: self.scale,
            config: *config,
        }
    }

    /// The recorded LLC reference stream of `app` under `config`, from the
    /// shared [`StreamCache`] (recorded on first use, replay-ready after).
    ///
    /// # Errors
    ///
    /// Propagates [`crate::replay::record_stream`] errors.
    pub fn stream(&self, app: App, config: &HierarchyConfig) -> Result<CachedStream, RunError> {
        self.streams
            .get_or_record(self.stream_key(app, config), || self.workload(app))
    }
}

/// Runs `f` once per app on its own OS thread and returns the results in
/// app order. Workloads are rebuilt inside each closure, so nothing
/// non-`Send` crosses threads.
///
/// A panicking worker is re-raised on the calling thread (with the
/// original payload) so the suite runner's `catch_unwind` isolation sees
/// it; sibling workers still run to completion first because the scope
/// joins every handle.
pub fn per_app<T, F>(apps: &[App], f: F) -> Vec<T>
where
    T: Send,
    F: Fn(App) -> T + Sync,
{
    let f = &f;
    std::thread::scope(|scope| {
        let handles: Vec<_> = apps
            .iter()
            .map(|&app| scope.spawn(move || f(app)))
            .collect();
        handles
            .into_iter()
            .map(|h| {
                h.join()
                    .unwrap_or_else(|payload| std::panic::resume_unwind(payload))
            })
            .collect()
    })
}

/// Fallible [`per_app`]: runs one `Result`-returning closure per app and
/// collects into a single `Result`, failing with the first error in app
/// order.
pub fn per_app_try<T, F>(apps: &[App], f: F) -> Result<Vec<T>, RunError>
where
    T: Send,
    F: Fn(App) -> Result<T, RunError> + Sync,
{
    per_app(apps, f).into_iter().collect()
}

macro_rules! experiments {
    ($( $variant:ident => ($label:literal, $desc:literal, $runner:path) ),+ $(,)?) => {
        /// Identifier of one reproducible table/figure.
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
        pub enum ExperimentId {
            $(
                #[doc = $desc]
                $variant,
            )+
        }

        impl ExperimentId {
            /// Every experiment, in report order.
            pub const ALL: [ExperimentId; 20] = [ $(ExperimentId::$variant),+ ];

            /// The experiment's short id (`fig1`, `table2`, `abl3`, …).
            pub fn label(self) -> &'static str {
                match self { $(ExperimentId::$variant => $label),+ }
            }

            /// One-line description.
            pub fn description(self) -> &'static str {
                match self { $(ExperimentId::$variant => $desc),+ }
            }

            /// Parses a short id (case-insensitive).
            pub fn parse(s: &str) -> Option<ExperimentId> {
                let s = s.to_ascii_lowercase();
                $( if s == $label { return Some(ExperimentId::$variant); } )+
                None
            }
        }

        /// Runs one experiment, returning its rendered tables.
        ///
        /// # Errors
        ///
        /// Propagates the first [`RunError`] any app run produced.
        pub fn run_experiment(id: ExperimentId, ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
            match id { $(ExperimentId::$variant => $runner(ctx)),+ }
        }
    };
}

experiments! {
    Table1 => ("table1", "Simulated machine configuration", config::table1),
    Table2 => ("table2", "Workload characteristics under LRU", characterization::table2),
    Fig1 => ("fig1", "LLC hit decomposition: shared vs private generations", characterization::fig1),
    Fig2 => ("fig2", "Generation population and occupancy decomposition", characterization::fig2),
    Fig3 => ("fig3", "Sharing-degree distribution of shared generations", characterization::fig3),
    Fig4 => ("fig4", "Read-only vs read-write decomposition of shared hits", characterization::fig4),
    Fig5 => ("fig5", "Replacement policies vs Belady's OPT (misses normalized to LRU)", policies::fig5),
    Fig6 => ("fig6", "Sharing-awareness: premature shared-block victimization rates", policies::fig6),
    Fig7 => ("fig7", "Sharing-aware oracle on LRU: miss reduction (the headline result)", oracle::fig7),
    Fig8 => ("fig8", "Sharing-aware oracle on recent policies", oracle::fig8),
    Fig9 => ("fig9", "Fill-time sharing predictability: address vs PC history predictors", predictor::fig9),
    Fig10 => ("fig10", "Predictor-driven wrapper vs the oracle: end-to-end gain recovery", predictor::fig10),
    Fig11 => ("fig11", "Epoch-resolved shared-hit fraction for phase-structured apps", phases::fig11),
    Fig12 => ("fig12", "Extension: modelled performance impact of the oracle", extensions::fig12),
    Table3 => ("table3", "Predictor hardware budget sweep", predictor::table3),
    Abl1 => ("abl1", "Ablation: oracle pre-pass iteration stability", oracle::abl1),
    Abl2 => ("abl2", "Ablation: inclusive vs non-inclusive LLC", config::abl2),
    Abl3 => ("abl3", "Ablation: oracle protection mode (eviction/insertion/both)", oracle::abl3),
    Abl4 => ("abl4", "Extension: reactive vs predicted vs oracle protection ladder", extensions::abl4),
    Abl5 => ("abl5", "Extension: multi-programmed mixes (no cross-program sharing)", extensions::abl5),
}

impl std::fmt::Display for ExperimentId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_parse_round_trip() {
        for id in ExperimentId::ALL {
            assert_eq!(ExperimentId::parse(id.label()), Some(id));
        }
        assert_eq!(ExperimentId::parse("FIG7"), Some(ExperimentId::Fig7));
        assert_eq!(ExperimentId::parse("nope"), None);
    }

    #[test]
    fn contexts_validate() {
        for ctx in [
            ExperimentCtx::paper(),
            ExperimentCtx::quick(),
            ExperimentCtx::test(),
        ] {
            for &cap in &ctx.llc_capacities {
                ctx.config(cap)
                    .expect("valid config")
                    .validate()
                    .expect("valid hierarchy");
                ctx.config_inclusive(cap)
                    .expect("valid config")
                    .validate()
                    .expect("valid hierarchy");
            }
            ctx.main_config().expect("valid main config");
        }
    }

    #[test]
    fn bad_capacities_are_typed_errors_not_panics() {
        let mut ctx = ExperimentCtx::test();
        ctx.llc_capacities = vec![12345]; // not a power-of-two geometry
        assert!(matches!(ctx.config(12345), Err(RunError::Sim(_))));
        assert!(matches!(ctx.main_config(), Err(RunError::Sim(_))));
        ctx.llc_capacities.clear();
        assert!(matches!(ctx.main_config(), Err(RunError::Sim(_))));
    }

    #[test]
    fn per_app_preserves_order() {
        use llc_trace::App;
        let apps = [App::Fft, App::Swim, App::Dedup];
        let labels = per_app(&apps, |a| a.label().to_string());
        assert_eq!(labels, vec!["fft", "swim", "dedup"]);
    }
}

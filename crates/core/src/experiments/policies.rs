//! Policy-comparison experiments: `fig5` (misses vs OPT) and `fig6`
//! (sharing-awareness of existing policies).
//!
//! Both record each (app, LLC size) reference stream once via the
//! context's [`StreamCache`](crate::replay::StreamCache) and replay every
//! policy over it — the whole lineup costs one hierarchy simulation per
//! app instead of one per policy.

use llc_dag::ReplayDesc;
use llc_policies::PolicyKind;

use crate::awareness::VictimizationStats;
use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::replay::replay_kind;
use crate::report::{f3, geomean, pct, Table};

/// The policy lineup of the comparison figures.
pub(crate) const LINEUP: [PolicyKind; 8] = [
    PolicyKind::Lru,
    PolicyKind::Random,
    PolicyKind::Nru,
    PolicyKind::Srrip,
    PolicyKind::Drrip,
    PolicyKind::Dip,
    PolicyKind::Ship,
    PolicyKind::Opt,
];

/// Fig. 5: per-app LLC misses of each policy normalized to LRU, with OPT
/// as the lower bound. One table per LLC size.
pub(crate) fn fig5(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let mut tables = Vec::new();
    for &cap in &ctx.llc_capacities {
        let cfg = ctx.config(cap)?;
        let mut headers: Vec<String> = vec!["app".into()];
        headers.extend(LINEUP.iter().map(|p| p.label().to_string()));
        let mut t = Table::new(
            format!(
                "Fig. 5 — LLC misses normalized to LRU ({} KB LLC)",
                cap >> 10
            ),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let rows: Vec<Vec<f64>> = per_app_try(&ctx.apps, |app| {
            let lru = ctx
                .replay_cached(app, &cfg, &ReplayDesc::plain(PolicyKind::Lru))?
                .llc
                .misses();
            let mut vals = Vec::with_capacity(LINEUP.len());
            for &kind in &LINEUP {
                let misses = if kind == PolicyKind::Lru {
                    lru
                } else {
                    ctx.replay_cached(app, &cfg, &ReplayDesc::plain(kind))?
                        .llc
                        .misses()
                };
                vals.push(misses as f64 / lru.max(1) as f64);
            }
            Ok(vals)
        })?;
        for (app, vals) in ctx.apps.iter().zip(&rows) {
            let mut cells = vec![app.label().to_string()];
            cells.extend(vals.iter().map(|&v| f3(v)));
            t.row(cells);
        }
        let mut gm = vec!["GEOMEAN".to_string()];
        for i in 0..LINEUP.len() {
            gm.push(f3(geomean(rows.iter().map(|r| r[i]))));
        }
        t.row(gm);
        t.note(
            "Below 1.000 = fewer misses than LRU. OPT is the non-bypassing optimal lower bound.",
        );
        tables.push(t);
    }
    Ok(tables)
}

/// Fig. 6: how sharing-oblivious is each policy? Premature
/// shared-victimization rates, with OPT as the reference.
pub(crate) fn fig6(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let window = 64 * ctx.llc_ways as u64;
    let policies = [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
        PolicyKind::Opt,
    ];
    let mut headers: Vec<String> = vec!["app".into()];
    for p in policies {
        headers.push(format!("{} prem%", p.label()));
        headers.push(format!("{} shvic%", p.label()));
    }
    let mut t = Table::new(
        format!(
            "Fig. 6 — Premature (shared) victimization rates ({} KB LLC, window {})",
            cap >> 10,
            window
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let stream = ctx.stream(app, &cfg)?;
        let mut cells = vec![app.label().to_string()];
        for &kind in &policies {
            let mut stats = VictimizationStats::new(window);
            replay_kind(&cfg, kind, &stream, vec![&mut stats])?;
            cells.push(pct(stats.premature_rate()));
            cells.push(pct(stats.shared_victimization_rate()));
        }
        Ok(cells)
    })?;
    for r in rows {
        t.row(r);
    }
    t.note(
        "prem% = evictions refilled within the window; shvic% = those whose refill became shared.",
    );
    t.note("OPT's near-zero shvic% is what 'OPT is naturally sharing-aware' means quantitatively.");
    Ok(vec![t])
}

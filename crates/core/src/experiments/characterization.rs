//! The characterization experiments: `table2` and `fig1`–`fig4`.

use llc_policies::PolicyKind;
use llc_trace::App;

use crate::characterize::SharingProfile;
use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::replay::replay_kind;
use crate::report::{f2, mean, pct, Table};
use crate::runner::RunResult;

/// One app's LRU run with a sharing profile attached (an LLC-only replay
/// of the cached reference stream).
fn profile_run(
    ctx: &ExperimentCtx,
    app: App,
    capacity: u64,
) -> Result<(RunResult, SharingProfile), RunError> {
    let cfg = ctx.config(capacity)?;
    let stream = ctx.stream(app, &cfg)?;
    let mut profile = SharingProfile::new();
    let result = replay_kind(&cfg, PolicyKind::Lru, &stream, vec![&mut profile])?;
    Ok((result, profile))
}

/// Table 2: workload characteristics under LRU at the primary LLC size.
pub(crate) fn table2(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let mut t = Table::new(
        format!(
            "Table 2 — Workload characteristics (LRU, {} KB LLC)",
            cap >> 10
        ),
        &[
            "app",
            "suite",
            "class",
            "refs(M)",
            "instr(M)",
            "L1 MPKI",
            "LLC MPKI",
            "footprint(MB)",
            "shared blocks",
        ],
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let (r, p) = profile_run(ctx, app, cap)?;
        Ok(vec![
            app.label().to_string(),
            app.suite().to_string(),
            app.sharing_class().to_string(),
            f2(r.trace_accesses as f64 / 1e6),
            f2(r.instructions as f64 / 1e6),
            f2(r.l1_mpki()),
            f2(r.llc_mpki()),
            f2(p.footprint_blocks() as f64 * 64.0 / (1 << 20) as f64),
            pct(p.shared_footprint_fraction()),
        ])
    })?;
    for r in rows {
        t.row(r);
    }
    t.note(
        "footprint = distinct blocks observed at the LLC; shared blocks = fraction ever shared.",
    );
    t.note("Trace records are block-granular touches, so MPKI figures are per-block-touch, higher than per-word MPKI.");
    Ok(vec![t])
}

/// Fig. 1: fraction of LLC hits served by shared generations, at both LLC
/// sizes — the motivation figure ("shared blocks are more important").
pub(crate) fn fig1(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let mut headers = vec!["app".to_string()];
    for &cap in &ctx.llc_capacities {
        headers.push(format!("shared-hit% @{}KB", cap >> 10));
        headers.push(format!("xcore-hit% @{}KB", cap >> 10));
    }
    let mut t = Table::new(
        "Fig. 1 — LLC hit decomposition: hits to shared vs private generations (LRU)",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let mut row = vec![app.label().to_string()];
        for &cap in &ctx.llc_capacities {
            let (r, p) = profile_run(ctx, app, cap)?;
            row.push(pct(p.shared_hit_fraction()));
            row.push(pct(
                r.llc.hits_by_non_filler as f64 / r.llc.hits.max(1) as f64
            ));
        }
        Ok(row)
    })?;
    let mut shared_fracs = vec![Vec::new(); ctx.llc_capacities.len()];
    for r in &rows {
        for (i, _) in ctx.llc_capacities.iter().enumerate() {
            let v: f64 = r[1 + 2 * i].trim_end_matches('%').parse().unwrap_or(0.0);
            shared_fracs[i].push(v / 100.0);
        }
    }
    for r in rows {
        t.row(r);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for fr in &shared_fracs {
        mean_row.push(pct(mean(fr.iter().copied())));
        mean_row.push("-".into());
    }
    t.row(mean_row);
    t.note("shared-hit% = hits to generations touched by >=2 cores; xcore-hit% = hits issued by a non-filling core.");
    Ok(vec![t])
}

/// Fig. 2: population vs importance — share of generations and of
/// time-integrated occupancy that is shared (contrast with fig1).
pub(crate) fn fig2(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let mut t = Table::new(
        format!(
            "Fig. 2 — Generation population vs occupancy vs hits (LRU, {} KB)",
            cap >> 10
        ),
        &[
            "app",
            "shared gens%",
            "shared occupancy%",
            "shared hits%",
            "hits/gen shared",
            "hits/gen private",
        ],
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let (_, p) = profile_run(ctx, app, cap)?;
        let (hs, hp) = p.hits_per_generation();
        Ok(vec![
            app.label().to_string(),
            pct(p.shared_generation_fraction()),
            pct(p.shared_occupancy_fraction()),
            pct(p.shared_hit_fraction()),
            f2(hs),
            f2(hp),
        ])
    })?;
    for r in rows {
        t.row(r);
    }
    t.note("The paper's argument: the shared slice of the population punches far above its weight in hits.");
    Ok(vec![t])
}

/// Fig. 3: sharing-degree distribution of shared generations.
pub(crate) fn fig3(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let mut t = Table::new(
        format!(
            "Fig. 3 — Sharing degree of shared generations (LRU, {} KB)",
            cap >> 10
        ),
        &["app", "2 sharers", "3-4 sharers", "5+ sharers"],
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let (_, p) = profile_run(ctx, app, cap)?;
        let (two, mid, high) = p.degree_buckets();
        Ok(vec![app.label().to_string(), pct(two), pct(mid), pct(high)])
    })?;
    for r in rows {
        t.row(r);
    }
    Ok(vec![t])
}

/// Fig. 4: read-only vs read-write decomposition of shared activity.
pub(crate) fn fig4(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let mut t = Table::new(
        format!(
            "Fig. 4 — Read-only vs read-write shared generations (LRU, {} KB)",
            cap >> 10
        ),
        &["app", "RO gens%", "RW gens%", "RO hits%", "RW hits%"],
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let (_, p) = profile_run(ctx, app, cap)?;
        let gens = (p.read_only_shared_gens + p.read_write_shared_gens).max(1) as f64;
        let hits = (p.read_only_shared_hits + p.read_write_shared_hits).max(1) as f64;
        Ok(vec![
            app.label().to_string(),
            pct(p.read_only_shared_gens as f64 / gens),
            pct(p.read_write_shared_gens as f64 / gens),
            pct(p.read_only_shared_hits as f64 / hits),
            pct(p.read_write_shared_hits as f64 / hits),
        ])
    })?;
    for r in rows {
        t.row(r);
    }
    t.note("Percentages are of shared generations / shared hits only.");
    Ok(vec![t])
}

//! Extension experiments beyond the paper's evaluation: `abl4` (the
//! prediction-requirement ladder), `abl5` (multi-programmed contrast) and
//! `fig12` (first-order performance impact).

use llc_policies::{PolicyKind, ProtectMode};
use llc_predictors::{build_predictor, PredictorKind};
use llc_trace::{App, Multiprogram};

use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::model::LatencyModel;
use crate::replay::{
    replay_kind, replay_oracle, replay_predictor_wrap, replay_reactive, StreamKey, WorkloadId,
};
use crate::report::f3;
use crate::report::{mean, pct, Table};

fn miss_reduction(base: u64, improved: u64) -> f64 {
    1.0 - improved as f64 / base.max(1) as f64
}

/// Ablation 4: how much of the oracle's gain actually *requires*
/// prediction? The ladder: base LRU → reactive protection (directory
/// knowledge only, no prediction) → best realistic predictor → oracle.
pub(crate) fn abl4(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let mut t = Table::new(
        format!(
            "Ablation 4 — reactive vs predicted vs oracle protection ({} KB LLC, base LRU)",
            cap >> 10
        ),
        &[
            "app",
            "reactive gain",
            "PC+Phase gain",
            "oracle gain",
            "reactive/oracle",
        ],
    );
    let rows: Vec<Vec<f64>> = per_app_try(&ctx.apps, |app| {
        let stream = ctx.stream(app, &cfg)?;
        let lru = replay_kind(&cfg, PolicyKind::Lru, &stream, vec![])?
            .llc
            .misses();
        let reactive = replay_reactive(&cfg, PolicyKind::Lru, &stream, vec![])?
            .llc
            .misses();
        let predicted = replay_predictor_wrap(
            &cfg,
            PolicyKind::Lru,
            build_predictor(PredictorKind::PcPhase),
            &stream,
            vec![],
        )?
        .llc
        .misses();
        let oracle = replay_oracle(
            &cfg,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &stream,
            vec![],
        )?
        .llc
        .misses();
        let rg = miss_reduction(lru, reactive);
        let og = miss_reduction(lru, oracle);
        Ok(vec![
            rg,
            miss_reduction(lru, predicted),
            og,
            if og > 0.0 { rg / og } else { 0.0 },
        ])
    })?;
    for (app, vals) in ctx.apps.iter().zip(&rows) {
        t.row(vec![
            app.label().to_string(),
            pct(vals[0]),
            pct(vals[1]),
            pct(vals[2]),
            if vals[2] > 0.0 {
                pct(vals[3])
            } else {
                "-".into()
            },
        ]);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for i in 0..3 {
        mrow.push(pct(mean(rows.iter().map(|r| r[i]))));
    }
    mrow.push("-".into());
    t.row(mrow);
    t.note("reactive = protect lines already shared in the current generation (pure directory state, buildable today).");
    t.note("The reactive-to-oracle gap is the gain that genuinely requires fill-time prediction.");
    Ok(vec![t])
}

/// The program mixes of `abl5`: four 2-thread programs each.
const MIXES: [(&str, [App; 4]); 3] = [
    (
        "mix-shared",
        [App::Bodytrack, App::Ferret, App::Water, App::Barnes],
    ),
    (
        "mix-blend",
        [App::Canneal, App::Swim, App::Fft, App::Streamcluster],
    ),
    (
        "mix-private",
        [App::Swaptions, App::Blackscholes, App::Swim, App::Equake],
    ),
];

/// Ablation 5: multi-programmed mixes. With programs in disjoint address
/// windows, cross-program sharing is zero; the oracle's gain collapses
/// toward whatever little intra-program (2-thread) sharing remains —
/// supporting the paper's framing that multi-programmed-oriented policies
/// address a different problem.
pub(crate) fn abl5(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = {
        let mut c = ctx.config(cap)?;
        c.cores = 8; // four programs x two threads
        c
    };
    let mut t = Table::new(
        format!(
            "Ablation 5 — multi-programmed mixes ({} KB LLC, base LRU)",
            cap >> 10
        ),
        &["mix", "LRU misses", "oracle gain", "shared-hit%"],
    );
    for (name, apps) in MIXES {
        let key = StreamKey {
            workload: WorkloadId::Mix(name),
            cores: cfg.cores,
            scale: ctx.scale,
            config: cfg,
        };
        let stream = ctx
            .streams
            .get_or_record(key, || Multiprogram::new(&apps, 2, ctx.scale))?;
        let mut profile = crate::characterize::SharingProfile::new();
        let lru = replay_kind(&cfg, PolicyKind::Lru, &stream, vec![&mut profile])?;
        let oracle = replay_oracle(
            &cfg,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &stream,
            vec![],
        )?;
        t.row(vec![
            name.to_string(),
            lru.llc.misses().to_string(),
            pct(miss_reduction(lru.llc.misses(), oracle.llc.misses())),
            pct(profile.shared_hit_fraction()),
        ]);
    }
    t.note("Each mix = four programs x two threads, disjoint 1 TiB address windows (no cross-program sharing).");
    t.note("Compare the oracle gains here against fig7's 8-thread single-program runs.");
    Ok(vec![t])
}

/// Fig. 12 (extension): translate the oracle's miss reductions into
/// first-order performance using the fixed-latency model.
pub(crate) fn fig12(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let model = LatencyModel::typical();
    let mut tables = Vec::new();
    for &cap in &ctx.llc_capacities {
        let cfg = ctx.config(cap)?;
        let mut t = Table::new(
            format!(
                "Fig. 12 — modelled performance of Oracle(LRU) ({} KB LLC)",
                cap >> 10
            ),
            &["app", "LRU AMAT", "Oracle AMAT", "speedup"],
        );
        let rows: Vec<(String, f64, f64, f64)> = per_app_try(&ctx.apps, |app| {
            let stream = ctx.stream(app, &cfg)?;
            let lru = replay_kind(&cfg, PolicyKind::Lru, &stream, vec![])?;
            let oracle = replay_oracle(
                &cfg,
                PolicyKind::Lru,
                ProtectMode::Eviction,
                None,
                &stream,
                vec![],
            )?;
            Ok((
                app.label().to_string(),
                model.amat(&lru),
                model.amat(&oracle),
                model.speedup(&lru, &oracle),
            ))
        })?;
        for (app, a, b, sp) in &rows {
            t.row(vec![app.clone(), f3(*a), f3(*b), f3(*sp)]);
        }
        t.row(vec![
            "MEAN".into(),
            "-".into(),
            "-".into(),
            f3(mean(rows.iter().map(|r| r.3))),
        ]);
        t.note("Fixed-latency model (3/30/220 cycles), IPC-1 core, no overlap: conservative comparisons only.");
        tables.push(t);
    }
    Ok(tables)
}

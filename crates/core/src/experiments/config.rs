//! `table1` (machine configuration) and `abl2` (inclusion ablation).

use llc_policies::{PolicyKind, ProtectMode};
use llc_sim::BLOCK_BYTES;

use crate::characterize::SharingProfile;
use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::replay::{replay_kind, replay_oracle};
use crate::report::{pct, Table};
use crate::runner::{simulate_kind, simulate_oracle};

/// Table 1: the simulated machine.
pub(crate) fn table1(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let mut t = Table::new(
        "Table 1 — Simulated machine configuration",
        &["component", "value"],
    );
    t.row(vec![
        "cores".into(),
        format!("{} (one thread per core)", ctx.cores),
    ]);
    t.row(vec!["block size".into(), format!("{} B", BLOCK_BYTES)]);
    t.row(vec![
        "private L1D".into(),
        format!("{} per core, LRU", ctx.l1),
    ]);
    let llcs = ctx
        .llc_capacities
        .iter()
        .map(|c| format!("{} MB", c >> 20).replace("0 MB", &format!("{} KB", c >> 10)))
        .collect::<Vec<_>>()
        .join(" / ");
    t.row(vec![
        "shared LLC".into(),
        format!("{llcs}, {}-way", ctx.llc_ways),
    ]);
    t.row(vec![
        "LLC inclusion".into(),
        "non-inclusive (inclusive mode in abl2)".into(),
    ]);
    t.row(vec![
        "coherence".into(),
        "directory MESI-lite (write-invalidate)".into(),
    ]);
    t.row(vec!["workload scale".into(), ctx.scale.to_string()]);
    t.note("Timing is not modelled; all results are miss-count based, as in the paper.");
    Ok(vec![t])
}

/// Ablation 2: does the non-inclusive simplification change the
/// conclusions? Re-measures the fig1 shared-hit fraction and the fig7
/// oracle gain with an inclusive LLC.
pub(crate) fn abl2(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let mut t = Table::new(
        format!(
            "Ablation 2 — inclusive vs non-inclusive LLC ({} KB)",
            cap >> 10
        ),
        &[
            "app",
            "shared-hit% NI",
            "shared-hit% incl",
            "oracle gain NI",
            "oracle gain incl",
        ],
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let mut result = vec![app.label().to_string()];
        for inclusive in [false, true] {
            // Non-inclusive: LLC-only replay of the cached stream.
            // Inclusive: the stream is policy-dependent, so the measured
            // runs must stay full simulations (simulate_* falls back).
            let cfg = if inclusive {
                ctx.config_inclusive(cap)?
            } else {
                ctx.config(cap)?
            };
            let mut profile = SharingProfile::new();
            let lru = if inclusive {
                simulate_kind(
                    &cfg,
                    PolicyKind::Lru,
                    &mut || app.workload(ctx.cores, ctx.scale),
                    vec![&mut profile],
                )?
            } else {
                let stream = ctx.stream(app, &cfg)?;
                replay_kind(&cfg, PolicyKind::Lru, &stream, vec![&mut profile])?
            };
            let oracle = if inclusive {
                simulate_oracle(
                    &cfg,
                    PolicyKind::Lru,
                    ProtectMode::Eviction,
                    None,
                    &mut || app.workload(ctx.cores, ctx.scale),
                    vec![],
                )?
            } else {
                let stream = ctx.stream(app, &cfg)?;
                replay_oracle(
                    &cfg,
                    PolicyKind::Lru,
                    ProtectMode::Eviction,
                    None,
                    &stream,
                    vec![],
                )?
            };
            let gain = 1.0 - oracle.llc.misses() as f64 / lru.llc.misses().max(1) as f64;
            result.push(pct(profile.shared_hit_fraction()));
            result.push(pct(gain));
        }
        // Reorder: app, sh-NI, sh-incl, gain-NI, gain-incl.
        Ok(vec![
            result[0].clone(),
            result[1].clone(),
            result[3].clone(),
            result[2].clone(),
            result[4].clone(),
        ])
    })?;
    for r in rows {
        t.row(r);
    }
    t.note("NI = non-inclusive (default). The inclusive LLC back-invalidates private copies on eviction.");
    t.note("Oracle gain = 1 - misses(Oracle(LRU)) / misses(LRU).");
    Ok(vec![t])
}

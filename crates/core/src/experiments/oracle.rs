//! The oracle experiments: `fig7` (headline LRU result), `fig8`
//! (generality over recent policies), `abl1` (pre-pass iterations) and
//! `abl3` (protection-mode variants).

//! All four experiments replay policies over cached reference streams
//! (one recording per app and LLC size), so an oracle run costs a single
//! backward scan plus an LLC-only replay.

use llc_dag::ReplayDesc;
use llc_policies::{PolicyKind, ProtectMode};

use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::report::{mean, pct, Table};
use crate::runner::oracle_window;

fn miss_reduction(base: u64, improved: u64) -> f64 {
    1.0 - improved as f64 / base.max(1) as f64
}

/// Fig. 7: the abstract's headline — the sharing-aware oracle on LRU
/// removes ~6% of misses at 4 MB and ~10% at 8 MB on average.
pub(crate) fn fig7(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let mut headers: Vec<String> = vec!["app".into()];
    for &cap in &ctx.llc_capacities {
        headers.push(format!("LRU misses @{}KB", cap >> 10));
        headers.push(format!("reduction @{}KB", cap >> 10));
    }
    let mut t = Table::new(
        "Fig. 7 — Sharing-aware oracle on LRU: LLC miss reduction",
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let rows: Vec<(String, Vec<(u64, f64)>)> = per_app_try(&ctx.apps, |app| {
        let mut cols = Vec::new();
        for &cap in &ctx.llc_capacities {
            let cfg = ctx.config(cap)?;
            let lru = ctx.replay_cached(app, &cfg, &ReplayDesc::plain(PolicyKind::Lru))?;
            let oracle = ctx.replay_cached(
                app,
                &cfg,
                &ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Eviction, oracle_window(&cfg)),
            )?;
            cols.push((
                lru.llc.misses(),
                miss_reduction(lru.llc.misses(), oracle.llc.misses()),
            ));
        }
        Ok((app.label().to_string(), cols))
    })?;
    for (app, cols) in &rows {
        let mut cells = vec![app.clone()];
        for (m, r) in cols {
            cells.push(m.to_string());
            cells.push(pct(*r));
        }
        t.row(cells);
    }
    let mut mean_row = vec!["MEAN".to_string()];
    for i in 0..ctx.llc_capacities.len() {
        mean_row.push("-".into());
        mean_row.push(pct(mean(rows.iter().map(|(_, c)| c[i].1))));
    }
    t.row(mean_row);
    t.note("Paper (abstract): oracle reduces LRU misses by 6% (4 MB) and 10% (8 MB) on average.");
    t.note("Oracle = OracleWrap(LRU), eviction protection, one base-policy pre-pass.");
    Ok(vec![t])
}

/// Fig. 8: the same oracle wrapped around the recent proposals,
/// quantifying how much sharing-awareness each is still missing.
pub(crate) fn fig8(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let bases = [
        PolicyKind::Lru,
        PolicyKind::Srrip,
        PolicyKind::Drrip,
        PolicyKind::Ship,
    ];
    let mut tables = Vec::new();
    for &cap in &ctx.llc_capacities {
        let cfg = ctx.config(cap)?;
        let mut headers: Vec<String> = vec!["app".into()];
        headers.extend(bases.iter().map(|b| format!("Oracle({})", b.label())));
        let mut t = Table::new(
            format!(
                "Fig. 8 — Oracle miss reduction per base policy ({} KB LLC)",
                cap >> 10
            ),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let w = oracle_window(&cfg);
        let rows: Vec<Vec<f64>> = per_app_try(&ctx.apps, |app| {
            let mut vals = Vec::with_capacity(bases.len());
            for &base in &bases {
                let plain = ctx.replay_cached(app, &cfg, &ReplayDesc::plain(base))?;
                let oracle = ctx.replay_cached(
                    app,
                    &cfg,
                    &ReplayDesc::oracle(base, ProtectMode::Eviction, w),
                )?;
                vals.push(miss_reduction(plain.llc.misses(), oracle.llc.misses()));
            }
            Ok(vals)
        })?;
        for (app, vals) in ctx.apps.iter().zip(&rows) {
            let mut cells = vec![app.label().to_string()];
            cells.extend(vals.iter().map(|&v| pct(v)));
            t.row(cells);
        }
        let mut mrow = vec!["MEAN".to_string()];
        for i in 0..bases.len() {
            mrow.push(pct(mean(rows.iter().map(|r| r[i]))));
        }
        t.row(mrow);
        t.note(
            "Each column compares a base policy against the same policy with the sharing oracle.",
        );
        tables.push(t);
    }
    Ok(tables)
}

/// Ablation 1: sensitivity of the oracle to its retention horizon (the
/// window within which a cross-core touch counts as "will be shared").
pub(crate) fn abl1(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let lines = cfg.llc.lines();
    let factors: [u64; 3] = [1, 4, 16];
    let mut headers: Vec<String> = vec!["app".into(), "LRU misses".into()];
    headers.extend(factors.iter().map(|f| format!("W={f}x lines")));
    let mut t = Table::new(
        format!(
            "Ablation 1 — oracle retention horizon ({} KB LLC, Oracle(LRU))",
            cap >> 10
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let rows = per_app_try(&ctx.apps, |app| {
        let lru = ctx.replay_cached(app, &cfg, &ReplayDesc::plain(PolicyKind::Lru))?;
        let mut cells = vec![app.label().to_string(), lru.llc.misses().to_string()];
        for f in factors {
            let o = ctx.replay_cached(
                app,
                &cfg,
                &ReplayDesc::oracle(PolicyKind::Lru, ProtectMode::Eviction, f * lines),
            )?;
            cells.push(pct(miss_reduction(lru.llc.misses(), o.llc.misses())));
        }
        Ok(cells)
    })?;
    for r in rows {
        t.row(r);
    }
    t.note("W = horizon in LLC accesses within which a cross-core touch marks a block 'will be shared'. Default is 4x lines.");
    Ok(vec![t])
}

/// Ablation 3: where should the protection act — eviction, insertion or
/// both?
pub(crate) fn abl3(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let modes = [
        ProtectMode::Eviction,
        ProtectMode::Insertion,
        ProtectMode::Both,
    ];
    let bases = [PolicyKind::Lru, PolicyKind::Srrip];
    let mut headers: Vec<String> = vec!["app".into()];
    for b in bases {
        for m in ["evict", "insert", "both"] {
            headers.push(format!("{}/{m}", b.label()));
        }
    }
    let mut t = Table::new(
        format!(
            "Ablation 3 — oracle protection mode ({} KB LLC), miss reduction",
            cap >> 10
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let w = oracle_window(&cfg);
    let rows: Vec<Vec<f64>> = per_app_try(&ctx.apps, |app| {
        let mut vals = Vec::new();
        for &base in &bases {
            let plain = ctx.replay_cached(app, &cfg, &ReplayDesc::plain(base))?;
            for &mode in &modes {
                let o = ctx.replay_cached(app, &cfg, &ReplayDesc::oracle(base, mode, w))?;
                vals.push(miss_reduction(plain.llc.misses(), o.llc.misses()));
            }
        }
        Ok(vals)
    })?;
    for (app, vals) in ctx.apps.iter().zip(&rows) {
        let mut cells = vec![app.label().to_string()];
        cells.extend(vals.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for i in 0..bases.len() * modes.len() {
        mrow.push(pct(mean(rows.iter().map(|r| r[i]))));
    }
    t.row(mrow);
    t.note("insert = touch-promote predicted-shared fills; evict = restrict victims to predicted-private lines.");
    Ok(vec![t])
}

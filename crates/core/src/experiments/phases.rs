//! `fig11`: epoch-resolved sharing for phase-structured applications.

use llc_policies::PolicyKind;
use llc_trace::App;

use crate::epochs::EpochSeries;
use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::replay::replay_kind;
use crate::report::{f3, pct, Table};

/// Number of epochs the time series is resampled to.
const SERIES_POINTS: usize = 16;

/// Fig. 11: shared-hit fraction over time. The phase-structured apps
/// (`fft`, `ocean`, `mgrid`, `radix`) show bursty series — the behaviour
/// that history-based fill-time predictors cannot track — while
/// read-shared apps are steady.
pub(crate) fn fig11(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    // Keep the full app list but lead with the phase-structured ones.
    let mut apps: Vec<App> = ctx
        .apps
        .iter()
        .copied()
        .filter(|a| matches!(a, App::Fft | App::Ocean | App::Mgrid | App::Radix))
        .collect();
    let rest: Vec<App> = ctx
        .apps
        .iter()
        .copied()
        .filter(|a| !apps.contains(a))
        .collect();
    apps.extend(rest);

    let mut headers: Vec<String> = vec!["app".into(), "burstiness".into()];
    headers.extend((1..=SERIES_POINTS).map(|i| format!("e{i}")));
    let mut t = Table::new(
        format!(
            "Fig. 11 — Shared-hit fraction per epoch (LRU, {} KB LLC)",
            cap >> 10
        ),
        &headers.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let rows = per_app_try(&apps, |app| {
        // The stream length IS the LLC access count, so the epoch length
        // needs no probe simulation.
        let stream = ctx.stream(app, &cfg)?;
        let epoch_len = (stream.len() as u64 / SERIES_POINTS as u64).max(1);
        let mut series = EpochSeries::new(epoch_len);
        replay_kind(&cfg, PolicyKind::Lru, &stream, vec![&mut series])?;
        let mut cells = vec![app.label().to_string(), f3(series.sharing_burstiness())];
        for i in 0..SERIES_POINTS {
            let v = series
                .epochs()
                .get(i)
                .map(|e| e.shared_hit_fraction())
                .unwrap_or(0.0);
            cells.push(pct(v));
        }
        Ok(cells)
    })?;
    for r in rows {
        t.row(r);
    }
    t.note("burstiness = coefficient of variation of the per-epoch shared-hit fraction.");
    t.note("Bursty sharing means a block's next generation need not behave like its last one — the predictor's core difficulty.");
    Ok(vec![t])
}

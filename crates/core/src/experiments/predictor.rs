//! Predictor experiments: `fig9` (achievable accuracy), `fig10`
//! (end-to-end gain recovery) and `table3` (hardware budget sweep).

use llc_policies::{PolicyKind, ProtectMode};
use llc_predictors::{
    build_predictor, build_predictor_with, PredictorKind, PredictorStudy, TableConfig,
};

use crate::error::RunError;
use crate::experiments::{per_app_try, ExperimentCtx};
use crate::replay::{replay_kind, replay_oracle, replay_predictor_wrap};
use crate::report::{f3, mean, pct, Table};

/// Fig. 9: the paper's predictability study — what accuracy can
/// fill-time, history-based sharing predictors achieve?
pub(crate) fn fig9(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let designs = [
        PredictorKind::Address,
        PredictorKind::Pc,
        PredictorKind::Tournament,
        PredictorKind::Region,
        PredictorKind::PcPhase,
        PredictorKind::NeverShared,
    ];
    let mut tables = Vec::new();
    for &design in &designs {
        let mut t = Table::new(
            format!(
                "Fig. 9 — {design} fill-time sharing predictor ({} KB LLC, LRU)",
                cap >> 10
            ),
            &[
                "app",
                "shared rate",
                "accuracy",
                "precision",
                "recall",
                "MCC",
                "coverage",
            ],
        );
        let rows = per_app_try(&ctx.apps, |app| {
            let stream = ctx.stream(app, &cfg)?;
            let mut study = PredictorStudy::new(build_predictor(design));
            replay_kind(&cfg, PolicyKind::Lru, &stream, vec![&mut study])?;
            let m = study.matrix();
            Ok(vec![
                app.label().to_string(),
                pct(m.shared_rate()),
                pct(m.accuracy()),
                pct(m.precision()),
                pct(m.recall()),
                f3(m.mcc()),
                pct(m.coverage()),
            ])
        })?;
        for r in rows {
            t.row(r);
        }
        t.note("Predicted at fill time with fill-time table state; trained at eviction with the generation outcome.");
        if design == PredictorKind::NeverShared {
            t.note("NeverShared calibrates accuracy: it scores 1 - shared-rate with zero usefulness (MCC 0).");
        }
        tables.push(t);
    }
    Ok(tables)
}

/// Fig. 10: drive the protection mechanism from the realistic predictors
/// and compare against the oracle — how much of the oracle's gain
/// survives?
pub(crate) fn fig10(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let mut t = Table::new(
        format!(
            "Fig. 10 — End-to-end: predictor-driven wrapper vs oracle ({} KB LLC, base LRU)",
            cap >> 10
        ),
        &[
            "app",
            "oracle gain",
            "Addr gain",
            "PC gain",
            "Addr+PC gain",
            "Region gain",
            "PC+Phase gain",
        ],
    );
    let rows: Vec<Vec<f64>> = per_app_try(&ctx.apps, |app| {
        let stream = ctx.stream(app, &cfg)?;
        let lru = replay_kind(&cfg, PolicyKind::Lru, &stream, vec![])?
            .llc
            .misses();
        let red = |m: u64| 1.0 - m as f64 / lru.max(1) as f64;
        let oracle = replay_oracle(
            &cfg,
            PolicyKind::Lru,
            ProtectMode::Eviction,
            None,
            &stream,
            vec![],
        )?;
        let mut vals = vec![red(oracle.llc.misses())];
        for design in [
            PredictorKind::Address,
            PredictorKind::Pc,
            PredictorKind::Tournament,
            PredictorKind::Region,
            PredictorKind::PcPhase,
        ] {
            let r = replay_predictor_wrap(
                &cfg,
                PolicyKind::Lru,
                build_predictor(design),
                &stream,
                vec![],
            )?;
            vals.push(red(r.llc.misses()));
        }
        Ok(vals)
    })?;
    for (app, vals) in ctx.apps.iter().zip(&rows) {
        let mut cells = vec![app.label().to_string()];
        cells.extend(vals.iter().map(|&v| pct(v)));
        t.row(cells);
    }
    let mut mrow = vec!["MEAN".to_string()];
    for i in 0..6 {
        mrow.push(pct(mean(rows.iter().map(|r| r[i]))));
    }
    t.row(mrow);
    t.note("gain = 1 - misses/misses(LRU). The gap between column 1 and columns 2-4 is the paper's negative result;");
    t.note("Region and PC+Phase are this reproduction's extensions testing the paper's closing conjecture.");
    Ok(vec![t])
}

/// Table 3: predictor accuracy as a function of the hardware budget.
pub(crate) fn table3(ctx: &ExperimentCtx) -> Result<Vec<Table>, RunError> {
    let cap = ctx.llc_capacities[0];
    let cfg = ctx.config(cap)?;
    let budgets = [
        (
            "512e/2b",
            TableConfig {
                entries: 512,
                assoc: 4,
                counter_bits: 2,
                init_on_shared: 2,
                tag_bits: 10,
            },
        ),
        ("4096e/3b", TableConfig::realistic()),
        (
            "32768e/3b",
            TableConfig {
                entries: 32768,
                assoc: 4,
                counter_bits: 3,
                init_on_shared: 5,
                tag_bits: 10,
            },
        ),
    ];
    let mut tables = Vec::new();
    for design in [PredictorKind::Address, PredictorKind::Pc] {
        let mut headers: Vec<String> = vec!["app".into()];
        for (name, cfg_t) in &budgets {
            headers.push(format!("{name} ({}KB) acc/MCC", cfg_t.budget_bits() / 8192));
        }
        let mut t = Table::new(
            format!(
                "Table 3 — {design} predictor budget sweep ({} KB LLC, LRU)",
                cap >> 10
            ),
            &headers.iter().map(String::as_str).collect::<Vec<_>>(),
        );
        let rows = per_app_try(&ctx.apps, |app| {
            let stream = ctx.stream(app, &cfg)?;
            let mut cells = vec![app.label().to_string()];
            for (_, table_cfg) in &budgets {
                let mut study = PredictorStudy::new(build_predictor_with(design, *table_cfg));
                replay_kind(&cfg, PolicyKind::Lru, &stream, vec![&mut study])?;
                let m = study.matrix();
                cells.push(format!("{}/{}", pct(m.accuracy()), f3(m.mcc())));
            }
            Ok(cells)
        })?;
        for r in rows {
            t.row(r);
        }
        t.note("Larger tables lift coverage but the MCC ceiling is set by the behaviour, not the budget — the paper's conclusion.");
        tables.push(t);
    }
    Ok(tables)
}

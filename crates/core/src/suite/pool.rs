//! The bounded scoped worker pool shared by the suite runner and the
//! `llc-serve` daemon.
//!
//! The pool is deliberately tiny: `N` scoped OS threads each run the same
//! role closure until it returns. No work queue is imposed — the suite
//! claims pending experiment indices through an atomic counter, while the
//! daemon's roles pull job ids from a channel — so the scheduling policy
//! stays with the caller and the pool only owns thread lifecycle
//! (spawning, naming, joining). `std::thread::scope` means borrowed state
//! (caches, checkpoints, job tables) can be shared without `'static`
//! gymnastics, and the call does not return until every role has.

use std::thread;

/// Runs `role` on `workers` scoped threads and blocks until all of them
/// return. Each invocation receives its worker index (`0..workers`).
///
/// A panicking role is re-raised on the calling thread after every
/// sibling has finished, so the pool never silently swallows a crash —
/// callers wanting isolation run their work under
/// [`run_guarded`](crate::suite::run_guarded) inside the role.
pub fn scoped_workers<F>(workers: usize, role: F)
where
    F: Fn(usize) + Sync,
{
    let role = &role;
    thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|w| {
                thread::Builder::new()
                    .name(format!("pool-worker-{w}"))
                    .spawn_scoped(scope, move || role(w))
                    // infallible: scoped spawn fails only on OS thread
                    // exhaustion, where the suite cannot proceed anyway.
                    .expect("spawn pool worker")
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn every_worker_runs_once_with_its_index() {
        let seen = AtomicUsize::new(0);
        scoped_workers(4, |w| {
            seen.fetch_add(1 << (8 * w), Ordering::SeqCst);
        });
        assert_eq!(seen.load(Ordering::SeqCst), 0x0101_0101);
    }

    #[test]
    fn worker_panics_propagate_after_siblings_finish() {
        let completed = AtomicUsize::new(0);
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            scoped_workers(3, |w| {
                if w == 1 {
                    panic!("injected pool panic");
                }
                completed.fetch_add(1, Ordering::SeqCst);
            });
        }));
        assert!(r.is_err());
        assert_eq!(completed.load(Ordering::SeqCst), 2);
    }
}

//! Fixed-width table rendering for the experiment harness.

use std::fmt;

/// A rendered experiment table (one per paper table/figure).
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title (e.g. `"Fig. 1 — LLC hit decomposition (4 MB, LRU)"`).
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (each row must have `headers.len()` cells).
    pub rows: Vec<Vec<String>>,
    /// Free-form footnotes (methodology, averages).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the cell count does not match the header count.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width mismatch in '{}'",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a footnote.
    pub fn note(&mut self, note: impl Into<String>) {
        self.notes.push(note.into());
    }

    /// Renders the table as CSV (headers first, notes omitted).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.headers.join(","));
        out.push('\n');
        for r in &self.rows {
            out.push_str(&r.join(","));
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        writeln!(f, "### {}", self.title)?;
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    write!(f, "  ")?;
                }
                first = false;
                write!(f, "{cell:>w$}", w = *w)?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        writeln!(f, "{}", "-".repeat(total))?;
        for row in &self.rows {
            line(f, row)?;
        }
        for note in &self.notes {
            writeln!(f, "  note: {note}")?;
        }
        Ok(())
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Formats a float with three decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

/// Formats a float with two decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Geometric mean of positive values (ignores the rest); the replacement
/// literature's standard cross-application average for normalized
/// miss counts.
pub fn geomean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut log_sum = 0.0;
    let mut n = 0usize;
    for v in values {
        if v > 0.0 {
            log_sum += v.ln();
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// Arithmetic mean (0 for an empty input).
pub fn mean(values: impl IntoIterator<Item = f64>) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for v in values {
        sum += v;
        n += 1;
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::new("Demo", &["app", "misses"]);
        t.row(vec!["fft".into(), "123".into()]);
        t.row(vec!["bodytrack".into(), "7".into()]);
        t.note("all numbers fictional");
        let s = t.to_string();
        assert!(s.contains("### Demo"));
        assert!(s.contains("note: all numbers fictional"));
        // Right-aligned within the column width.
        assert!(s.contains("      fft"));
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn rejects_ragged_rows() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn geomean_of_normalized_values() {
        let g = geomean([0.5, 2.0]);
        assert!((g - 1.0).abs() < 1e-12);
        assert_eq!(geomean([]), 0.0);
        // Non-positive values are skipped.
        let g = geomean([0.0, 4.0]);
        assert!((g - 4.0).abs() < 1e-12);
    }

    #[test]
    fn mean_and_formatters() {
        assert!((mean([1.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(mean([]), 0.0);
        assert_eq!(pct(0.1234), "12.3%");
        assert_eq!(f3(0.12345), "0.123");
        assert_eq!(f2(1.005), "1.00"); // banker's-ish rounding is fine
    }
}

//! Typed errors for the simulation driver and experiment runner.

use std::fmt;
use std::io;
use std::time::Duration;

use llc_sim::{ConfigError, SimError};
use llc_trace::TraceError;

/// Error produced while driving a simulation or an experiment suite.
///
/// The variants separate the three layers a run can fail in: the
/// simulator itself (`Sim`), the trace pipeline feeding it (`Trace`), and
/// the suite harness around it (`Panicked`, `TimedOut`, `Io`,
/// `Manifest`). Harness variants carry the experiment label so a failed
/// row in a suite report is self-describing.
#[derive(Debug)]
pub enum RunError {
    /// The simulator rejected its configuration or an access.
    Sim(SimError),
    /// The trace source failed to decode or encode.
    Trace(TraceError),
    /// An experiment worker panicked; the payload is the panic message.
    Panicked {
        /// Experiment label (e.g. `fig7`).
        label: String,
        /// The panic payload, stringified.
        reason: String,
    },
    /// An experiment exceeded the suite watchdog's wall-clock budget.
    TimedOut {
        /// Experiment label (e.g. `fig7`).
        label: String,
        /// The budget that was exceeded.
        limit: Duration,
    },
    /// A filesystem operation failed after exhausting its retries.
    Io {
        /// What was being attempted (e.g. a path).
        context: String,
        /// The final I/O error.
        source: io::Error,
    },
    /// A checkpoint manifest exists but cannot be understood.
    Manifest {
        /// Path of the offending manifest.
        path: String,
        /// Why it was rejected.
        reason: String,
    },
    /// An experiment id string matched no known experiment.
    UnknownExperiment {
        /// The unrecognized id.
        id: String,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Sim(e) => write!(f, "simulation error: {e}"),
            RunError::Trace(e) => write!(f, "trace error: {e}"),
            RunError::Panicked { label, reason } => {
                write!(f, "experiment {label} panicked: {reason}")
            }
            RunError::TimedOut { label, limit } => {
                write!(
                    f,
                    "experiment {label} exceeded its {:.0?} time budget",
                    limit
                )
            }
            RunError::Io { context, source } => write!(f, "I/O error ({context}): {source}"),
            RunError::Manifest { path, reason } => {
                write!(f, "bad checkpoint manifest {path}: {reason}")
            }
            RunError::UnknownExperiment { id } => write!(f, "unknown experiment id {id:?}"),
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Sim(e) => Some(e),
            RunError::Trace(e) => Some(e),
            RunError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<SimError> for RunError {
    fn from(e: SimError) -> Self {
        RunError::Sim(e)
    }
}

impl From<ConfigError> for RunError {
    fn from(e: ConfigError) -> Self {
        RunError::Sim(SimError::Config(e))
    }
}

impl From<TraceError> for RunError {
    fn from(e: TraceError) -> Self {
        RunError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_failing_layer() {
        let e = RunError::Panicked {
            label: "fig7".into(),
            reason: "boom".into(),
        };
        assert!(e.to_string().contains("fig7"));
        assert!(e.to_string().contains("boom"));
        let e = RunError::TimedOut {
            label: "abl1".into(),
            limit: Duration::from_secs(30),
        };
        assert!(e.to_string().contains("abl1"));
        let e = RunError::UnknownExperiment { id: "fig99".into() };
        assert!(e.to_string().contains("fig99"));
    }

    #[test]
    fn conversions_preserve_sources() {
        let bad = llc_sim::CacheConfig::new(0, 0).expect_err("zero config is invalid");
        let e: RunError = bad.into();
        assert!(matches!(e, RunError::Sim(SimError::Config(_))));
        assert!(std::error::Error::source(&e).is_some());
    }
}

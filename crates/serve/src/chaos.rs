//! Deterministic fault injection for the daemon — the serve-level
//! sibling of [`llc_trace::fault`].
//!
//! The trace-layer `FaultPlan` corrupts *bytes*; this layer injects
//! faults at the daemon's seams: admission (spurious queue-full),
//! execution (a worker body that panics), and the result store (reads
//! and writes that fail with a typed error). Each fault point fires on a
//! pseudo-random schedule derived purely from a seed and a per-point
//! call counter, so a failing chaos run replays bit-identically from
//! its seed — the same property the simulator itself guarantees.
//!
//! The production daemon runs with no plan installed
//! ([`ServerConfig::chaos`](crate::ServerConfig) is `None`); the chaos
//! harness in `tests/serve_chaos.rs` installs one and then asserts the
//! daemon's *contract* under fire: every request is answered with a
//! well-formed response (typed 4xx/5xx at worst), no worker wedges, and
//! the store never holds a corrupt entry outside `quarantine/`.

use std::sync::atomic::{AtomicU64, Ordering};

use llc_sim::splitmix64;

/// The seams where a [`ChaosPlan`] can inject a fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosPoint {
    /// Admission control reports the queue full even though it is not
    /// (the client sees a legitimate-looking 429).
    QueueFull,
    /// The job body panics mid-run (exercises `catch_unwind` + the
    /// worker-budget and in-flight accounting unwind paths).
    WorkerPanic,
    /// A result-store read fails with a typed error (exercises the
    /// recompute-on-corruption path).
    StoreRead,
    /// A result-store write fails with a typed error (exercises the
    /// persist-failure path; the job must fail cleanly, not wedge).
    StoreWrite,
}

impl ChaosPoint {
    const ALL: [ChaosPoint; 4] = [
        ChaosPoint::QueueFull,
        ChaosPoint::WorkerPanic,
        ChaosPoint::StoreRead,
        ChaosPoint::StoreWrite,
    ];

    fn index(self) -> usize {
        match self {
            ChaosPoint::QueueFull => 0,
            ChaosPoint::WorkerPanic => 1,
            ChaosPoint::StoreRead => 2,
            ChaosPoint::StoreWrite => 3,
        }
    }

    /// The point's label (used in injected error messages so a chaos
    /// failure is distinguishable from an organic one).
    pub fn label(self) -> &'static str {
        match self {
            ChaosPoint::QueueFull => "queue-full",
            ChaosPoint::WorkerPanic => "worker-panic",
            ChaosPoint::StoreRead => "store-read",
            ChaosPoint::StoreWrite => "store-write",
        }
    }
}

/// A seeded fault schedule over the daemon's [`ChaosPoint`]s.
///
/// Whether the `n`-th *evaluation* of a given point fires depends only
/// on `(seed, point, n)`, never on timing or thread interleaving of
/// *other* points — each point keeps its own counter.
#[derive(Debug)]
pub struct ChaosPlan {
    seed: u64,
    /// Fire rate per point, in percent (0 disables the point).
    rates: [u8; 4],
    counters: [AtomicU64; 4],
}

impl ChaosPlan {
    /// A plan with every point's rate derived from `seed` (each lands in
    /// 10..=35%) — different seeds exercise different failure mixes.
    pub fn from_seed(seed: u64) -> ChaosPlan {
        let mut rates = [0u8; 4];
        for point in ChaosPoint::ALL {
            let i = point.index();
            rates[i] = (10 + splitmix64(seed ^ (0xC0A5 + i as u64)) % 26) as u8;
        }
        ChaosPlan {
            seed,
            rates,
            counters: Default::default(),
        }
    }

    /// Overrides one point's fire rate (percent, clamped to 100).
    #[must_use]
    pub fn with_rate(mut self, point: ChaosPoint, percent: u8) -> ChaosPlan {
        self.rates[point.index()] = percent.min(100);
        self
    }

    /// A plan that never fires — useful as an explicit "chaos off"
    /// baseline inside the harness.
    pub fn quiet(seed: u64) -> ChaosPlan {
        let mut plan = ChaosPlan::from_seed(seed);
        plan.rates = [0; 4];
        plan
    }

    /// The seed this plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Evaluates `point` once: advances its counter and reports whether
    /// this evaluation injects a fault.
    pub fn fire(&self, point: ChaosPoint) -> bool {
        let i = point.index();
        let rate = u64::from(self.rates[i]);
        if rate == 0 {
            return false;
        }
        let n = self.counters[i].fetch_add(1, Ordering::Relaxed);
        let draw = splitmix64(self.seed ^ ((i as u64 + 1) << 32) ^ n);
        draw % 100 < rate
    }

    /// How many times `point` has been evaluated so far.
    pub fn evaluations(&self, point: ChaosPoint) -> u64 {
        self.counters[point.index()].load(Ordering::Relaxed)
    }
}

/// Renders a deliberately *truncated* `POST /jobs` request: the head
/// declares `Content-Length` for the full `body`, but only a seeded
/// prefix of it is included. Feeding these to a live daemon checks that
/// a client dying mid-upload gets a clean protocol error, never a hung
/// or poisoned connection handler.
pub fn truncated_submit(seed: u64, body: &str) -> Vec<u8> {
    let keep = if body.is_empty() {
        0
    } else {
        (splitmix64(seed ^ 0x7275_4e43) % body.len() as u64) as usize
    };
    let mut raw = format!(
        "POST /jobs HTTP/1.1\r\nContent-Type: application/json\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    raw.extend_from_slice(&body.as_bytes()[..keep]);
    raw
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedules_are_deterministic_per_seed() {
        for seed in [0u64, 1, 7, 0xDEAD_BEEF] {
            let a = ChaosPlan::from_seed(seed);
            let b = ChaosPlan::from_seed(seed);
            let run = |p: &ChaosPlan| {
                (0..200)
                    .map(|_| p.fire(ChaosPoint::StoreRead))
                    .collect::<Vec<_>>()
            };
            assert_eq!(run(&a), run(&b), "seed {seed}");
            assert_eq!(a.evaluations(ChaosPoint::StoreRead), 200);
        }
    }

    #[test]
    fn points_have_independent_counters() {
        let a = ChaosPlan::from_seed(42);
        let b = ChaosPlan::from_seed(42);
        // Interleave evaluations of another point on `a` only; the
        // StoreWrite schedule must be unaffected.
        let run_a: Vec<bool> = (0..100)
            .map(|_| {
                a.fire(ChaosPoint::QueueFull);
                a.fire(ChaosPoint::StoreWrite)
            })
            .collect();
        let run_b: Vec<bool> = (0..100).map(|_| b.fire(ChaosPoint::StoreWrite)).collect();
        assert_eq!(run_a, run_b);
    }

    #[test]
    fn rates_bound_firing() {
        let never = ChaosPlan::from_seed(3).with_rate(ChaosPoint::WorkerPanic, 0);
        assert!((0..500).all(|_| !never.fire(ChaosPoint::WorkerPanic)));
        let always = ChaosPlan::from_seed(3).with_rate(ChaosPoint::WorkerPanic, 100);
        assert!((0..500).all(|_| always.fire(ChaosPoint::WorkerPanic)));
        let quiet = ChaosPlan::quiet(99);
        for point in ChaosPoint::ALL {
            assert!(!quiet.fire(point));
        }
        // Derived rates actually fire sometimes at defaults.
        let some = ChaosPlan::from_seed(3);
        assert!(
            (0..500)
                .filter(|_| some.fire(ChaosPoint::StoreRead))
                .count()
                > 0
        );
    }

    #[test]
    fn truncated_submit_drops_a_seeded_suffix() {
        let body = "{\"experiment\":\"fig7\",\"preset\":\"test\"}";
        let raw = truncated_submit(11, body);
        let text = String::from_utf8(raw.clone()).expect("ascii");
        assert!(text.contains(&format!("Content-Length: {}", body.len())));
        let sent = text.split("\r\n\r\n").nth(1).expect("body part");
        assert!(sent.len() < body.len(), "must actually truncate");
        assert_eq!(raw, truncated_submit(11, body), "deterministic");
        assert!(String::from_utf8(truncated_submit(12, body))
            .expect("ascii")
            .starts_with("POST /jobs"));
    }
}

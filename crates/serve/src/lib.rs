//! # llc-serve — the simulation service
//!
//! A long-lived daemon that turns the one-shot experiment CLI into a
//! queryable simulation platform: jobs arrive over a minimal HTTP/1.1
//! JSON API (std-only — a hand-rolled server on `TcpListener`, no
//! external dependencies), are scheduled on the same bounded scoped
//! worker pool the suite runner uses
//! ([`llc_sharing::scoped_workers`]), and every expensive artifact is
//! memoized in a persistent content-addressed store:
//!
//! * **Streams** — recorded `.llcs` LLC reference streams, keyed by
//!   [`StreamKey::fingerprint`](llc_sharing::StreamKey::fingerprint)
//!   (workload × threads × scale × hierarchy). The in-process
//!   [`StreamCache`](llc_sharing::StreamCache) is a bounded read-through
//!   layer over this store.
//! * **Results** — rendered experiment tables, keyed by a fingerprint of
//!   the fully-resolved job spec (experiment × machine × workload set).
//!   A re-submitted spec is a store hit that never touches the
//!   simulator — even across daemon restarts, because the hit comes from
//!   disk, not process memory.
//!
//! ## API surface
//!
//! | Method & path          | Meaning                                      |
//! |------------------------|----------------------------------------------|
//! | `POST /jobs`           | submit an experiment spec (JSON body)        |
//! | `GET /jobs/{id}`       | job status + progress                        |
//! | `GET /jobs/{id}/result`| the completed job's tables                   |
//! | `DELETE /jobs/{id}`    | cancel (a running job is abandoned, exactly  |
//! |                        | like a suite watchdog timeout)               |
//! | `POST /sessions`       | open a live streaming characterization       |
//! |                        | session (see [`sessions`])                   |
//! | `POST /sessions/{id}/batch` | push an access batch; answers the       |
//! |                        | post-batch sliding-window stats snapshot     |
//! | `GET /sessions/{id}/stats` | the session's current characterization   |
//! | `DELETE /sessions/{id}`| close the session and drop its checkpoint    |
//! | `GET /store/stats`     | hit/miss/eviction counters, bytes on disk,   |
//! |                        | worker-budget state                          |
//! | `GET /metrics`         | Prometheus text exposition (jobs, request    |
//! |                        | latencies, stream cache, worker budget)      |
//! | `GET /healthz`         | liveness probe                               |
//!
//! The `repro` binary wires this up as `repro serve` (daemon) and
//! `repro submit/status/result/watch/stats` (client); see [`cli`].

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chaos;
pub mod cli;
pub mod client;
pub mod gc;
pub mod http;
pub mod jobs;
pub mod server;
pub mod sessions;
pub mod spec;
pub mod store;

pub use chaos::{ChaosPlan, ChaosPoint};
pub use client::{Client, RetryPolicy};
pub use gc::GcReport;
pub use jobs::{JobId, JobState};
pub use server::{Server, ServerConfig, ServerControl};
pub use sessions::SessionTable;
pub use spec::JobSpec;
pub use store::ResultStore;

use std::fmt;
use std::io;

use llc_sharing::RunError;

/// Error produced by the service layer (daemon or client).
#[derive(Debug)]
pub enum ServeError {
    /// A socket or filesystem operation failed.
    Io {
        /// What was being attempted.
        context: String,
        /// The underlying error.
        source: io::Error,
    },
    /// The peer spoke malformed HTTP or JSON.
    Protocol(String),
    /// A read or wait lapsed its wall-clock deadline (slow peer,
    /// saturated server). Retryable, unlike [`ServeError::Protocol`].
    Timeout {
        /// What was being waited for.
        context: String,
    },
    /// The server answered a client request with an error status.
    Api {
        /// The HTTP status code.
        status: u16,
        /// The server's error message.
        message: String,
    },
    /// An underlying simulation/suite error.
    Run(RunError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "I/O error ({context}): {source}"),
            ServeError::Protocol(msg) => write!(f, "protocol error: {msg}"),
            ServeError::Timeout { context } => write!(f, "timed out while {context}"),
            ServeError::Api { status, message } => {
                write!(f, "server rejected the request (HTTP {status}): {message}")
            }
            ServeError::Run(e) => write!(f, "run error: {e}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io { source, .. } => Some(source),
            ServeError::Run(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RunError> for ServeError {
    fn from(e: RunError) -> Self {
        ServeError::Run(e)
    }
}

/// Wraps an [`io::Error`] with a context string.
pub(crate) fn io_err(context: impl Into<String>, source: io::Error) -> ServeError {
    ServeError::Io {
        context: context.into(),
        source,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_the_layer() {
        let e = ServeError::Protocol("bad request line".into());
        assert!(e.to_string().contains("bad request line"));
        let e = ServeError::Api {
            status: 404,
            message: "no such job".into(),
        };
        assert!(e.to_string().contains("404"));
        let e = io_err(
            "binding listener",
            io::Error::new(io::ErrorKind::AddrInUse, "busy"),
        );
        assert!(e.to_string().contains("binding listener"));
        assert!(std::error::Error::source(&e).is_some());
    }
}

//! Job specifications: the JSON document a client submits, its
//! validation, and the stable fingerprint that content-addresses the
//! resulting tables in the persistent store.

use llc_sharing::json::{self, Value};
use llc_sharing::{ExperimentCtx, ExperimentId};
use llc_trace::{App, Scale};

use crate::ServeError;

/// A fully-validated job submission.
///
/// The JSON wire form mirrors the `repro` batch flags:
///
/// ```json
/// {"experiment": "fig7", "preset": "test", "scale": "tiny",
///  "threads": 4, "apps": ["fft", "dedup"]}
/// ```
///
/// `experiment` is required; everything else defaults to the preset
/// (`paper` when omitted), exactly like `repro --ctx`. An optional
/// `deadline_secs` bounds the job's total queue + run time (clamped by
/// the server's `--timeout`).
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Which table/figure to produce.
    pub experiment: ExperimentId,
    /// Machine + workload preset (`paper`, `quick` or `test`).
    pub preset: String,
    /// Workload-scale override.
    pub scale: Option<Scale>,
    /// Core/thread-count override.
    pub threads: Option<usize>,
    /// App-subset override.
    pub apps: Option<Vec<App>>,
    /// Client-requested deadline in seconds, measured from admission
    /// (queue wait counts against it). Scheduling metadata only: it is
    /// deliberately *not* part of [`JobSpec::fingerprint`], because the
    /// tables a spec produces do not depend on how long the client was
    /// willing to wait for them.
    pub deadline_secs: Option<u64>,
}

impl JobSpec {
    /// A spec that runs `experiment` under the given preset with no
    /// overrides.
    pub fn new(experiment: ExperimentId, preset: &str) -> JobSpec {
        JobSpec {
            experiment,
            preset: preset.to_string(),
            scale: None,
            threads: None,
            apps: None,
            deadline_secs: None,
        }
    }

    /// Parses and validates a submission body.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] naming the first malformed or
    /// unknown field.
    pub fn from_json_text(text: &str) -> Result<JobSpec, ServeError> {
        let v = json::parse(text).map_err(|e| ServeError::Protocol(format!("bad JSON: {e}")))?;
        JobSpec::from_json(&v)
    }

    /// Decodes a spec from a parsed JSON value (see [`JobSpec`] for the
    /// shape).
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::Protocol`] naming the first malformed or
    /// unknown field.
    pub fn from_json(v: &Value) -> Result<JobSpec, ServeError> {
        let bad = |msg: String| ServeError::Protocol(msg);
        let fields = match v {
            Value::Object(fields) => fields,
            _ => return Err(bad("job spec must be a JSON object".into())),
        };
        let mut spec = JobSpec::new(ExperimentId::Table1, "paper");
        let mut saw_experiment = false;
        for (key, value) in fields {
            match key.as_str() {
                "experiment" => {
                    let s = value
                        .as_str()
                        .ok_or_else(|| bad("\"experiment\" must be a string".into()))?;
                    spec.experiment = ExperimentId::parse(s)
                        .ok_or_else(|| bad(format!("unknown experiment {s:?}")))?;
                    saw_experiment = true;
                }
                "preset" => {
                    let s = value
                        .as_str()
                        .ok_or_else(|| bad("\"preset\" must be a string".into()))?;
                    if !matches!(s, "paper" | "quick" | "test") {
                        return Err(bad(format!("unknown preset {s:?}")));
                    }
                    spec.preset = s.to_string();
                }
                "scale" => {
                    let s = value
                        .as_str()
                        .ok_or_else(|| bad("\"scale\" must be a string".into()))?;
                    spec.scale =
                        Some(Scale::parse(s).ok_or_else(|| bad(format!("unknown scale {s:?}")))?);
                }
                "threads" => {
                    let n = value
                        .as_u64()
                        .filter(|&n| n > 0 && n <= llc_sim::MAX_CORES as u64)
                        .ok_or_else(|| {
                            bad(format!(
                                "\"threads\" must be an integer in 1..={}",
                                llc_sim::MAX_CORES
                            ))
                        })?;
                    spec.threads = Some(n as usize);
                }
                "apps" => {
                    let items = value
                        .as_array()
                        .ok_or_else(|| bad("\"apps\" must be an array of strings".into()))?;
                    let mut apps = Vec::new();
                    for item in items {
                        let s = item
                            .as_str()
                            .ok_or_else(|| bad("\"apps\" must be an array of strings".into()))?;
                        apps.push(App::parse(s).ok_or_else(|| bad(format!("unknown app {s:?}")))?);
                    }
                    if apps.is_empty() {
                        return Err(bad("\"apps\" must name at least one app".into()));
                    }
                    // Canonicalize: suite order, deduplicated, so
                    // ["dedup","fft"] and ["fft","fft","dedup"] share
                    // one fingerprint and one wire form.
                    let ordered: Vec<App> = App::ALL
                        .iter()
                        .copied()
                        .filter(|a| apps.contains(a))
                        .collect();
                    spec.apps = Some(ordered);
                }
                "deadline_secs" => {
                    let n = value
                        .as_u64()
                        .filter(|&n| (1..=86_400).contains(&n))
                        .ok_or_else(|| {
                            bad("\"deadline_secs\" must be an integer in 1..=86400".into())
                        })?;
                    spec.deadline_secs = Some(n);
                }
                other => return Err(bad(format!("unknown job spec field {other:?}"))),
            }
        }
        if !saw_experiment {
            return Err(bad("job spec is missing \"experiment\"".into()));
        }
        Ok(spec)
    }

    /// Encodes the spec in its canonical wire form (fields in a fixed
    /// order, overrides omitted when unset).
    pub fn to_json(&self) -> Value {
        let mut fields = vec![
            (
                "experiment",
                Value::Str(self.experiment.label().to_string()),
            ),
            ("preset", Value::Str(self.preset.clone())),
        ];
        if let Some(scale) = self.scale {
            fields.push(("scale", Value::Str(scale.to_string())));
        }
        if let Some(threads) = self.threads {
            fields.push(("threads", Value::Num(threads as f64)));
        }
        if let Some(apps) = &self.apps {
            fields.push((
                "apps",
                Value::Array(
                    apps.iter()
                        .map(|a| Value::Str(a.label().to_string()))
                        .collect(),
                ),
            ));
        }
        if let Some(secs) = self.deadline_secs {
            fields.push(("deadline_secs", Value::Num(secs as f64)));
        }
        Value::object(fields)
    }

    /// Builds the execution context this spec resolves to: the preset,
    /// with overrides applied.
    pub fn build_ctx(&self) -> ExperimentCtx {
        let mut ctx = match self.preset.as_str() {
            "quick" => ExperimentCtx::quick(),
            "test" => ExperimentCtx::test(),
            _ => ExperimentCtx::paper(),
        };
        if let Some(scale) = self.scale {
            ctx.scale = scale;
        }
        if let Some(threads) = self.threads {
            ctx.cores = threads;
        }
        if let Some(apps) = &self.apps {
            ctx.apps = apps.clone();
        }
        ctx
    }

    /// The spec's stable content-address: a fingerprint of the experiment
    /// and the *resolved* context (machine geometry, scale, thread count,
    /// app set), so two spellings of the same work — say `preset: test`
    /// with and without an explicit `threads: 4` — share one store entry,
    /// across process restarts and machines.
    pub fn fingerprint(&self) -> u64 {
        let ctx = self.build_ctx();
        let mut h: u64 = 0x4c4c_4353_4a4f_4231; // "LLCSJOB1"
        let mut fold = |v: u64| h = llc_sim::splitmix64(h ^ v);
        fold(fnv1a64(self.experiment.label().as_bytes()));
        fold(ctx.cores as u64);
        fold(fnv1a64(ctx.scale.to_string().as_bytes()));
        for app in &ctx.apps {
            fold(fnv1a64(app.label().as_bytes()));
        }
        for &cap in &ctx.llc_capacities {
            // An invalid geometry cannot be fingerprinted through
            // HierarchyConfig; folding the raw capacity keeps the
            // fingerprint total while the job itself will fail with a
            // typed error at run time.
            match ctx.config(cap) {
                Ok(config) => fold(config.fingerprint()),
                Err(_) => fold(cap),
            }
        }
        h
    }

    /// A short human-readable description for logs and status output.
    pub fn summary(&self) -> String {
        let ctx = self.build_ctx();
        format!(
            "{} ({}, {}, {} threads, {} apps)",
            self.experiment.label(),
            self.preset,
            ctx.scale,
            ctx.cores,
            ctx.apps.len()
        )
    }
}

/// FNV-1a over a byte string — stable, dependency-free hashing for
/// fingerprint inputs.
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_form_round_trips() {
        let spec = JobSpec {
            experiment: ExperimentId::Fig7,
            preset: "test".into(),
            scale: Some(Scale::Tiny),
            threads: Some(4),
            // Canonical (App::ALL) order — parsing normalizes to it.
            apps: Some(vec![App::Dedup, App::Fft]),
            deadline_secs: Some(90),
        };
        let text = spec.to_json().render();
        let back = JobSpec::from_json_text(&text).expect("round trip");
        assert_eq!(back, spec);
    }

    #[test]
    fn defaults_mirror_the_paper_preset() {
        let spec = JobSpec::from_json_text("{\"experiment\":\"fig1\"}").expect("minimal spec");
        assert_eq!(spec.experiment, ExperimentId::Fig1);
        assert_eq!(spec.preset, "paper");
        let ctx = spec.build_ctx();
        assert_eq!(ctx.cores, 8);
        assert_eq!(ctx.scale, Scale::Medium);
    }

    #[test]
    fn rejects_malformed_specs() {
        for bad in [
            "nonsense",
            "[]",
            "{}",
            "{\"experiment\":\"nope\"}",
            "{\"experiment\":\"fig1\",\"preset\":\"huge\"}",
            "{\"experiment\":\"fig1\",\"scale\":\"galactic\"}",
            "{\"experiment\":\"fig1\",\"threads\":0}",
            "{\"experiment\":\"fig1\",\"apps\":[]}",
            "{\"experiment\":\"fig1\",\"apps\":[\"nope\"]}",
            "{\"experiment\":\"fig1\",\"frobnicate\":1}",
            "{\"experiment\":\"fig1\",\"deadline_secs\":0}",
            "{\"experiment\":\"fig1\",\"deadline_secs\":86401}",
            "{\"experiment\":\"fig1\",\"deadline_secs\":\"soon\"}",
        ] {
            assert!(
                JobSpec::from_json_text(bad).is_err(),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn fingerprint_ignores_spelling_but_not_substance() {
        let implicit = JobSpec::new(ExperimentId::Fig7, "test");
        // `test` defaults to 4 cores / tiny scale; spelling them out must
        // not change the address.
        let explicit = JobSpec {
            scale: Some(Scale::Tiny),
            threads: Some(4),
            ..JobSpec::new(ExperimentId::Fig7, "test")
        };
        assert_eq!(implicit.fingerprint(), explicit.fingerprint());

        let other_exp = JobSpec::new(ExperimentId::Fig8, "test");
        let other_threads = JobSpec {
            threads: Some(2),
            ..JobSpec::new(ExperimentId::Fig7, "test")
        };
        let other_apps = JobSpec {
            apps: Some(vec![App::Fft]),
            ..JobSpec::new(ExperimentId::Fig7, "test")
        };
        let base = implicit.fingerprint();
        assert_ne!(base, other_exp.fingerprint());
        assert_ne!(base, other_threads.fingerprint());
        assert_ne!(base, other_apps.fingerprint());

        // A deadline changes scheduling, not the produced tables, so an
        // impatient client must still hit the patient client's stored
        // result.
        let with_deadline = JobSpec {
            deadline_secs: Some(5),
            ..JobSpec::new(ExperimentId::Fig7, "test")
        };
        assert_eq!(base, with_deadline.fingerprint());
    }

    #[test]
    fn canonicalization_makes_spellings_converge() {
        // Same work, three spellings: shuffled JSON field order,
        // shuffled app order, duplicated apps. All must share one
        // fingerprint AND one canonical wire form, or the serve store
        // (and the DAG table node) would compute duplicates.
        let canonical = JobSpec::from_json_text(
            "{\"experiment\":\"fig7\",\"preset\":\"test\",\"apps\":[\"fft\",\"dedup\"]}",
        )
        .expect("canonical");
        let reordered_fields = JobSpec::from_json_text(
            "{\"apps\":[\"fft\",\"dedup\"],\"preset\":\"test\",\"experiment\":\"fig7\"}",
        )
        .expect("reordered fields");
        let reordered_apps = JobSpec::from_json_text(
            "{\"experiment\":\"fig7\",\"preset\":\"test\",\"apps\":[\"dedup\",\"fft\"]}",
        )
        .expect("reordered apps");
        let duplicated_apps = JobSpec::from_json_text(
            "{\"experiment\":\"fig7\",\"preset\":\"test\",\"apps\":[\"dedup\",\"fft\",\"dedup\"]}",
        )
        .expect("duplicated apps");
        let wire = canonical.to_json().render();
        for other in [&reordered_fields, &reordered_apps, &duplicated_apps] {
            assert_eq!(other.fingerprint(), canonical.fingerprint());
            assert_eq!(other.to_json().render(), wire);
        }
        // Canonicalization must never conflate different app sets.
        let fewer = JobSpec::from_json_text(
            "{\"experiment\":\"fig7\",\"preset\":\"test\",\"apps\":[\"fft\"]}",
        )
        .expect("subset");
        assert_ne!(fewer.fingerprint(), canonical.fingerprint());
    }

    #[test]
    fn summary_names_the_work() {
        let s = JobSpec::new(ExperimentId::Fig7, "test").summary();
        assert!(
            s.contains("fig7") && s.contains("test") && s.contains("4 threads"),
            "{s}"
        );
    }
}

//! The in-memory job table: submission, state transitions, cancellation
//! and the daemon's service counters.
//!
//! Jobs are ephemeral (a restart empties the table); the *artifacts* —
//! streams and result tables — live in the persistent stores, which is
//! why a re-submitted spec after a restart is still a store hit.

use std::collections::HashMap;
use std::fmt;
use std::panic::{self, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, LazyLock, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use llc_sharing::RunError;
use llc_telemetry::metrics::{global, Counter};

use crate::spec::JobSpec;

/// `llc_jobs_total{state=...}` — one series per lifecycle milestone
/// (`submitted` on accept, the terminal labels as jobs finish).
struct JobMetrics {
    submitted: Arc<Counter>,
    done: Arc<Counter>,
    failed: Arc<Counter>,
    cancelled: Arc<Counter>,
}

static METRICS: LazyLock<JobMetrics> = LazyLock::new(|| {
    let series = |state| {
        global().counter_with(
            "llc_jobs_total",
            "Jobs by lifecycle milestone (submitted on accept, terminal states on finish)",
            &[("state", state)],
        )
    };
    JobMetrics {
        submitted: series("submitted"),
        done: series("done"),
        failed: series("failed"),
        cancelled: series("cancelled"),
    }
});

/// A job's identifier, unique within one daemon process.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct JobId(pub u64);

impl fmt::Display for JobId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// The lifecycle of a job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JobState {
    /// Accepted, waiting for a worker.
    Queued,
    /// A worker is executing it.
    Running,
    /// Finished; tables are in the result store.
    Done {
        /// `true` if the result was served from the persistent store
        /// without touching the simulator.
        from_store: bool,
    },
    /// The run produced a typed error (recorded verbatim).
    Failed {
        /// Human-readable failure description.
        reason: String,
    },
    /// Cancelled via `DELETE /jobs/{id}`.
    Cancelled,
}

impl JobState {
    /// The state's wire label (`queued`, `running`, `done`, `failed`,
    /// `cancelled`).
    pub fn label(&self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done { .. } => "done",
            JobState::Failed { .. } => "failed",
            JobState::Cancelled => "cancelled",
        }
    }

    /// `true` once the job can no longer change state.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            JobState::Done { .. } | JobState::Failed { .. } | JobState::Cancelled
        )
    }
}

/// One tracked job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// The job's id.
    pub id: JobId,
    /// The validated submission.
    pub spec: JobSpec,
    /// The spec's content-address in the result store.
    pub fingerprint: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// Cooperative cancellation flag, shared with the executing worker.
    pub cancel: Arc<AtomicBool>,
    /// When `POST /jobs` accepted the job (queue-wait telemetry).
    pub submitted_at: Instant,
}

/// Monotone service counters, exposed via `GET /store/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JobCounters {
    /// Jobs accepted by `POST /jobs`.
    pub submitted: u64,
    /// Jobs that reached `Done`.
    pub completed: u64,
    /// Jobs that reached `Failed`.
    pub failed: u64,
    /// Jobs that reached `Cancelled`.
    pub cancelled: u64,
    /// Jobs answered from the persistent result store (no simulation).
    pub result_hits: u64,
    /// Jobs that actually ran the simulator.
    pub simulated: u64,
    /// Stored results that failed to decode and were recomputed.
    pub result_errors: u64,
    /// Submissions refused by admission control (429/503 answers).
    pub rejected: u64,
    /// Jobs failed because their deadline lapsed (queued or running).
    pub expired: u64,
    /// Corrupt result-store entries moved to `quarantine/`.
    pub quarantined: u64,
}

/// The daemon's shared job table.
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Mutex<HashMap<u64, JobRecord>>,
    next: AtomicU64,
    counters: Mutex<JobCounters>,
    /// Jobs admitted but not yet terminal (queued + running). This is
    /// the quantity admission control caps — the table itself keeps
    /// terminal records around for status queries.
    inflight: AtomicU64,
}

fn lock_recovering<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl JobTable {
    /// An empty table.
    pub fn new() -> JobTable {
        JobTable::default()
    }

    /// Registers a new queued job and returns its record.
    pub fn submit(&self, spec: JobSpec, fingerprint: u64) -> JobRecord {
        let id = JobId(self.next.fetch_add(1, Ordering::Relaxed) + 1);
        let record = JobRecord {
            id,
            spec,
            fingerprint,
            state: JobState::Queued,
            cancel: Arc::new(AtomicBool::new(false)),
            submitted_at: Instant::now(),
        };
        lock_recovering(&self.jobs).insert(id.0, record.clone());
        lock_recovering(&self.counters).submitted += 1;
        self.inflight.fetch_add(1, Ordering::Relaxed);
        METRICS.submitted.inc();
        record
    }

    /// A snapshot of job `id`, if it exists.
    pub fn get(&self, id: JobId) -> Option<JobRecord> {
        lock_recovering(&self.jobs).get(&id.0).cloned()
    }

    /// Moves job `id` into `state`, unless it already reached a terminal
    /// state (a worker finishing an abandoned, cancelled job must not
    /// resurrect it). Returns the state now in effect.
    pub fn transition(&self, id: JobId, state: JobState) -> Option<JobState> {
        let mut jobs = lock_recovering(&self.jobs);
        let record = jobs.get_mut(&id.0)?;
        if !record.state.is_terminal() {
            if state.is_terminal() {
                self.inflight.fetch_sub(1, Ordering::Relaxed);
            }
            match &state {
                JobState::Done { .. } => {
                    lock_recovering(&self.counters).completed += 1;
                    METRICS.done.inc();
                }
                JobState::Failed { .. } => {
                    lock_recovering(&self.counters).failed += 1;
                    METRICS.failed.inc();
                }
                JobState::Cancelled => {
                    lock_recovering(&self.counters).cancelled += 1;
                    METRICS.cancelled.inc();
                }
                _ => {}
            }
            record.state = state;
        }
        Some(record.state.clone())
    }

    /// Cancels job `id`: a queued or running job becomes `Cancelled` (a
    /// running worker sees the flag and abandons its guarded thread); a
    /// terminal job is left untouched. Returns the state now in effect.
    pub fn cancel(&self, id: JobId) -> Option<JobState> {
        let flag = self.get(id)?.cancel;
        flag.store(true, Ordering::Relaxed);
        self.transition(id, JobState::Cancelled)
    }

    /// A snapshot of the service counters.
    pub fn counters(&self) -> JobCounters {
        *lock_recovering(&self.counters)
    }

    /// Bumps one counter through `f`.
    pub fn count(&self, f: impl FnOnce(&mut JobCounters)) {
        f(&mut lock_recovering(&self.counters));
    }

    /// Jobs admitted and not yet terminal (queued + running) — the
    /// quantity `--max-inflight` caps.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// A snapshot of every job still in [`JobState::Queued`] — the
    /// shutdown path checkpoints these specs to the store so queued work
    /// survives a drain.
    pub fn queued_specs(&self) -> Vec<(JobId, JobSpec)> {
        let jobs = lock_recovering(&self.jobs);
        let mut queued: Vec<(JobId, JobSpec)> = jobs
            .values()
            .filter(|r| r.state == JobState::Queued)
            .map(|r| (r.id, r.spec.clone()))
            .collect();
        queued.sort_by_key(|(id, _)| id.0);
        queued
    }

    /// Ids of every job currently [`JobState::Running`].
    pub fn running_ids(&self) -> Vec<JobId> {
        lock_recovering(&self.jobs)
            .values()
            .filter(|r| r.state == JobState::Running)
            .map(|r| r.id)
            .collect()
    }

    /// Number of jobs ever submitted.
    pub fn len(&self) -> usize {
        lock_recovering(&self.jobs).len()
    }

    /// `true` if no job was ever submitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The outcome of a cancellable guarded run.
#[derive(Debug)]
pub enum GuardedOutcome<T> {
    /// The work finished (with its own result or error).
    Finished(Result<T, RunError>),
    /// The cancel flag was raised; the worker thread was abandoned
    /// exactly like a suite watchdog timeout (it keeps running detached
    /// and its result is discarded).
    Cancelled,
}

/// Runs `work` on a dedicated thread under `catch_unwind`, a watchdog
/// *and* a cancellation flag — the daemon-side sibling of
/// [`llc_sharing::run_guarded`], which it matches in panic/timeout
/// semantics while additionally polling `cancel` so `DELETE /jobs/{id}`
/// can abandon a run in progress.
pub fn run_cancellable<T, F>(
    label: &str,
    timeout: Option<Duration>,
    cancel: &AtomicBool,
    work: F,
) -> GuardedOutcome<T>
where
    T: Send + 'static,
    F: FnOnce() -> Result<T, RunError> + Send + 'static,
{
    let (tx, rx) = mpsc::channel();
    let spawned = thread::Builder::new()
        .name(format!("job-{label}"))
        .spawn(move || {
            let result = panic::catch_unwind(AssertUnwindSafe(work));
            // The receiver may be gone after a cancel/timeout; that is fine.
            let _ = tx.send(result);
        });
    let handle = match spawned {
        Ok(h) => h,
        Err(e) => {
            return GuardedOutcome::Finished(Err(RunError::Io {
                context: format!("spawning job thread for {label}"),
                source: e,
            }))
        }
    };
    let started = Instant::now();
    let received = loop {
        if cancel.load(Ordering::Relaxed) {
            drop(handle); // abandon the worker; see GuardedOutcome::Cancelled
            return GuardedOutcome::Cancelled;
        }
        if let Some(limit) = timeout {
            if started.elapsed() >= limit {
                drop(handle);
                return GuardedOutcome::Finished(Err(RunError::TimedOut {
                    label: label.to_string(),
                    limit,
                }));
            }
        }
        match rx.recv_timeout(Duration::from_millis(25)) {
            Ok(r) => break r,
            Err(mpsc::RecvTimeoutError::Timeout) => continue,
            Err(mpsc::RecvTimeoutError::Disconnected) => {
                return GuardedOutcome::Finished(Err(RunError::Panicked {
                    label: label.to_string(),
                    reason: "worker thread exited without reporting".into(),
                }))
            }
        }
    };
    let _ = handle.join(); // already reported; join cannot block long
    GuardedOutcome::Finished(match received {
        Ok(result) => result,
        Err(payload) => {
            let reason = payload
                .downcast_ref::<&str>()
                .map(|s| (*s).to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "opaque panic payload".into());
            Err(RunError::Panicked {
                label: label.to_string(),
                reason,
            })
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sharing::ExperimentId;

    fn spec() -> JobSpec {
        JobSpec::new(ExperimentId::Table1, "test")
    }

    #[test]
    fn submit_get_and_transition() {
        let table = JobTable::new();
        assert!(table.is_empty());
        let a = table.submit(spec(), 1);
        let b = table.submit(spec(), 2);
        assert_ne!(a.id, b.id);
        assert_eq!(table.get(a.id).expect("present").state, JobState::Queued);
        assert_eq!(
            table.transition(a.id, JobState::Running),
            Some(JobState::Running)
        );
        assert_eq!(
            table.transition(a.id, JobState::Done { from_store: false }),
            Some(JobState::Done { from_store: false })
        );
        assert!(table.get(JobId(999)).is_none());
        assert!(table.transition(JobId(999), JobState::Running).is_none());
        let c = table.counters();
        assert_eq!((c.submitted, c.completed), (2, 1));
    }

    #[test]
    fn terminal_states_stick() {
        let table = JobTable::new();
        let job = table.submit(spec(), 1);
        table.cancel(job.id);
        assert!(job.cancel.load(Ordering::Relaxed) || table.get(job.id).is_some());
        // A worker finishing the abandoned run must not resurrect it.
        assert_eq!(
            table.transition(job.id, JobState::Done { from_store: false }),
            Some(JobState::Cancelled)
        );
        let c = table.counters();
        assert_eq!((c.cancelled, c.completed), (1, 0));
    }

    #[test]
    fn inflight_tracks_admitted_minus_terminal() {
        let table = JobTable::new();
        let a = table.submit(spec(), 1);
        let b = table.submit(spec(), 2);
        assert_eq!(table.inflight(), 2);
        table.transition(a.id, JobState::Running);
        assert_eq!(table.inflight(), 2, "running jobs are still in flight");
        table.transition(a.id, JobState::Done { from_store: false });
        assert_eq!(table.inflight(), 1);
        // A late transition on an already-terminal job must not
        // double-decrement.
        table.transition(a.id, JobState::Cancelled);
        assert_eq!(table.inflight(), 1);
        table.cancel(b.id);
        assert_eq!(table.inflight(), 0);
    }

    #[test]
    fn queued_specs_snapshots_only_queued_jobs() {
        let table = JobTable::new();
        let a = table.submit(spec(), 1);
        let b = table.submit(spec(), 2);
        let c = table.submit(spec(), 3);
        table.transition(b.id, JobState::Running);
        table.cancel(c.id);
        let queued = table.queued_specs();
        assert_eq!(
            queued.iter().map(|(id, _)| *id).collect::<Vec<_>>(),
            vec![a.id]
        );
        assert_eq!(table.running_ids(), vec![b.id]);
    }

    #[test]
    fn run_cancellable_passes_results_through() {
        let cancel = AtomicBool::new(false);
        match run_cancellable("ok", None, &cancel, || Ok(7)) {
            GuardedOutcome::Finished(Ok(n)) => assert_eq!(n, 7),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn run_cancellable_contains_panics() {
        let cancel = AtomicBool::new(false);
        let prev = panic::take_hook();
        panic::set_hook(Box::new(|_| {})); // silence the expected panic
        let outcome = run_cancellable::<(), _>("boom", None, &cancel, || panic!("kaboom"));
        panic::set_hook(prev);
        match outcome {
            GuardedOutcome::Finished(Err(RunError::Panicked { label, .. })) => {
                assert_eq!(label, "boom");
            }
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn run_cancellable_times_out_and_cancels() {
        let cancel = AtomicBool::new(false);
        let outcome =
            run_cancellable::<(), _>("slow", Some(Duration::from_millis(30)), &cancel, || {
                thread::sleep(Duration::from_secs(30));
                Ok(())
            });
        assert!(matches!(
            outcome,
            GuardedOutcome::Finished(Err(RunError::TimedOut { .. }))
        ));

        let cancel = AtomicBool::new(true); // pre-cancelled
        let outcome = run_cancellable::<(), _>("gone", None, &cancel, || {
            thread::sleep(Duration::from_secs(30));
            Ok(())
        });
        assert!(matches!(outcome, GuardedOutcome::Cancelled));
    }
}
